"""Tests for the command-line interface (fast subcommands only)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_every_subcommand_registered(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions
            if isinstance(a, type(parser._subparsers._group_actions[0]))
        )
        commands = set(sub.choices)
        for expected in (
            "fig1", "fig3", "fig6", "fig7", "fig8", "fig9", "fig10",
            "table2", "table3", "table4", "fig11", "fig12", "share",
        ):
            assert expected in commands

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_approach(self):
        with pytest.raises(SystemExit):
            main(["fig7", "--approach", "magic"])


class TestFastCommands:
    def test_fig3_runs(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "strawman" in out and "A-Gap" in out

    def test_fig11_runs(self, capsys):
        assert main(["fig11"]) == 0
        assert "pipeline stages" in capsys.readouterr().out

    def test_fig12_runs(self, capsys):
        assert main(["fig12", "--counts", "1000", "1000000"]) == 0
        out = capsys.readouterr().out
        assert "1,000,000" in out

    def test_share_runs_small(self, capsys):
        code = main([
            "share", "--ccs", "cubic", "udp",
            "--bottleneck-gbps", "0.5", "--duration-ms", "20",
            "--flows", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "utilization" in out

    def test_fig8_runs_small(self, capsys):
        code = main([
            "fig8", "--flows", "4",
            "--bottleneck-gbps", "0.5", "--duration-ms", "20",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "PQ" in out and "AQ" in out
