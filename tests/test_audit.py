"""Tests for the conservation-law run auditor (repro.obs.audit).

Each invariant gets a synthetic event stream that (a) passes when the
bookkeeping is consistent and (b) trips exactly the right violation when
it is not. The integration half corrupts a real queue on purpose and
checks the auditor names ``queue_conservation``, and audits a clean
packet-level run end to end.
"""

import pytest

from repro.harness.scenarios import run_cc_pair
from repro.net.packet import make_data
from repro.obs import AuditError, RunAuditor, Telemetry, TraceEvent
from repro.obs.events import (
    EV_AGAP_UPDATE,
    EV_AQ_RATE,
    EV_DELIVER,
    EV_DEQUEUE,
    EV_DROP,
    EV_ENQUEUE,
    EV_GATE,
    EV_HOST_SEND,
    EV_RATE_LIMIT,
)
from repro.queues.fifo import PhysicalFifoQueue
from repro.units import gbps

SHORT = dict(bottleneck_bps=gbps(1), duration=40e-3, warmup=15e-3)


def feed(auditor, *events):
    for event in events:
        auditor.handle(event)


def invariants(auditor):
    return [v.invariant for v in auditor.violations]


# -- flow conservation -------------------------------------------------------------


class TestFlowConservation:
    def test_clean_ledger_passes(self):
        auditor = RunAuditor()
        feed(auditor,
             TraceEvent(EV_HOST_SEND, 0.0, node="h0", flow_id=1, size=1000),
             TraceEvent(EV_HOST_SEND, 0.1, node="h0", flow_id=1, size=1000),
             TraceEvent(EV_DELIVER, 0.2, node="h1", flow_id=1, size=1000),
             TraceEvent(EV_DROP, 0.3, node="q", flow_id=1, size=1000))
        assert auditor.finish() == []

    def test_delivering_more_than_injected_violates(self):
        auditor = RunAuditor()
        feed(auditor,
             TraceEvent(EV_HOST_SEND, 0.0, node="h0", flow_id=1, size=1000),
             TraceEvent(EV_DELIVER, 0.1, node="h1", flow_id=1, size=1000),
             TraceEvent(EV_DELIVER, 0.2, node="h1", flow_id=1, size=1000))
        assert invariants(auditor) == ["flow_conservation"]
        assert "exceed" in auditor.violations[0].message

    def test_aq_rate_limit_drop_counts_against_flow(self):
        auditor = RunAuditor()
        feed(auditor,
             TraceEvent(EV_HOST_SEND, 0.0, node="h0", flow_id=2, size=1000),
             TraceEvent(EV_RATE_LIMIT, 0.1, flow_id=2, aq_id=3, size=1000),
             TraceEvent(EV_RATE_LIMIT, 0.2, flow_id=2, aq_id=3, size=1000))
        assert invariants(auditor) == ["flow_conservation"]

    def test_shaper_rate_limit_is_pre_injection_and_excluded(self):
        auditor = RunAuditor()
        # A shaper discard (no aq_id) never entered the network, so it
        # must not count against the flow's in-flight ledger.
        feed(auditor,
             TraceEvent(EV_RATE_LIMIT, 0.1, node="shaper", flow_id=2,
                        size=1000, reason="shaper"))
        assert auditor.finish() == []

    def test_finish_flags_negative_remainder(self):
        auditor = RunAuditor()
        feed(auditor,
             TraceEvent(EV_HOST_SEND, 0.0, node="h0", flow_id=1, size=1000),
             TraceEvent(EV_DELIVER, 0.1, node="h1", flow_id=1, size=600),
             TraceEvent(EV_DROP, 0.2, node="q", flow_id=1, size=600))
        assert invariants(auditor) == ["flow_conservation"]
        assert auditor.finish() is auditor.violations  # idempotent


# -- queue conservation & occupancy ------------------------------------------------


class TestQueueInvariants:
    def test_consistent_backlog_passes(self):
        auditor = RunAuditor()
        feed(auditor,
             TraceEvent(EV_ENQUEUE, 0.0, node="q0", size=1000, value=1000.0),
             TraceEvent(EV_ENQUEUE, 0.1, node="q0", size=500, value=1500.0),
             TraceEvent(EV_DEQUEUE, 0.2, node="q0", size=1000, value=500.0),
             TraceEvent(EV_DEQUEUE, 0.3, node="q0", size=500, value=0.0))
        assert auditor.finish() == []

    def test_reported_backlog_mismatch_violates_once_then_reanchors(self):
        auditor = RunAuditor()
        feed(auditor,
             TraceEvent(EV_ENQUEUE, 0.0, node="q0", size=1000, value=1000.0),
             # The queue claims 2500B but only 2000B were ever enqueued.
             TraceEvent(EV_ENQUEUE, 0.1, node="q0", size=1000, value=2500.0),
             # Consistent with the *reported* anchor from here on.
             TraceEvent(EV_DEQUEUE, 0.2, node="q0", size=1000, value=1500.0))
        assert invariants(auditor) == ["queue_conservation"]

    def test_negative_backlog_violates_occupancy(self):
        auditor = RunAuditor()
        feed(auditor,
             TraceEvent(EV_DEQUEUE, 0.0, node="q0", size=1000, value=0.0))
        assert invariants(auditor) == ["queue_occupancy"]
        assert "negative" in auditor.violations[0].message

    def test_capacity_bound_enforced_when_registered(self):
        auditor = RunAuditor()
        auditor.register_queue_limit("q0", 1500)
        feed(auditor,
             TraceEvent(EV_ENQUEUE, 0.0, node="q0", size=1000, value=1000.0),
             TraceEvent(EV_ENQUEUE, 0.1, node="q0", size=1000, value=2000.0))
        assert invariants(auditor) == ["queue_occupancy"]
        assert "capacity" in auditor.violations[0].message

    def test_unnamed_queues_are_not_audited(self):
        auditor = RunAuditor()
        feed(auditor, TraceEvent(EV_DEQUEUE, 0.0, node="", size=1000, value=0.0))
        assert auditor.finish() == []


# -- A-Gap recurrence replay -------------------------------------------------------


class TestAgapRecurrence:
    RATE = 8e6  # bps -> drains 1e6 B/s

    def test_consistent_recurrence_passes(self):
        auditor = RunAuditor()
        feed(auditor,
             TraceEvent(EV_AQ_RATE, 0.0, aq_id=1, value=self.RATE),
             # gap: 0 -> +1000
             TraceEvent(EV_AGAP_UPDATE, 1e-3, aq_id=1, size=1000, value=1000.0),
             # drains 1000B in 1ms -> 0, then +1000
             TraceEvent(EV_AGAP_UPDATE, 2e-3, aq_id=1, size=1000, value=1000.0))
        assert auditor.finish() == []

    def test_wrong_reported_gap_violates(self):
        auditor = RunAuditor()
        feed(auditor,
             TraceEvent(EV_AQ_RATE, 0.0, aq_id=1, value=self.RATE),
             TraceEvent(EV_AGAP_UPDATE, 1e-3, aq_id=1, size=1000, value=1000.0),
             TraceEvent(EV_AGAP_UPDATE, 2e-3, aq_id=1, size=1000, value=5000.0))
        assert invariants(auditor) == ["agap_recurrence"]
        assert "Theorem 3.2" in auditor.violations[0].message

    def test_replay_adopts_reported_value_one_fault_one_violation(self):
        auditor = RunAuditor()
        feed(auditor,
             TraceEvent(EV_AQ_RATE, 0.0, aq_id=1, value=self.RATE),
             TraceEvent(EV_AGAP_UPDATE, 1e-3, aq_id=1, size=1000, value=5000.0),
             # Consistent with the adopted 5000B anchor: 5000 - 1000 + 1000.
             TraceEvent(EV_AGAP_UPDATE, 2e-3, aq_id=1, size=1000, value=5000.0))
        assert invariants(auditor) == ["agap_recurrence"]

    def test_rate_limit_undo_is_replayed(self):
        auditor = RunAuditor()
        feed(auditor,
             TraceEvent(EV_AQ_RATE, 0.0, aq_id=1, value=self.RATE),
             TraceEvent(EV_AGAP_UPDATE, 1e-3, aq_id=1, size=1000, value=1000.0),
             # Limit drop: the AQ takes the arrival back out of the gap.
             TraceEvent(EV_RATE_LIMIT, 1e-3, flow_id=1, aq_id=1, size=1000),
             # 0B gap drains to 0, next arrival lands on +1000.
             TraceEvent(EV_AGAP_UPDATE, 2e-3, aq_id=1, size=1000, value=1000.0))
        # Only the flow ledger (no host_send) would complain; filter for agap.
        assert "agap_recurrence" not in invariants(auditor)

    def test_updates_before_any_rate_are_not_checkable(self):
        auditor = RunAuditor()
        feed(auditor,
             TraceEvent(EV_AGAP_UPDATE, 1e-3, aq_id=1, size=1000, value=777.0))
        assert auditor.finish() == []


# -- work-conserving gate ----------------------------------------------------------


class TestGateWorkConservation:
    def test_consistent_decisions_pass(self):
        auditor = RunAuditor()
        feed(auditor,
             TraceEvent(EV_GATE, 0.0, node="s0.p0.wc-gate", size=1000,
                        value=500.0, reason="bypass"),
             TraceEvent(EV_GATE, 0.1, node="s0.p0.wc-gate", size=1000,
                        value=2000.0, reason="enforce"))
        assert auditor.finish() == []

    def test_enforce_below_threshold_violates(self):
        auditor = RunAuditor()
        feed(auditor,
             TraceEvent(EV_GATE, 0.0, node="s0.p0.wc-gate", size=1000,
                        value=500.0, reason="enforce"))
        assert invariants(auditor) == ["gate_work_conservation"]

    def test_bypass_above_threshold_violates(self):
        auditor = RunAuditor()
        feed(auditor,
             TraceEvent(EV_GATE, 0.0, node="s0.p0.wc-gate", size=1000,
                        value=2000.0, reason="bypass"))
        assert invariants(auditor) == ["gate_work_conservation"]


# -- fault attribution -------------------------------------------------------------


class TestFaultAttribution:
    def test_restart_drain_shrinks_derived_backlog(self):
        auditor = RunAuditor()
        feed(auditor,
             TraceEvent(EV_ENQUEUE, 0.0, node="q0", size=1000, value=1000.0),
             TraceEvent(EV_ENQUEUE, 0.1, node="q0", size=1000, value=2000.0),
             # A restart drains both buffered packets: each drop carries
             # the post-pop backlog, and the ledger must follow it down.
             TraceEvent(EV_DROP, 0.2, node="q0", size=1000, value=1000.0,
                        reason="switch_restart"),
             TraceEvent(EV_DROP, 0.2, node="q0", size=1000, value=0.0,
                        reason="switch_restart"),
             # Post-restart traffic re-verifies against the drained ledger.
             TraceEvent(EV_ENQUEUE, 0.3, node="q0", size=500, value=500.0))
        assert auditor.finish() == []
        assert auditor.fault_dropped_packets == {"switch_restart": 2}
        assert auditor.fault_dropped_bytes == {"switch_restart": 2000}

    def test_restart_drain_with_wrong_reported_backlog_violates(self):
        auditor = RunAuditor()
        feed(auditor,
             TraceEvent(EV_ENQUEUE, 0.0, node="q0", size=1000, value=1000.0),
             # The drain claims 700B remain, but history says 0.
             TraceEvent(EV_DROP, 0.1, node="q0", size=1000, value=700.0,
                        reason="switch_restart"))
        assert invariants(auditor) == ["queue_conservation"]

    def test_link_down_drops_are_attributed_but_not_queue_ops(self):
        auditor = RunAuditor()
        feed(auditor,
             TraceEvent(EV_HOST_SEND, 0.0, node="h0", flow_id=1, size=1000),
             # A link-down drop never sat in an audited queue: it must be
             # charged to the fault and to the flow, but not to a backlog.
             TraceEvent(EV_DROP, 0.1, node="s0->h1", flow_id=1, size=1000,
                        reason="link_down"))
        assert auditor.finish() == []
        assert auditor.fault_dropped_packets == {"link_down": 1}
        report = auditor.report()
        assert report["faults"]["attributed_dropped_bytes"] == {"link_down": 1000}
        assert report["flows"]["1"]["in_flight_bytes"] == 0

    def test_aq_state_lost_resets_recurrence_replay(self):
        from repro.obs.events import EV_FAULT

        auditor = RunAuditor()
        rate = 8e6  # drains 1e6 B/s
        feed(auditor,
             TraceEvent(EV_AQ_RATE, 0.0, aq_id=1, value=rate),
             TraceEvent(EV_AGAP_UPDATE, 1e-3, aq_id=1, size=1000, value=1000.0),
             # Registers wiped: the next update would be inconsistent with
             # the replay, but the reset makes it uncheckable until the
             # redeploy re-announces a rate.
             TraceEvent(EV_FAULT, 2e-3, aq_id=1, reason="aq_state_lost"),
             TraceEvent(EV_AGAP_UPDATE, 3e-3, aq_id=1, size=1000, value=1000.0),
             # Redeploy: replay restarts from scratch and checks again.
             TraceEvent(EV_AQ_RATE, 4e-3, aq_id=1, value=rate),
             TraceEvent(EV_AGAP_UPDATE, 5e-3, aq_id=1, size=1000, value=1000.0),
             TraceEvent(EV_AGAP_UPDATE, 6e-3, aq_id=1, size=1000, value=1000.0))
        assert auditor.finish() == []
        assert auditor.fault_events == {"aq_state_lost": 1}

    def test_report_omits_faults_section_on_fault_free_runs(self):
        auditor = RunAuditor()
        feed(auditor,
             TraceEvent(EV_HOST_SEND, 0.0, node="h0", flow_id=1, size=1000),
             TraceEvent(EV_DELIVER, 0.1, node="h1", flow_id=1, size=1000))
        assert "faults" not in auditor.report()


# -- machinery ---------------------------------------------------------------------


class TestAuditorMachinery:
    def test_strict_mode_raises_on_first_violation(self):
        auditor = RunAuditor(strict=True)
        with pytest.raises(AuditError, match="queue_occupancy"):
            auditor.handle(TraceEvent(EV_DEQUEUE, 0.0, node="q0",
                                      size=1000, value=0.0))

    def test_violation_carries_event_window(self):
        auditor = RunAuditor(window=4)
        for i in range(6):
            auditor.handle(TraceEvent(EV_ENQUEUE, i * 0.1, node="q0",
                                      size=100, value=float((i + 1) * 100)))
        auditor.handle(TraceEvent(EV_DEQUEUE, 0.9, node="q0",
                                  size=100, value=9999.0))
        violation = auditor.violations[0]
        assert violation.invariant == "queue_conservation"
        assert len(violation.window) == 4
        assert violation.window[-1]["value"] == 9999.0
        assert violation.to_dict()["subject"] == "q0"

    def test_max_violations_caps_accumulation(self):
        auditor = RunAuditor(max_violations=3)
        for i in range(10):
            auditor.handle(TraceEvent(EV_DEQUEUE, i * 0.1, node=f"q{i}",
                                      size=100, value=None))
        assert len(auditor.violations) == 3

    def test_report_is_json_safe_summary(self):
        import json

        auditor = RunAuditor()
        feed(auditor,
             TraceEvent(EV_HOST_SEND, 0.0, node="h0", flow_id=1, size=1000),
             TraceEvent(EV_DELIVER, 0.1, node="h1", flow_id=1, size=1000))
        report = auditor.report()
        assert report["events_seen"] == 2
        assert report["violation_count"] == 0
        assert report["flows"]["1"]["in_flight_bytes"] == 0
        json.dumps(report)  # must serialize


# -- integration -------------------------------------------------------------------


class _PilferingQueue(PhysicalFifoQueue):
    """Test-only corruption: silently steals one queued packet — no trace
    event, no stats — so the reported backlog diverges from the
    enqueue/dequeue history by exactly one packet."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._stolen = False

    def dequeue(self, now):
        packet = super().dequeue(now)
        if not self._stolen and self._queue:
            victim = self._queue.popleft()
            self._bytes -= victim.size
            self._stolen = True
        return packet


class TestAuditIntegration:
    def test_corrupted_queue_is_caught_with_correct_invariant(self):
        tele = Telemetry()
        auditor = tele.enable_audit()
        queue = _PilferingQueue(limit_bytes=1 << 20, name="evil.q0",
                                telemetry=tele)
        for i in range(4):
            queue.enqueue(make_data("h0", "h1", flow_id=1, seq=i * 1000,
                                    size=1000), now=i * 1e-4)
        while queue.dequeue(now=1e-3) is not None:
            pass
        assert invariants(auditor) == ["queue_conservation"]
        violation = auditor.violations[0]
        assert violation.subject == "evil.q0"
        assert "enqueue/dequeue history" in violation.message

    def test_clean_aq_run_audits_clean(self):
        tele = Telemetry()
        auditor = tele.enable_audit()
        with tele.activate():
            run_cc_pair("dctcp", 2, "udp", 1, "aq", **SHORT)
        tele.close()
        assert auditor.events_seen > 10_000
        assert auditor.finish() == []

    def test_clean_pq_run_audits_clean(self):
        tele = Telemetry()
        auditor = tele.enable_audit()
        with tele.activate():
            run_cc_pair("cubic", 2, "udp", 1, "pq", **SHORT)
        tele.close()
        assert auditor.finish() == []
