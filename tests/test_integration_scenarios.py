"""End-to-end integration tests: the paper's headline behaviours at small
scale (each run is a full packet-level simulation)."""

import pytest

from repro.harness.common import EntitySpec
from repro.harness.scenarios import (
    run_cc_pair,
    run_cc_preservation,
    run_limit_ablation,
    run_longlived_share,
    run_two_entity_fairness,
    run_udp_tcp_timeline,
    run_vm_profile,
)
from repro.units import MTU_BYTES, gbps

BOTTLENECK = gbps(1)
SHORT = dict(bottleneck_bps=BOTTLENECK, duration=40e-3, warmup=15e-3)


class TestApplicationIsolation:
    def test_udp_starves_tcp_under_pq(self):
        result = run_cc_pair("cubic", 2, "udp", 1, "pq", **SHORT)
        assert result.rates_bps["B"] > 0.8 * BOTTLENECK
        assert result.rates_bps["A"] < 0.1 * BOTTLENECK

    def test_aq_protects_tcp_from_udp(self):
        result = run_cc_pair("cubic", 2, "udp", 1, "aq", **SHORT)
        assert result.rates_bps["A"] > 0.35 * BOTTLENECK
        assert result.rates_bps["B"] < 0.6 * BOTTLENECK

    def test_aq_weighted_split(self):
        entities = [
            EntitySpec(name="A", cc="cubic", num_flows=2, weight=1.0),
            EntitySpec(name="B", cc="cubic", num_flows=2, weight=3.0),
        ]
        result = run_longlived_share(entities, "aq", **SHORT)
        ratio = result.rates_bps["B"] / result.rates_bps["A"]
        assert 2.2 < ratio < 4.5

    def test_flow_count_does_not_buy_bandwidth_under_aq(self):
        result = run_cc_pair("cubic", 1, "cubic", 8, "aq", **SHORT)
        assert result.ratio("A", "B") > 0.7

    def test_aq_full_utilization(self):
        result = run_cc_pair("cubic", 2, "cubic", 2, "aq", **SHORT)
        assert result.utilization > 0.85


class TestCcCoexistence:
    def test_dctcp_starves_cubic_under_pq(self):
        result = run_cc_pair("cubic", 3, "dctcp", 3, "pq", **SHORT)
        assert result.rates_bps["B"] > 3 * result.rates_bps["A"]

    def test_aq_isolates_cubic_from_dctcp(self):
        result = run_cc_pair("cubic", 3, "dctcp", 3, "aq", **SHORT)
        assert result.ratio("A", "B") > 0.75

    def test_swift_starved_under_pq(self):
        result = run_cc_pair(
            "cubic", 3, "swift", 3, "pq",
            bottleneck_bps=BOTTLENECK, duration=60e-3, warmup=25e-3,
        )
        assert result.rates_bps["B"] < 0.3 * BOTTLENECK

    def test_aq_gives_swift_its_share(self):
        # Swift converges more slowly at low allocated rates; give it time.
        result = run_cc_pair(
            "cubic", 3, "swift", 3, "aq",
            bottleneck_bps=BOTTLENECK, duration=60e-3, warmup=25e-3,
        )
        assert result.ratio("A", "B") > 0.7


class TestVmProfiles:
    def test_prl_violates_inbound(self):
        result = run_vm_profile(
            "prl", link_rate_bps=gbps(1), profile_rate_bps=gbps(0.2),
            duration=0.08,
        )
        assert result.inbound_mean_bps > 2.2 * gbps(0.2)
        assert result.outbound_mean_bps < 1.25 * gbps(0.2)

    def test_aq_enforces_both_directions(self):
        result = run_vm_profile(
            "aq", link_rate_bps=gbps(1), profile_rate_bps=gbps(0.2),
            duration=0.08,
        )
        assert 0.6 * gbps(0.2) < result.inbound_mean_bps < 1.35 * gbps(0.2)
        assert 0.6 * gbps(0.2) < result.outbound_mean_bps < 1.35 * gbps(0.2)

    def test_pq_ignores_profile(self):
        result = run_vm_profile(
            "pq", link_rate_bps=gbps(1), profile_rate_bps=gbps(0.2),
            duration=0.08,
        )
        assert result.inbound_mean_bps > 2 * gbps(0.2)


class TestCompletionTimeFamily:
    def test_aq_entity_fairness_near_one(self):
        result = run_two_entity_fairness(
            2, "aq", volume_bytes=4_000_000, bottleneck_bps=BOTTLENECK,
            max_sim_time=10.0,
        )
        assert result.fairness() > 0.8

    def test_prl_unfair_with_many_vms(self):
        result = run_two_entity_fairness(
            4, "prl", volume_bytes=4_000_000, bottleneck_bps=BOTTLENECK,
            max_sim_time=10.0,
        )
        # B (4 VMs behind fixed slices) finishes later than A.
        assert result.wct["B"] > result.wct["A"]


class TestPreservation:
    def test_cubic_behaviour_preserved(self):
        pq = run_cc_preservation(
            "cubic", use_aq=False, allocated_bps=gbps(0.5),
            capacity_bps=gbps(2), duration=50e-3, warmup=20e-3,
        )
        aq = run_cc_preservation(
            "cubic", use_aq=True, allocated_bps=gbps(0.5),
            capacity_bps=gbps(2), duration=50e-3, warmup=20e-3,
        )
        assert aq.throughput_bps == pytest.approx(pq.throughput_bps, rel=0.1)
        assert aq.delay_p95 == pytest.approx(pq.delay_p95, rel=0.5)


class TestTimeline:
    def test_aq_reallocation_follows_membership(self):
        result = run_udp_tcp_timeline("aq", bottleneck_bps=BOTTLENECK, phase=20e-3)
        solo = result.rates_in_window["phase0"]["T1"]
        shared = result.rates_in_window["phase3"]["T1"]
        assert solo > 1.5 * shared  # T1 yields as others join
        udp_phase = result.rates_in_window["phase4"]
        assert udp_phase["U"] < 0.4 * BOTTLENECK  # UDP held to ~1/5


class TestLimitAblation:
    def test_small_limit_caps_achieved_rate(self):
        results = run_limit_ablation(
            [3 * MTU_BYTES, 120 * MTU_BYTES],
            allocated_bps=gbps(0.5), capacity_bps=gbps(2),
            duration=40e-3, warmup=15e-3,
        )
        assert results[0].rate_bps < results[1].rate_bps
