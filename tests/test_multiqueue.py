"""Tests for the multi-queue port and the Section 2.2 queue-shortage
argument."""

import pytest

from repro.errors import ConfigurationError
from repro.net.packet import make_udp
from repro.queues.multiqueue import MultiQueuePort, STRICT_PRIORITY
from repro.topology.dumbbell import Dumbbell, DumbbellConfig
from repro.transport.udp import UdpFlow
from repro.units import gbps


def pkt(flow=1, size=1000, aq_id=0):
    packet = make_udp("a", "b", flow, size)
    packet.aq_ingress_id = aq_id
    return packet


class TestClassification:
    def test_same_entity_same_queue(self):
        port = MultiQueuePort(num_queues=4, limit_bytes_per_queue=10_000)
        a = port.queue_of(pkt(aq_id=9))
        b = port.queue_of(pkt(flow=99, aq_id=9))
        assert a == b

    def test_entities_collide_when_outnumbering_queues(self):
        # The paper's pigeonhole: more entities than queues forces sharing.
        port = MultiQueuePort(num_queues=4, limit_bytes_per_queue=10_000)
        queues_used = {port.queue_of(pkt(aq_id=i)) for i in range(1, 17)}
        assert len(queues_used) <= 4

    def test_custom_classifier(self):
        port = MultiQueuePort(
            num_queues=2, limit_bytes_per_queue=10_000,
            classifier=lambda p: 0 if p.size < 500 else 1,
        )
        assert port.queue_of(pkt(size=100)) == 0
        assert port.queue_of(pkt(size=1000)) == 1

    def test_bad_classifier_caught(self):
        port = MultiQueuePort(
            num_queues=2, limit_bytes_per_queue=10_000,
            classifier=lambda p: 7,
        )
        with pytest.raises(ConfigurationError):
            port.enqueue(pkt(), 0.0)


class TestSchedulers:
    def test_round_robin_alternates(self):
        port = MultiQueuePort(
            num_queues=2, limit_bytes_per_queue=100_000,
            classifier=lambda p: p.flow_id % 2,
        )
        for _ in range(4):
            port.enqueue(pkt(flow=0), 0.0)
            port.enqueue(pkt(flow=1), 0.0)
        served = [port.dequeue(0.0).flow_id for _ in range(8)]
        assert served.count(0) == 4 and served.count(1) == 4
        # Both queues get service early (no starvation runs).
        assert set(served[:4]) == {0, 1}

    def test_weighted_round_robin(self):
        port = MultiQueuePort(
            num_queues=2, limit_bytes_per_queue=1_000_000,
            classifier=lambda p: p.flow_id % 2,
            weights=[3.0, 1.0],
        )
        for _ in range(40):
            port.enqueue(pkt(flow=0), 0.0)
            port.enqueue(pkt(flow=1), 0.0)
        served = [port.dequeue(0.0).flow_id for _ in range(24)]
        assert served.count(0) == pytest.approx(18, abs=3)

    def test_strict_priority_serves_queue_zero_first(self):
        port = MultiQueuePort(
            num_queues=2, limit_bytes_per_queue=100_000,
            classifier=lambda p: p.flow_id % 2,
            scheduler=STRICT_PRIORITY,
        )
        for _ in range(3):
            port.enqueue(pkt(flow=1), 0.0)  # low priority (queue 1)
            port.enqueue(pkt(flow=0), 0.0)  # high priority (queue 0)
        first_three = [port.dequeue(0.0).flow_id for _ in range(3)]
        assert first_three == [0, 0, 0]

    def test_empty_port(self):
        port = MultiQueuePort(num_queues=3, limit_bytes_per_queue=1000)
        assert port.dequeue(0.0) is None
        assert port.bytes_queued == 0

    def test_per_queue_drop_isolation(self):
        port = MultiQueuePort(
            num_queues=2, limit_bytes_per_queue=2000,
            classifier=lambda p: p.flow_id % 2,
        )
        assert port.enqueue(pkt(flow=0), 0.0)
        assert port.enqueue(pkt(flow=0), 0.0)
        assert not port.enqueue(pkt(flow=0), 0.0)  # queue 0 full
        assert port.enqueue(pkt(flow=1), 0.0)  # queue 1 fine

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MultiQueuePort(num_queues=0, limit_bytes_per_queue=1000)
        with pytest.raises(ConfigurationError):
            MultiQueuePort(num_queues=2, limit_bytes_per_queue=1000,
                           scheduler="lottery")
        with pytest.raises(ConfigurationError):
            MultiQueuePort(num_queues=2, limit_bytes_per_queue=1000,
                           weights=[1.0])


class TestQueueShortageArgument:
    def test_colliding_entities_interfere_despite_multiqueue(self):
        """Section 2.2: with entities sharing a queue (pigeonhole), a UDP
        entity colliding with a victim still starves it, while entities in
        other queues are protected — multiple queues are necessary but not
        sufficient."""
        dumbbell = Dumbbell(
            DumbbellConfig(num_left=3, num_right=3, bottleneck_rate_bps=gbps(1))
        )
        port = dumbbell.bottleneck_port
        # Two physical queues; entities 1 and 3 collide on queue 1 (odd),
        # entity 2 sits alone on queue 0.
        port.queue = MultiQueuePort(
            num_queues=2, limit_bytes_per_queue=100 * 1500,
            classifier=lambda p: p.aq_ingress_id % 2,
        )
        port.transmitter.queue = port.queue
        victim = UdpFlow(dumbbell.network, "h-l0", "h-r0",
                         rate_bps=gbps(0.4), aq_ingress_id=1)
        protected = UdpFlow(dumbbell.network, "h-l1", "h-r1",
                            rate_bps=gbps(0.4), aq_ingress_id=2)
        UdpFlow(dumbbell.network, "h-l2", "h-r2",
                rate_bps=gbps(1.0), aq_ingress_id=3)
        dumbbell.network.run(until=0.05)
        victim_rate = victim.sink.delivered_bytes * 8 / 0.05
        protected_rate = protected.sink.delivered_bytes * 8 / 0.05
        # The protected entity (own queue) keeps its demand; the victim
        # (sharing with the blaster) loses a big chunk of its 0.4G.
        assert protected_rate > 0.9 * gbps(0.4)
        assert victim_rate < 0.8 * gbps(0.4)
