"""Tests for the unified telemetry subsystem (repro.obs).

Covers the metrics registry, trace events and sinks, the telemetry
facade's ambient activation, the sim-loop profiler, the O(1) pending-
event counter, and — the load-bearing part — *reconstruction*: the
TraceBus event stream must tally to exactly the counts the components'
own authoritative stats report for a real packet-level scenario.
"""

import io
import json

import pytest

from repro.errors import ConfigurationError
from repro.harness.scenarios import run_cc_pair
from repro.obs import (
    ALL_EVENT_TYPES,
    AUDIT_EVENT_TYPES,
    CORE_EVENT_TYPES,
    EV_CWND_CHANGE,
    EV_DEQUEUE,
    EV_DROP,
    EV_ECN_MARK,
    EV_ENQUEUE,
    JsonlSink,
    MetricsRegistry,
    RingBufferSink,
    SimProfiler,
    SummarySink,
    Telemetry,
    TraceBus,
    TraceEvent,
    get_active_telemetry,
    read_jsonl,
)
from repro.sim.engine import Simulator
from repro.units import gbps

SHORT = dict(bottleneck_bps=gbps(1), duration=40e-3, warmup=15e-3)


# -- metrics registry --------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        a = reg.counter("pkts", port="p0")
        b = reg.counter("pkts", port="p0")
        c = reg.counter("pkts", port="p1")
        assert a is b
        assert a is not c
        assert len(reg) == 2

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        a = reg.counter("x", aq_id=1, port="p0")
        b = reg.counter("x", port="p0", aq_id=1)
        assert a is b

    def test_counter_rejects_decrease(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.counter("pkts").inc(-1)

    def test_value_sums_matching_series(self):
        reg = MetricsRegistry()
        reg.counter("drops", port="p0").inc(3)
        reg.counter("drops", port="p1").inc(4)
        assert reg.value("drops") == 7
        assert reg.value("drops", port="p1") == 4

    def test_value_unknown_metric_raises(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.value("nope")

    def test_collector_runs_only_at_snapshot(self):
        reg = MetricsRegistry()
        calls = []
        reg.add_collector(lambda r: calls.append(r.counter("c").set(42)))
        assert calls == []
        snap = reg.snapshot()
        assert len(calls) == 1
        assert snap["counters"][0] == {"name": "c", "labels": {}, "value": 42.0}

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        hist = reg.histogram("delay", queue="q0")
        hist.observe_many([1.0, 2.0, 3.0, 4.0])
        s = hist.summary()
        assert s["count"] == 4
        assert s["min"] == 1.0 and s["max"] == 4.0
        assert s["mean"] == pytest.approx(2.5)
        assert s["p50"] == pytest.approx(2.5)

    def test_empty_histogram_summary(self):
        assert MetricsRegistry().histogram("h").summary() == {"count": 0}

    def test_snapshot_round_trips_through_json(self):
        reg = MetricsRegistry()
        reg.counter("n", x=1).inc(5)
        reg.gauge("g").set(2.5)
        reg.histogram("h").observe(1.0)
        restored = json.loads(reg.to_json())
        assert restored == reg.snapshot(run_collectors=False)


# -- trace events & sinks ----------------------------------------------------------


class TestTraceEvent:
    def test_to_dict_omits_none_fields(self):
        event = TraceEvent(EV_DROP, 1.5, node="s0.p0", size=1500)
        assert event.to_dict() == {
            "type": "drop", "time": 1.5, "node": "s0.p0", "size": 1500,
        }

    def test_dict_round_trip(self):
        event = TraceEvent(EV_CWND_CHANGE, 0.25, node="tcp", flow_id=7, value=14600.0)
        clone = TraceEvent.from_dict(event.to_dict())
        assert clone.to_dict() == event.to_dict()

    def test_core_vocabulary_has_seven_types(self):
        assert len(CORE_EVENT_TYPES) == 7
        assert len(set(CORE_EVENT_TYPES)) == 7

    def test_full_vocabulary_is_core_plus_audit_plus_fault_plus_fluid(self):
        from repro.obs import FAULT_EVENT_TYPES, FLUID_EVENT_TYPES

        assert ALL_EVENT_TYPES == (
            CORE_EVENT_TYPES + AUDIT_EVENT_TYPES + FAULT_EVENT_TYPES
            + FLUID_EVENT_TYPES
        )
        assert len(ALL_EVENT_TYPES) == 13
        assert len(set(ALL_EVENT_TYPES)) == 13

    def test_reason_field_round_trips(self):
        event = TraceEvent(EV_DROP, 0.1, node="s0.p0", size=1500, reason="red")
        assert event.to_dict()["reason"] == "red"
        assert TraceEvent.from_dict(event.to_dict()).reason == "red"
        # And absent reasons stay absent, not null.
        assert "reason" not in TraceEvent(EV_DROP, 0.1).to_dict()


class TestSinks:
    def _events(self, n):
        return [TraceEvent(EV_ENQUEUE, i * 1e-3, node="q", size=100) for i in range(n)]

    def test_ring_buffer_truncates_and_counts_dropped(self):
        ring = RingBufferSink(capacity=3)
        for event in self._events(5):
            ring.handle(event)
        assert ring.total_seen == 5
        assert len(ring.events) == 3
        assert ring.dropped == 2
        # The survivors are the most recent three.
        assert [e.time for e in ring.events] == pytest.approx([2e-3, 3e-3, 4e-3])

    def test_ring_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            RingBufferSink(capacity=0)

    def test_ring_of_type_filters(self):
        ring = RingBufferSink()
        ring.handle(TraceEvent(EV_ENQUEUE, 0.0))
        ring.handle(TraceEvent(EV_DROP, 1.0))
        assert [e.type for e in ring.of_type(EV_DROP)] == ["drop"]

    def test_jsonl_round_trip_through_file(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlSink(path)
        originals = self._events(4)
        for event in originals:
            sink.handle(event)
        sink.close()
        restored = list(read_jsonl(path))
        assert len(restored) == 4
        assert [e.to_dict() for e in restored] == [e.to_dict() for e in originals]

    def test_jsonl_borrowed_stream_not_closed(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        sink.handle(TraceEvent(EV_DROP, 0.5))
        sink.close()
        assert not buf.closed
        assert json.loads(buf.getvalue()) == {"type": "drop", "time": 0.5}

    def test_read_jsonl_bad_line_reports_lineno(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type":"drop","time":0}\nnot json\n')
        with pytest.raises(ConfigurationError, match="2"):
            list(read_jsonl(str(path)))

    def test_read_jsonl_tolerant_mode_skips_bad_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"type":"drop","time":0}\n'
            "not json\n"
            '{"time":1}\n'          # missing required field
            '{"type":"drop","time":2}\n'
            '{"type":"drop","time":'  # truncated final line
        )
        skipped = []
        events = list(read_jsonl(
            str(path), strict=False,
            on_skip=lambda lineno, problem: skipped.append(lineno),
        ))
        assert [e.time for e in events] == [0, 2]
        assert skipped == [2, 3, 5]

    def test_read_jsonl_tolerant_mode_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert list(read_jsonl(str(path), strict=False)) == []

    def test_summary_sink_tallies(self):
        summary = SummarySink()
        summary.handle(TraceEvent(EV_DROP, 1.0, node="q0", size=100))
        summary.handle(TraceEvent(EV_DROP, 2.0, node="q1", aq_id=3, size=200))
        summary.handle(TraceEvent(EV_ECN_MARK, 3.0, aq_id=3))
        assert summary.count(EV_DROP) == 2
        assert summary.count(EV_DROP, node="q0") == 1
        assert summary.count(EV_ECN_MARK, aq_id=3) == 1
        assert summary.bytes_by_type[EV_DROP] == 300
        assert summary.first_time == 1.0 and summary.last_time == 3.0

    def test_bus_fans_out_and_detaches(self):
        bus = TraceBus()
        ring = bus.attach(RingBufferSink())
        summary = bus.attach(SummarySink())
        bus.emit_fields(EV_DROP, 0.1, node="q")
        bus.detach(ring)
        bus.emit_fields(EV_DROP, 0.2, node="q")
        assert bus.events_published == 2
        assert len(ring.events) == 1
        assert summary.count(EV_DROP) == 2


# -- telemetry facade --------------------------------------------------------------


class TestTelemetryFacade:
    def test_disabled_by_default(self):
        tele = Telemetry()
        assert not tele.enabled
        assert tele.profiler is None

    def test_simulator_gets_fresh_disabled_telemetry(self):
        sim = Simulator()
        assert sim.telemetry is not None
        assert not sim.telemetry.enabled

    def test_activate_installs_ambient_telemetry(self):
        tele = Telemetry(enabled=True)
        assert get_active_telemetry() is None
        with tele.activate():
            assert get_active_telemetry() is tele
            sim = Simulator()
            assert sim.telemetry is tele
        assert get_active_telemetry() is None
        # Simulators built outside the block do not share it.
        assert Simulator().telemetry is not tele

    def test_activate_nests(self):
        outer, inner = Telemetry(enabled=True), Telemetry(enabled=True)
        with outer.activate():
            with inner.activate():
                assert get_active_telemetry() is inner
            assert get_active_telemetry() is outer

    def test_explicit_telemetry_wins_over_ambient(self):
        ambient, explicit = Telemetry(enabled=True), Telemetry(enabled=True)
        with ambient.activate():
            assert Simulator(telemetry=explicit).telemetry is explicit

    def test_enable_profiling_is_idempotent(self):
        tele = Telemetry()
        prof = tele.enable_profiling()
        assert tele.enable_profiling() is prof


# -- profiler & engine instrumentation ---------------------------------------------


class TestProfiler:
    def test_profiled_run_records_sites(self):
        tele = Telemetry(enabled=True, profile=True)
        sim = Simulator(telemetry=tele)
        def tick():
            pass
        for i in range(5):
            sim.schedule_at(i * 1e-3, tick)
        sim.run()
        prof = tele.profiler
        assert prof.events_executed == 5
        assert prof.run_calls == 1
        assert prof.wall_time > 0
        sites = dict((site, calls) for site, _, calls in prof.hotspots())
        assert sites.get("TestProfiler.test_profiled_run_records_sites.<locals>.tick") == 5

    def test_snapshot_includes_pending_events(self):
        tele = Telemetry(enabled=True, profile=True)
        sim = Simulator(telemetry=tele)
        sim.schedule_at(1.0, lambda: None)
        snap = tele.profiler.snapshot(sim)
        assert snap["pending_events"] == 1
        assert snap["next_event_time"] == 1.0

    def test_render_mentions_hotspots(self):
        tele = Telemetry(enabled=True, profile=True)
        sim = Simulator(telemetry=tele)
        sim.schedule_at(0.0, lambda: None)
        sim.run()
        text = tele.profiler.render(sim)
        assert "events executed : 1" in text
        assert "pending events  : 0" in text

    def test_site_name_falls_back_to_repr(self):
        class NoQualname:
            __slots__ = ()
            def __call__(self):
                pass
        name = SimProfiler.site_name(NoQualname())
        assert "NoQualname" in name


class TestPendingEventsCounter:
    def test_counts_scheduled_and_executed(self):
        sim = Simulator()
        events = [sim.schedule_at(t * 1e-3, lambda: None) for t in range(4)]
        assert sim.pending_events() == 4
        sim.run(until=1.5e-3)
        assert sim.pending_events() == 2
        del events

    def test_cancel_decrements_once(self):
        sim = Simulator()
        event = sim.schedule_at(1.0, lambda: None)
        assert sim.pending_events() == 1
        event.cancel()
        assert sim.pending_events() == 0
        event.cancel()  # double-cancel must not go negative
        assert sim.pending_events() == 0

    def test_cancel_after_execution_is_noop(self):
        sim = Simulator()
        event = sim.schedule_at(0.0, lambda: None)
        sim.run()
        assert sim.pending_events() == 0
        event.cancel()
        assert sim.pending_events() == 0

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        first = sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        first.cancel()
        assert sim.peek_time() == 2.0
        assert sim.pending_events() == 1


# -- reconstruction: trace stream vs component counters ----------------------------


class TestReconstruction:
    """The event stream must tally to exactly what the components counted.

    The metrics registry mirrors each component's authoritative stats
    object (switch ports, queues, AQs, transports), so agreement between
    SummarySink tallies and registry sums proves the TraceBus saw every
    drop/mark/enqueue the components recorded — no double counting, no
    missed emission sites.
    """

    @pytest.fixture(scope="class")
    def traced_aq_run(self):
        tele = Telemetry(enabled=True)
        summary = tele.add_summary()
        with tele.activate():
            result = run_cc_pair("dctcp", 2, "udp", 1, "aq", **SHORT)
        tele.metrics.collect()
        return tele, summary, result

    def test_enqueue_dequeue_match_queue_counters(self, traced_aq_run):
        tele, summary, _ = traced_aq_run
        assert summary.count(EV_ENQUEUE) == tele.metrics.value("queue_enqueued_packets")
        assert summary.count(EV_DEQUEUE) == tele.metrics.value("queue_dequeued_packets")
        assert summary.count(EV_ENQUEUE) > 1000  # a real run, not a trickle

    def test_agap_updates_match_aq_arrivals(self, traced_aq_run):
        tele, summary, _ = traced_aq_run
        assert summary.count("agap_update") == tele.metrics.value("aq_arrived_packets")

    def test_ecn_marks_match_mark_counters(self, traced_aq_run):
        tele, summary, _ = traced_aq_run
        marks = tele.metrics.value("aq_marked_packets") + tele.metrics.value(
            "queue_ecn_marked_packets"
        )
        assert summary.count(EV_ECN_MARK) == marks
        assert summary.count(EV_ECN_MARK) > 0  # DCTCP under AQ must mark

    def test_rate_limit_events_match_aq_drops(self, traced_aq_run):
        tele, summary, _ = traced_aq_run
        assert summary.count("rate_limit") == tele.metrics.value("aq_dropped_packets")
        assert summary.count("rate_limit") > 0  # UDP overdrives its share

    def test_cwnd_changes_traced_per_flow(self, traced_aq_run):
        _, summary, _ = traced_aq_run
        assert summary.count(EV_CWND_CHANGE) > 0

    def test_trace_respects_run_duration(self, traced_aq_run):
        _, summary, result = traced_aq_run
        assert summary.first_time >= 0.0
        assert summary.last_time <= result.duration + 1e-9

    def test_physical_drops_match_queue_counters_under_pq(self):
        tele = Telemetry(enabled=True)
        summary = tele.add_summary()
        ring = tele.add_ring(200_000)
        with tele.activate():
            run_cc_pair("cubic", 2, "udp", 1, "pq", **SHORT)
        tele.metrics.collect()
        assert summary.count(EV_DROP) == tele.metrics.value("queue_dropped_packets")
        assert summary.count(EV_DROP) > 0  # UDP at line rate overflows the port
        # Satellite: every drop is attributed — a reason label on the event
        # and a matching per-reason metric series that sums to the total.
        drop_reasons = {e.reason for e in ring.of_type(EV_DROP)}
        assert drop_reasons and None not in drop_reasons
        assert drop_reasons <= {"buffer", "red", "no_queue"}
        per_reason = sum(
            tele.metrics.value("queue_dropped_packets", reason=reason)
            for reason in drop_reasons
        )
        assert per_reason == summary.count(EV_DROP)

    def test_disabled_telemetry_emits_nothing(self):
        tele = Telemetry(enabled=False)
        summary = tele.add_summary()
        with tele.activate():
            run_cc_pair("cubic", 1, "udp", 1, "pq", **SHORT)
        assert sum(summary.by_type.values()) == 0
        assert tele.trace.events_published == 0


# -- CLI round trip ----------------------------------------------------------------


class TestCliTelemetry:
    def test_share_writes_trace_and_snapshot_then_summarizes(self, tmp_path, capsys):
        from repro.cli import main

        trace = str(tmp_path / "run.jsonl")
        code = main([
            "share", "--ccs", "dctcp", "cubic", "udp",
            "--bottleneck-gbps", "0.5", "--duration-ms", "20", "--flows", "1",
            "--telemetry", trace, "--metrics-summary", "--profile",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "sim-loop profile" in out
        assert "metric" in out  # the metrics-summary table

        events = list(read_jsonl(trace))
        assert events, "JSONL trace must not be empty"
        seen = {e.type for e in events}
        for expected in CORE_EVENT_TYPES:
            assert expected in seen, f"missing {expected} events in trace"

        metrics_path = tmp_path / "run.metrics.json"
        assert metrics_path.exists()
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["counters"], "metrics snapshot has no counters"

        assert main(["telemetry", "summarize", trace]) == 0
        out = capsys.readouterr().out
        assert "enqueue" in out
        assert "total" in out

    def test_summarize_tolerates_corrupt_and_empty_traces(self, tmp_path, capsys):
        """Satellite: summarize must not crash on truncated or garbage
        JSONL — skip bad lines with a warning; non-zero exit is reserved
        for unreadable files."""
        from repro.cli import main

        corrupt = tmp_path / "corrupt.jsonl"
        corrupt.write_text(
            '{"type":"enqueue","time":0,"size":100}\n'
            "garbage\n"
            '{"type":"dequeue","time":1,"size":100}\n'
            '{"type":"drop","ti'  # truncated mid-write
        )
        assert main(["telemetry", "summarize", str(corrupt)]) == 0
        captured = capsys.readouterr()
        assert "enqueue" in captured.out
        assert "2 bad line(s) skipped" in captured.err
        assert "corrupt.jsonl:2" in captured.err

        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["telemetry", "summarize", str(empty)]) == 0
        assert "total" in capsys.readouterr().out  # a valid zero-event run

    def test_summarize_missing_file_fails(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["telemetry", "summarize", str(tmp_path / "nope.jsonl")]) == 1
        assert "cannot read trace" in capsys.readouterr().err
