"""Tests for the A-Gap math (paper Section 3.2-3.3) — including
property-based checks of Theorem 3.2's streaming recurrence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.agap import (
    AGapTracker,
    DGapTracker,
    agap_reference,
    simulate_discrepancy_control,
)
from repro.errors import ConfigurationError

GBPS = 1e9


class TestAGapBasics:
    def test_starts_at_zero(self):
        tracker = AGapTracker(rate_bps=GBPS)
        assert tracker.gap == 0.0

    def test_first_packet_sets_gap_to_its_size(self):
        tracker = AGapTracker(rate_bps=GBPS)
        assert tracker.on_arrival(0.0, 1500) == 1500

    def test_gap_drains_at_allocated_rate(self):
        tracker = AGapTracker(rate_bps=8e9)  # 1 GB/s
        tracker.on_arrival(0.0, 10_000)
        # After 5 us, 5000 bytes drained; new packet adds 1000.
        assert tracker.on_arrival(5e-6, 1000) == pytest.approx(6000)

    def test_gap_clamped_at_zero_between_packets(self):
        tracker = AGapTracker(rate_bps=8e9)
        tracker.on_arrival(0.0, 1000)
        # 1 ms is far more than enough to drain 1000 bytes.
        assert tracker.on_arrival(1e-3, 500) == pytest.approx(500)

    def test_arrival_rate_above_r_grows_gap(self):
        tracker = AGapTracker(rate_bps=8e6)  # 1 MB/s
        gaps = [tracker.on_arrival(i * 1e-3, 1500) for i in range(10)]
        assert gaps == sorted(gaps)
        assert gaps[-1] > gaps[0]

    def test_arrival_rate_at_r_keeps_gap_constant(self):
        # One 1000-byte packet per ms at exactly 1000 bytes/ms.
        tracker = AGapTracker(rate_bps=8e6)
        gaps = [tracker.on_arrival(i * 1e-3, 1000) for i in range(1, 20)]
        assert all(g == pytest.approx(1000) for g in gaps)

    def test_peek_does_not_mutate(self):
        tracker = AGapTracker(rate_bps=8e9)
        tracker.on_arrival(0.0, 10_000)
        peeked = tracker.peek(1e-6)
        assert peeked == pytest.approx(9000)
        assert tracker.gap == 10_000
        assert tracker.last_time == 0.0

    def test_undo_arrival_removes_contribution(self):
        tracker = AGapTracker(rate_bps=GBPS)
        tracker.on_arrival(0.0, 1500)
        tracker.undo_arrival(1500)
        assert tracker.gap == 0.0

    def test_undo_never_goes_negative(self):
        tracker = AGapTracker(rate_bps=GBPS)
        tracker.on_arrival(0.0, 100)
        tracker.undo_arrival(1500)
        assert tracker.gap == 0.0

    def test_time_cannot_go_backwards(self):
        tracker = AGapTracker(rate_bps=GBPS)
        tracker.on_arrival(1.0, 100)
        with pytest.raises(ConfigurationError):
            tracker.on_arrival(0.5, 100)

    def test_rate_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            AGapTracker(rate_bps=0)

    def test_virtual_queuing_delay_is_gap_over_rate(self):
        tracker = AGapTracker(rate_bps=8e9)  # 1 GB/s
        tracker.on_arrival(0.0, 5000)
        assert tracker.virtual_queuing_delay() == pytest.approx(5e-6)

    def test_set_rate_drains_at_old_rate_first(self):
        tracker = AGapTracker(rate_bps=8e9)  # 1 GB/s
        tracker.on_arrival(0.0, 10_000)
        tracker.set_rate(5e-6, 8e6)  # drained 5000 at old rate, then slow
        assert tracker.gap == pytest.approx(5000)
        assert tracker.rate_bps == 8e6


class TestTheorem32Properties:
    """Property-based validation of the streaming recurrence."""

    arrivals = st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1e-3, allow_nan=False),
            st.integers(min_value=64, max_value=9000),
        ),
        min_size=1,
        max_size=60,
    )

    @given(arrivals, st.floats(min_value=1e6, max_value=1e11))
    @settings(max_examples=200, deadline=None)
    def test_streaming_matches_reference(self, gaps_and_sizes, rate):
        times = []
        t = 0.0
        for delta, _ in gaps_and_sizes:
            t += delta
            times.append(t)
        arrivals = [(t, size) for t, (_, size) in zip(times, gaps_and_sizes)]
        tracker = AGapTracker(rate_bps=rate)
        streamed = [tracker.on_arrival(t, s) for t, s in arrivals]
        reference = agap_reference(arrivals, rate)
        for a, b in zip(streamed, reference):
            assert a == pytest.approx(b, rel=1e-9, abs=1e-6)

    @given(arrivals, st.floats(min_value=1e6, max_value=1e11))
    @settings(max_examples=200, deadline=None)
    def test_gap_always_at_least_last_packet_size(self, gaps_and_sizes, rate):
        # A(p_k) = max(0, ...) + size >= size: the arriving packet always
        # contributes itself.
        tracker = AGapTracker(rate_bps=rate)
        t = 0.0
        for delta, size in gaps_and_sizes:
            t += delta
            gap = tracker.on_arrival(t, size)
            assert gap >= size

    @given(arrivals, st.floats(min_value=1e6, max_value=1e11))
    @settings(max_examples=200, deadline=None)
    def test_gap_bounded_by_total_arrivals(self, gaps_and_sizes, rate):
        # Draining only removes; the gap can never exceed the byte sum.
        tracker = AGapTracker(rate_bps=rate)
        t, total = 0.0, 0
        for delta, size in gaps_and_sizes:
            t += delta
            total += size
            assert tracker.on_arrival(t, size) <= total + 1e-6

    @given(arrivals, st.floats(min_value=1e6, max_value=1e11))
    @settings(max_examples=150, deadline=None)
    def test_peek_checkpoints_do_not_change_the_gap(self, gaps_and_sizes, rate):
        """Inserting drain-only observations between arrivals must not
        change the A-Gap — the recurrence is checkpoint-invariant
        (this is the substance of the Theorem 3.2 proof)."""
        tracker_a = AGapTracker(rate_bps=rate)
        tracker_b = AGapTracker(rate_bps=rate)
        t = 0.0
        prev_t = 0.0
        for delta, size in gaps_and_sizes:
            t += delta
            gap_a = tracker_a.on_arrival(t, size)
            # tracker_b takes an explicit mid-interval checkpoint.
            mid = prev_t + delta / 2.0
            checkpoint = tracker_b.peek(mid)
            tracker_b.gap = checkpoint
            tracker_b.last_time = mid
            gap_b = tracker_b.on_arrival(t, size)
            assert gap_a == pytest.approx(gap_b, rel=1e-9, abs=1e-6)
            prev_t = t

    @given(
        st.lists(st.integers(min_value=64, max_value=9000), min_size=1, max_size=50),
        st.floats(min_value=1e6, max_value=1e10),
        st.floats(min_value=1e-6, max_value=1e-3),
    )
    @settings(max_examples=150, deadline=None)
    def test_rate_limit_bound(self, sizes, rate, spacing):
        """With a limit enforced, accepted volume over a window is bounded
        by limit + R * window (the Section 3.2.2 rate-limiting bound)."""
        limit = 20_000.0
        tracker = AGapTracker(rate_bps=rate)
        accepted = 0
        t = 0.0
        for size in sizes:
            gap = tracker.on_arrival(t, size)
            if gap > limit:
                tracker.undo_arrival(size)
            else:
                accepted += size
            t += spacing
        window = t
        assert accepted <= limit + rate / 8.0 * window + 9000


class TestDGapStrawman:
    def test_d_gap_can_go_negative_in_backlogged_period(self):
        tracker = DGapTracker(rate_bps=8e9)  # 1 GB/s
        tracker.on_arrival(0.0, 1000)
        # Next packet arrives late: drain exceeds arrivals, D goes negative.
        assert tracker.on_arrival(1e-5, 100) < 0

    def test_d_gap_clamps_only_on_declared_empty_period(self):
        tracker = DGapTracker(rate_bps=8e9)
        tracker.on_arrival(0.0, 1000)
        tracker.on_arrival(1e-5, 100)  # now negative
        assert tracker.on_empty_until(2e-5) == 0.0

    def test_agap_never_negative_same_sequence(self):
        d = DGapTracker(rate_bps=8e9)
        a = AGapTracker(rate_bps=8e9)
        for i, size in enumerate([1000, 100, 100, 5000, 50]):
            t = i * 1e-5
            d.on_arrival(t, size)
            assert a.on_arrival(t, size) >= 0


class TestFigure3FluidModel:
    def test_strawman_rate_peaks_escalate(self):
        trace = simulate_discrepancy_control(use_agap=False)
        peaks = trace.cycle_peaks()
        assert len(peaks) >= 4
        # r0 < r1 < r2: each cycle overshoots further (surplus abuse).
        assert peaks[2] > peaks[0] * 1.01
        assert peaks[-1] > peaks[0] * 1.2

    def test_agap_rate_peaks_stay_level(self):
        trace = simulate_discrepancy_control(use_agap=True)
        peaks = trace.cycle_peaks()
        assert len(peaks) >= 4
        # Every peak tops out at the same r0 (within 1%).
        assert max(peaks) <= min(peaks) * 1.01

    def test_agap_measure_never_negative(self):
        trace = simulate_discrepancy_control(use_agap=True)
        assert min(trace.measures) >= 0.0

    def test_strawman_measure_goes_negative(self):
        trace = simulate_discrepancy_control(use_agap=False)
        assert min(trace.measures) < 0.0


class TestAdversarialTimestamps:
    """Theorem 3.2's recurrence under hostile clocks: equal consecutive
    timestamps (Δ(k)=0, e.g. two packets in one switch pipeline cycle)
    must be handled exactly, regressions must raise, and the gap must
    never go negative through any interleaving of arrivals and undos."""

    deltas_and_sizes = st.lists(
        st.tuples(
            # Heavily weighted toward Δ=0 to stress the degenerate case.
            st.one_of(
                st.just(0.0),
                st.just(0.0),
                st.floats(min_value=0.0, max_value=5e-3),
            ),
            st.integers(min_value=64, max_value=9000),
            st.booleans(),  # undo this arrival afterwards (drop path)?
        ),
        min_size=1,
        max_size=120,
    )

    @given(deltas_and_sizes, st.floats(min_value=1e6, max_value=1e11))
    @settings(max_examples=200, deadline=None)
    def test_gap_never_negative(self, steps, rate_bps):
        tracker = AGapTracker(rate_bps=rate_bps)
        t = 0.0
        for delta, size, undo in steps:
            t += delta
            gap = tracker.on_arrival(t, size)
            assert gap >= 0.0
            # Δ=0 must drain nothing: gap grows by exactly the size.
            if delta == 0.0:
                assert gap >= size
            if undo:
                tracker.undo_arrival(size)
            assert tracker.gap >= 0.0
            assert tracker.peek(t) == pytest.approx(tracker.gap)

    def test_equal_timestamps_accumulate_exactly(self):
        tracker = AGapTracker(rate_bps=GBPS)
        tracker.on_arrival(1e-3, 1000)
        baseline = tracker.gap
        for k in range(1, 6):
            assert tracker.on_arrival(1e-3, 500) == pytest.approx(
                baseline + 500 * k
            )

    def test_backward_time_raises_but_preserves_state(self):
        tracker = AGapTracker(rate_bps=GBPS)
        tracker.on_arrival(2e-3, 1500)
        gap_before = tracker.gap
        with pytest.raises(ConfigurationError):
            tracker.on_arrival(1e-3, 700)
        assert tracker.gap == gap_before
        assert tracker.last_time == 2e-3

    def test_undo_storm_saturates_at_zero(self):
        tracker = AGapTracker(rate_bps=GBPS)
        tracker.on_arrival(0.0, 1500)
        for _ in range(5):
            tracker.undo_arrival(9000)
            assert tracker.gap == 0.0
