"""Tests for the AugmentedQueue (Algorithms 1 + 2) and feedback policies."""

import pytest

from repro.core.aq import AugmentedQueue
from repro.core.feedback import (
    FeedbackPolicy,
    delay_policy,
    ecn_policy,
    policy_for_cc,
)
from repro.errors import ConfigurationError
from repro.net.packet import make_data

GBPS = 1e9


def data(size=1500, ect=False):
    return make_data("a", "b", 1, seq=0, size=size, ect=ect)


class TestRateLimiting:
    def test_accepts_below_limit(self):
        aq = AugmentedQueue(1, rate_bps=GBPS, limit_bytes=10_000)
        assert aq.process(data(), 0.0)
        assert aq.stats.dropped_packets == 0

    def test_drops_beyond_limit_and_undoes_gap(self):
        aq = AugmentedQueue(1, rate_bps=8e6, limit_bytes=3000)  # 1 MB/s
        assert aq.process(data(1500), 0.0)
        assert aq.process(data(1500), 1e-6)
        gap_before = aq.gap_bytes
        assert not aq.process(data(1500), 2e-6)  # would push gap past 3000
        # Algorithm 2 line 3: the dropped packet's bytes are removed.
        assert aq.gap_bytes == pytest.approx(gap_before, rel=0.01)
        assert aq.stats.dropped_packets == 1

    def test_long_run_rate_converges_to_allocation(self):
        # Offer 2x the allocated rate; accepted volume must converge to R.
        rate = 80e6  # 10 MB/s
        aq = AugmentedQueue(1, rate_bps=rate, limit_bytes=20 * 1500)
        interval = 1500 * 8 / (2 * rate)  # 2x overspeed
        t = 0.0
        for _ in range(4000):
            aq.process(data(1500), t)
            t += interval
        accepted_rate = aq.stats.accepted_bytes * 8 / t
        assert accepted_rate == pytest.approx(rate, rel=0.05)

    def test_below_allocation_never_drops(self):
        rate = 80e6
        aq = AugmentedQueue(1, rate_bps=rate, limit_bytes=20 * 1500)
        interval = 1500 * 8 / (0.8 * rate)  # 80% offered load
        t = 0.0
        for _ in range(2000):
            aq.process(data(1500), t)
            t += interval
        assert aq.stats.dropped_packets == 0

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            AugmentedQueue(0, rate_bps=GBPS, limit_bytes=1000)
        with pytest.raises(ConfigurationError):
            AugmentedQueue(1, rate_bps=GBPS, limit_bytes=0)


class TestEcnFeedback:
    def test_marks_ect_above_virtual_threshold(self):
        aq = AugmentedQueue(
            1, rate_bps=8e6, limit_bytes=100_000,
            policy=ecn_policy(ecn_threshold_bytes=2000),
        )
        packet1 = data(1500, ect=True)
        aq.process(packet1, 0.0)
        assert not packet1.ce  # gap 1500 <= 2000
        packet2 = data(1500, ect=True)
        aq.process(packet2, 1e-6)
        assert packet2.ce  # gap ~3000 > 2000
        assert aq.stats.marked_packets == 1

    def test_does_not_mark_non_ect(self):
        aq = AugmentedQueue(
            1, rate_bps=8e6, limit_bytes=100_000,
            policy=ecn_policy(ecn_threshold_bytes=100),
        )
        packet = data(1500, ect=False)
        aq.process(packet, 0.0)
        assert not packet.ce

    def test_marking_independent_of_other_entities(self):
        # Two AQs: heavy traffic through one never marks the other.
        heavy = AugmentedQueue(
            1, rate_bps=8e6, limit_bytes=1_000_000,
            policy=ecn_policy(ecn_threshold_bytes=1000),
        )
        light = AugmentedQueue(
            2, rate_bps=8e6, limit_bytes=1_000_000,
            policy=ecn_policy(ecn_threshold_bytes=1000),
        )
        for i in range(50):
            aq_packet = data(1500, ect=True)
            heavy.process(aq_packet, i * 1e-6)
        light_packet = data(500, ect=True)
        light.process(light_packet, 50e-6)
        assert not light_packet.ce


class TestDelayFeedback:
    def test_virtual_delay_accumulates_on_packet(self):
        aq = AugmentedQueue(1, rate_bps=8e9, limit_bytes=1_000_000,
                            policy=delay_policy())
        packet = data(1500)
        aq.process(packet, 0.0)
        # gap = 1500 bytes at 1 GB/s -> 1.5 us of virtual delay.
        assert packet.virtual_delay == pytest.approx(1.5e-6)

    def test_virtual_delay_adds_across_hops(self):
        hop1 = AugmentedQueue(1, rate_bps=8e9, limit_bytes=1_000_000,
                              policy=delay_policy())
        hop2 = AugmentedQueue(1, rate_bps=8e9, limit_bytes=1_000_000,
                              policy=delay_policy())
        packet = data(1500)
        hop1.process(packet, 0.0)
        hop2.process(packet, 0.0)
        assert packet.virtual_delay == pytest.approx(3.0e-6)

    def test_drop_policy_leaves_headers_alone(self):
        aq = AugmentedQueue(1, rate_bps=8e9, limit_bytes=1_000_000)
        packet = data(1500, ect=True)
        aq.process(packet, 0.0)
        assert not packet.ce
        assert packet.virtual_delay == 0.0


class TestRateUpdates:
    def test_set_rate_preserves_drained_gap(self):
        aq = AugmentedQueue(1, rate_bps=8e9, limit_bytes=1_000_000)
        aq.process(data(10_000), 0.0)
        aq.set_rate(5e-6, 8e6)  # 5000 bytes drained at the old 1 GB/s
        assert aq.gap_bytes == pytest.approx(5000)
        assert aq.rate_bps == 8e6

    def test_record_delays_collects_samples(self):
        aq = AugmentedQueue(1, rate_bps=8e9, limit_bytes=1_000_000,
                            record_delays=True)
        aq.process(data(1500), 0.0)
        aq.process(data(1500), 1e-7)
        assert len(aq.stats.delay_samples) == 2
        assert aq.stats.delay_samples[1] > aq.stats.delay_samples[0]


class TestFeedbackPolicies:
    def test_ecn_requires_threshold(self):
        with pytest.raises(ConfigurationError):
            FeedbackPolicy(kind="ecn")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FeedbackPolicy(kind="smoke-signals")

    def test_policy_for_cc_maps_families(self):
        assert policy_for_cc("cubic").kind == "drop"
        assert policy_for_cc("newreno").kind == "drop"
        assert policy_for_cc("illinois").kind == "drop"
        assert policy_for_cc("dctcp", ecn_threshold_bytes=1000).kind == "ecn"
        assert policy_for_cc("swift").kind == "delay"

    def test_policy_for_dctcp_without_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            policy_for_cc("dctcp")

    def test_negative_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            ecn_policy(-5)

    def test_drop_policy_is_default(self):
        aq = AugmentedQueue(1, rate_bps=GBPS, limit_bytes=1000)
        assert aq.policy.kind == "drop"
