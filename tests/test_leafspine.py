"""Tests for the leaf-spine fabric, ECMP, and multi-hop AQ behaviour."""

import pytest

from repro.cc.registry import make_cc
from repro.core.controller import AqController, AqRequest
from repro.core.feedback import delay_policy
from repro.errors import ConfigurationError
from repro.net.packet import make_udp
from repro.topology.leafspine import LeafSpine, LeafSpineConfig
from repro.transport.tcp import TcpConnection
from repro.units import gbps


def fabric(**kwargs):
    defaults = dict(num_leaves=2, num_spines=2, hosts_per_leaf=2)
    defaults.update(kwargs)
    return LeafSpine(LeafSpineConfig(**defaults))


class _Collector:
    def __init__(self):
        self.packets = []

    def on_packet(self, packet, now):
        self.packets.append((packet, now))


class TestFabricWiring:
    def test_cross_leaf_delivery(self):
        fab = fabric()
        sink = _Collector()
        fab.network.hosts["h1-0"].set_default_endpoint(sink)
        fab.network.hosts["h0-0"].send(make_udp("h0-0", "h1-0", 1, 1500))
        fab.network.run(until=0.01)
        assert len(sink.packets) == 1

    def test_same_leaf_delivery_stays_local(self):
        fab = fabric()
        sink = _Collector()
        fab.network.hosts["h0-1"].set_default_endpoint(sink)
        fab.network.hosts["h0-0"].send(make_udp("h0-0", "h0-1", 1, 1500))
        fab.network.run(until=0.01)
        assert len(sink.packets) == 1
        for spine in fab.spines:
            assert fab.network.switches[spine].stats.received_packets == 0

    def test_ecmp_spreads_flows_across_spines(self):
        fab = fabric(num_spines=4)
        sink = _Collector()
        fab.network.hosts["h1-0"].set_default_endpoint(sink)
        for flow_id in range(32):
            fab.network.hosts["h0-0"].send(
                make_udp("h0-0", "h1-0", flow_id, 1500)
            )
        fab.network.run(until=0.01)
        used = [
            spine
            for spine in fab.spines
            if fab.network.switches[spine].stats.received_packets > 0
        ]
        assert len(used) >= 3  # 32 flows over 4 spines: ~all used

    def test_flow_sticks_to_one_spine(self):
        fab = fabric(num_spines=4)
        sink = _Collector()
        fab.network.hosts["h1-0"].set_default_endpoint(sink)
        for _ in range(10):
            fab.network.hosts["h0-0"].send(make_udp("h0-0", "h1-0", 7, 1500))
        fab.network.run(until=0.01)
        expected = fab.spine_for_flow(7)
        for spine in fab.spines:
            received = fab.network.switches[spine].stats.received_packets
            assert (received > 0) == (spine == expected)

    def test_tcp_across_fabric(self):
        fab = fabric()
        conn = TcpConnection(
            fab.network, "h0-0", "h1-1", make_cc("cubic"), size_bytes=300_000
        )
        fab.network.run(until=1.0)
        assert conn.completed
        assert conn.receiver.delivered_bytes == 300_000

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            LeafSpine(LeafSpineConfig(num_leaves=0))

    def test_base_rtt(self):
        fab = fabric()
        assert fab.base_rtt() == pytest.approx(8 * fab.config.prop_delay)


class TestMultiHopAq:
    def test_virtual_delay_accumulates_across_hops(self):
        """Section 3.3.2: the virtual queuing delay is accumulated along
        the path — an AQ on the leaf and another on the spine both add
        their gap/R to the packet header."""
        fab = fabric(num_spines=1)
        network = fab.network
        controller = AqController(network)
        controller.register_resource("path", gbps(10))
        rate = gbps(1)
        leaf_grant = controller.request(
            AqRequest(
                entity="e", switch="leaf0", position="ingress",
                absolute_rate_bps=rate, share_group="path",
                policy=delay_policy(), limit_bytes=10_000_000,
            )
        )
        spine_grant = controller.request(
            AqRequest(
                entity="e", switch="spine0", position="ingress",
                absolute_rate_bps=rate, share_group="path",
                policy=delay_policy(), limit_bytes=10_000_000,
            )
        )
        # Tag packets with the LEAF grant id; deploy the spine AQ under the
        # same ID so both hops match (two deployments, one header field).
        assert leaf_grant.aq_id != spine_grant.aq_id
        sink = _Collector()
        network.hosts["h1-0"].set_default_endpoint(sink)
        # Burst of packets back to back: the A-Gap builds at each hop.
        for i in range(10):
            packet = make_udp("h0-0", "h1-0", 3, 1500)
            packet.aq_ingress_id = leaf_grant.aq_id
            network.hosts["h0-0"].send(packet)
        # Re-tagging for the spine hop is the tenant's job in Section 4.1;
        # here both AQs were created with different IDs, so emulate an
        # entity whose single ID is deployed at both switches:
        controller.pipeline("spine0").withdraw(spine_grant.aq_id, "ingress")
        spine_grant.aq.aq_id = leaf_grant.aq_id
        controller.pipeline("spine0").deploy(spine_grant.aq, "ingress")
        for i in range(10):
            packet = make_udp("h0-0", "h1-0", 3, 1500)
            packet.aq_ingress_id = leaf_grant.aq_id
            network.hosts["h0-0"].send(packet)
        network.run(until=0.05)
        delays = [p.virtual_delay for p, _ in sink.packets]
        # Later packets (after the re-deploy) carry delay from BOTH hops.
        single_hop = delays[5]
        double_hop = delays[-1]
        assert double_hop > 1.5 * single_hop

    def test_aq_limits_apply_at_spine(self):
        fab = fabric(num_spines=1)
        network = fab.network
        controller = AqController(network)
        controller.register_resource("spine-cap", gbps(10))
        grant = controller.request(
            AqRequest(
                entity="e", switch="spine0", position="ingress",
                absolute_rate_bps=1e6, share_group="spine-cap",
                limit_bytes=3000,
            )
        )
        sink = _Collector()
        network.hosts["h1-0"].set_default_endpoint(sink)
        for i in range(40):
            packet = make_udp("h0-0", "h1-0", 5, 1500)
            packet.aq_ingress_id = grant.aq_id
            network.sim.schedule_at(i * 1e-5, network.hosts["h0-0"].send, packet)
        network.run(until=0.1)
        assert len(sink.packets) <= 3
        assert grant.aq.stats.dropped_packets >= 37
