"""Tests for the per-flow/per-entity DRR queue baseline."""

import pytest

from repro.errors import ConfigurationError
from repro.net.packet import make_udp
from repro.queues.perflow import (
    PER_QUEUE_STATE_BYTES,
    PerFlowQueue,
    entity_key,
    state_bytes_per_entity,
)
from repro.topology.dumbbell import Dumbbell, DumbbellConfig
from repro.transport.udp import UdpFlow
from repro.units import gbps


def pkt(flow=1, size=1000, aq_id=0):
    packet = make_udp("a", "b", flow, size)
    packet.aq_ingress_id = aq_id
    return packet


class TestDrrScheduling:
    def test_single_flow_fifo(self):
        queue = PerFlowQueue(limit_bytes_per_queue=100_000)
        packets = [pkt(flow=1) for _ in range(4)]
        for p in packets:
            assert queue.enqueue(p, 0.0)
        out = [queue.dequeue(0.0) for _ in range(4)]
        assert [p.packet_id for p in out] == [p.packet_id for p in packets]

    def test_round_robin_interleaves_flows(self):
        queue = PerFlowQueue(limit_bytes_per_queue=100_000, quantum_bytes=1000)
        for _ in range(3):
            queue.enqueue(pkt(flow=1), 0.0)
            queue.enqueue(pkt(flow=2), 0.0)
        order = [queue.dequeue(0.0).flow_id for _ in range(6)]
        # Equal quanta, equal sizes: strict alternation after the first round.
        assert sorted(order[:2]) == [1, 2]
        assert sorted(order[2:4]) == [1, 2]

    def test_equal_service_despite_unequal_backlog(self):
        queue = PerFlowQueue(limit_bytes_per_queue=1_000_000, quantum_bytes=1000)
        for _ in range(20):
            queue.enqueue(pkt(flow=1), 0.0)
        for _ in range(5):
            queue.enqueue(pkt(flow=2), 0.0)
        first_ten = [queue.dequeue(0.0).flow_id for _ in range(10)]
        # Flow 2 gets ~half of the early service despite 4x less backlog.
        assert first_ten.count(2) == 5

    def test_weighted_drr(self):
        queue = PerFlowQueue(
            limit_bytes_per_queue=1_000_000,
            quantum_bytes=1000,
            weight_fn=lambda key: 2.0 if key == 1 else 1.0,
        )
        for _ in range(30):
            queue.enqueue(pkt(flow=1), 0.0)
            queue.enqueue(pkt(flow=2), 0.0)
        first = [queue.dequeue(0.0).flow_id for _ in range(18)]
        assert first.count(1) == pytest.approx(12, abs=2)  # ~2:1 service

    def test_per_queue_limit_isolates_drops(self):
        queue = PerFlowQueue(limit_bytes_per_queue=2000)
        assert queue.enqueue(pkt(flow=1), 0.0)
        assert queue.enqueue(pkt(flow=1), 0.0)
        assert not queue.enqueue(pkt(flow=1), 0.0)  # flow 1 full
        assert queue.enqueue(pkt(flow=2), 0.0)  # flow 2 unaffected

    def test_max_queues_cap(self):
        queue = PerFlowQueue(limit_bytes_per_queue=10_000, max_queues=2)
        assert queue.enqueue(pkt(flow=1), 0.0)
        assert queue.enqueue(pkt(flow=2), 0.0)
        assert not queue.enqueue(pkt(flow=3), 0.0)  # out of queues
        assert queue.dropped_packets == 1

    def test_entity_key_classifies_by_aq_id(self):
        queue = PerFlowQueue(limit_bytes_per_queue=10_000, key_fn=entity_key)
        queue.enqueue(pkt(flow=1, aq_id=7), 0.0)
        queue.enqueue(pkt(flow=2, aq_id=7), 0.0)
        assert queue.active_queues == 1

    def test_empty_dequeue(self):
        queue = PerFlowQueue(limit_bytes_per_queue=10_000)
        assert queue.dequeue(0.0) is None

    def test_byte_accounting(self):
        queue = PerFlowQueue(limit_bytes_per_queue=10_000)
        queue.enqueue(pkt(flow=1, size=700), 0.0)
        queue.enqueue(pkt(flow=2, size=300), 0.0)
        assert queue.bytes_queued == 1000
        assert queue.packets_queued == 2
        queue.dequeue(0.0)
        assert queue.bytes_queued in (300, 700)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PerFlowQueue(limit_bytes_per_queue=0)
        with pytest.raises(ConfigurationError):
            PerFlowQueue(limit_bytes_per_queue=1000, quantum_bytes=0)


class TestStateScaling:
    def test_aq_state_orders_of_magnitude_smaller(self):
        entities = 1_000_000
        pfq = state_bytes_per_entity(entities, per_flow_queues=True)
        aq = state_bytes_per_entity(entities, per_flow_queues=False)
        assert pfq / aq > 100  # the paper's scalability argument
        assert aq == 15 * entities
        assert pfq == PER_QUEUE_STATE_BYTES * entities

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            state_bytes_per_entity(-1, True)


class TestInNetworkBehaviour:
    def test_pfq_bottleneck_shares_fairly_between_udp_entities(self):
        dumbbell = Dumbbell(
            DumbbellConfig(num_left=2, num_right=2, bottleneck_rate_bps=gbps(1))
        )
        # Swap the bottleneck port's FIFO for a per-flow DRR queue.
        port = dumbbell.bottleneck_port
        port.queue = PerFlowQueue(limit_bytes_per_queue=50 * 1500)
        port.transmitter.queue = port.queue
        fast = UdpFlow(dumbbell.network, "h-l0", "h-r0", rate_bps=gbps(2))
        slow = UdpFlow(dumbbell.network, "h-l1", "h-r1", rate_bps=gbps(0.4))
        dumbbell.network.run(until=0.05)
        fast_rate = fast.sink.delivered_bytes * 8 / 0.05
        slow_rate = slow.sink.delivered_bytes * 8 / 0.05
        # Max-min: the 0.4G flow is below its 0.5G fair share and fully
        # served; the 2G blaster is clipped to the ~0.6G remainder.
        assert slow_rate > 0.9 * gbps(0.4)
        assert 0.5 * gbps(1) < fast_rate < 0.7 * gbps(1)

    def test_pfq_cannot_enforce_rate_below_capacity(self):
        """The paper's functional argument: with no congestion there is no
        backlog, so per-flow queues cannot hold traffic DOWN to an
        allocated rate — an AQ limit can."""
        dumbbell = Dumbbell(
            DumbbellConfig(num_left=2, num_right=2, bottleneck_rate_bps=gbps(1))
        )
        port = dumbbell.bottleneck_port
        port.queue = PerFlowQueue(limit_bytes_per_queue=50 * 1500)
        port.transmitter.queue = port.queue
        flow = UdpFlow(dumbbell.network, "h-l0", "h-r0", rate_bps=gbps(0.8))
        dumbbell.network.run(until=0.05)
        rate = flow.sink.delivered_bytes * 8 / 0.05
        # "Allocated" 0.4G is unenforceable: everything goes through.
        assert rate > 0.9 * gbps(0.8)
