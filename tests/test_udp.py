"""Tests for the UDP transport."""

import pytest

from repro.errors import TransportError
from repro.topology.dumbbell import Dumbbell, DumbbellConfig
from repro.transport.udp import UdpFlow, UdpSender
from repro.units import gbps, mbps


def dumbbell():
    return Dumbbell(DumbbellConfig(num_left=1, num_right=1, bottleneck_rate_bps=gbps(1)))


class TestUdpSender:
    def test_sends_at_configured_rate(self):
        d = dumbbell()
        flow = UdpFlow(d.network, "h-l0", "h-r0", rate_bps=mbps(120))
        d.network.run(until=0.1)
        rate = flow.sink.delivered_bytes * 8 / 0.1
        assert rate == pytest.approx(mbps(120), rel=0.05)

    def test_stop_time_honored(self):
        d = dumbbell()
        flow = UdpFlow(
            d.network, "h-l0", "h-r0", rate_bps=mbps(120), stop_time=0.05
        )
        d.network.run(until=0.1)
        sent_in_window = flow.sender.bytes_sent
        rate = sent_in_window * 8 / 0.05
        assert rate == pytest.approx(mbps(120), rel=0.05)

    def test_total_bytes_cap(self):
        d = dumbbell()
        flow = UdpFlow(
            d.network, "h-l0", "h-r0", rate_bps=mbps(120), total_bytes=15_000
        )
        d.network.run(until=0.5)
        assert flow.sender.bytes_sent == 15_000

    def test_stop_method(self):
        d = dumbbell()
        flow = UdpFlow(d.network, "h-l0", "h-r0", rate_bps=mbps(120))
        d.network.sim.schedule_at(0.02, flow.sender.stop)
        d.network.run(until=0.1)
        assert flow.sender.bytes_sent * 8 / 0.02 == pytest.approx(
            mbps(120), rel=0.1
        )

    def test_overdriven_link_drops_excess(self):
        d = dumbbell()
        flow = UdpFlow(d.network, "h-l0", "h-r0", rate_bps=gbps(3.9))
        d.network.run(until=0.05)
        delivered_rate = flow.sink.delivered_bytes * 8 / 0.05
        # Bottleneck is 1G: delivery is capped near line rate.
        assert delivered_rate < 1.05 * gbps(1)

    def test_aq_ids_stamped(self):
        d = dumbbell()
        seen = []
        d.network.switches[Dumbbell.LEFT_SWITCH].add_ingress_hook(
            lambda p, now: seen.append(p.aq_ingress_id) or True
        )
        UdpFlow(d.network, "h-l0", "h-r0", rate_bps=mbps(120), aq_ingress_id=5)
        d.network.run(until=0.01)
        assert seen and all(i == 5 for i in seen)

    def test_invalid_rate_rejected(self):
        d = dumbbell()
        with pytest.raises(TransportError):
            UdpSender(d.network.sim, d.network.hosts["h-l0"], "h-r0", 1, 0.0)

    def test_on_deliver_callback(self):
        d = dumbbell()
        chunks = []
        UdpFlow(
            d.network, "h-l0", "h-r0", rate_bps=mbps(120),
            on_deliver=lambda n, t: chunks.append(n),
        )
        d.network.run(until=0.01)
        assert chunks and all(c == 1500 for c in chunks)
