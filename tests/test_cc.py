"""Unit tests for the congestion-control algorithms (no network needed)."""

import pytest

from repro.cc.base import AckContext, DELAY_BASED, DROP_BASED, ECN_BASED, MIN_CWND
from repro.cc.cubic import Cubic
from repro.cc.dctcp import Dctcp
from repro.cc.illinois import Illinois
from repro.cc.newreno import NewReno
from repro.cc.registry import available_ccs, cc_kind, make_cc, register_cc
from repro.cc.swift import Swift
from repro.errors import ConfigurationError


def ack(
    now=0.0,
    acked=1,
    rtt=100e-6,
    base_rtt=60e-6,
    ece=False,
    virtual_delay=0.0,
    snd_una=0,
):
    return AckContext(
        now=now,
        acked_packets=acked,
        acked_bytes=acked * 1460,
        rtt_sample=rtt,
        base_rtt=base_rtt,
        ece=ece,
        virtual_delay=virtual_delay,
        snd_una=snd_una,
        flightsize_packets=10,
    )


class TestNewReno:
    def test_slow_start_doubles_per_window(self):
        cc = NewReno()
        cc.cwnd, cc.ssthresh = 10.0, float("inf")
        cc.on_ack(ack(acked=10))
        assert cc.cwnd == pytest.approx(20.0)

    def test_congestion_avoidance_one_per_rtt(self):
        cc = NewReno()
        cc.cwnd, cc.ssthresh = 10.0, 5.0
        cc.on_ack(ack(acked=10))
        assert cc.cwnd == pytest.approx(11.0, rel=0.01)

    def test_loss_halves_window(self):
        cc = NewReno()
        cc.cwnd = 20.0
        cc.on_packet_loss(0.0)
        assert cc.cwnd == pytest.approx(10.0)
        assert cc.ssthresh == pytest.approx(10.0)

    def test_rto_collapses_to_one(self):
        cc = NewReno()
        cc.cwnd = 20.0
        cc.on_rto(0.0)
        assert cc.cwnd == 1.0

    def test_loss_floor_at_two(self):
        cc = NewReno()
        cc.cwnd = 1.0
        cc.on_packet_loss(0.0)
        assert cc.cwnd == 2.0


class TestCubic:
    def test_loss_applies_beta(self):
        cc = Cubic()
        cc.cwnd, cc.ssthresh = 100.0, 1.0
        cc.on_packet_loss(0.0)
        assert cc.cwnd == pytest.approx(70.0)

    def test_recovers_toward_w_max(self):
        cc = Cubic()
        cc.cwnd, cc.ssthresh = 100.0, 1.0
        cc.on_packet_loss(0.0)
        t = 0.0
        for _ in range(200):
            t += 100e-6
            cc.on_ack(ack(now=t, acked=int(max(cc.cwnd, 1))))
        # Cubic should have grown back toward (and past) the plateau.
        assert cc.cwnd > 85.0

    def test_growth_accelerates_past_plateau(self):
        cc = Cubic()
        cc.cwnd, cc.ssthresh = 50.0, 1.0
        cc.on_packet_loss(0.0)  # w_max=50, cwnd=35
        samples = []
        t = 0.0
        for _ in range(400):
            t += 100e-6
            cc.on_ack(ack(now=t, acked=int(max(cc.cwnd, 1))))
            samples.append(cc.cwnd)
        assert samples[-1] > 50.0  # grew beyond the previous w_max

    def test_fast_convergence_lowers_w_max(self):
        cc = Cubic()
        cc.cwnd, cc.ssthresh = 100.0, 1.0
        cc.on_packet_loss(0.0)
        w_max_first = cc._w_max
        cc.on_packet_loss(0.0)  # second loss below w_max: fast convergence
        assert cc._w_max < w_max_first


class TestDctcp:
    def test_no_marks_grows_like_reno(self):
        cc = Dctcp()
        cc.cwnd, cc.ssthresh = 10.0, float("inf")
        cc.on_ack(ack(acked=10, snd_una=10 * 1460))
        assert cc.cwnd == pytest.approx(20.0)

    def test_alpha_decays_without_marks(self):
        cc = Dctcp()
        alpha0 = cc.alpha
        snd_una = 0
        for i in range(20):
            snd_una += 15 * 1460
            cc.on_ack(ack(acked=15, snd_una=snd_una))
        assert cc.alpha < alpha0

    def test_mark_reduces_proportionally_to_alpha(self):
        cc = Dctcp()
        cc.cwnd, cc.ssthresh = 100.0, 1.0
        cc.alpha = 0.5
        cc._window_end = 1_000_000  # keep the estimator window open
        cc.on_ack(ack(acked=1, ece=True, snd_una=1460))
        # cwnd * (1 - alpha/2) = 100 * 0.75
        assert cc.cwnd == pytest.approx(75.0, rel=0.01)

    def test_at_most_one_reduction_per_window(self):
        cc = Dctcp()
        cc.cwnd, cc.ssthresh = 100.0, 1.0
        cc.alpha = 1.0
        cc._window_end = 1_000_000
        cc.on_ack(ack(acked=1, ece=True, snd_una=1460))
        after_first = cc.cwnd
        cc.on_ack(ack(acked=1, ece=True, snd_una=2920))
        # Second marked ACK in the same window grows instead of re-reducing.
        assert cc.cwnd >= after_first

    def test_is_ecn_capable(self):
        assert Dctcp.ecn_capable
        assert Dctcp.kind == ECN_BASED


class TestSwift:
    def test_grows_below_target(self):
        cc = Swift(target_delay=100e-6)
        cc.cwnd = 10.0
        cc.on_ack(ack(rtt=80e-6, base_rtt=60e-6))  # 20us < 100us target
        assert cc.cwnd > 10.0

    def test_decreases_above_target(self):
        cc = Swift(target_delay=20e-6)
        cc.cwnd = 10.0
        cc.on_ack(ack(now=1.0, rtt=200e-6, base_rtt=60e-6))  # 140us >> 20us
        assert cc.cwnd < 10.0

    def test_at_most_one_decrease_per_rtt(self):
        cc = Swift(target_delay=20e-6)
        cc.cwnd = 10.0
        cc.on_ack(ack(now=1.0, rtt=200e-6, base_rtt=60e-6))
        first = cc.cwnd
        cc.on_ack(ack(now=1.0 + 50e-6, rtt=200e-6, base_rtt=60e-6))
        assert cc.cwnd == first  # within the same RTT: no second cut

    def test_virtual_delay_mode_uses_echo(self):
        cc = Swift(target_delay=50e-6, use_virtual_delay=True)
        cc.cwnd = 10.0
        # Large measured RTT but zero virtual delay: must GROW (the AQ says
        # this entity is within its allocation).
        cc.on_ack(ack(now=1.0, rtt=500e-6, base_rtt=60e-6, virtual_delay=0.0))
        assert cc.cwnd > 10.0

    def test_virtual_delay_mode_decreases_on_echoed_delay(self):
        cc = Swift(target_delay=50e-6, use_virtual_delay=True)
        cc.cwnd = 10.0
        cc.on_ack(ack(now=1.0, rtt=70e-6, base_rtt=60e-6, virtual_delay=400e-6))
        assert cc.cwnd < 10.0

    def test_cwnd_can_fall_below_one(self):
        cc = Swift(target_delay=10e-6)
        cc.cwnd = 0.5
        t = 1.0
        for i in range(20):
            t += 1e-3
            cc.on_ack(ack(now=t, rtt=500e-6, base_rtt=60e-6))
        assert MIN_CWND <= cc.cwnd < 1.0

    def test_max_decrease_bounded(self):
        cc = Swift(target_delay=1e-6)
        cc.cwnd = 10.0
        cc.on_ack(ack(now=1.0, rtt=10e-3, base_rtt=60e-6))
        assert cc.cwnd >= 10.0 * (1.0 - Swift.MAX_MDF) - 1e-9

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            Swift(target_delay=0.0)


class TestIllinois:
    def test_low_delay_uses_max_alpha(self):
        cc = Illinois()
        cc.cwnd, cc.ssthresh = 10.0, 1.0
        # Establish a high max queueing delay, then run in the low-delay
        # regime: alpha should recover toward its maximum.
        cc.on_ack(ack(rtt=1060e-6, base_rtt=60e-6))
        for _ in range(200):
            cc.on_ack(ack(rtt=61e-6, base_rtt=60e-6))
        assert cc.alpha > 5.0

    def test_high_delay_shrinks_alpha(self):
        cc = Illinois()
        cc.cwnd, cc.ssthresh = 10.0, 1.0
        cc.on_ack(ack(rtt=1060e-6, base_rtt=60e-6))  # establish max delay
        for _ in range(50):
            cc.on_ack(ack(rtt=1060e-6, base_rtt=60e-6))
        assert cc.alpha < 1.0

    def test_high_delay_raises_beta(self):
        cc = Illinois()
        cc.on_ack(ack(rtt=1060e-6, base_rtt=60e-6))
        for _ in range(50):
            cc.on_ack(ack(rtt=1060e-6, base_rtt=60e-6))
        assert cc.beta == pytest.approx(Illinois.BETA_MAX)

    def test_loss_uses_current_beta(self):
        cc = Illinois()
        cc.cwnd = 100.0
        cc._beta = 0.25
        cc.on_packet_loss(0.0)
        assert cc.cwnd == pytest.approx(75.0)


class TestRegistry:
    def test_all_paper_ccs_available(self):
        names = available_ccs()
        for name in ("cubic", "newreno", "illinois", "dctcp", "swift"):
            assert name in names

    def test_kinds_match_paper_families(self):
        assert cc_kind("cubic") == DROP_BASED
        assert cc_kind("newreno") == DROP_BASED
        assert cc_kind("illinois") == DROP_BASED
        assert cc_kind("dctcp") == ECN_BASED
        assert cc_kind("swift") == DELAY_BASED

    def test_make_cc_forwards_kwargs(self):
        cc = make_cc("swift", target_delay=123e-6)
        assert cc.target_delay == pytest.approx(123e-6)

    def test_unknown_cc_rejected(self):
        with pytest.raises(ConfigurationError):
            make_cc("bbr-but-not-really")

    def test_register_custom_cc(self):
        class MyCc(NewReno):
            pass

        register_cc("test-custom-cc", MyCc)
        assert isinstance(make_cc("test-custom-cc"), MyCc)
        with pytest.raises(ConfigurationError):
            register_cc("test-custom-cc", MyCc)
