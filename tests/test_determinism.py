"""Determinism: identical configurations reproduce identical results.

Every stochastic choice in the simulator draws from a seeded, named RNG
stream, so two runs of the same scenario must agree bit-for-bit — the
property that makes every number in EXPERIMENTS.md reproducible.
"""


from repro.harness.scenarios import run_cc_pair, run_two_entity_fairness
from repro.sim.rng import RngRegistry
from repro.units import gbps


class TestRngRegistry:
    def test_same_name_same_stream_object(self):
        registry = RngRegistry(1)
        assert registry.stream("a") is registry.stream("a")

    def test_streams_independent_of_creation_order(self):
        r1 = RngRegistry(7)
        a_first = [r1.stream("a").random() for _ in range(3)]
        r2 = RngRegistry(7)
        r2.stream("b")  # create b first this time
        a_second = [r2.stream("a").random() for _ in range(3)]
        assert a_first == a_second

    def test_different_seeds_differ(self):
        assert RngRegistry(1).stream("x").random() != RngRegistry(2).stream(
            "x"
        ).random()

    def test_fork_is_independent(self):
        parent = RngRegistry(1)
        child = parent.fork("child")
        assert parent.stream("x").random() != child.stream("x").random()


class TestScenarioDeterminism:
    def test_longlived_share_bitwise_reproducible(self):
        results = [
            run_cc_pair(
                "cubic", 2, "dctcp", 2, "aq",
                bottleneck_bps=gbps(1), duration=30e-3, warmup=10e-3, seed=3,
            ).rates_bps
            for _ in range(2)
        ]
        assert results[0] == results[1]

    def test_wct_bitwise_reproducible(self):
        results = [
            run_two_entity_fairness(
                2, "pq", volume_bytes=2_000_000,
                bottleneck_bps=gbps(1), max_sim_time=5.0, seed=9,
            ).wct
            for _ in range(2)
        ]
        assert results[0] == results[1]

    def test_different_seeds_change_workloads(self):
        a = run_two_entity_fairness(
            2, "pq", volume_bytes=2_000_000,
            bottleneck_bps=gbps(1), max_sim_time=5.0, seed=1,
        ).wct
        b = run_two_entity_fairness(
            2, "pq", volume_bytes=2_000_000,
            bottleneck_bps=gbps(1), max_sim_time=5.0, seed=2,
        ).wct
        assert a != b
