"""Tests for the packet tracer and the request/policy serialization."""

import json

import pytest

from repro.core.controller import AqRequest
from repro.core.feedback import FeedbackPolicy, drop_policy, ecn_policy
from repro.cc.registry import make_cc
from repro.errors import ConfigurationError
from repro.stats.trace import PacketTrace
from repro.topology.dumbbell import Dumbbell, DumbbellConfig
from repro.transport.tcp import TcpConnection
from repro.transport.udp import UdpFlow
from repro.units import gbps, mbps


class TestPacketTrace:
    def _dumbbell_with_trace(self):
        d = Dumbbell(DumbbellConfig(num_left=2, num_right=2,
                                    bottleneck_rate_bps=gbps(1)))
        trace = PacketTrace()
        d.network.switches[Dumbbell.LEFT_SWITCH].add_tap(trace.switch_tap)
        return d, trace

    def test_counts_bytes_per_flow(self):
        d, trace = self._dumbbell_with_trace()
        f1 = UdpFlow(d.network, "h-l0", "h-r0", rate_bps=mbps(120),
                     total_bytes=15_000)
        f2 = UdpFlow(d.network, "h-l1", "h-r1", rate_bps=mbps(120),
                     total_bytes=7_500)
        d.network.run(until=0.1)
        by_flow = trace.bytes_by_flow()
        assert by_flow[f1.flow_id] == 15_000
        assert by_flow[f2.flow_id] == 7_500

    def test_counts_bytes_per_entity(self):
        d, trace = self._dumbbell_with_trace()
        UdpFlow(d.network, "h-l0", "h-r0", rate_bps=mbps(120),
                total_bytes=15_000, aq_ingress_id=42)
        d.network.run(until=0.1)
        assert trace.bytes_by_entity() == {42: 15_000}

    def test_retransmissions_visible(self):
        from repro.topology.base import QueueConfig

        d = Dumbbell(DumbbellConfig(
            num_left=2, num_right=2, bottleneck_rate_bps=gbps(1),
            queue_config=QueueConfig(limit_bytes=8 * 1500),
        ))
        trace = PacketTrace()
        d.network.switches[Dumbbell.LEFT_SWITCH].add_tap(trace.switch_tap)
        TcpConnection(d.network, "h-l0", "h-r0", make_cc("cubic"),
                      size_bytes=400_000)
        TcpConnection(d.network, "h-l1", "h-r1", make_cc("cubic"),
                      size_bytes=400_000)
        d.network.run(until=1.0)
        assert trace.retransmission_count() > 0

    def test_host_tap_and_interarrivals(self):
        d, _ = self._dumbbell_with_trace()
        trace = PacketTrace()
        d.network.hosts["h-r0"].receive_taps.append(trace.host_tap)
        UdpFlow(d.network, "h-l0", "h-r0", rate_bps=mbps(120), total_bytes=15_000)
        d.network.run(until=0.1)
        gaps = trace.interarrival_times()
        # 1500 B at 120 Mbps = 100 us spacing.
        assert all(gap == pytest.approx(100e-6, rel=0.05) for gap in gaps)

    def test_max_records_truncates(self):
        d, _ = self._dumbbell_with_trace()
        trace = PacketTrace(max_records=5)
        d.network.hosts["h-r0"].receive_taps.append(trace.host_tap)
        UdpFlow(d.network, "h-l0", "h-r0", rate_bps=mbps(120), total_bytes=30_000)
        d.network.run(until=0.1)
        assert len(trace) == 5
        assert trace.truncated

    def test_rate_over_duration(self):
        d, trace = self._dumbbell_with_trace()
        UdpFlow(d.network, "h-l0", "h-r0", rate_bps=mbps(120), total_bytes=15_000)
        d.network.run(until=0.001)
        assert trace.rate_bps(0.001) == pytest.approx(
            sum(r.size for r in trace.records) * 8 / 0.001
        )

    def test_ce_fraction_zero_without_marks(self):
        d, trace = self._dumbbell_with_trace()
        UdpFlow(d.network, "h-l0", "h-r0", rate_bps=mbps(120), total_bytes=15_000)
        d.network.run(until=0.1)
        assert trace.ce_mark_fraction() == 0.0


class TestSerialization:
    def test_policy_round_trip(self):
        for policy in (drop_policy(), ecn_policy(12345)):
            clone = FeedbackPolicy.from_dict(policy.to_dict())
            assert clone == policy

    def test_policy_dict_is_json_safe(self):
        payload = json.dumps(ecn_policy(100).to_dict())
        assert FeedbackPolicy.from_dict(json.loads(payload)).ecn_threshold_bytes == 100

    def test_request_round_trip_absolute(self):
        request = AqRequest(
            entity="e", switch="s", position="ingress",
            absolute_rate_bps=5e9, policy=ecn_policy(1000),
            limit_bytes=42_000, record_delays=True,
        )
        clone = AqRequest.from_dict(json.loads(json.dumps(request.to_dict())))
        assert clone == request

    def test_request_round_trip_weighted(self):
        request = AqRequest(
            entity="e", switch="s", position="egress",
            weight=2.5, share_group="g",
        )
        clone = AqRequest.from_dict(request.to_dict())
        assert clone == request

    def test_invalid_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            AqRequest.from_dict(
                {"entity": "e", "switch": "s", "position": "sideways",
                 "weight": 1.0}
            )
        with pytest.raises(ConfigurationError):
            FeedbackPolicy.from_dict({"kind": "ecn"})  # missing threshold
