"""Tests for links, transmitters, hosts, switches, and topology wiring."""

import pytest

from repro.errors import ConfigurationError, RoutingError
from repro.net.host import Host
from repro.net.link import Link, Transmitter
from repro.net.packet import make_udp
from repro.queues.fifo import PhysicalFifoQueue
from repro.sim.engine import Simulator
from repro.topology.base import Network
from repro.topology.dumbbell import Dumbbell, DumbbellConfig
from repro.topology.star import Star, StarConfig
from repro.units import gbps, us


class _Collector:
    def __init__(self):
        self.packets = []

    def __call__(self, packet):
        self.packets.append(packet)

    def on_packet(self, packet, now):
        self.packets.append((packet, now))


class TestLinkAndTransmitter:
    def _make(self, rate=gbps(1), delay=us(10)):
        sim = Simulator()
        collector = _Collector()
        link = Link(sim, rate, delay, collector)
        queue = PhysicalFifoQueue(limit_bytes=1_000_000)
        tx = Transmitter(sim, queue, link)
        return sim, tx, collector

    def test_delivery_time_is_serialization_plus_propagation(self):
        sim, tx, collector = self._make(rate=gbps(1), delay=us(10))
        tx.offer(make_udp("a", "b", 1, 1250))  # 10 us serialization at 1G
        sim.run()
        assert len(collector.packets) == 1
        assert sim.now == pytest.approx(20e-6)

    def test_back_to_back_packets_paced_at_line_rate(self):
        sim, tx, collector = self._make(rate=gbps(1), delay=0.0)
        for _ in range(3):
            tx.offer(make_udp("a", "b", 1, 1250))
        sim.run()
        # Each 1250B packet takes 10us to serialize; deliveries at 10/20/30us.
        assert len(collector.packets) == 3

    def test_queue_overflow_drops(self):
        sim = Simulator()
        collector = _Collector()
        link = Link(sim, gbps(1), 0.0, collector)
        queue = PhysicalFifoQueue(limit_bytes=3000)
        tx = Transmitter(sim, queue, link)
        results = [tx.offer(make_udp("a", "b", 1, 1500)) for _ in range(4)]
        # First goes straight to the wire; two buffer; the rest drop.
        assert results[0] and results[1] and results[2]
        assert not results[3]

    def test_egress_hook_can_drop(self):
        sim, tx, collector = self._make()
        tx.add_egress_hook(lambda packet, now: packet.size < 1000)
        tx.offer(make_udp("a", "b", 1, 1500))
        tx.offer(make_udp("a", "b", 1, 500))
        sim.run()
        assert [p.size for p in collector.packets] == [500]

    def test_link_stats_count_deliveries(self):
        sim, tx, collector = self._make()
        tx.offer(make_udp("a", "b", 1, 1000))
        sim.run()
        link = tx.link
        assert link.stats.delivered_packets == 1
        assert link.stats.delivered_bytes == 1000
        assert link.stats.busy_time > 0

    def test_invalid_link_parameters(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            Link(sim, 0, 0.0, lambda p: None)
        with pytest.raises(ConfigurationError):
            Link(sim, gbps(1), -1.0, lambda p: None)


class TestHost:
    def test_demux_by_flow_id(self):
        sim = Simulator()
        host = Host(sim, "h1")
        a, b = _Collector(), _Collector()
        host.register_flow(1, a)
        host.register_flow(2, b)
        host.receive(make_udp("x", "h1", 1, 100))
        host.receive(make_udp("x", "h1", 2, 100))
        assert len(a.packets) == 1
        assert len(b.packets) == 1

    def test_duplicate_flow_registration_rejected(self):
        host = Host(Simulator(), "h1")
        host.register_flow(1, _Collector())
        with pytest.raises(ConfigurationError):
            host.register_flow(1, _Collector())

    def test_default_endpoint_catches_unknown_flows(self):
        host = Host(Simulator(), "h1")
        catcher = _Collector()
        host.set_default_endpoint(catcher)
        host.receive(make_udp("x", "h1", 99, 100))
        assert len(catcher.packets) == 1

    def test_misrouted_packet_raises(self):
        host = Host(Simulator(), "h1")
        with pytest.raises(RoutingError):
            host.receive(make_udp("x", "other-host", 1, 100))

    def test_receive_taps_see_every_packet(self):
        host = Host(Simulator(), "h1")
        seen = []
        host.receive_taps.append(lambda p, now: seen.append(p.flow_id))
        host.set_default_endpoint(_Collector())
        host.receive(make_udp("x", "h1", 7, 100))
        assert seen == [7]

    def test_unregister_flow(self):
        host = Host(Simulator(), "h1")
        collector = _Collector()
        host.register_flow(1, collector)
        host.unregister_flow(1)
        host.receive(make_udp("x", "h1", 1, 100))
        assert collector.packets == []


class TestNetworkWiring:
    def test_duplicate_node_names_rejected(self):
        net = Network()
        net.add_host("n1")
        with pytest.raises(ConfigurationError):
            net.add_switch("n1")

    def test_flow_ids_unique(self):
        net = Network()
        ids = {net.allocate_flow_id() for _ in range(100)}
        assert len(ids) == 100

    def test_routes_installed_on_dumbbell(self):
        d = Dumbbell(DumbbellConfig(num_left=2, num_right=2))
        left = d.network.switches[Dumbbell.LEFT_SWITCH]
        right = d.network.switches[Dumbbell.RIGHT_SWITCH]
        # Left switch reaches right hosts via the trunk.
        assert left.route_for("h-r0").link.name.endswith(Dumbbell.RIGHT_SWITCH)
        assert right.route_for("h-r0").link.name.endswith("h-r0")

    def test_unknown_route_raises(self):
        d = Dumbbell(DumbbellConfig(num_left=1, num_right=1))
        with pytest.raises(RoutingError):
            d.network.switches[Dumbbell.LEFT_SWITCH].route_for("nowhere")

    def test_end_to_end_delivery_across_dumbbell(self):
        d = Dumbbell(DumbbellConfig(num_left=1, num_right=1))
        sink = _Collector()
        d.network.hosts["h-r0"].set_default_endpoint(sink)
        d.network.hosts["h-l0"].send(make_udp("h-l0", "h-r0", 1, 1500))
        d.network.run(until=0.01)
        assert len(sink.packets) == 1

    def test_star_roundtrip(self):
        star = Star(StarConfig(num_hosts=3))
        sink = _Collector()
        star.network.hosts["vm2"].set_default_endpoint(sink)
        star.network.hosts["vm0"].send(make_udp("vm0", "vm2", 1, 1500))
        star.network.run(until=0.01)
        assert len(sink.packets) == 1

    def test_bottleneck_paces_at_configured_rate(self):
        d = Dumbbell(
            DumbbellConfig(num_left=1, num_right=1, bottleneck_rate_bps=gbps(1))
        )
        sink = _Collector()
        d.network.hosts["h-r0"].set_default_endpoint(sink)
        for _ in range(10):
            d.network.hosts["h-l0"].send(make_udp("h-l0", "h-r0", 1, 1250))
        d.network.run(until=0.01)
        times = [now for _, now in sink.packets]
        gaps = [b - a for a, b in zip(times, times[1:])]
        # 1250 B at 1 Gbps = 10 us per packet on the trunk.
        assert all(gap == pytest.approx(10e-6) for gap in gaps)

    def test_ingress_hook_drop_counted(self):
        d = Dumbbell(DumbbellConfig(num_left=1, num_right=1))
        switch = d.network.switches[Dumbbell.LEFT_SWITCH]
        switch.add_ingress_hook(lambda packet, now: False)
        d.network.hosts["h-l0"].send(make_udp("h-l0", "h-r0", 1, 1500))
        d.network.run(until=0.01)
        assert switch.stats.ingress_dropped_packets == 1
        assert switch.stats.forwarded_packets == 0

    def test_base_rtt_matches_topology(self):
        d = Dumbbell(DumbbellConfig(prop_delay=us(10)))
        assert d.base_rtt() == pytest.approx(60e-6)
        star = Star(StarConfig(prop_delay=us(10)))
        assert star.base_rtt() == pytest.approx(40e-6)
