"""Tests for meters, percentiles, and fairness metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.stats.fairness import entity_fairness, jain_index, throughput_ratio
from repro.stats.meters import CompletionTracker, ThroughputMeter, percentile


class TestThroughputMeter:
    def test_windowed_rate(self):
        sim = Simulator()
        meter = ThroughputMeter(sim, interval=0.01)
        # 12500 bytes in the first 10 ms window = 10 Mbps.
        sim.schedule(0.004, meter.add, 12_500)
        sim.run(until=0.025)
        assert meter.samples[0][1] == pytest.approx(10e6)
        assert meter.samples[1][1] == 0.0

    def test_mean_rate_over_interval(self):
        sim = Simulator()
        meter = ThroughputMeter(sim, interval=0.01)
        for k in range(5):
            sim.schedule(k * 0.01 + 0.001, meter.add, 12_500)
        sim.run(until=0.05)
        assert meter.mean_rate() == pytest.approx(10e6)
        assert meter.mean_rate(after=0.02, before=0.04) == pytest.approx(10e6)

    def test_rate_range_percentiles(self):
        sim = Simulator()
        meter = ThroughputMeter(sim, interval=0.01)
        volumes = [1000, 2000, 3000, 4000, 100000]
        for k, volume in enumerate(volumes):
            sim.schedule(k * 0.01 + 0.001, meter.add, volume)
        sim.run(until=0.05)
        low, high = meter.rate_range(low_percentile=0, high_percentile=50)
        assert low == pytest.approx(1000 * 8 / 0.01)
        assert high == pytest.approx(3000 * 8 / 0.01)

    def test_total_bytes_accumulate(self):
        sim = Simulator()
        meter = ThroughputMeter(sim, interval=0.01)
        meter.add(100)
        meter.add(200)
        assert meter.total_bytes == 300

    def test_stop_halts_sampling(self):
        sim = Simulator()
        meter = ThroughputMeter(sim, interval=0.01)
        sim.run(until=0.015)
        meter.stop()
        sim.run(until=0.1)
        assert len(meter.samples) == 1

    def test_invalid_interval(self):
        with pytest.raises(ConfigurationError):
            ThroughputMeter(Simulator(), interval=0.0)

    def test_stop_flushes_final_partial_window(self):
        sim = Simulator()
        meter = ThroughputMeter(sim, interval=0.01)
        # One full window, then 12500 bytes across a 5 ms tail.
        sim.schedule(0.002, meter.add, 12_500)
        sim.schedule(0.014, meter.add, 12_500)
        sim.run(until=0.015)
        meter.stop()
        assert len(meter.samples) == 2
        end, rate = meter.samples[-1]
        assert end == pytest.approx(0.015)
        assert rate == pytest.approx(12_500 * 8 / 0.005)  # 20 Mbps tail

    def test_add_records_explicit_delivery_time(self):
        # on_deliver hooks pass (nbytes, now); stop() must honour a
        # delivery time ahead of the last processed event.
        sim = Simulator()
        meter = ThroughputMeter(sim, interval=1.0)
        meter.add(1000, 0.5)
        meter.stop()
        assert meter.samples == [(0.5, pytest.approx(1000 * 8 / 0.5))]

    def test_stop_discards_sub_percent_tail(self):
        sim = Simulator()
        meter = ThroughputMeter(sim, interval=0.01)
        sim.schedule(0.01 + 1e-6, meter.add, 1000)
        sim.run(until=0.01 + 2e-6)
        meter.stop()
        # The 1-2 us tail would read as gigabits; it must be dropped.
        assert len(meter.samples) == 1

    def test_stop_is_idempotent(self):
        sim = Simulator()
        meter = ThroughputMeter(sim, interval=0.01)
        sim.schedule(0.002, meter.add, 1000)
        sim.run(until=0.005)
        meter.stop()
        meter.stop()
        assert len(meter.samples) == 1


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_interpolation(self):
        assert percentile([0, 10], 25) == pytest.approx(2.5)

    def test_extremes(self):
        values = [5, 1, 9, 3]
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 9

    def test_single_value(self):
        assert percentile([7.5], 95) == 7.5
        assert percentile([7.5], 0) == 7.5
        assert percentile([7.5], 100) == 7.5

    def test_exact_rank_no_interpolation(self):
        # pct landing exactly on an index must return that element.
        assert percentile([1, 2, 3, 4, 5], 25) == 2

    def test_result_clamped_to_data_range(self):
        # Float round-off in rank arithmetic must never escape [min, max].
        values = [0.1] * 3 + [0.3]
        for pct in (0, 33.333333, 66.666666, 99.999999, 100):
            assert 0.1 <= percentile(values, pct) <= 0.3

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            percentile([], 50)
        with pytest.raises(ConfigurationError):
            percentile([1], 101)

    @given(
        st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50),
        st.floats(min_value=0, max_value=100),
    )
    @settings(max_examples=100, deadline=None)
    def test_bounded_by_min_max(self, values, pct):
        result = percentile(values, pct)
        assert min(values) <= result <= max(values)


class TestCompletionTracker:
    def test_tracks_last_completion(self):
        tracker = CompletionTracker(expected=3)
        for t in (0.1, 0.5, 0.3):
            tracker.on_complete(None, t)
        assert tracker.all_done
        assert tracker.workload_completion_time() == 0.3  # last event's time

    def test_incomplete_raises(self):
        tracker = CompletionTracker(expected=2)
        tracker.on_complete(None, 0.1)
        assert not tracker.all_done
        with pytest.raises(ConfigurationError):
            tracker.workload_completion_time()

    def test_invalid_expected(self):
        with pytest.raises(ConfigurationError):
            CompletionTracker(expected=0)


class TestFairness:
    def test_jain_perfect(self):
        assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_jain_maximally_unfair(self):
        assert jain_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_jain_all_zero(self):
        assert jain_index([0, 0]) == 1.0

    def test_jain_validation(self):
        with pytest.raises(ConfigurationError):
            jain_index([])
        with pytest.raises(ConfigurationError):
            jain_index([-1, 2])

    @given(st.lists(st.floats(min_value=0, max_value=1e9), min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_jain_bounds(self, values):
        index = jain_index(values)
        assert 1.0 / len(values) - 1e-9 <= index <= 1.0 + 1e-9

    def test_entity_fairness_symmetric(self):
        assert entity_fairness(2.0, 4.0) == entity_fairness(4.0, 2.0) == 0.5

    def test_entity_fairness_equal(self):
        assert entity_fairness(3.0, 3.0) == 1.0

    def test_entity_fairness_validation(self):
        with pytest.raises(ConfigurationError):
            entity_fairness(0.0, 1.0)

    def test_throughput_ratio(self):
        assert throughput_ratio(1e9, 2e9) == 0.5
        assert throughput_ratio(0.0, 0.0) == 1.0
        with pytest.raises(ConfigurationError):
            throughput_ratio(-1.0, 1.0)
