"""Tests for the mixed-traffic sharded fabric (harness.fabric, traffic
"mixed"): TCP tenants behind AQ slices, a UDP aggressor, open-loop
web-search arrivals, and mid-run AQ churn — all crossing shard cuts.

The load-bearing property is the same determinism contract as the static
matrix (docs/SCALING.md): bit-identical ``fabric_digest`` at any shard
count, audit-clean, now with dynamic flows whose data AND ack packets
traverse the boundary machinery, TCP retransmissions across cut links
under blackout, and AQ grants withdrawn/rebalanced mid-run. On top of
that the observability plane must survive failure: a crashed partition
leaves a ``status="failed"`` manifest with the traceback indexed, and
``fabric-status --follow`` terminates once the manifest leaves
``running``.
"""

import json
import os
import threading

import pytest

from repro.cli import main
from repro.errors import ShardError
from repro.faults.plan import link_blackout_plan
from repro.harness.fabric import (
    fabric_config,
    fabric_fct_summary,
    fabric_mixed_spec,
    run_share_fabric,
)
from repro.obs.flightrec import read_flights_jsonl
from repro.obs.runledger import RunLedger, load_manifest

#: 4 pods x 1 ToR x 2 hosts: big enough for 4 shards and 2 tenants with
#: cross-pod members, small enough for tier-1 wall clocks.
TOPO = dict(pods=4, tors_per_pod=1, hosts_per_tor=2, num_cores=2)
MIXED = dict(TOPO, traffic="mixed", num_tenants=2, churn=True)
DURATION = 1.5e-3


@pytest.fixture(scope="module")
def runs(tmp_path_factory):
    """Mixed traffic with churn at 1, 2, and 4 shards; the 2-shard run
    writes a full run ledger so the FCT summary's path into
    ``metrics.json`` is covered too."""
    tmp = tmp_path_factory.mktemp("mixedruns")
    out = {}
    for shards in (1, 2, 4):
        kwargs = dict(MIXED)
        if shards == 2:
            kwargs["run_dir"] = str(tmp / "ledgered")
        out[shards] = run_share_fabric(
            shards, DURATION, inline=True, audit=True, **kwargs
        )
    return out


class TestMixedSpec:
    def test_spec_is_deterministic(self):
        config = fabric_config(**TOPO)
        a = fabric_mixed_spec(config, 1e-3, churn=True, num_tenants=2)
        b = fabric_mixed_spec(config, 1e-3, churn=True, num_tenants=2)
        assert a == b
        assert a["tcp_flows"], "no TCP arrivals generated"
        assert a["udp_flows"], "no UDP aggressor flows generated"

    def test_flow_ids_dense_and_unique(self):
        config = fabric_config(**TOPO)
        spec = fabric_mixed_spec(config, 1e-3, num_tenants=2)
        ids = [f["flow_id"] for f in spec["udp_flows"] + spec["tcp_flows"]]
        assert ids == list(range(1, len(ids) + 1))

    def test_churn_gap_has_no_leaver_arrivals(self):
        config = fabric_config(**TOPO)
        arrival_s = 2e-3
        spec = fabric_mixed_spec(
            config, arrival_s, churn=True, num_tenants=2
        )
        leaver = spec["num_tenants"] - 1
        leave_t, rejoin_t = 0.4 * arrival_s, 0.7 * arrival_s
        gap = [
            f for f in spec["tcp_flows"]
            if f["tenant"] == leaver
            and leave_t <= f["start_time"] < rejoin_t
        ]
        assert gap == []
        # The schedule withdraws exactly the leaver's slices, then
        # redeploys the same ids, with survivor rates rebalanced.
        withdraw, deploy = spec["churn"]
        assert withdraw["time"] == pytest.approx(leave_t)
        assert deploy["time"] == pytest.approx(rejoin_t)
        assert withdraw["withdraw"] == deploy["deploy"]
        leaver_ids = {
            s["aq_id"] for s in spec["aq_slices"] if s["tenant"] == leaver
        }
        assert set(withdraw["withdraw"]) == leaver_ids
        assert withdraw["rates"], "survivor slices must be rebalanced"

    def test_every_tenant_gets_at_least_two_hosts(self):
        config = fabric_config(pods=2, tors_per_pod=1, hosts_per_tor=1)
        with pytest.raises(Exception):
            fabric_mixed_spec(config, 1e-3, num_tenants=3)


class TestMixedEquivalence:
    def test_digest_identical_across_shard_counts(self, runs):
        digests = {k: r["digest"] for k, r in runs.items()}
        assert len(set(digests.values())) == 1, digests

    def test_audit_clean_at_every_shard_count(self, runs):
        for shards, run in runs.items():
            assert run["audit"]["violation_count"] == 0, shards

    def test_boundary_really_carries_tcp_and_acks(self, runs):
        # Dynamic traffic must actually cross the cuts, not route around
        # them — otherwise the digest equality above proves nothing.
        assert runs[4]["boundary"]["exported"] > 0
        assert runs[4]["results"]["tcp"], "no TCP flows in the results"
        assert runs[4]["results"]["tcp_recv"]

    def test_fct_summary_per_tenant(self, runs):
        fct = runs[2]["fct"]
        assert set(fct["tenants"]) == {"0", "1"}
        overall = fct["overall"]
        assert overall["completed"] > 0
        assert overall["slowdown"]["p50"] >= 1.0
        assert overall["slowdown"]["p99"] >= overall["slowdown"]["p50"]
        assert 0.0 < fct["fairness"]["jain_goodput"] <= 1.0
        for stats in fct["tenants"].values():
            assert stats["flows"] >= stats["completed"]
            assert stats["goodput_bytes"] > 0

    def test_fct_summary_matches_recomputation(self, runs):
        config = fabric_config(**TOPO)
        assert runs[2]["fct"] == fabric_fct_summary(
            runs[2]["results"], config
        )

    def test_aq_slices_saw_traffic_and_marked(self, runs):
        aq = runs[2]["results"]["aq"]
        assert sum(row[0] for row in aq.values()) > 0  # arrived packets
        # dctcp policy behind an aggressor: some marking must happen.
        assert sum(row[3] for row in aq.values()) > 0

    def test_fct_lands_in_run_ledger_metrics(self, runs):
        run_dir, manifest = load_manifest(runs[2]["run_dir"])
        assert manifest["status"] == "complete"
        with open(os.path.join(run_dir, "metrics.json")) as fh:
            metrics = json.load(fh)
        assert metrics["fct"] == runs[2]["fct"]


class TestRetransmissionAcrossCut:
    """Satellite: a TCP flow spanning a blacked-out cut link must
    retransmit identically at 1 and 2 shards, audit-clean, with the
    retransmissions attributed in the stitched flight records."""

    @pytest.fixture(scope="class")
    def blackout(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("blackout")
        plan = link_blackout_plan("agg0->core0", 0.3e-3, 1.0e-3).to_dict()
        # num_cores=1 forces every cross-pod packet through the cut.
        kwargs = dict(
            pods=2, tors_per_pod=1, hosts_per_tor=2, num_cores=1,
            traffic="mixed", num_tenants=2, load=0.6,
        )
        out = {}
        for shards in (1, 2):
            out[shards] = run_share_fabric(
                shards, 4e-3, inline=True, audit=True, fault_plan=plan,
                run_dir=str(tmp / f"s{shards}"),
                flight_dir=str(tmp / f"s{shards}" / "flights"),
                **kwargs,
            )
        return out

    def test_digest_and_audit_survive_blackout(self, blackout):
        assert blackout[1]["digest"] == blackout[2]["digest"]
        for run in blackout.values():
            assert run["audit"]["violation_count"] == 0

    def test_retransmissions_happened_and_merged(self, blackout):
        tcp = blackout[2]["results"]["tcp"]
        assert sum(row[4] for row in tcp.values()) > 0  # retransmissions
        fct = blackout[2]["fct"]
        assert sum(
            t["retransmissions"] for t in fct["tenants"].values()
        ) > 0

    def test_stitched_flights_attribute_retransmissions(self, blackout):
        for shards in (1, 2):
            flights = list(read_flights_jsonl(
                blackout[shards]["flights_stitched_path"]
            ))
            retransmitted = [f for f in flights if f.retransmission]
            assert retransmitted, f"shards={shards}"
            # At least one retransmitted data packet crossed the cut
            # link itself (its hop chain includes the cut hop).
            assert any(
                any(h.node == "agg0->core0" for h in f.hops)
                for f in retransmitted
            ), f"shards={shards}"

    def test_flight_roundtrip_preserves_retransmission_flag(self, blackout):
        from repro.obs.flightrec import Flight

        flights = list(read_flights_jsonl(
            blackout[2]["flights_stitched_path"]
        ))
        sample = next(f for f in flights if f.retransmission)
        assert Flight.from_dict(sample.to_dict()).retransmission is True
        plain = next(f for f in flights if not f.retransmission)
        assert "retransmission" not in plain.to_dict()


class TestCrashDrill:
    """Satellite: a partition dying mid-epoch must leave the run ledger
    at ``status="failed"`` with the traceback indexed — never a manifest
    stuck at ``running``."""

    def test_inline_crash_finalizes_manifest_failed(self, tmp_path):
        run_dir = str(tmp_path / "crash-inline")
        with pytest.raises(RuntimeError, match="injected partition failure"):
            run_share_fabric(
                1, 1e-3, inline=True, run_dir=run_dir,
                fail_at_s=0.5e-3, **TOPO,
            )
        _, manifest = load_manifest(run_dir)
        assert manifest["status"] == "failed"
        assert manifest["error"]["type"] == "RuntimeError"
        assert "injected partition failure" in manifest["error"]["message"]
        assert "injected partition failure" in manifest["error"]["traceback"]

    def test_spawn_worker_failure_indexed_in_manifest(self, tmp_path):
        run_dir = str(tmp_path / "crash-spawn")
        with pytest.raises(ShardError, match="injected partition failure"):
            run_share_fabric(
                2, 1e-3, inline=False, run_dir=run_dir,
                fail_at_s=0.5e-3, fail_partition=1, **TOPO,
            )
        _, manifest = load_manifest(run_dir)
        assert manifest["status"] == "failed"
        failed = [
            w for w in manifest["workers"] if w["status"] == "failed"
        ]
        assert [w["partition"] for w in failed] == [1]
        assert "injected partition failure" in failed[0]["error"]


class TestFabricStatusFollow:
    """Satellite: ``repro fabric-status --follow`` must exit 0 as soon
    as the manifest leaves ``running`` — complete or failed — instead of
    polling forever. All three tests are timeout-free."""

    def _ledger(self, tmp_path, name) -> RunLedger:
        ledger = RunLedger(str(tmp_path / name))
        ledger.begin({"scenario": "share-fabric", "shards": 1,
                      "mode": "inline"})
        return ledger

    def test_follow_exits_zero_on_completed_run(self, tmp_path):
        ledger = self._ledger(tmp_path, "done")
        ledger.finalize({"scenario": "share-fabric", "shards": 1,
                         "mode": "inline"})
        assert main(["fabric-status", ledger.run_dir, "--follow",
                     "--interval", "0.01"]) == 0

    def test_follow_exits_zero_and_renders_failure(self, tmp_path, capsys):
        ledger = self._ledger(tmp_path, "failed")
        ledger.finalize(
            {
                "scenario": "share-fabric", "shards": 2, "mode": "spawn",
                "error": {"type": "ShardError",
                          "message": "shard worker 1 failed"},
                "workers": [
                    {"partition": 0, "status": "ok"},
                    {"partition": 1, "status": "failed",
                     "error": "Traceback ...\nRuntimeError: boom"},
                ],
            },
            status="failed",
        )
        assert main(["fabric-status", ledger.run_dir, "--follow",
                     "--interval", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "[failed]" in out
        assert "shard worker 1 failed" in out
        assert "partition 1: RuntimeError: boom" in out

    def test_follow_polls_until_manifest_flips(self, tmp_path):
        ledger = self._ledger(tmp_path, "live")

        def flip():
            ledger.finalize({"scenario": "share-fabric", "shards": 1,
                             "mode": "inline"})

        timer = threading.Timer(0.05, flip)
        timer.start()
        try:
            assert main(["fabric-status", ledger.run_dir, "--follow",
                         "--interval", "0.01"]) == 0
        finally:
            timer.cancel()
        _, manifest = load_manifest(ledger.run_dir)
        assert manifest["status"] == "complete"
