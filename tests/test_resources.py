"""Tests for the Tofino resource model (Figures 11-12)."""

import pytest

from repro.core.resources import (
    AQ_RECORD_BYTES,
    ResourceUsage,
    max_aqs_in_sram,
    memory_for_aqs,
    memory_series,
    tofino_usage,
)
from repro.errors import ConfigurationError


class TestRecordLayout:
    def test_record_is_fifteen_bytes(self):
        # Section 5.5: "Each AQ requires 15 bytes in total".
        assert AQ_RECORD_BYTES == 15

    def test_memory_linear_in_aq_count(self):
        assert memory_for_aqs(0) == 0
        assert memory_for_aqs(1) == 15
        assert memory_for_aqs(1_000_000) == 15_000_000

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            memory_for_aqs(-1)


class TestScalabilityClaims:
    def test_millions_fit_in_default_sram(self):
        assert max_aqs_in_sram() > 1_000_000

    def test_custom_sram_budget(self):
        assert max_aqs_in_sram(15_000) == 1000

    def test_invalid_sram_rejected(self):
        with pytest.raises(ConfigurationError):
            max_aqs_in_sram(0)

    def test_memory_series_in_megabytes(self):
        series = memory_series([1_000_000])
        assert series[1_000_000] == pytest.approx(15_000_000 / (1024 * 1024))


class TestUsageModel:
    def test_paper_reported_percentages(self):
        by_name = {u.resource: u.used_percent for u in tofino_usage()}
        assert by_name["pipeline stages"] == 16.8
        assert by_name["MAUs"] == 12.5
        assert by_name["PHV size"] == 7.5

    def test_every_entry_documented(self):
        for usage in tofino_usage():
            assert isinstance(usage, ResourceUsage)
            assert usage.explanation
            assert 0 < usage.used_percent < 100
