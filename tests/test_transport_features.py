"""Tests for delayed ACKs, path deployment, and transport robustness
properties (random-loss reliability)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc.registry import make_cc
from repro.core.controller import AqController, AqRequest
from repro.core.feedback import delay_policy
from repro.errors import ConfigurationError, TransportError
from repro.net.packet import make_udp
from repro.topology.dumbbell import Dumbbell, DumbbellConfig
from repro.topology.leafspine import LeafSpine, LeafSpineConfig
from repro.transport.tcp import TcpConnection, TcpReceiver
from repro.units import gbps


def dumbbell(rate=gbps(1)):
    return Dumbbell(DumbbellConfig(num_left=2, num_right=2,
                                   bottleneck_rate_bps=rate))


class TestDelayedAcks:
    def test_flow_completes_with_delayed_acks(self):
        d = dumbbell()
        conn = TcpConnection(
            d.network, "h-l0", "h-r0", make_cc("cubic"),
            size_bytes=400_000, ack_every=2,
        )
        d.network.run(until=1.0)
        assert conn.completed
        assert conn.receiver.delivered_bytes == 400_000

    def test_delayed_acks_send_fewer_acks(self):
        d1 = dumbbell()
        c1 = TcpConnection(d1.network, "h-l0", "h-r0", make_cc("cubic"),
                           size_bytes=300_000, ack_every=1)
        d1.network.run(until=1.0)
        d2 = dumbbell()
        c2 = TcpConnection(d2.network, "h-l0", "h-r0", make_cc("cubic"),
                           size_bytes=300_000, ack_every=4)
        d2.network.run(until=1.0)
        assert c1.completed and c2.completed
        assert c2.receiver.acks_sent < 0.6 * c1.receiver.acks_sent

    def test_out_of_order_still_generates_dup_acks(self):
        # Heavy loss forces retransmissions; with delayed ACKs the flow
        # must still complete (dup-ACKs fire immediately on reordering).
        from repro.topology.base import QueueConfig

        d = Dumbbell(DumbbellConfig(
            num_left=2, num_right=2, bottleneck_rate_bps=gbps(1),
            queue_config=QueueConfig(limit_bytes=10 * 1500),
        ))
        c1 = TcpConnection(d.network, "h-l0", "h-r0", make_cc("cubic"),
                           size_bytes=300_000, ack_every=2)
        c2 = TcpConnection(d.network, "h-l1", "h-r1", make_cc("cubic"),
                           size_bytes=300_000, ack_every=2)
        d.network.run(until=2.0)
        assert c1.completed and c2.completed

    def test_invalid_ack_every(self):
        d = dumbbell()
        with pytest.raises(TransportError):
            TcpReceiver(d.network.sim, d.network.hosts["h-r0"], "h-l0",
                        999, ack_every=0)


class TestRandomLossReliability:
    """Property: TCP delivers everything under arbitrary (bounded) random
    ingress loss — the transport's core invariant."""

    @given(
        drop_rate=st.floats(min_value=0.0, max_value=0.25),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=12, deadline=None)
    def test_delivery_under_random_drops(self, drop_rate, seed):
        import random

        d = dumbbell()
        rng = random.Random(seed)
        d.network.switches[Dumbbell.LEFT_SWITCH].add_ingress_hook(
            lambda p, now: not (p.is_data and rng.random() < drop_rate)
        )
        conn = TcpConnection(d.network, "h-l0", "h-r0", make_cc("newreno"),
                             size_bytes=60_000)
        d.network.run(until=5.0)
        assert conn.completed
        assert conn.receiver.delivered_bytes == 60_000


class TestRequestPath:
    def test_single_id_deployed_at_every_hop(self):
        fab = LeafSpine(LeafSpineConfig(num_leaves=2, num_spines=1,
                                        hosts_per_leaf=1))
        controller = AqController(fab.network)
        controller.register_resource("path", gbps(10))
        grants = controller.request_path(
            AqRequest(entity="e", switch="leaf0", position="ingress",
                      absolute_rate_bps=gbps(1), share_group="path",
                      policy=delay_policy(), limit_bytes=10_000_000),
            switches=["leaf0", "spine0"],
        )
        assert len(grants) == 2
        assert grants[0].aq_id == grants[1].aq_id
        assert grants[0].aq is not grants[1].aq  # independent per-hop state

        received = []
        fab.network.hosts["h1-0"].set_default_endpoint(
            type("S", (), {"on_packet": lambda s, p, now: received.append(p)})()
        )
        for _ in range(8):
            packet = make_udp("h0-0", "h1-0", 3, 1500)
            packet.aq_ingress_id = grants[0].aq_id
            fab.network.hosts["h0-0"].send(packet)
        fab.network.run(until=0.05)
        # Both hops contributed virtual delay.
        assert received[-1].virtual_delay > received[0].virtual_delay
        assert grants[0].aq.stats.arrived_packets == 8
        assert grants[1].aq.stats.arrived_packets == 8

    def test_withdraw_path_clears_all_hops(self):
        fab = LeafSpine(LeafSpineConfig(num_leaves=2, num_spines=1,
                                        hosts_per_leaf=1))
        controller = AqController(fab.network)
        controller.register_resource("path", gbps(10))
        grants = controller.request_path(
            AqRequest(entity="e", switch="leaf0", position="ingress",
                      absolute_rate_bps=1e6, share_group="path",
                      limit_bytes=3000),
            switches=["leaf0", "spine0"],
        )
        controller.withdraw_path(grants)
        received = []
        fab.network.hosts["h1-0"].set_default_endpoint(
            type("S", (), {"on_packet": lambda s, p, now: received.append(p)})()
        )
        for i in range(20):
            packet = make_udp("h0-0", "h1-0", 3, 1500)
            packet.aq_ingress_id = grants[0].aq_id
            fab.network.sim.schedule_at(
                i * 1e-5, fab.network.hosts["h0-0"].send, packet
            )
        fab.network.run(until=0.05)
        assert len(received) == 20  # nothing enforced anymore

    def test_empty_switch_list_rejected(self):
        fab = LeafSpine(LeafSpineConfig())
        controller = AqController(fab.network)
        controller.register_resource("path", gbps(10))
        with pytest.raises(ConfigurationError):
            controller.request_path(
                AqRequest(entity="e", switch="leaf0", position="ingress",
                          absolute_rate_bps=1e6, share_group="path"),
                switches=[],
            )
