"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import PeriodicTask, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.3, fired.append, "c")
        sim.schedule(0.1, fired.append, "a")
        sim.schedule(0.2, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        fired = []
        for label in "abcde":
            sim.schedule(0.5, fired.append, label)
        sim.run()
        assert fired == list("abcde")

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(0.25, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [0.25]

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        sim.schedule(0.1, lambda: None)
        sim.run()
        event_times = []
        sim.schedule_at(0.5, lambda: event_times.append(sim.now))
        sim.run()
        assert event_times == [0.5]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_scheduling_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(0.1, chain, n + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == pytest.approx(0.3)


class TestRunUntil:
    def test_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.1, fired.append, "early")
        sim.schedule(0.9, fired.append, "late")
        sim.run(until=0.5)
        assert fired == ["early"]
        assert sim.now == 0.5

    def test_later_events_survive_for_next_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.9, fired.append, "late")
        sim.run(until=0.5)
        sim.run(until=1.0)
        assert fired == ["late"]

    def test_clock_advances_to_until_even_when_empty(self):
        sim = Simulator()
        sim.run(until=2.0)
        assert sim.now == 2.0

    def test_max_events_caps_execution(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(0.1 * (i + 1), fired.append, i)
        processed = sim.run(max_events=4)
        assert processed == 4
        assert fired == [0, 1, 2, 3]

    def test_run_returns_processed_count(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(0.1, lambda: None)
        assert sim.run() == 5


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(0.1, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(0.1, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()

    def test_cancelled_events_not_counted_pending(self):
        sim = Simulator()
        e1 = sim.schedule(0.1, lambda: None)
        sim.schedule(0.2, lambda: None)
        e1.cancel()
        assert sim.pending_events() == 1

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        e1 = sim.schedule(0.1, lambda: None)
        sim.schedule(0.7, lambda: None)
        e1.cancel()
        assert sim.peek_time() == pytest.approx(0.7)

    def test_peek_time_empty_calendar(self):
        assert Simulator().peek_time() is None


class TestPeriodicTask:
    def test_fires_every_interval(self):
        sim = Simulator()
        ticks = []
        PeriodicTask(sim, 0.1, lambda: ticks.append(sim.now))
        sim.run(until=0.35)
        assert ticks == [pytest.approx(0.1), pytest.approx(0.2), pytest.approx(0.3)]

    def test_stop_prevents_future_fires(self):
        sim = Simulator()
        ticks = []
        task = PeriodicTask(sim, 0.1, lambda: ticks.append(sim.now))
        sim.run(until=0.15)
        task.stop()
        sim.run(until=1.0)
        assert len(ticks) == 1

    def test_stop_from_inside_callback(self):
        sim = Simulator()
        ticks = []

        def tick():
            ticks.append(sim.now)
            if len(ticks) == 2:
                task.stop()

        task = PeriodicTask(sim, 0.1, tick)
        sim.run(until=1.0)
        assert len(ticks) == 2

    def test_custom_start_delay(self):
        sim = Simulator()
        ticks = []
        PeriodicTask(sim, 0.1, lambda: ticks.append(sim.now), start_delay=0.0)
        sim.run(until=0.25)
        assert ticks[0] == pytest.approx(0.0)

    def test_non_positive_interval_rejected(self):
        with pytest.raises(SimulationError):
            PeriodicTask(Simulator(), 0.0, lambda: None)

    def test_run_not_reentrant(self):
        sim = Simulator()

        def nested():
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule(0.1, nested)
        sim.run()
