"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import PeriodicTask, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.3, fired.append, "c")
        sim.schedule(0.1, fired.append, "a")
        sim.schedule(0.2, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        fired = []
        for label in "abcde":
            sim.schedule(0.5, fired.append, label)
        sim.run()
        assert fired == list("abcde")

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(0.25, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [0.25]

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        sim.schedule(0.1, lambda: None)
        sim.run()
        event_times = []
        sim.schedule_at(0.5, lambda: event_times.append(sim.now))
        sim.run()
        assert event_times == [0.5]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_scheduling_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(0.1, chain, n + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == pytest.approx(0.3)


class TestRunUntil:
    def test_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.1, fired.append, "early")
        sim.schedule(0.9, fired.append, "late")
        sim.run(until=0.5)
        assert fired == ["early"]
        assert sim.now == 0.5

    def test_later_events_survive_for_next_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.9, fired.append, "late")
        sim.run(until=0.5)
        sim.run(until=1.0)
        assert fired == ["late"]

    def test_clock_advances_to_until_even_when_empty(self):
        sim = Simulator()
        sim.run(until=2.0)
        assert sim.now == 2.0

    def test_max_events_caps_execution(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(0.1 * (i + 1), fired.append, i)
        processed = sim.run(max_events=4)
        assert processed == 4
        assert fired == [0, 1, 2, 3]

    def test_run_returns_processed_count(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(0.1, lambda: None)
        assert sim.run() == 5

    def test_max_events_does_not_advance_clock_to_until(self):
        # Regression: run(until=..., max_events=...) used to jump the clock
        # to `until` even when the cap fired mid-calendar, so the next
        # run() would refuse to schedule "in the past".
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(0.1 * (i + 1), fired.append, i)
        processed = sim.run(until=1.0, max_events=4)
        assert processed == 4
        assert sim.now == pytest.approx(0.4)
        # The remaining events are still runnable from where we stopped.
        sim.run(until=1.0)
        assert fired == list(range(10))
        assert sim.now == 1.0

    def test_until_still_advances_clock_when_cap_not_hit(self):
        sim = Simulator()
        sim.schedule(0.1, lambda: None)
        sim.run(until=2.0, max_events=5)
        assert sim.now == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(0.1, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(0.1, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()

    def test_cancelled_events_not_counted_pending(self):
        sim = Simulator()
        e1 = sim.schedule(0.1, lambda: None)
        sim.schedule(0.2, lambda: None)
        e1.cancel()
        assert sim.pending_events() == 1

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        e1 = sim.schedule(0.1, lambda: None)
        sim.schedule(0.7, lambda: None)
        e1.cancel()
        assert sim.peek_time() == pytest.approx(0.7)

    def test_peek_time_empty_calendar(self):
        assert Simulator().peek_time() is None


class TestHeapCompaction:
    def test_mass_cancellation_compacts_calendar(self):
        sim = Simulator()
        events = [sim.schedule(0.1 * (i + 1), lambda: None) for i in range(200)]
        for event in events[:150]:
            event.cancel()
        # >50% tombstones on a >=64-slot heap triggers an in-place rebuild;
        # afterwards tombstones may accumulate again but never outnumber
        # the live events.
        assert sim.compactions >= 1
        assert sim.pending_events() == 50
        tombstones = sim.calendar_size() - sim.pending_events()
        assert tombstones <= sim.pending_events()

    def test_small_calendars_are_not_compacted(self):
        sim = Simulator()
        events = [sim.schedule(0.1, lambda: None) for i in range(20)]
        for event in events:
            event.cancel()
        assert sim.compactions == 0

    def test_order_preserved_across_compaction(self):
        sim = Simulator()
        fired = []
        keep = []
        cancel = []
        for i in range(300):
            event = sim.schedule(0.001 * (i + 1), fired.append, i)
            (cancel if i % 3 else keep).append((i, event))
        for _, event in cancel:
            event.cancel()
        assert sim.compactions >= 1
        sim.run()
        assert fired == [i for i, _ in keep]

    def test_compaction_during_run_is_safe(self):
        sim = Simulator()
        fired = []
        victims = []

        def cancel_most():
            for event in victims:
                event.cancel()

        sim.schedule(0.01, cancel_most)
        for i in range(200):
            victims.append(sim.schedule(1.0 + 0.01 * i, fired.append, i))
        survivor = sim.schedule(5.0, fired.append, "end")
        del survivor
        sim.run()
        assert fired == ["end"]


class TestScheduleFire:
    def test_fire_and_forget_executes(self):
        sim = Simulator()
        fired = []
        sim.schedule_fire(0.2, fired.append, "b")
        sim.schedule_fire(0.1, fired.append, "a")
        sim.run()
        assert fired == ["a", "b"]

    def test_events_are_recycled(self):
        sim = Simulator()
        count = [0]

        def chain():
            count[0] += 1
            if count[0] < 100:
                sim.schedule_fire(0.01, chain)

        sim.schedule_fire(0.01, chain)
        sim.run()
        assert count[0] == 100
        # The whole chain should have been served by a handful of pooled
        # Event objects, not 100 fresh allocations.
        assert len(sim._free) <= 2

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_fire(-0.1, lambda: None)

    def test_interleaves_deterministically_with_schedule(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.1, fired.append, "handle")
        sim.schedule_fire(0.1, fired.append, "fire")
        sim.run()
        assert fired == ["handle", "fire"]


class TestPeriodicTask:
    def test_fires_every_interval(self):
        sim = Simulator()
        ticks = []
        PeriodicTask(sim, 0.1, lambda: ticks.append(sim.now))
        sim.run(until=0.35)
        assert ticks == [pytest.approx(0.1), pytest.approx(0.2), pytest.approx(0.3)]

    def test_stop_prevents_future_fires(self):
        sim = Simulator()
        ticks = []
        task = PeriodicTask(sim, 0.1, lambda: ticks.append(sim.now))
        sim.run(until=0.15)
        task.stop()
        sim.run(until=1.0)
        assert len(ticks) == 1

    def test_stop_from_inside_callback(self):
        sim = Simulator()
        ticks = []

        def tick():
            ticks.append(sim.now)
            if len(ticks) == 2:
                task.stop()

        task = PeriodicTask(sim, 0.1, tick)
        sim.run(until=1.0)
        assert len(ticks) == 2

    def test_custom_start_delay(self):
        sim = Simulator()
        ticks = []
        PeriodicTask(sim, 0.1, lambda: ticks.append(sim.now), start_delay=0.0)
        sim.run(until=0.25)
        assert ticks[0] == pytest.approx(0.0)

    def test_non_positive_interval_rejected(self):
        with pytest.raises(SimulationError):
            PeriodicTask(Simulator(), 0.0, lambda: None)

    def test_run_not_reentrant(self):
        sim = Simulator()

        def nested():
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule(0.1, nested)
        sim.run()
