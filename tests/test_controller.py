"""Tests for the AQ Controller control plane (Section 4.1) and the
switch pipeline integration (Section 4.2)."""

import pytest

from repro.core.controller import AqController, AqRequest
from repro.errors import AdmissionError, ConfigurationError
from repro.net.packet import make_udp
from repro.topology.dumbbell import Dumbbell, DumbbellConfig
from repro.units import gbps


def make_network():
    d = Dumbbell(DumbbellConfig(num_left=2, num_right=2, bottleneck_rate_bps=gbps(10)))
    controller = AqController(d.network)
    controller.register_resource("bn", gbps(10))
    return d, controller


def request(**kwargs):
    defaults = dict(
        entity="e",
        switch=Dumbbell.LEFT_SWITCH,
        position="ingress",
        absolute_rate_bps=gbps(1),
        share_group="bn",
    )
    defaults.update(kwargs)
    return AqRequest(**defaults)


class TestRequestValidation:
    def test_exactly_one_rate_mode_required(self):
        with pytest.raises(ConfigurationError):
            request(absolute_rate_bps=gbps(1), weight=1.0)
        with pytest.raises(ConfigurationError):
            request(absolute_rate_bps=None)

    def test_position_validated(self):
        with pytest.raises(ConfigurationError):
            request(position="sideways")

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            request(absolute_rate_bps=-1.0)

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            request(absolute_rate_bps=None, weight=-2.0)


class TestAbsoluteMode:
    def test_grant_allocates_requested_rate(self):
        _, controller = make_network()
        grant = controller.request(request(absolute_rate_bps=gbps(3)))
        assert grant.aq.rate_bps == pytest.approx(gbps(3))
        assert grant.aq_id > 0

    def test_admission_declines_oversubscription(self):
        _, controller = make_network()
        controller.request(request(absolute_rate_bps=gbps(7)))
        with pytest.raises(AdmissionError):
            controller.request(request(entity="e2", absolute_rate_bps=gbps(4)))

    def test_withdraw_releases_capacity(self):
        _, controller = make_network()
        grant = controller.request(request(absolute_rate_bps=gbps(7)))
        controller.withdraw(grant)
        controller.request(request(entity="e2", absolute_rate_bps=gbps(8)))

    def test_unknown_share_group_rejected(self):
        _, controller = make_network()
        with pytest.raises(ConfigurationError):
            controller.request(request(share_group="nope"))

    def test_unique_ids(self):
        _, controller = make_network()
        ids = {
            controller.request(request(entity=f"e{i}", absolute_rate_bps=gbps(1))).aq_id
            for i in range(5)
        }
        assert len(ids) == 5


class TestWeightedMode:
    def test_equal_weights_split_evenly(self):
        _, controller = make_network()
        g1 = controller.request(request(absolute_rate_bps=None, weight=1.0))
        g2 = controller.request(
            request(entity="e2", absolute_rate_bps=None, weight=1.0)
        )
        assert g1.aq.rate_bps == pytest.approx(gbps(5))
        assert g2.aq.rate_bps == pytest.approx(gbps(5))

    def test_proportional_weights(self):
        _, controller = make_network()
        g1 = controller.request(request(absolute_rate_bps=None, weight=1.0))
        g2 = controller.request(
            request(entity="e2", absolute_rate_bps=None, weight=2.0)
        )
        assert g1.aq.rate_bps == pytest.approx(gbps(10) / 3)
        assert g2.aq.rate_bps == pytest.approx(gbps(10) * 2 / 3)

    def test_membership_change_rebalances(self):
        _, controller = make_network()
        g1 = controller.request(request(absolute_rate_bps=None, weight=1.0))
        g2 = controller.request(
            request(entity="e2", absolute_rate_bps=None, weight=1.0)
        )
        controller.withdraw(g2)
        assert g1.aq.rate_bps == pytest.approx(gbps(10))

    def test_absolute_carveout_reduces_weighted_pool(self):
        _, controller = make_network()
        controller.request(request(absolute_rate_bps=gbps(4)))
        g = controller.request(request(entity="e2", absolute_rate_bps=None, weight=1.0))
        assert g.aq.rate_bps == pytest.approx(gbps(6))


class TestDataPlaneIntegration:
    def _run_udp(self, d, count=40, aq_ingress_id=0, spacing=1e-5):
        sink_bytes = []

        class Sink:
            def on_packet(self, p, now):
                sink_bytes.append(p.size)

        d.network.hosts["h-r0"].set_default_endpoint(Sink())
        for i in range(count):
            packet = make_udp("h-l0", "h-r0", 1, 1500)
            packet.aq_ingress_id = aq_ingress_id
            d.network.sim.schedule_at(
                i * spacing, d.network.hosts["h-l0"].send, packet
            )
        d.network.run(until=1.0)
        return len(sink_bytes)

    def test_ingress_aq_limits_tagged_traffic(self):
        d, controller = make_network()
        # 1 Mbps AQ: 40 packets at 1.2 Gbps offered must mostly drop.
        grant = controller.request(
            request(absolute_rate_bps=1e6, limit_bytes=3000)
        )
        delivered = self._run_udp(d, aq_ingress_id=grant.aq_id)
        assert delivered <= 3
        assert grant.aq.stats.dropped_packets >= 37

    def test_untagged_traffic_passes_untouched(self):
        d, controller = make_network()
        controller.request(request(absolute_rate_bps=1e6, limit_bytes=3000))
        delivered = self._run_udp(d, aq_ingress_id=0)
        assert delivered == 40

    def test_unknown_aq_id_passes_untouched(self):
        d, controller = make_network()
        controller.request(request(absolute_rate_bps=1e6, limit_bytes=3000))
        delivered = self._run_udp(d, aq_ingress_id=777)
        assert delivered == 40

    def test_egress_position_enforces_at_dequeue(self):
        d, controller = make_network()
        grant = controller.request(
            request(
                position="egress", absolute_rate_bps=1e6, limit_bytes=3000
            )
        )
        sink_count = []

        class Sink:
            def on_packet(self, p, now):
                sink_count.append(1)

        d.network.hosts["h-r0"].set_default_endpoint(Sink())
        for i in range(40):
            packet = make_udp("h-l0", "h-r0", 1, 1500)
            packet.aq_egress_id = grant.aq_id
            d.network.sim.schedule_at(
                i * 1e-5, d.network.hosts["h-l0"].send, packet
            )
        d.network.run(until=1.0)
        assert len(sink_count) <= 3
        assert grant.aq.stats.dropped_packets >= 37

    def test_pipeline_rejects_duplicate_deploy(self):
        d, controller = make_network()
        grant = controller.request(request())
        pipeline = controller.pipeline(Dumbbell.LEFT_SWITCH)
        with pytest.raises(ConfigurationError):
            pipeline.deploy(grant.aq, "ingress")

    def test_pipeline_unknown_switch_rejected(self):
        _, controller = make_network()
        with pytest.raises(ConfigurationError):
            controller.pipeline("not-a-switch")

    def test_withdraw_removes_from_pipeline(self):
        d, controller = make_network()
        grant = controller.request(request(absolute_rate_bps=1e6, limit_bytes=3000))
        controller.withdraw(grant)
        delivered = self._run_udp(d, aq_ingress_id=grant.aq_id)
        assert delivered == 40


class TestWeightedReallocation:
    def test_idle_entity_bandwidth_redistributed(self):
        d, controller = make_network()
        g1 = controller.request(request(absolute_rate_bps=None, weight=1.0))
        g2 = controller.request(
            request(entity="e2", absolute_rate_bps=None, weight=1.0)
        )
        controller.enable_weighted_reallocation("bn", interval=1e-3)
        # Only entity 1 sends; after a few ticks it should hold ~all capacity.
        for i in range(9000):
            packet = make_udp("h-l0", "h-r0", 1, 1500)
            packet.aq_ingress_id = g1.aq_id
            d.network.sim.schedule_at(i * 1e-6, d.network.hosts["h-l0"].send, packet)
        d.network.run(until=8e-3)  # sends continue past the check point
        assert g1.aq.rate_bps > 0.9 * gbps(10)
        assert g2.aq.rate_bps < 0.1 * gbps(10)

    def test_double_allocator_rejected(self):
        _, controller = make_network()
        controller.enable_weighted_reallocation("bn")
        with pytest.raises(ConfigurationError):
            controller.enable_weighted_reallocation("bn")


class TestWithdrawHardening:
    """Repeated/partial withdraws must never double-free capacity or
    leave stale weight, and the weighted pool must always sum to
    ``weighted_capacity_bps`` (the rebalance invariant)."""

    @staticmethod
    def _assert_invariant(controller, group_name="bn"):
        group = controller._groups[group_name]
        if group.weighted_grants:
            total = sum(g.aq.rate_bps for g in group.weighted_grants)
            assert total == pytest.approx(group.weighted_capacity_bps)
        assert group.absolute_committed_bps >= -1e-6

    def test_double_withdraw_absolute_no_double_free(self):
        _, controller = make_network()
        grant = controller.request(request(absolute_rate_bps=gbps(7)))
        controller.withdraw(grant)
        controller.withdraw(grant)  # idempotent, not a second release
        group = controller._groups["bn"]
        assert group.absolute_committed_bps == pytest.approx(0.0)
        # If the second withdraw had double-freed, this would over-admit.
        controller.request(request(entity="e2", absolute_rate_bps=gbps(10)))
        with pytest.raises(AdmissionError):
            controller.request(request(entity="e3", absolute_rate_bps=gbps(1)))

    def test_double_withdraw_weighted_no_stale_weight(self):
        _, controller = make_network()
        g1 = controller.request(request(absolute_rate_bps=None, weight=1.0))
        g2 = controller.request(
            request(entity="e2", absolute_rate_bps=None, weight=3.0)
        )
        controller.withdraw(g2)
        controller.withdraw(g2)
        assert g1.aq.rate_bps == pytest.approx(gbps(10))
        self._assert_invariant(controller)

    def test_absolute_churn_rebalances_weighted_pool(self):
        _, controller = make_network()
        g1 = controller.request(request(absolute_rate_bps=None, weight=1.0))
        carve = controller.request(
            request(entity="e2", absolute_rate_bps=gbps(4))
        )
        # The carve-out must have shrunk the weighted grant immediately...
        assert g1.aq.rate_bps == pytest.approx(gbps(6))
        self._assert_invariant(controller)
        controller.withdraw(carve)
        # ...and releasing it must give the bandwidth back.
        assert g1.aq.rate_bps == pytest.approx(gbps(10))
        self._assert_invariant(controller)

    def test_rebalance_invariant_after_any_withdraw_sequence(self):
        import itertools

        for order in itertools.permutations(range(4)):
            _, controller = make_network()
            weighted = [
                controller.request(request(
                    entity=f"w{i}", absolute_rate_bps=None, weight=float(i + 1)
                ))
                for i in range(3)
            ]
            absolute = controller.request(
                request(entity="abs", absolute_rate_bps=gbps(2))
            )
            grants = weighted + [absolute]
            for index in order:
                controller.withdraw(grants[index])
                self._assert_invariant(controller)

    def test_withdraw_path_idempotent(self):
        d, controller = make_network()
        grants = controller.request_path(
            request(absolute_rate_bps=gbps(7)),
            [Dumbbell.LEFT_SWITCH, Dumbbell.RIGHT_SWITCH],
        )
        assert len(grants) == 2
        controller.withdraw_path(grants)
        controller.withdraw_path(grants)  # re-run must be a no-op
        for switch in (Dumbbell.LEFT_SWITCH, Dumbbell.RIGHT_SWITCH):
            assert list(controller.pipeline(switch).deployed()) == []
        group = controller._groups["bn"]
        assert group.absolute_committed_bps == pytest.approx(0.0)
        controller.request(request(entity="e2", absolute_rate_bps=gbps(10)))

    def test_secondary_withdraw_keeps_primary_booked(self):
        d, controller = make_network()
        grants = controller.request_path(
            request(absolute_rate_bps=gbps(7)),
            [Dumbbell.LEFT_SWITCH, Dumbbell.RIGHT_SWITCH],
        )
        controller.withdraw(grants[1])  # secondary only
        group = controller._groups["bn"]
        assert group.absolute_committed_bps == pytest.approx(gbps(7))
        assert list(controller.pipeline(Dumbbell.RIGHT_SWITCH).deployed()) == []
        assert len(list(controller.pipeline(Dumbbell.LEFT_SWITCH).deployed())) == 1
        controller.withdraw(grants[0])
        assert group.absolute_committed_bps == pytest.approx(0.0)
