"""Tests for the time-series analysis helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.stats.timeseries import (
    coefficient_of_variation,
    downsample,
    integrate,
    moving_average,
    settling_time,
)


def series_of(values, dt=0.01):
    return [(i * dt, v) for i, v in enumerate(values)]


class TestMovingAverage:
    def test_smooths_spikes(self):
        raw = series_of([1, 1, 10, 1, 1])
        smooth = moving_average(raw, window=3)
        assert max(v for _, v in smooth) < 10

    def test_window_one_is_identity(self):
        raw = series_of([3, 1, 4, 1, 5])
        assert moving_average(raw, 1) == raw

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            moving_average(series_of([1]), 0)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=40),
           st.integers(min_value=1, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_bounded_by_data(self, values, window):
        smooth = moving_average(series_of(values), window)
        assert all(min(values) - 1e-9 <= v <= max(values) + 1e-9 for _, v in smooth)


class TestSettlingTime:
    def test_detects_settling(self):
        raw = series_of([0.1, 0.4, 0.9, 1.02, 0.98, 1.01, 1.0])
        settled = settling_time(raw, target=1.0, tolerance=0.05)
        assert settled == pytest.approx(0.03)

    def test_requires_hold(self):
        # Touches the band once, leaves, then settles.
        raw = series_of([1.0, 0.2, 0.2, 1.0, 1.0, 1.0])
        settled = settling_time(raw, target=1.0, tolerance=0.05, hold_samples=3)
        assert settled == pytest.approx(0.03)

    def test_never_settles(self):
        raw = series_of([0.1, 0.2, 0.1])
        assert settling_time(raw, target=1.0) is None

    def test_start_offset(self):
        raw = series_of([1.0] * 10)
        settled = settling_time(raw, target=1.0, start=0.05)
        assert settled == pytest.approx(0.05)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            settling_time([], target=0.0)


class TestCv:
    def test_constant_series_zero(self):
        assert coefficient_of_variation([5, 5, 5]) == 0.0

    def test_variable_series_positive(self):
        assert coefficient_of_variation([1, 9]) > 0.5

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            coefficient_of_variation([])


class TestIntegrate:
    def test_rectangle(self):
        assert integrate([(0.0, 2.0), (1.0, 2.0)]) == pytest.approx(2.0)

    def test_triangle(self):
        assert integrate([(0.0, 0.0), (1.0, 2.0)]) == pytest.approx(1.0)

    def test_time_must_advance(self):
        with pytest.raises(ConfigurationError):
            integrate([(1.0, 1.0), (0.5, 1.0)])


class TestDownsample:
    def test_reduces_length(self):
        raw = series_of(range(10))
        down = downsample(raw, 2)
        assert len(down) == 5

    def test_averages_buckets(self):
        down = downsample(series_of([1, 3]), 2)
        assert down[0][1] == pytest.approx(2.0)

    def test_remainder_kept(self):
        down = downsample(series_of([1, 3, 7]), 2)
        assert len(down) == 2
        assert down[1][1] == pytest.approx(7.0)

    def test_invalid_factor(self):
        with pytest.raises(ConfigurationError):
            downsample([], 0)
