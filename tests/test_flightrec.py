"""Tests for the INT flight recorder (repro.obs.flightrec).

Unit coverage of hop records, flight attribution, and the JSONL
interchange, plus the integration properties the ISSUE pins down:

* an over-limit UDP flow's drop is attributed to the exact AQ, with its
  deployment position and the A-Gap value at the drop decision;
* receivers echo a flight digest back to the sender on ACKs;
* enabling the recorder + auditor is *neutral* — a fig8-style job
  produces a bit-identical results digest with and without them.
"""

import pytest

from repro.harness.common import EntitySpec
from repro.harness.runner import JobResult, results_digest
from repro.harness.scenarios import run_longlived_share
from repro.net.packet import make_data
from repro.obs import (
    Flight,
    FlightIndex,
    FlightRecorder,
    Telemetry,
    read_flights_jsonl,
)
from repro.obs.flightrec import HopRecord, JsonlFlightSink
from repro.units import gbps

SHORT = dict(bottleneck_bps=gbps(1), duration=40e-3, warmup=15e-3)


# -- hop records & flights ---------------------------------------------------------


class TestHopRecord:
    def test_to_dict_omits_none(self):
        hop = HopRecord("queue", "s0.p0", 1.0, depth=3000.0)
        assert hop.to_dict() == {
            "kind": "queue", "node": "s0.p0", "t_in": 1.0, "depth": 3000.0,
        }

    def test_dict_round_trip(self):
        hop = HopRecord(
            "aq", "ent", 0.5, aq_id=7, position="ingress",
            agap=1.2e6, limit=1.0e6, reason="rate_limit",
        )
        clone = HopRecord.from_dict(hop.to_dict())
        assert clone.to_dict() == hop.to_dict()


class TestFlightAttribution:
    def _flight(self, status, hops, end_node=""):
        return Flight(
            packet_id=42, flow_id=3, src="h0", dst="h1", kind=0, size=1500,
            status=status, t_start=0.0, t_end=1e-3, hops=hops,
            end_node=end_node,
        )

    def test_delivered_attribution(self):
        flight = self._flight("delivered", [
            HopRecord("host", "h0", 0.0),
            HopRecord("queue", "s0.p0", 1e-4, t_out=2e-4),
        ])
        line = flight.attribution()
        assert "packet #42 flow 3 delivered h0->h1" in line
        assert "2 hops" in line

    def test_aq_drop_names_aq_position_and_agap(self):
        flight = self._flight("dropped", [
            HopRecord("host", "h0", 0.0),
            HopRecord("aq", "tenant-a", 5e-4, aq_id=7, position="ingress",
                      agap=1.2e6, limit=1.0e6, reason="rate_limit"),
        ], end_node="s0")
        line = flight.attribution()
        assert "dropped at s0 by AQ 7 rate-limit (ingress)" in line
        assert "A=1.2MB > limit 1.0MB" in line

    def test_buffer_drop_names_queue_and_backlog(self):
        flight = self._flight("dropped", [
            HopRecord("host", "h0", 0.0),
            HopRecord("drop", "s0.p1", 5e-4, depth=300_000.0, reason="buffer"),
        ], end_node="s0.p1")
        line = flight.attribution()
        assert "dropped at s0.p1 (buffer, backlog 300.0KB)" in line

    def test_flight_round_trips_through_dict(self):
        flight = self._flight("dropped", [
            HopRecord("drop", "q", 1e-4, reason="red"),
        ], end_node="q")
        clone = Flight.from_dict(flight.to_dict())
        assert clone.to_dict() == flight.to_dict()
        assert clone.drop_hop.reason == "red"


# -- recorder lifecycle ------------------------------------------------------------


class TestFlightRecorder:
    def _packet(self):
        return make_data("h0", "h1", flow_id=5, seq=0, size=1500)

    def test_lifecycle_builds_hops_in_order(self):
        rec = FlightRecorder()
        packet = self._packet()
        rec.start(packet, 0.0)
        rec.queue_hop(packet, "h0.nic", 1e-5, depth=1500.0)
        rec.queue_exit(packet, "h0.nic", 2e-5)
        rec.aq_hop(packet, "ent", 3e-5, aq_id=1, position="ingress",
                   agap=500.0, limit=None, ecn=False, dropped=False)
        flight = rec.complete(packet, 4e-5, "delivered", node="h1")
        assert flight.path == ("h0", "h0.nic", "ent")
        assert flight.hops[1].t_out == pytest.approx(2e-5)
        assert flight.latency == pytest.approx(4e-5)
        assert flight.end_node == "h1"
        assert packet.flight is None

    def test_complete_is_idempotent(self):
        rec = FlightRecorder()
        packet = self._packet()
        rec.start(packet, 0.0)
        assert rec.complete(packet, 1e-5, "delivered") is not None
        assert rec.complete(packet, 2e-5, "delivered") is None
        assert rec.flights_completed == 1

    def test_digest_of_sums_queue_wait(self):
        rec = FlightRecorder()
        packet = self._packet()
        rec.start(packet, 0.0)
        rec.queue_hop(packet, "a", 0.0, depth=0.0)
        rec.queue_exit(packet, "a", 3e-5)
        rec.queue_hop(packet, "b", 4e-5, depth=0.0)
        rec.queue_exit(packet, "b", 6e-5)
        digest = rec.digest_of(packet)
        assert digest["hops"] == 3
        assert digest["queue_wait_s"] == pytest.approx(5e-5)
        assert rec.digest_of(self._packet()) is None  # un-armed packet

    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "flights.jsonl")
        rec = FlightRecorder()
        rec.add_jsonl(path)
        for i in range(3):
            packet = make_data("h0", "h1", flow_id=i, seq=0, size=1000)
            rec.start(packet, 0.0)
            rec.complete(packet, 1e-3, "delivered", node="h1")
        rec.close()
        restored = list(read_flights_jsonl(path))
        assert [f.flow_id for f in restored] == [0, 1, 2]
        assert all(f.status == "delivered" for f in restored)

    def test_jsonl_sink_counts(self, tmp_path):
        sink = JsonlFlightSink(str(tmp_path / "f.jsonl"))
        sink.handle_flight(Flight(1, 1, "a", "b", 0, 100, "delivered",
                                  0.0, 1.0, []))
        sink.close()
        assert sink.flights_written == 1


class TestFlightIndex:
    def test_caps_retained_flights(self):
        index = FlightIndex(max_flights=2, max_drops=2)
        for i in range(5):
            index.handle_flight(Flight(i, 1, "a", "b", 0, 100, "dropped",
                                       0.0, 1.0, []))
        assert index.total == 5 and index.dropped == 5
        assert len(index.flights) == 2 and len(index.drops) == 2

    def test_path_and_latency_aggregation(self):
        index = FlightIndex()
        hops = [HopRecord("host", "h0", 0.0),
                HopRecord("queue", "q", 1e-4, t_out=3e-4)]
        index.handle_flight(Flight(1, 9, "h0", "h1", 0, 100, "delivered",
                                   0.0, 1e-3, hops))
        assert index.path_for(9) == ("h0", "q")
        assert index.mean_latency(9) == pytest.approx(1e-3)
        assert index.mean_latency(8) is None
        waits = index.hop_latency()
        assert waits["q"]["visits"] == 1
        assert waits["q"]["mean_wait_s"] == pytest.approx(2e-4)

    def test_note_echo_keeps_latest(self):
        index = FlightIndex()
        index.note_echo(4, {"hops": 3, "queue_wait_s": 1e-4}, now=0.5)
        index.note_echo(4, {"hops": 4, "queue_wait_s": 2e-4}, now=0.7)
        assert index.echoes[4]["hops"] == 4
        assert index.echoes[4]["echoed_at"] == 0.7


# -- integration: real scenarios ---------------------------------------------------


class TestFlightRecordingIntegration:
    @pytest.fixture(scope="class")
    def recorded_run(self):
        tele = Telemetry()
        rec = tele.enable_flight_recording()
        with tele.activate():
            result = run_longlived_share(
                [EntitySpec("tcp", cc="dctcp", num_flows=2),
                 EntitySpec("udp", cc="udp")],
                approach="aq", **SHORT,
            )
        tele.close()
        return rec.index, result

    def test_flights_complete_and_paths_reconstruct(self, recorded_run):
        index, _ = recorded_run
        assert index.delivered > 1000
        # Every delivered data path crosses host -> NIC -> two switch ports.
        for flow_id in index.paths_by_flow:
            path = index.path_for(flow_id)
            assert len(path) >= 3
            assert path[1].endswith(".nic")

    def test_over_limit_udp_drop_names_exact_aq(self, recorded_run):
        """Satellite: drop attribution must name the AQ, its deployment
        position, and the A-Gap value that exceeded the limit."""
        index, result = recorded_run
        udp_aq = result.env.grants["udp"]
        aq_drops = [f for f in index.drops
                    if f.drop_hop is not None
                    and f.drop_hop.aq_id == udp_aq.aq_id]
        assert aq_drops, "over-limit UDP must be rate-limit dropped by its AQ"
        hop = aq_drops[-1].drop_hop
        assert hop.position == "ingress"
        assert hop.reason == "rate_limit"
        assert hop.limit is not None and hop.agap > hop.limit
        line = aq_drops[-1].attribution()
        assert f"AQ {udp_aq.aq_id} rate-limit (ingress)" in line
        assert "A=" in line and "limit" in line

    def test_receiver_echoes_digest_on_acks(self, recorded_run):
        index, _ = recorded_run
        # Both dctcp flows (ids 1 and 2) must have echoed digests back.
        assert index.echoes, "no flight digests were echoed on ACKs"
        for digest in index.echoes.values():
            assert digest["hops"] >= 3
            assert digest["queue_wait_s"] >= 0.0


class TestInstrumentationNeutrality:
    def test_fig8_job_digest_identical_with_and_without_observability(self):
        """Satellite: recorder + auditor must not perturb the simulation.
        The deterministic results digest of a fig8-style job has to be
        bit-identical either way."""
        from repro.harness.jobs import job_flow_count

        kwargs = dict(flows_b=4, weight_b=1.0, approach="aq",
                      bottleneck_bps=gbps(1), duration=30e-3, warmup=10e-3)

        plain = job_flow_count(**kwargs)

        tele = Telemetry()
        tele.enable_flight_recording()
        auditor = tele.enable_audit()
        with tele.activate():
            observed = job_flow_count(**kwargs)
        tele.close()

        assert not auditor.finish(), "audited fig8 run must be clean"
        wrap = lambda r: [JobResult(name="fig8", status="ok", attempts=1,
                                    wall_s=0.0, result=r)]
        assert results_digest(wrap(plain)) == results_digest(wrap(observed))
