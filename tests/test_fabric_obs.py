"""Tests for the fabric observability plane: the run ledger, live shard
health heartbeats, cross-shard flight stitching, and the default-on
budgeted time-window recorder.

The load-bearing property is digest neutrality: the whole plane — run
directory, heartbeat frames, flight recording, time windows — must not
change ``fabric_digest`` at any shard count. On top of that, stitched
end-to-end flights must match a serial 1-shard run exactly (path,
latency, drop attribution) under :func:`repro.obs.flightrec.journey_key`.
"""

import json
import os

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.harness.fabric import run_share_fabric
from repro.obs.flightrec import (
    journey_key,
    read_flights_jsonl,
    stitch_flight_dumps,
)
from repro.obs.metrics import merge_metrics_snapshots
from repro.obs.runledger import (
    artifact_paths,
    is_run_reference,
    load_manifest,
    read_health_jsonl,
    resolve_inputs,
)
from repro.obs.timewin import (
    MAX_NUM_WINDOWS,
    MIN_NUM_WINDOWS,
    MIN_SLOTS_LOG2,
    WindowStore,
    estimate_port_bytes,
    params_for_budget,
    stitch_window_dumps,
)

DURATION = 1e-3
SMALL = dict(pods=2, tors_per_pod=1, hosts_per_tor=2)


@pytest.fixture(scope="module")
def runs(tmp_path_factory):
    """Shared runs: plane off, full plane at 2 shards, full plane serial,
    and a ledgered run with time windows opted out."""
    tmp = tmp_path_factory.mktemp("obsruns")
    base = run_share_fabric(2, DURATION, inline=True, audit=True, **SMALL)
    sharded = run_share_fabric(
        2, DURATION, inline=True, audit=True,
        run_dir=str(tmp / "sharded"),
        flight_dir=str(tmp / "sharded" / "flights"),
        **SMALL,
    )
    serial = run_share_fabric(
        1, DURATION, inline=True, audit=True,
        run_dir=str(tmp / "serial"),
        flight_dir=str(tmp / "serial" / "flights"),
        **SMALL,
    )
    nowin = run_share_fabric(
        1, DURATION, inline=True,
        run_dir=str(tmp / "nowin"), timewin=False, heartbeat=False,
        **SMALL,
    )
    return {"base": base, "sharded": sharded, "serial": serial,
            "nowin": nowin}


class TestDigestNeutrality:
    def test_full_plane_changes_no_digest(self, runs):
        digests = {runs[k]["digest"] for k in ("base", "sharded", "serial")}
        assert len(digests) == 1

    def test_audit_clean_with_plane_on(self, runs):
        for name in ("sharded", "serial"):
            assert runs[name]["audit"]["violation_count"] == 0


class TestRunLedger:
    def test_manifest_is_complete(self, runs):
        run_dir, manifest = load_manifest(runs["sharded"]["run_dir"])
        assert manifest["status"] == "complete"
        assert manifest["schema"] == "fabric-run/1"
        assert manifest["digests"]["fabric_digest"] == runs["sharded"]["digest"]
        assert set(manifest["artifacts"]) >= {
            "windows", "windows_stitched", "flights", "flights_stitched",
            "health", "metrics", "report",
        }
        assert manifest["partition_plan"]["shards"] == 2
        assert manifest["partition_plan"]["cut_links"]
        assert len(manifest["workers"]) == 2
        # Every indexed artifact must actually exist, relative to the dir.
        for value in manifest["artifacts"].values():
            rels = value if isinstance(value, list) else [value]
            for rel in rels:
                assert os.path.isfile(os.path.join(run_dir, rel)), rel

    def test_is_run_reference(self, runs, tmp_path):
        run_dir = runs["sharded"]["run_dir"]
        assert is_run_reference(run_dir)
        assert is_run_reference(os.path.join(run_dir, "manifest.json"))
        assert not is_run_reference(str(tmp_path))
        assert not is_run_reference(str(tmp_path / "missing"))
        bare = tmp_path / "windows.jsonl"
        bare.write_text("", encoding="utf-8")
        assert not is_run_reference(str(bare))

    def test_artifact_resolution_prefers_stitched(self, runs):
        run_dir = runs["sharded"]["run_dir"]
        windows = artifact_paths(run_dir, "windows")
        assert windows == [os.path.join(run_dir, "windows.stitched.jsonl")]
        flights = artifact_paths(run_dir, "flights")
        assert flights == [os.path.join(run_dir, "flights.stitched.jsonl")]
        (health,) = artifact_paths(run_dir, "health")
        assert health.endswith("health.jsonl")
        with pytest.raises(ConfigurationError):
            artifact_paths(run_dir, "bogus")

    def test_artifact_resolution_falls_back_to_per_shard(self, tmp_path):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (run_dir / "windows").mkdir()
        dump = run_dir / "windows" / "shard0.windows.jsonl"
        dump.write_text("", encoding="utf-8")
        (run_dir / "manifest.json").write_text(json.dumps({
            "schema": "fabric-run/1",
            "status": "complete",
            "artifacts": {
                "windows": ["windows/shard0.windows.jsonl",
                            "windows/shard1.windows.jsonl"],
            },
        }), encoding="utf-8")
        # No stitched file; only the shard-0 dump exists on disk.
        assert artifact_paths(str(run_dir), "windows") == [str(dump)]
        assert artifact_paths(str(run_dir), "flights") == []

    def test_resolve_inputs_mixes_runs_and_bare_paths(self, runs, tmp_path):
        bare = tmp_path / "extra.jsonl"
        bare.write_text("", encoding="utf-8")
        run_dir = runs["sharded"]["run_dir"]
        resolved = resolve_inputs([run_dir, str(bare)], "windows")
        assert resolved == [
            os.path.join(run_dir, "windows.stitched.jsonl"), str(bare),
        ]

    def test_load_manifest_rejects_non_runs(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_manifest(str(tmp_path / "missing"))
        bad = tmp_path / "manifest.json"
        bad.write_text(json.dumps({"schema": "other/9"}), encoding="utf-8")
        with pytest.raises(ConfigurationError):
            load_manifest(str(bad))

    def test_read_health_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "health.jsonl"
        path.write_text(
            '{"partition":0,"epoch":1}\n{"partition":1,"ep', encoding="utf-8"
        )
        assert read_health_jsonl(str(path)) == [{"partition": 0, "epoch": 1}]
        assert read_health_jsonl(str(tmp_path / "missing.jsonl")) == []


class TestHeartbeats:
    def test_frames_cover_every_shard_epoch_pair(self, runs):
        report = runs["sharded"]
        assert report["heartbeat_frames"] == 2 * report["epochs"]
        frames = read_health_jsonl(
            os.path.join(report["run_dir"], "health.jsonl")
        )
        pairs = {(f["partition"], f["epoch"]) for f in frames}
        assert pairs == {
            (p, e) for p in range(2) for e in range(report["epochs"])
        }

    def test_frame_fields(self, runs):
        frames = read_health_jsonl(
            os.path.join(runs["sharded"]["run_dir"], "health.jsonl")
        )
        frame = frames[-1]
        for field in ("partition", "epoch", "watermark_s", "wall_s",
                      "events", "events_per_s", "backlog_events",
                      "backlog_bytes", "barrier_wait_s"):
            assert field in frame, field
        assert frame["watermark_s"] == pytest.approx(DURATION)
        assert frame["events"] > 0

    def test_spawn_heartbeats_interleave_with_boundary_batches(self, tmp_path):
        """Heartbeat frames ride the same out-pipe as the boundary
        batches; the coordinator must record every frame without
        disturbing the lockstep protocol (same digest as inline)."""
        inline = run_share_fabric(2, DURATION, inline=True, **SMALL)
        spawn = run_share_fabric(
            2, DURATION, inline=False, run_dir=str(tmp_path / "run"),
            **SMALL,
        )
        assert spawn["digest"] == inline["digest"]
        frames = read_health_jsonl(str(tmp_path / "run" / "health.jsonl"))
        pairs = {(f["partition"], f["epoch"]) for f in frames}
        assert pairs == {
            (p, e) for p in range(2) for e in range(spawn["epochs"])
        }


class TestFlightStitching:
    def test_stitched_flights_match_serial_run(self, runs):
        journeys = {}
        for name in ("sharded", "serial"):
            journeys[name] = sorted(
                journey_key(f) for f in read_flights_jsonl(
                    runs[name]["flights_stitched_path"]
                )
            )
        assert journeys["sharded"]
        assert journeys["sharded"] == journeys["serial"]

    def test_two_cut_crossing_flow_reassembles_end_to_end(self, runs):
        """A cross-pod flow crosses two cuts (agg->core up, core->agg
        down): its stitched flight must span both (four cut hops) and
        still end delivered at the destination host's queue."""
        stitched = list(read_flights_jsonl(
            runs["sharded"]["flights_stitched_path"]
        ))
        two_cut = [
            f for f in stitched
            if sum(1 for h in f.hops if h.kind == "cut") == 4
            and f.status == "delivered"
        ]
        assert two_cut
        flight = two_cut[0]
        assert flight.hops[0].kind == "host"
        assert flight.t_end > flight.t_start
        corrs = [h.corr for h in flight.hops if h.kind == "cut"]
        # Export/import hop pairs share their correlation key.
        assert corrs[0] == corrs[1] and corrs[2] == corrs[3]

    def test_stitch_requires_input(self):
        with pytest.raises(ConfigurationError):
            stitch_flight_dumps([])

    def test_stitch_rejects_duplicate_correlation_keys(self, runs):
        paths = runs["sharded"]["flight_paths"]
        with pytest.raises(ConfigurationError, match="overlap"):
            stitch_flight_dumps(list(paths) + list(paths))


class TestTimewinBudget:
    def test_budget_spends_on_history_first(self):
        budget = estimate_port_bytes(64, 6)
        params = params_for_budget(budget)
        assert params["slots_log2"] == 6
        assert params["num_windows"] == 64
        assert estimate_port_bytes(
            params["num_windows"], params["slots_log2"]
        ) <= budget

    def test_budget_shrinks_slots_when_tight(self):
        budget = estimate_port_bytes(MIN_NUM_WINDOWS, MIN_SLOTS_LOG2)
        params = params_for_budget(budget)
        assert params["slots_log2"] == MIN_SLOTS_LOG2
        assert params["num_windows"] == MIN_NUM_WINDOWS

    def test_budget_caps_ring_length(self):
        params = params_for_budget(1 << 30)
        assert params["num_windows"] == MAX_NUM_WINDOWS

    def test_infeasible_budget_raises_actionable_error(self):
        with pytest.raises(ConfigurationError, match="no-timewin"):
            params_for_budget(16)

    def test_budget_flows_through_share_fabric(self, runs, tmp_path):
        budget = estimate_port_bytes(8, 6)
        report = run_share_fabric(
            1, DURATION, inline=True, run_dir=str(tmp_path / "run"),
            timewin_budget=budget, heartbeat=False, **SMALL,
        )
        assert report["digest"] == runs["base"]["digest"]
        _, manifest = load_manifest(report["run_dir"])
        obs = manifest["observability"]
        assert obs["timewin_budget_bytes"] == budget
        assert obs["timewin_params"]["num_windows"] == 8
        assert obs["timewin_params"]["slots_log2"] == 6


class TestTolerantWindowLoading:
    def _corrupt_copy(self, src, dest):
        lines = open(src, "r", encoding="utf-8").read().splitlines()
        assert len(lines) >= 3
        lines.insert(1, "{ not json at all")
        lines.insert(3, json.dumps({"type": "window"}))  # missing fields
        lines.append(lines[-1][: len(lines[-1]) // 2])  # torn tail
        with open(dest, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")

    def test_strict_load_raises_on_corruption(self, runs, tmp_path):
        src = runs["sharded"]["timewin_paths"][0]
        bad = str(tmp_path / "bad.windows.jsonl")
        self._corrupt_copy(src, bad)
        with pytest.raises(ConfigurationError, match="invalid window record"):
            WindowStore.from_jsonl(bad)

    def test_lenient_load_skips_and_reports(self, runs, tmp_path):
        src = runs["sharded"]["timewin_paths"][0]
        bad = str(tmp_path / "bad.windows.jsonl")
        self._corrupt_copy(src, bad)
        skipped = []
        store = WindowStore.from_jsonl(
            bad, strict=False,
            on_skip=lambda lineno, line, exc: skipped.append(lineno),
        )
        assert len(skipped) == 3
        clean = WindowStore.from_jsonl(src)
        assert store.ports() == clean.ports()

    def test_stitch_passes_skip_semantics_through(self, runs, tmp_path):
        shard0, shard1 = runs["sharded"]["timewin_paths"]
        bad = str(tmp_path / "bad.windows.jsonl")
        self._corrupt_copy(shard0, bad)
        with pytest.raises(ConfigurationError):
            stitch_window_dumps([bad, shard1])
        store = stitch_window_dumps([bad, shard1], strict=False)
        clean = stitch_window_dumps([shard0, shard1])
        assert store.ports() == clean.ports()

    def test_overlap_raises_regardless_of_strictness(self, runs):
        shard0, _ = runs["sharded"]["timewin_paths"]
        with pytest.raises(ConfigurationError, match="not disjoint"):
            stitch_window_dumps([shard0, shard0], strict=False)


class TestMetricsMerge:
    SNAP_A = {
        "counters": [
            {"name": "pkts", "labels": {"port": "a"}, "value": 3.0},
            {"name": "pkts", "labels": {"port": "b"}, "value": 1.0},
        ],
        "gauges": [{"name": "backlog", "labels": {}, "value": 10.0}],
        "histograms": [{
            "name": "delay", "labels": {},
            "value": {"count": 2, "min": 1.0, "max": 3.0, "mean": 2.0,
                      "p50": 2.0, "p95": 3.0, "p99": 3.0},
        }],
    }
    SNAP_B = {
        "counters": [{"name": "pkts", "labels": {"port": "a"}, "value": 5.0}],
        "gauges": [{"name": "backlog", "labels": {}, "value": 7.0}],
        "histograms": [{
            "name": "delay", "labels": {},
            "value": {"count": 6, "min": 0.5, "max": 2.0, "mean": 1.0,
                      "p50": 1.0, "p95": 2.0, "p99": 2.0},
        }],
    }

    def test_counters_and_gauges_sum(self):
        merged = merge_metrics_snapshots([self.SNAP_A, self.SNAP_B])
        counters = {
            (e["name"], e["labels"].get("port")): e["value"]
            for e in merged["counters"]
        }
        assert counters == {("pkts", "a"): 8.0, ("pkts", "b"): 1.0}
        assert merged["gauges"][0]["value"] == 17.0
        assert merged["merged_from"] == 2

    def test_histograms_merge_honestly(self):
        merged = merge_metrics_snapshots([self.SNAP_A, self.SNAP_B])
        (entry,) = merged["histograms"]
        summary = entry["value"]
        assert summary["count"] == 8
        assert summary["min"] == 0.5
        assert summary["max"] == 3.0
        assert summary["mean"] == pytest.approx((2.0 * 2 + 1.0 * 6) / 8)
        # Percentiles are not mergeable from summaries: omitted, never faked.
        assert "p50" not in summary and "p99" not in summary

    def test_fabric_metrics_json_written(self, runs):
        path = os.path.join(runs["sharded"]["run_dir"], "metrics.json")
        with open(path, "r", encoding="utf-8") as fh:
            snapshot = json.load(fh)
        assert snapshot["merged_from"] == 2
        assert snapshot["counters"]


class TestCli:
    def test_stitch_accepts_run_directory(self, runs, tmp_path, capsys):
        out = str(tmp_path / "merged.jsonl")
        code = main([
            "telemetry", "stitch", runs["sharded"]["run_dir"], "--out", out,
        ])
        assert code == 0
        assert os.path.isfile(out)
        assert "stitched 1 dump(s)" in capsys.readouterr().out

    def test_stitch_zero_inputs_fails_gracefully(self, runs, capsys):
        """A run that opted out of time windows resolves to zero dumps:
        warning + exit 1, no traceback."""
        code = main([
            "telemetry", "stitch", runs["nowin"]["run_dir"],
            "--out", "/dev/null",
        ])
        assert code == 1
        err = capsys.readouterr().err
        assert "warning" in err and "no window dumps" in err

    def test_stitch_overlapping_ports_fails_gracefully(self, runs, capsys):
        shard0, _ = runs["sharded"]["timewin_paths"]
        code = main([
            "telemetry", "stitch", shard0, shard0, "--out", "/dev/null",
        ])
        assert code == 1
        assert "stitch failed" in capsys.readouterr().err

    def test_windows_accepts_run_directory(self, runs, capsys):
        assert main([
            "telemetry", "windows", runs["sharded"]["run_dir"],
        ]) == 0
        assert "windows" in capsys.readouterr().out

    def test_flights_accepts_run_directory(self, runs, capsys):
        assert main([
            "telemetry", "flights", runs["sharded"]["run_dir"],
        ]) == 0
        assert "delivered" in capsys.readouterr().out

    def test_flights_run_without_flights_fails_gracefully(self, runs, capsys):
        code = main(["telemetry", "flights", runs["nowin"]["run_dir"]])
        assert code == 1
        assert "no flights" in capsys.readouterr().err

    def test_summarize_accepts_run_directory(self, runs, capsys):
        assert main([
            "telemetry", "summarize", runs["sharded"]["run_dir"],
        ]) == 0
        out = capsys.readouterr().out
        assert "fabric-wide metrics" in out
        assert "[complete]" in out

    def test_fabric_status_renders_health(self, runs, capsys):
        assert main(["fabric-status", runs["sharded"]["run_dir"]]) == 0
        out = capsys.readouterr().out
        assert "[complete]" in out
        assert "watermark" in out

    def test_fabric_status_tolerates_missing_frames(self, runs, capsys):
        assert main(["fabric-status", runs["nowin"]["run_dir"]]) == 0
        assert "no heartbeat frames yet" in capsys.readouterr().out

    def test_fabric_status_rejects_non_run(self, tmp_path, capsys):
        assert main(["fabric-status", str(tmp_path / "nope")]) == 1
        assert "not a run directory" in capsys.readouterr().err

    def test_share_fabric_flights_needs_run_dir(self, capsys):
        code = main([
            "share-fabric", "--shards", "1", "--duration-ms", "1",
            "--inline", "--no-run-dir", "--flights",
        ])
        assert code == 2
        assert "--flights needs a run directory" in capsys.readouterr().err

    def test_share_fabric_writes_ledger(self, tmp_path, capsys, runs):
        run_dir = str(tmp_path / "cli-run")
        code = main([
            "share-fabric", "--shards", "1", "--duration-ms", "1",
            "--inline", "--pods", "2", "--tors-per-pod", "1",
            "--run-dir", run_dir,
        ])
        assert code == 0
        _, manifest = load_manifest(run_dir)
        assert manifest["status"] == "complete"
        assert "run ledger" in capsys.readouterr().out

    def test_share_fabric_no_run_dir_keeps_old_behaviour(self, capsys):
        code = main([
            "share-fabric", "--shards", "1", "--duration-ms", "1",
            "--inline", "--pods", "2", "--tors-per-pod", "1",
            "--no-run-dir",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "run ledger" not in out
        assert "per-shard windows" not in out
