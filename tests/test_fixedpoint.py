"""Tests for the hardware-style fixed-point A-Gap and the 3-byte rate
encoding — including the float-vs-integer equivalence property that
justifies simulating with floats."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.agap import AGapTracker
from repro.core.fixedpoint import (
    FixedPointAGap,
    MAX_RATE_BYTES_PER_S,
    MIN_RATE_BYTES_PER_S,
    decode_rate,
    encode_rate,
    rate_quantization_error,
)
from repro.errors import ConfigurationError


class TestRateEncoding:
    def test_round_trip_exact_for_powers_of_two(self):
        mantissa, exponent = encode_rate(1 << 24)
        assert decode_rate(mantissa, exponent) == 1 << 24

    def test_paper_range_endpoints(self):
        for rate in (MIN_RATE_BYTES_PER_S, MAX_RATE_BYTES_PER_S):
            mantissa, exponent = encode_rate(rate)
            assert decode_rate(mantissa, exponent) == pytest.approx(rate, rel=1e-4)

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            encode_rate(MIN_RATE_BYTES_PER_S / 2)
        with pytest.raises(ConfigurationError):
            encode_rate(MAX_RATE_BYTES_PER_S * 2)

    def test_invalid_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            decode_rate(1 << 16, 0)
        with pytest.raises(ConfigurationError):
            decode_rate(1, 256)

    @given(st.floats(min_value=MIN_RATE_BYTES_PER_S, max_value=MAX_RATE_BYTES_PER_S))
    @settings(max_examples=200, deadline=None)
    def test_quantization_error_bounded(self, rate):
        # 16-bit mantissa: relative error below 2^-16.
        assert rate_quantization_error(rate) < 2 ** -16


class TestFixedPointGap:
    def test_first_packet(self):
        gap = FixedPointAGap(rate_bytes_per_s=125_000_000)  # 1 Gbps
        assert gap.on_arrival(0, 1500) == 1500

    def test_drain_is_integer_exact(self):
        gap = FixedPointAGap(rate_bytes_per_s=decode_rate(*encode_rate(1e9)))
        gap.on_arrival(0, 10_000)
        # After 5 us at 1 GB/s: 5000 bytes drained.
        assert gap.on_arrival(5_000, 1000) == pytest.approx(6000, abs=2)

    def test_saturating_subtract(self):
        gap = FixedPointAGap(rate_bytes_per_s=1e9)
        gap.on_arrival(0, 1000)
        assert gap.on_arrival(1_000_000, 500) == 500  # fully drained + new

    def test_undo_arrival_saturates(self):
        gap = FixedPointAGap(rate_bytes_per_s=1e9)
        gap.on_arrival(0, 100)
        gap.undo_arrival(1500)
        assert gap.gap_bytes == 0

    def test_time_monotonicity_enforced(self):
        gap = FixedPointAGap(rate_bytes_per_s=1e9)
        gap.on_arrival(1000, 100)
        with pytest.raises(ConfigurationError):
            gap.on_arrival(999, 100)

    def test_virtual_delay_integer_ns(self):
        rate = decode_rate(*encode_rate(1e9))
        gap = FixedPointAGap(rate_bytes_per_s=rate)
        gap.on_arrival(0, rate // 1000)  # 1 ms worth of bytes
        assert gap.virtual_queuing_delay_ns() == pytest.approx(1_000_000, rel=1e-3)


class TestFloatEquivalence:
    """The simulator's float A-Gap and the hardware's integer A-Gap must
    agree within quantization error: one packet of slack plus the 3-byte
    rate encoding's 2^-16 relative rate error integrated over time."""

    arrivals = st.lists(
        st.tuples(
            st.integers(min_value=100, max_value=2_000_000),  # gap ns
            st.integers(min_value=64, max_value=9000),  # size
        ),
        min_size=1,
        max_size=80,
    )

    @given(arrivals, st.floats(min_value=2e6, max_value=5e11))
    @settings(max_examples=150, deadline=None)
    def test_integer_tracks_float(self, gaps_and_sizes, rate_bytes):
        # Use the decoded rate for BOTH so only arithmetic differs.
        exact_rate = decode_rate(*encode_rate(rate_bytes))
        fixed = FixedPointAGap(rate_bytes_per_s=exact_rate)
        floaty = AGapTracker(rate_bps=exact_rate * 8.0)
        t_ns = 0
        for delta_ns, size in gaps_and_sizes:
            t_ns += delta_ns
            gap_fixed = fixed.on_arrival(t_ns, size)
            gap_float = floaty.on_arrival(t_ns / 1e9, size)
            # Integer truncation of the drain term can only leave the
            # fixed-point gap >= the float gap, by < 1 byte per step
            # accumulated until a saturation resets both to "size".
            assert gap_fixed >= gap_float - 1e-6
            assert gap_fixed - gap_float <= len(gaps_and_sizes) + 1

    def test_accepted_rate_identical_in_steady_state(self):
        """At the limit boundary the two implementations can oscillate in
        anti-phase (a one-byte truncation offset flips individual
        boundary decisions), but the *accepted rate* — the quantity the
        paper guarantees — must match to within a packet or two."""
        exact_rate = decode_rate(*encode_rate(125_000_000))
        fixed = FixedPointAGap(rate_bytes_per_s=exact_rate)
        floaty = AGapTracker(rate_bps=exact_rate * 8.0)
        limit = 15_000
        accepted_fixed = accepted_float = 0
        t_ns = 0
        for _ in range(2000):
            t_ns += 6_000  # 1500 B every 6 us = 2x the allocated rate
            if fixed.on_arrival(t_ns, 1500) > limit:
                fixed.undo_arrival(1500)
            else:
                accepted_fixed += 1500
            if floaty.on_arrival(t_ns / 1e9, 1500) > limit:
                floaty.undo_arrival(1500)
            else:
                accepted_float += 1500
        assert accepted_fixed == pytest.approx(accepted_float, rel=0.02)
        # And both enforce the allocated rate over the window.
        window_s = t_ns / 1e9
        assert accepted_fixed / window_s == pytest.approx(exact_rate, rel=0.05)


class TestEncodingEdgeCases:
    """The hardening sweep: degenerate rates must fail loudly, never
    divide by zero, and never silently wrap the 16-bit mantissa."""

    @pytest.mark.parametrize("rate", [0, 0.0, -1, -MIN_RATE_BYTES_PER_S])
    def test_zero_and_negative_rates_rejected(self, rate):
        with pytest.raises(ConfigurationError):
            encode_rate(rate)

    @pytest.mark.parametrize("rate", [0.5, 1, 1e-9, MIN_RATE_BYTES_PER_S - 1])
    def test_sub_minimum_rates_rejected(self, rate):
        with pytest.raises(ConfigurationError):
            encode_rate(rate)

    @pytest.mark.parametrize(
        "rate", [float("nan"), float("inf"), float("-inf")]
    )
    def test_non_finite_rates_rejected(self, rate):
        with pytest.raises(ConfigurationError):
            encode_rate(rate)

    def test_quantization_error_never_divides_by_zero(self):
        for rate in (0, 0.0, -3, float("nan")):
            with pytest.raises(ConfigurationError):
                rate_quantization_error(rate)

    def test_mantissa_never_wraps_near_boundaries(self):
        # Rates just around mantissa-full values are where rounding could
        # push int(round(value)) past the 16-bit field.
        for exponent in range(5, 15):
            full = decode_rate((1 << 16) - 1, exponent)
            for rate in (full - 1, full, full + 0.49, full + 1, full * 1.0000001):
                if not MIN_RATE_BYTES_PER_S <= rate <= MAX_RATE_BYTES_PER_S:
                    continue
                mantissa, exp = encode_rate(rate)
                assert 0 < mantissa < (1 << 16)
                assert 0 <= exp <= 255
                assert rate_quantization_error(rate) <= 2 ** -15

    def test_round_trip_error_bound_at_range_extremes(self):
        for rate in (
            MIN_RATE_BYTES_PER_S,
            MIN_RATE_BYTES_PER_S + 1,
            MAX_RATE_BYTES_PER_S - 1,
            MAX_RATE_BYTES_PER_S,
        ):
            assert rate_quantization_error(rate) <= 2 ** -15

    def test_virtual_delay_zero_rate_guard(self):
        gap = FixedPointAGap(rate_bytes_per_s=1e9)
        gap.on_arrival(0, 1500)
        # A wiped register file could zero the rate out from under the
        # delay computation; that must be an explicit error, not a
        # ZeroDivisionError.
        gap.mantissa = 0
        with pytest.raises(ConfigurationError):
            gap.virtual_queuing_delay_ns()

    def test_zero_gap_zero_delay(self):
        gap = FixedPointAGap(rate_bytes_per_s=MIN_RATE_BYTES_PER_S)
        assert gap.virtual_queuing_delay_ns() == 0
