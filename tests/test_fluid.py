"""Tests for the hybrid fluid/packet fast path (:mod:`repro.sim.fluid`).

Covers the mode-transition edge cases (faults mid-epoch, flows finishing
exactly on an epoch boundary, zero-length epochs falling straight back to
packet mode), the static eligibility screen, packet-mode equivalence under
the documented tolerances, and audit cleanliness of the synthetic trace.
"""

import pytest

from repro.errors import ConfigurationError
from repro.harness.common import EntitySpec
from repro.harness.scenarios import run_fluid_share
from repro.net.link import MODE_FLUID, MODE_PACKET, LinkStats
from repro.obs.telemetry import Telemetry
from repro.sim.fluid import FluidEngine
from repro.topology.dumbbell import Dumbbell, DumbbellConfig
from repro.transport.udp import UdpFlow
from repro.units import gbps


BOTTLENECK = gbps(2)


def _two_udp(**kwargs_b):
    return [
        EntitySpec(name="A", cc="udp"),
        EntitySpec(name="B", cc="udp", **kwargs_b),
    ]


class TestLinkStatsUtilization:
    def test_zero_duration_returns_zero(self):
        stats = LinkStats()
        stats.busy_time = 1.5
        assert stats.utilization(0.0) == 0.0

    def test_negative_duration_returns_zero(self):
        stats = LinkStats()
        stats.busy_time = 1.5
        assert stats.utilization(-1.0) == 0.0

    def test_positive_duration(self):
        stats = LinkStats()
        stats.busy_time = 0.25
        assert stats.utilization(0.5) == pytest.approx(0.5)


class TestEquivalence:
    def test_undersubscribed_matches_packet_tightly(self):
        ents = [
            EntitySpec(name="A", cc="udp", udp_rate_bps=0.45 * BOTTLENECK),
            EntitySpec(name="B", cc="udp", udp_rate_bps=0.40 * BOTTLENECK),
        ]
        pk = run_fluid_share(ents, "pq", duration=20e-3, fluid=False)
        fl = run_fluid_share(ents, "pq", duration=20e-3, fluid=True)
        assert fl.fluid["epochs"] > 0
        for name in pk.delivered_total:
            p, f = pk.delivered_total[name], fl.delivered_total[name]
            assert f == pytest.approx(p, rel=0.01)

    def test_aq_limit_totals_match(self):
        # Overloaded equal-rate CBR splits the trunk buffer by enqueue
        # phase in packet mode, so per-entity bytes only match loosely;
        # the aggregate must still agree tightly (conservation).
        ents = _two_udp()
        pk = run_fluid_share(ents, "aq", duration=20e-3, fluid=False)
        fl = run_fluid_share(ents, "aq", duration=20e-3, fluid=True)
        assert fl.fluid["epochs"] > 0
        total_pk = sum(pk.delivered_total.values())
        total_fl = sum(fl.delivered_total.values())
        assert total_fl == pytest.approx(total_pk, rel=0.01)
        for name in pk.delivered_total:
            assert fl.delivered_total[name] == pytest.approx(
                pk.delivered_total[name], rel=0.08
            )

    def test_shaped_entities_match_packet(self):
        ents = _two_udp()
        pk = run_fluid_share(ents, "prl", duration=20e-3, fluid=False)
        fl = run_fluid_share(ents, "prl", duration=20e-3, fluid=True)
        assert fl.fluid["epochs"] > 0
        for name in pk.delivered_total:
            assert fl.delivered_total[name] == pytest.approx(
                pk.delivered_total[name], rel=0.01
            )

    def test_audit_clean_in_both_modes(self):
        ents = _two_udp(start_time=5e-3, stop_time=15e-3)
        for fluid in (False, True):
            tele = Telemetry(enabled=True)
            auditor = tele.enable_audit()
            with tele.activate():
                run_fluid_share(ents, "aq", duration=20e-3, fluid=fluid)
            tele.close()
            report = auditor.report()
            assert report["violation_count"] == 0, report["violations"][:3]


class TestModeTransitions:
    def test_flow_finish_exits_epoch_at_boundary(self):
        # B stops exactly at 15 ms: the epoch must end there (flow_finish
        # exit), and B's goodput must reflect only its active window.
        ents = _two_udp(start_time=5e-3, stop_time=15e-3)
        fl = run_fluid_share(ents, "aq", duration=20e-3, fluid=True)
        assert fl.fluid["exits"].get("flow_finish", 0) >= 1
        pk = run_fluid_share(ents, "aq", duration=20e-3, fluid=False)
        assert fl.delivered_total["B"] == pytest.approx(
            pk.delivered_total["B"], rel=0.02
        )

    def test_zero_length_epoch_falls_back_to_packet(self):
        # min_epoch longer than the run: every candidate epoch collapses
        # to zero length, so the pre-flight check must refuse to engage
        # (no barrier perturbation at all) and the run must complete
        # per-packet with bit-identical results.
        ents = _two_udp()
        fl = run_fluid_share(
            ents, "aq", duration=10e-3, fluid=True, min_epoch=1.0
        )
        assert fl.fluid["epochs"] == 0
        assert fl.fluid["engagements"] == 0
        assert fl.fluid["rejections"].get("horizon", 0) >= 1
        pk = run_fluid_share(ents, "aq", duration=10e-3, fluid=False)
        assert fl.delivered_total == pk.delivered_total

    def test_fault_mid_epoch_returns_to_packet_mode(self):
        # A trunk blackout lands mid-run: its scheduled set_down is a
        # calendar event, so the running epoch ends at it ("event" exit);
        # while the link is down every re-engagement is rejected
        # ("link_faulted") and the blackout runs per-packet.
        dumbbell = Dumbbell(DumbbellConfig(
            num_left=1, num_right=1, bottleneck_rate_bps=BOTTLENECK,
        ))
        network = dumbbell.network
        flow = UdpFlow(network, "h-l0", "h-r0", rate_bps=BOTTLENECK)
        trunk = network.switches[Dumbbell.LEFT_SWITCH].route_for("h-r0").link
        network.sim.schedule_at(5e-3, trunk.set_down)
        network.sim.schedule_at(7e-3, trunk.set_up)
        engine = FluidEngine(network, [flow])
        assert engine.static_reason is None
        engine.run(until=20e-3)
        stats = engine.stats()
        assert stats["epochs"] > 0
        assert stats["exits"].get("event", 0) >= 1
        assert stats["rejections"].get("link_faulted", 0) >= 1
        # ~2 ms of a 20 ms run is dark; goodput must reflect that.
        expected = BOTTLENECK / 8 * (20e-3 - 2e-3)
        assert flow.sink.delivered_bytes == pytest.approx(expected, rel=0.05)
        for stage in engine._queue_stages:
            assert stage.transmitter.mode == MODE_PACKET

    def test_transmitters_restored_after_run(self):
        ents = _two_udp()
        dummy = Dumbbell(DumbbellConfig(
            num_left=1, num_right=1, bottleneck_rate_bps=BOTTLENECK,
        ))
        flow = UdpFlow(dummy.network, "h-l0", "h-r0", rate_bps=BOTTLENECK)
        engine = FluidEngine(dummy.network, [flow])
        engine.run(until=5e-3)
        for stage in engine._queue_stages:
            assert stage.transmitter.mode == MODE_PACKET
        # The run can continue per-packet afterwards.
        dummy.network.run(until=6e-3)
        assert flow.sink.delivered_bytes > 0
        del ents


class TestEligibility:
    def test_non_udp_entities_rejected(self):
        ents = [EntitySpec(name="T", cc="cubic")]
        with pytest.raises(ConfigurationError):
            run_fluid_share(ents, "aq", duration=5e-3, fluid=True)

    def test_timewin_recorder_forces_packet_mode(self):
        dumbbell = Dumbbell(DumbbellConfig(
            num_left=1, num_right=1, bottleneck_rate_bps=BOTTLENECK,
        ))
        tele = Telemetry(enabled=True)
        tele.enable_time_windows()
        with tele.activate():
            network = Dumbbell(DumbbellConfig(
                num_left=1, num_right=1, bottleneck_rate_bps=BOTTLENECK,
            )).network
            flow = UdpFlow(network, "h-l0", "h-r0", rate_bps=BOTTLENECK)
            engine = FluidEngine(network, [flow])
            assert engine.static_reason is not None
            assert "time-window" in engine.static_reason
            engine.run(until=2e-3)
        tele.close()
        assert engine.epochs == 0
        assert flow.sink.delivered_bytes > 0
        del dumbbell

    def test_no_flows_rejected(self):
        dumbbell = Dumbbell(DumbbellConfig(
            num_left=1, num_right=1, bottleneck_rate_bps=BOTTLENECK,
        ))
        engine = FluidEngine(dumbbell.network, [])
        assert engine.static_reason == "no flows registered"

    def test_mode_constants_exported(self):
        assert MODE_FLUID == "fluid"
        assert MODE_PACKET == "packet"
