"""Tests for the web-search distribution and workload generators."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.units import MSS_BYTES
from repro.workloads.generator import EntityWorkload, FlowSpec
from repro.workloads.websearch import (
    FlowSizeDistribution,
    WEBSEARCH_CDF_PACKETS,
    websearch_distribution,
)


class TestFlowSizeDistribution:
    def test_samples_within_cdf_bounds(self):
        dist = websearch_distribution()
        rng = random.Random(1)
        max_packets = WEBSEARCH_CDF_PACKETS[-1][0]
        for _ in range(2000):
            packets = dist.sample_packets(rng)
            assert 1 <= packets <= max_packets

    def test_heavy_tail_present(self):
        dist = websearch_distribution()
        rng = random.Random(2)
        sizes = [dist.sample_packets(rng) for _ in range(5000)]
        small = sum(1 for s in sizes if s <= 10)
        big = sum(1 for s in sizes if s >= 200)
        assert small > 0.35 * len(sizes)  # mostly small flows
        assert big > 0  # but a real tail exists

    def test_mean_is_stable_and_plausible(self):
        dist = websearch_distribution()
        mean = dist.mean_bytes(samples=5000)
        # Dozens of packets on average for the moderated distribution.
        assert 20 * MSS_BYTES < mean < 120 * MSS_BYTES

    def test_deterministic_given_seeded_rng(self):
        dist = websearch_distribution()
        a = [dist.sample_bytes(random.Random(42)) for _ in range(10)]
        b = [dist.sample_bytes(random.Random(42)) for _ in range(10)]
        assert a == b

    def test_invalid_cdf_rejected(self):
        with pytest.raises(ConfigurationError):
            FlowSizeDistribution([(1, 0.0)])
        with pytest.raises(ConfigurationError):
            FlowSizeDistribution([(1, 0.5), (2, 1.0)])  # must start at 0
        with pytest.raises(ConfigurationError):
            FlowSizeDistribution([(5, 0.0), (2, 1.0)])  # sizes must rise

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=50, deadline=None)
    def test_any_seed_produces_valid_sample(self, seed):
        dist = websearch_distribution()
        size = dist.sample_bytes(random.Random(seed))
        assert size >= MSS_BYTES


class TestEntityWorkload:
    def _workload(self, sources=("s0", "s1"), destinations=("d0", "d1")):
        return EntityWorkload("e", sources, destinations)

    def test_vm_job_queues_sum_to_volume(self):
        workload = self._workload()
        queues = workload.vm_job_queues(random.Random(1), 1_000_000, 0.01)
        total = sum(f.size_bytes for flows in queues.values() for f in flows)
        assert total == 1_000_000

    def test_vm_job_queues_sorted_by_arrival(self):
        workload = self._workload()
        queues = workload.vm_job_queues(random.Random(1), 2_000_000, 0.05)
        for flows in queues.values():
            arrivals = [f.start_time for f in flows]
            assert arrivals == sorted(arrivals)

    def test_arrivals_within_window(self):
        workload = self._workload()
        queues = workload.vm_job_queues(
            random.Random(3), 1_000_000, 0.02, start_time=1.0
        )
        for flows in queues.values():
            for flow in flows:
                assert 1.0 <= flow.start_time <= 1.02

    def test_zero_window_is_closed_loop(self):
        workload = self._workload()
        queues = workload.vm_job_queues(random.Random(1), 500_000, 0.0)
        for flows in queues.values():
            assert all(f.start_time == 0.0 for f in flows)

    def test_sources_only_from_own_set(self):
        workload = self._workload(sources=("s0",), destinations=("d0", "d1"))
        queues = workload.vm_job_queues(random.Random(1), 500_000, 0.01)
        assert set(queues) == {"s0"}
        for flow in queues["s0"]:
            assert flow.dst in ("d0", "d1")

    def test_src_never_equals_dst(self):
        workload = EntityWorkload("e", ["h0", "h1"], ["h0", "h1"])
        queues = workload.vm_job_queues(random.Random(5), 1_000_000, 0.01)
        for flows in queues.values():
            for flow in flows:
                assert flow.src != flow.dst

    def test_fixed_volume_batch(self):
        workload = self._workload()
        flows = workload.fixed_volume(random.Random(1), 500_000, 0.01)
        assert sum(f.size_bytes for f in flows) == 500_000
        assert all(0.0 <= f.start_time <= 0.01 for f in flows)
        assert [f.start_time for f in flows] == sorted(f.start_time for f in flows)

    def test_poisson_open_loop_load(self):
        workload = self._workload()
        rng = random.Random(7)
        flows = workload.poisson_open_loop(rng, load_bps=1e9, duration=0.5)
        offered = sum(f.size_bytes for f in flows) * 8 / 0.5
        assert offered == pytest.approx(1e9, rel=0.25)

    def test_empty_entity_rejected(self):
        with pytest.raises(ConfigurationError):
            EntityWorkload("e", [], ["d0"])
        with pytest.raises(ConfigurationError):
            self._workload().vm_job_queues(random.Random(1), 0, 0.01)
        with pytest.raises(ConfigurationError):
            self._workload().vm_job_queues(random.Random(1), 100, -1.0)

    def test_flow_spec_immutable(self):
        flow = FlowSpec("a", "b", 100, 0.0)
        with pytest.raises(AttributeError):
            flow.size_bytes = 200
