"""Transport-level TCP tests on small real topologies."""

import pytest

from repro.cc.newreno import NewReno
from repro.cc.registry import make_cc
from repro.errors import TransportError
from repro.topology.base import QueueConfig
from repro.topology.dumbbell import Dumbbell, DumbbellConfig
from repro.transport.tcp import TcpConnection, TcpSender
from repro.units import gbps


def small_dumbbell(rate=gbps(1), queue_config=None):
    return Dumbbell(
        DumbbellConfig(
            num_left=2,
            num_right=2,
            bottleneck_rate_bps=rate,
            queue_config=queue_config or QueueConfig(),
        )
    )


class TestReliableDelivery:
    def test_fixed_size_flow_completes_exactly(self):
        d = small_dumbbell()
        done = []
        conn = TcpConnection(
            d.network, "h-l0", "h-r0", NewReno(), size_bytes=500_000,
            on_complete=lambda c, t: done.append(t),
        )
        d.network.run(until=1.0)
        assert done, "flow did not complete"
        assert conn.receiver.delivered_bytes == 500_000
        assert conn.receiver.fin_received

    def test_completion_time_reasonable(self):
        # 500 KB at 1 Gbps is 4 ms of serialization; allow generous slack
        # for slow start but catch order-of-magnitude regressions.
        d = small_dumbbell()
        conn = TcpConnection(d.network, "h-l0", "h-r0", NewReno(), size_bytes=500_000)
        d.network.run(until=1.0)
        assert conn.completed
        assert conn.completion_time < 30e-3

    def test_delivery_survives_heavy_loss(self):
        # A tiny bottleneck queue forces drops; TCP must still deliver all.
        d = small_dumbbell(queue_config=QueueConfig(limit_bytes=8 * 1500))
        conn1 = TcpConnection(d.network, "h-l0", "h-r0", NewReno(), size_bytes=300_000)
        conn2 = TcpConnection(d.network, "h-l1", "h-r1", NewReno(), size_bytes=300_000)
        d.network.run(until=2.0)
        assert conn1.completed and conn2.completed
        assert conn1.receiver.delivered_bytes == 300_000
        assert conn2.receiver.delivered_bytes == 300_000
        total_rexmit = (
            conn1.sender.stats.retransmissions + conn2.sender.stats.retransmissions
        )
        assert total_rexmit > 0, "expected losses with an 8-packet buffer"

    def test_long_lived_flow_fills_link(self):
        d = small_dumbbell()
        conn = TcpConnection(d.network, "h-l0", "h-r0", make_cc("cubic"))
        d.network.run(until=0.1)
        rate = conn.receiver.delivered_bytes * 8 / 0.1
        assert rate > 0.7 * gbps(1)

    def test_two_flows_share_capacity(self):
        d = small_dumbbell()
        c1 = TcpConnection(d.network, "h-l0", "h-r0", make_cc("cubic"))
        c2 = TcpConnection(d.network, "h-l1", "h-r1", make_cc("cubic"))
        d.network.run(until=0.15)
        r1 = c1.receiver.delivered_bytes * 8 / 0.15
        r2 = c2.receiver.delivered_bytes * 8 / 0.15
        assert r1 + r2 > 0.8 * gbps(1)
        assert min(r1, r2) / max(r1, r2) > 0.3

    def test_start_time_honored(self):
        d = small_dumbbell()
        conn = TcpConnection(
            d.network, "h-l0", "h-r0", NewReno(), size_bytes=100_000,
            start_time=5e-3,
        )
        d.network.run(until=4e-3)
        assert conn.sender.stats.segments_sent == 0
        d.network.run(until=0.5)
        assert conn.completed
        assert conn.sender.stats.start_time == pytest.approx(5e-3)

    def test_stop_halts_sender(self):
        d = small_dumbbell()
        conn = TcpConnection(d.network, "h-l0", "h-r0", make_cc("cubic"))
        d.network.sim.schedule_at(10e-3, conn.sender.stop)
        d.network.run(until=50e-3)
        sent_at_stop = conn.sender.stats.bytes_sent
        d.network.run(until=60e-3)
        assert conn.sender.stats.bytes_sent == sent_at_stop


class TestRttEstimation:
    def test_base_rtt_close_to_propagation(self):
        d = small_dumbbell()
        conn = TcpConnection(d.network, "h-l0", "h-r0", NewReno(), size_bytes=100_000)
        d.network.run(until=0.5)
        # Base RTT should be within a few serialization times of 60 us.
        assert conn.sender.base_rtt < 120e-6
        assert conn.sender.base_rtt >= 60e-6

    def test_srtt_positive_after_transfer(self):
        d = small_dumbbell()
        conn = TcpConnection(d.network, "h-l0", "h-r0", NewReno(), size_bytes=50_000)
        d.network.run(until=0.5)
        assert conn.sender.srtt > 0


class TestValidation:
    def test_zero_size_rejected(self):
        d = small_dumbbell()
        with pytest.raises(TransportError):
            TcpSender(
                d.network.sim, d.network.hosts["h-l0"], "h-r0", 999,
                NewReno(), size_bytes=0,
            )


class TestAqHeaderStamping:
    def test_data_packets_carry_aq_ids(self):
        d = small_dumbbell()
        seen = []
        d.network.switches[Dumbbell.LEFT_SWITCH].add_ingress_hook(
            lambda p, now: seen.append((p.aq_ingress_id, p.aq_egress_id)) or True
        )
        TcpConnection(
            d.network, "h-l0", "h-r0", NewReno(), size_bytes=30_000,
            aq_ingress_id=7, aq_egress_id=9,
        )
        d.network.run(until=0.1)
        data_headers = [h for h in seen if h != (0, 0)]
        assert data_headers and all(h == (7, 9) for h in data_headers)


class TestRtoBackoff:
    """Exponential backoff through a long link blackout, and the RFC 6298
    collapse of the backoff once new data is acknowledged afterwards."""

    def test_units_consistent(self):
        from repro.transport.tcp import DEFAULT_MIN_RTO, MAX_RTO
        from repro.units import SECOND, ms

        assert DEFAULT_MIN_RTO == ms(1)
        assert MAX_RTO == 1 * SECOND
        assert DEFAULT_MIN_RTO < MAX_RTO

    def test_blackout_forces_exponential_backoff_then_reset(self):
        d = small_dumbbell()
        net = d.network
        conn = TcpConnection(net, "h-l0", "h-r0", make_cc("cubic"))
        sender = conn.sender

        uplink = net.link("h-l0", Dumbbell.LEFT_SWITCH)
        blackout_rtos = []

        def go_dark():
            uplink.set_down()

        def probe():
            blackout_rtos.append(sender._rto)
            uplink.set_up()

        net.sim.schedule_at(10e-3, go_dark)
        net.sim.schedule_at(90e-3, probe)
        net.run(until=0.3)

        # Several RTOs fired during the 80 ms blackout and each doubled
        # the timer (1, 2, 4, 8, 16, 32 ms...).
        assert sender.stats.timeouts >= 3
        assert blackout_rtos[0] >= 8 * sender.min_rto

        # Every go-back-N resend counts as a retransmission, and the
        # blackout put no bogus samples into the estimator (nothing was
        # delivered): post-recovery SRTT stays at data-center scale.
        assert sender.stats.retransmissions >= sender.stats.timeouts
        assert 0 < sender.srtt < 5e-3

        # And the first new ACK after recovery collapsed the backoff.
        assert sender._rto < blackout_rtos[0]
        assert sender._rto <= max(sender.min_rto, sender.srtt * 4)

        # Traffic actually resumed after the link came back.
        resumed = conn.receiver.delivered_bytes
        assert resumed * 8 / 0.3 > 0.3 * gbps(1)

    def test_rto_never_exceeds_max(self):
        d = small_dumbbell()
        net = d.network
        conn = TcpConnection(net, "h-l0", "h-r0", NewReno())
        net.sim.schedule_at(5e-3, net.link("h-l0", Dumbbell.LEFT_SWITCH).set_down)
        net.run(until=8.0)
        from repro.transport.tcp import MAX_RTO

        assert conn.sender.stats.timeouts >= 5
        assert conn.sender._rto <= MAX_RTO
