"""Tests for the PRL token bucket and the two DRL allocators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.net.packet import make_ack, make_udp
from repro.ratelimit.dynamic import DynamicVmAllocator
from repro.ratelimit.elasticswitch import ElasticSwitch, VmProfile
from repro.ratelimit.token_bucket import TokenBucketShaper
from repro.sim.engine import Simulator
from repro.topology.star import Star, StarConfig
from repro.units import gbps, mbps


def pkt(size=1500):
    return make_udp("a", "b", 1, size)


class TestTokenBucket:
    def _shaper(self, rate=mbps(12), **kwargs):
        sim = Simulator()
        released = []
        shaper = TokenBucketShaper(sim, rate, released.append, **kwargs)
        return sim, shaper, released

    def test_burst_within_bucket_passes_immediately(self):
        sim, shaper, released = self._shaper()
        for _ in range(5):
            shaper.submit(pkt())
        assert len(released) == 5  # bucket holds 10 MTU
        assert sim.now == 0.0

    def test_sustained_rate_matches_configuration(self):
        # 12 Mbps = 1500 B per ms. Offer 100 packets at once.
        sim, shaper, released = self._shaper(rate=mbps(12))
        for _ in range(100):
            shaper.submit(pkt())
        sim.run(until=0.05)  # 50 ms -> 10 burst + ~50 paced
        assert 55 <= len(released) <= 65

    def test_backlog_drops_beyond_limit(self):
        sim, shaper, released = self._shaper(
            rate=mbps(1), backlog_limit_bytes=5 * 1500
        )
        for _ in range(30):
            shaper.submit(pkt())
        assert shaper.dropped_packets > 0
        assert shaper.backlog_bytes <= 5 * 1500

    def test_acks_bypass_shaping(self):
        sim, shaper, released = self._shaper(rate=mbps(1))
        for _ in range(50):
            shaper.submit(pkt())  # saturate
        ack = make_ack("a", "b", 1, ack=100, size=64)
        shaper.submit(ack)
        assert released[-1] is ack  # went straight through

    def test_set_rate_retargets(self):
        sim, shaper, released = self._shaper(rate=mbps(1))
        for _ in range(50):
            shaper.submit(pkt())
        before = len(released)
        shaper.set_rate(mbps(120))  # 10 MTU per ms
        sim.run(until=0.01)
        assert len(released) > before + 5

    def test_no_time_freeze_with_fractional_tokens(self):
        # Regression: sub-byte deficits froze the clock (see module docs).
        sim = Simulator()
        released = []
        shaper = TokenBucketShaper(sim, 333333.0, released.append)
        for _ in range(40):
            shaper.submit(pkt(997))
        processed = sim.run(until=2.0, max_events=100_000)
        assert sim.now >= 1.0 or processed < 100_000

    def test_invalid_parameters(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            TokenBucketShaper(sim, 0.0, lambda p: None)
        with pytest.raises(ConfigurationError):
            TokenBucketShaper(sim, mbps(1), lambda p: None, bucket_bytes=10)


class TestDynamicVmAllocator:
    def _star_with_allocator(self, share=gbps(1), interval=1e-3):
        star = Star(StarConfig(num_hosts=3, link_rate_bps=gbps(10)))
        allocator = DynamicVmAllocator(
            star.network, share, ["vm0", "vm1"], interval=interval
        )
        return star, allocator

    def test_initial_split_is_even(self):
        _, allocator = self._star_with_allocator(share=gbps(1))
        rates = [s.rate_bps for s in allocator.shapers.values()]
        assert rates == [pytest.approx(gbps(0.5))] * 2

    def test_demand_shifts_allocation(self):
        star, allocator = self._star_with_allocator(share=gbps(1), interval=1e-3)
        net = star.network
        # Only vm0 sends; vm1 idles.
        for i in range(3000):
            net.sim.schedule_at(
                i * 2e-6, net.hosts["vm0"].send, make_udp("vm0", "vm2", 9, 1500)
            )
        net.run(until=5e-3)
        assert allocator.shapers["vm0"].rate_bps > 0.8 * gbps(1)
        assert allocator.shapers["vm1"].rate_bps < 0.2 * gbps(1)

    def test_idle_floor_preserved(self):
        star, allocator = self._star_with_allocator(share=gbps(1), interval=1e-3)
        net = star.network
        for i in range(3000):
            net.sim.schedule_at(
                i * 2e-6, net.hosts["vm0"].send, make_udp("vm0", "vm2", 9, 1500)
            )
        net.run(until=5e-3)
        even = gbps(1) / 2
        assert allocator.shapers["vm1"].rate_bps >= 0.25 * even - 1

    def test_all_idle_resets_to_even(self):
        star, allocator = self._star_with_allocator(share=gbps(1), interval=1e-3)
        net = star.network
        net.hosts["vm0"].send(make_udp("vm0", "vm2", 9, 1500))
        net.run(until=10e-3)  # demand long gone
        rates = [s.rate_bps for s in allocator.shapers.values()]
        assert rates == [pytest.approx(gbps(0.5))] * 2

    def test_validation(self):
        star = Star(StarConfig(num_hosts=2))
        with pytest.raises(ConfigurationError):
            DynamicVmAllocator(star.network, 0.0, ["vm0"])
        with pytest.raises(ConfigurationError):
            DynamicVmAllocator(star.network, gbps(1), [])


class TestElasticSwitch:
    def _setup(self, num_hosts=3, profile=gbps(1)):
        star = Star(StarConfig(num_hosts=num_hosts, link_rate_bps=gbps(10)))
        es = ElasticSwitch(star.network, interval=1e-3)
        for name in star.hosts:
            es.add_vm(VmProfile(name, profile, profile))
        es.start()
        return star, es

    def test_pair_guarantee_is_min_of_splits(self):
        star, es = self._setup(num_hosts=3, profile=gbps(1))
        net = star.network
        # vm0 and vm1 both send to vm2: each inbound split is ~0.5G,
        # below their 1G outbound splits.
        for i in range(6000):
            t = i * 2e-6
            net.sim.schedule_at(t, net.hosts["vm0"].send, make_udp("vm0", "vm2", 1, 1500))
            net.sim.schedule_at(t, net.hosts["vm1"].send, make_udp("vm1", "vm2", 2, 1500))
        net.run(until=8e-3)
        r01 = es._pair_rates[("vm0", "vm2")]
        r12 = es._pair_rates[("vm1", "vm2")]
        assert r01 == pytest.approx(gbps(0.5), rel=0.3)
        assert r12 == pytest.approx(gbps(0.5), rel=0.3)

    def test_single_sender_gets_full_outbound(self):
        star, es = self._setup(num_hosts=3, profile=gbps(1))
        net = star.network
        for i in range(6000):
            net.sim.schedule_at(
                i * 2e-6, net.hosts["vm0"].send, make_udp("vm0", "vm2", 1, 1500)
            )
        net.run(until=8e-3)
        assert es._pair_rates[("vm0", "vm2")] == pytest.approx(gbps(1), rel=0.1)

    def test_acks_not_shaped(self):
        star, es = self._setup()
        delivered = []
        star.network.hosts["vm1"].set_default_endpoint(
            type("S", (), {"on_packet": lambda self, p, now: delivered.append(p)})()
        )
        ack = make_ack("vm0", "vm1", 1, ack=10, size=64)
        star.network.hosts["vm0"].send(ack)
        star.network.run(until=1e-3)
        assert delivered

    def test_duplicate_vm_rejected(self):
        star, es = self._setup()
        with pytest.raises(ConfigurationError):
            es.add_vm(VmProfile("vm0", gbps(1), gbps(1)))

    def test_unknown_host_rejected(self):
        star = Star(StarConfig(num_hosts=2))
        es = ElasticSwitch(star.network)
        with pytest.raises(ConfigurationError):
            es.add_vm(VmProfile("ghost", gbps(1), gbps(1)))

    def test_invalid_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            VmProfile("vm0", 0.0, gbps(1))

    def test_owner_pooling_budgets(self):
        star = Star(StarConfig(num_hosts=3, link_rate_bps=gbps(10)))
        es = ElasticSwitch(star.network)
        es.add_vm(VmProfile("vm0", gbps(1), gbps(1)), owner="entity")
        es.add_vm(VmProfile("vm1", gbps(2), gbps(2)), owner="entity")
        assert es._owner_budget("entity", outbound=True) == pytest.approx(gbps(3))
        assert es._owner_budget("entity", outbound=False) == pytest.approx(gbps(3))


class TestTokenBucketAdversarialTiming:
    """The bucket must never go (more than epsilon) negative and never
    overfill, even when bursts land at identical timestamps (Δ=0) and the
    rate is retargeted mid-burst."""

    steps = st.lists(
        st.tuples(
            st.one_of(  # inter-submit gap, weighted toward Δ=0
                st.just(0.0),
                st.just(0.0),
                st.floats(min_value=0.0, max_value=2e-3),
            ),
            st.integers(min_value=64, max_value=1500),  # packet size
            st.booleans(),  # retarget the rate at this step?
        ),
        min_size=1,
        max_size=60,
    )

    @given(steps, st.floats(min_value=1e5, max_value=1e9))
    @settings(max_examples=120, deadline=None)
    def test_tokens_stay_bounded(self, steps, rate_bps):
        sim = Simulator()
        shaper = TokenBucketShaper(sim, rate_bps, lambda p: None)
        t = 0.0
        for delta, size, retarget in steps:
            t += delta
            sim.schedule_at(t, shaper.submit, pkt(size))
            if retarget:
                sim.schedule_at(t, shaper.set_rate, max(rate_bps / 2, 1.0))
        sim.run(until=t + 1e-9)
        assert shaper._tokens >= -1e-6
        assert shaper._tokens <= shaper.bucket_bytes + 1e-6
        # Nothing vanished: every submitted packet was released, is still
        # backlogged, or was dropped against the backlog limit.
        sim.run(until=t + 60.0)
        assert shaper.backlog_bytes == 0
        assert shaper._tokens >= -1e-6

    def test_simultaneous_burst_never_negative(self):
        sim = Simulator()
        released = []
        shaper = TokenBucketShaper(sim, mbps(10), released.append)
        for _ in range(200):  # one pipeline cycle's worth, all at t=0
            shaper.submit(pkt())
        assert shaper._tokens >= -1e-6
        sim.run(until=5.0)
        assert shaper._tokens >= -1e-6
        assert shaper.backlog_bytes == 0
