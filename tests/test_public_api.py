"""Public-API hygiene: exports resolve, examples parse, docs exist."""

import ast
import importlib
import pathlib

import pytest

import repro

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestExports:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists missing name {name}"

    def test_version_present(self):
        assert repro.__version__

    def test_every_export_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if isinstance(obj, str):  # approach constants
                continue
            assert obj.__doc__, f"{name} has no docstring"

    def test_approaches_constant(self):
        assert set(repro.APPROACHES) == {"pq", "aq", "prl", "drl"}


class TestModuleDocs:
    def test_every_module_has_docstring(self):
        for path in (REPO_ROOT / "src" / "repro").rglob("*.py"):
            if path.name == "__main__.py":
                continue
            tree = ast.parse(path.read_text())
            assert ast.get_docstring(tree), f"{path} lacks a module docstring"

    def test_subpackages_importable(self):
        for module in (
            "repro.sim.engine", "repro.net.packet", "repro.net.switch",
            "repro.queues.fifo", "repro.queues.perflow",
            "repro.queues.multiqueue", "repro.transport.tcp",
            "repro.transport.udp", "repro.cc.registry",
            "repro.ratelimit.token_bucket", "repro.ratelimit.elasticswitch",
            "repro.ratelimit.dynamic", "repro.topology.dumbbell",
            "repro.topology.star", "repro.topology.leafspine",
            "repro.workloads.websearch", "repro.workloads.generator",
            "repro.core.agap", "repro.core.aq", "repro.core.controller",
            "repro.core.pipeline", "repro.core.feedback",
            "repro.core.resources", "repro.core.workconserving",
            "repro.stats.meters", "repro.stats.fairness", "repro.stats.fct",
            "repro.stats.trace", "repro.stats.timeseries",
            "repro.harness.common", "repro.harness.scenarios",
            "repro.harness.report", "repro.cli",
        ):
            importlib.import_module(module)


class TestExamples:
    @pytest.mark.parametrize(
        "script",
        sorted(p.name for p in (REPO_ROOT / "examples").glob("*.py")),
    )
    def test_example_parses_and_has_main(self, script):
        source = (REPO_ROOT / "examples" / script).read_text()
        tree = ast.parse(source)
        assert ast.get_docstring(tree), f"{script} lacks a docstring"
        functions = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
        assert "main" in functions, f"{script} has no main()"

    def test_at_least_five_examples(self):
        scripts = list((REPO_ROOT / "examples").glob("*.py"))
        assert len(scripts) >= 5


class TestDocs:
    @pytest.mark.parametrize("doc", ["README.md", "DESIGN.md", "EXPERIMENTS.md"])
    def test_doc_exists_and_substantial(self, doc):
        path = REPO_ROOT / doc
        assert path.exists()
        assert len(path.read_text()) > 2000

    def test_experiments_covers_every_artifact(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        for artifact in (
            "Figure 1", "Figure 3", "Figure 6", "Figure 7", "Figure 8",
            "Figure 9", "Figure 10", "Figure 11", "Figure 12",
            "Table 2", "Table 3", "Table 4",
        ):
            assert artifact in text, f"EXPERIMENTS.md missing {artifact}"

    def test_benchmark_per_artifact(self):
        benches = {p.name for p in (REPO_ROOT / "benchmarks").glob("bench_*.py")}
        for expected in (
            "bench_fig01_cc_interference.py",
            "bench_fig03_strawman_vs_agap.py",
            "bench_fig06_wct_vs_vms.py",
            "bench_fig07_entity_fairness.py",
            "bench_fig08_flow_count.py",
            "bench_fig09_udp_tcp.py",
            "bench_fig10_cc_wct.py",
            "bench_fig11_resources.py",
            "bench_fig12_memory.py",
            "bench_table2_cc_sharing.py",
            "bench_table3_vm_profile.py",
            "bench_table4_cc_preservation.py",
        ):
            assert expected in benches
