"""Tests for the parallel experiment runner (repro.harness.runner)."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.harness.runner import (
    JobResult,
    JobSpec,
    compare_to_baseline,
    deterministic_result,
    flight_file_for,
    load_baseline,
    read_results_jsonl,
    resolve_target,
    results_digest,
    run_jobs,
    write_results_jsonl,
)

JOBS = "repro.harness._testjobs"


def spec(name, func, timeout_s=60.0, **kwargs):
    return JobSpec(name=name, target=f"{JOBS}:{func}", kwargs=kwargs, timeout_s=timeout_s)


class TestResolveTarget:
    def test_resolves_module_function(self):
        fn = resolve_target(f"{JOBS}:job_echo")
        assert fn(value=2.0) == {"value": 2.0}

    def test_rejects_malformed_target(self):
        with pytest.raises(ConfigurationError):
            resolve_target("no-colon-here")

    def test_rejects_missing_function(self):
        with pytest.raises(ConfigurationError):
            resolve_target(f"{JOBS}:job_nonexistent")


class TestRunJobs:
    def test_single_job_succeeds(self):
        results = run_jobs([spec("a", "job_echo", value=3.0)])
        assert len(results) == 1
        assert results[0].ok
        assert results[0].result == {"value": 3.0}
        assert results[0].attempts == 1

    def test_results_come_back_in_spec_order(self):
        # Job "slow" is launched first but finishes last.
        specs = [
            spec("slow", "job_sleep", seconds=0.4),
            spec("fast1", "job_echo", value=1.0),
            spec("fast2", "job_echo", value=2.0),
        ]
        results = run_jobs(specs, jobs=3)
        assert [r.name for r in results] == ["slow", "fast1", "fast2"]
        assert all(r.ok for r in results)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            run_jobs([spec("x", "job_echo"), spec("x", "job_echo")])

    def test_zero_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            run_jobs([spec("x", "job_echo")], jobs=0)

    def test_failure_carries_traceback_and_is_not_retried(self):
        results = run_jobs([spec("bad", "job_fail", message="kaboom")])
        (result,) = results
        assert result.status == "failed"
        assert result.attempts == 1  # deterministic exception: no retry
        assert "kaboom" in result.error
        assert "ValueError" in result.error

    def test_timeout_kills_the_job(self):
        results = run_jobs(
            [spec("hang", "job_sleep", timeout_s=1.0, seconds=60.0)]
        )
        (result,) = results
        assert result.status == "timeout"
        assert "timed out" in result.error

    def test_crash_is_retried_once_and_recovers(self, tmp_path):
        sentinel = str(tmp_path / "crashed-once")
        results = run_jobs([spec("flaky", "job_crash_once", sentinel=sentinel)])
        (result,) = results
        assert result.ok
        assert result.attempts == 2
        assert result.result == {"recovered": True}

    def test_persistent_crash_fails_after_retry(self):
        results = run_jobs([spec("dead", "job_crash_always")])
        (result,) = results
        assert result.status == "failed"
        assert result.attempts == 2
        assert "crashed" in result.error

    def test_failures_do_not_block_other_jobs(self):
        specs = [
            spec("ok1", "job_echo", value=1.0),
            spec("bad", "job_fail"),
            spec("ok2", "job_echo", value=2.0),
        ]
        results = run_jobs(specs, jobs=2)
        by_name = {r.name: r for r in results}
        assert by_name["ok1"].ok and by_name["ok2"].ok
        assert by_name["bad"].status == "failed"

    def test_on_result_sees_every_outcome(self):
        seen = []
        run_jobs(
            [spec("a", "job_echo"), spec("b", "job_fail")],
            jobs=2,
            on_result=seen.append,
        )
        assert sorted(r.name for r in seen) == ["a", "b"]


class TestSpawnSafety:
    def test_run_jobs_works_when_main_is_stdin(self):
        # Spawn workers replay the parent's __main__ by path; a stdin
        # script's path is "<stdin>", which used to crash every worker.
        import os
        import subprocess
        import sys

        script = (
            "from repro.harness.runner import JobSpec, run_jobs\n"
            "spec = JobSpec(name='x', "
            "target='repro.harness._testjobs:job_echo', "
            "kwargs={'value': 7.0})\n"
            "(result,) = run_jobs([spec])\n"
            "assert result.ok and result.result == {'value': 7.0}, result\n"
            "print('STDIN-MAIN-OK')\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.run(
            [sys.executable, "-"], input=script, env=env,
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "STDIN-MAIN-OK" in proc.stdout


class TestDeterminism:
    def test_scenario_results_identical_across_parallelism(self):
        specs = [
            spec("tiny/seed1", "job_tiny_scenario", timeout_s=300.0, seed=1),
            spec("tiny/seed2", "job_tiny_scenario", timeout_s=300.0, seed=2),
        ]
        serial = run_jobs(specs, jobs=1)
        fanned = run_jobs(specs, jobs=2)
        assert all(r.ok for r in serial + fanned)
        for a, b in zip(serial, fanned):
            assert a.result == b.result
        assert results_digest(serial) == results_digest(fanned)

    def test_digest_ignores_timing_but_not_payload(self):
        base = JobResult(name="x", status="ok", attempts=1, wall_s=1.0,
                         result={"metric": 5, "timing": {"wall_s": 1.0}})
        same_slower = JobResult(name="x", status="ok", attempts=2, wall_s=9.0,
                                result={"metric": 5, "timing": {"wall_s": 9.0}})
        different = JobResult(name="x", status="ok", attempts=1, wall_s=1.0,
                              result={"metric": 6, "timing": {"wall_s": 1.0}})
        assert results_digest([base]) == results_digest([same_slower])
        assert results_digest([base]) != results_digest([different])

    def test_deterministic_result_strips_timing_only(self):
        assert deterministic_result({"a": 1, "timing": {"w": 2}}) == {"a": 1}
        assert deterministic_result(None) is None


class TestJsonlRoundTrip:
    def test_round_trip_preserves_everything(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        results = [
            JobResult(name="a", status="ok", attempts=1, wall_s=0.5,
                      result={"x": 1.5}),
            JobResult(name="b", status="failed", attempts=2, wall_s=0.1,
                      error="Traceback ..."),
            JobResult(name="c", status="ok", attempts=1, wall_s=0.2,
                      result={"y": 2}, profile={"events": 10}),
        ]
        write_results_jsonl(results, path)
        loaded = read_results_jsonl(path)
        assert loaded == results
        assert results_digest(loaded) == results_digest(results)

    def test_lines_are_valid_sorted_json(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        write_results_jsonl(
            [JobResult(name="a", status="ok", attempts=1, wall_s=0.5,
                       result={"b": 1, "a": 2})],
            path,
        )
        with open(path, encoding="utf-8") as fh:
            lines = [json.loads(line) for line in fh]
        assert len(lines) == 1
        assert lines[0]["name"] == "a"

    def test_round_trip_preserves_audit_verdict(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        results = [JobResult(
            name="a", status="ok", attempts=1, wall_s=0.5, result={"x": 1},
            audit={"events_seen": 42, "violation_count": 0, "violations": []},
        )]
        write_results_jsonl(results, path)
        loaded = read_results_jsonl(path)
        assert loaded == results
        assert loaded[0].audit["events_seen"] == 42


class TestAuditedJobs:
    def test_audited_run_carries_clean_verdict_and_flight_files(self, tmp_path):
        flight_dir = str(tmp_path / "flights")
        specs = [spec("tiny/a-b", "job_tiny_scenario", timeout_s=300.0, seed=1)]
        results = run_jobs(specs, audit=True, flight_dir=flight_dir)
        assert results[0].ok
        verdict = results[0].audit
        assert verdict is not None
        assert verdict["violation_count"] == 0
        assert verdict["violations"] == []
        assert verdict["events_seen"] > 1000
        flight_path = flight_file_for(flight_dir, "tiny/a-b")
        assert flight_path.endswith("tiny_a-b.flights.jsonl")
        with open(flight_path, encoding="utf-8") as fh:
            flights = [json.loads(line) for line in fh]
        assert flights and all("status" in f for f in flights)

    def test_audit_is_digest_neutral(self):
        specs = [spec("tiny", "job_tiny_scenario", timeout_s=300.0, seed=1)]
        plain = run_jobs(specs)
        audited = run_jobs(specs, audit=True)
        assert plain[0].audit is None and audited[0].audit is not None
        assert results_digest(plain) == results_digest(audited)


class TestBaseline:
    def test_load_baseline_from_jsonl(self, tmp_path):
        path = str(tmp_path / "base.jsonl")
        write_results_jsonl(
            [JobResult(name="a", status="ok", attempts=1, wall_s=2.0, result={})],
            path,
        )
        assert load_baseline(path) == {"a": 2.0}

    def test_load_baseline_from_jobs_mapping(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text(json.dumps({"jobs": {"a": 1.5, "b": 3.0}}))
        assert load_baseline(str(path)) == {"a": 1.5, "b": 3.0}

    def test_compare_flags_only_common_ok_jobs(self):
        results = [
            JobResult(name="a", status="ok", attempts=1, wall_s=4.0),
            JobResult(name="b", status="failed", attempts=1, wall_s=9.0),
            JobResult(name="new", status="ok", attempts=1, wall_s=1.0),
        ]
        deltas = compare_to_baseline(results, {"a": 2.0, "b": 1.0})
        assert [d.name for d in deltas] == ["a"]
        assert deltas[0].ratio == pytest.approx(2.0)


class TestRegistry:
    def test_default_jobs_unique_and_spawnable(self):
        from repro.harness.jobs import default_jobs

        specs = default_jobs()
        names = [s.name for s in specs]
        assert len(set(names)) == len(names)
        for group in ("fig1/", "fig6/", "fig7/", "fig8/", "fig9/", "fig10/",
                      "table2/", "table3/", "table4/", "engine/"):
            assert any(name.startswith(group) for name in names)
        for s in specs:
            resolve_target(s.target)  # importable
            json.dumps(dict(s.kwargs))  # JSON-safe kwargs

    def test_filter_jobs_matches_any_pattern(self):
        from repro.harness.jobs import default_jobs, filter_jobs

        specs = default_jobs()
        assert filter_jobs(specs, None) == list(specs)
        engine = filter_jobs(specs, ["engine/"])
        assert engine and all("engine/" in s.name for s in engine)
        both = filter_jobs(specs, ["engine/", "fig9/"])
        assert len(both) == len(engine) + 2

    def test_engine_results_folds_timing_back(self):
        from repro.harness.jobs import engine_results

        results = [
            JobResult(
                name="engine/fire_chain", status="ok", attempts=1, wall_s=1.0,
                result={"bench": "fire_chain", "n_events": 10.0,
                        "timing": {"wall_s": 0.5}},
            ),
            JobResult(name="fig9/aq/timeline", status="ok", attempts=1,
                      wall_s=1.0, result={}),
        ]
        benches = engine_results(results)
        assert benches == {"fire_chain": {"n_events": 10.0, "wall_s": 0.5}}
