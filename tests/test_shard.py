"""Tests for conservative-sync sharding (repro.sim.shard + harness.fabric).

The load-bearing property is the determinism contract of docs/SCALING.md:
``--shards 1`` and ``--shards k`` produce bit-identical results digests,
audit-clean, regardless of worker completion order — plus the boundary
edge cases (flows crossing two cuts, faults on cut links, partially
evicted window rings surviving the stitch honestly).
"""

import json

import pytest

from repro.errors import ConfigurationError, ShardError
from repro.harness.fabric import (
    fabric_flows,
    filter_fault_plan,
    run_share_fabric,
)
from repro.net.packet import make_udp
from repro.obs.timewin import WindowStore, stitch_window_dumps
from repro.sim.shard import (
    PACKET_COLUMNS,
    BoundaryBatch,
    barrier_times,
    packet_from_row,
)
from repro.topology.fattree import FatTreeConfig, FatTreePlan

DURATION = 1e-3
SMALL = dict(pods=2, tors_per_pod=1, hosts_per_tor=2)


def run(shards, permute=None, **kwargs):
    kwargs.setdefault("duration", DURATION)
    return run_share_fabric(shards, inline=True, audit=True, **kwargs)


class TestPrimitives:
    def test_barrier_times_cover_duration_exactly(self):
        times = barrier_times(1e-3, 0.3e-3)
        assert times[-1] == 1e-3
        assert all(b > a for a, b in zip(times, times[1:]))
        assert len(times) == 4

    def test_barrier_times_reject_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            barrier_times(0.0, 1e-3)
        with pytest.raises(ConfigurationError):
            barrier_times(1e-3, 0.0)

    def test_boundary_batch_round_trips_every_header_field(self):
        packet = make_udp("h0-0-0", "h1-0-0", 7, 1500)
        packet.ce = True
        packet.ece = True
        packet.virtual_delay = 1.5e-6
        packet.sent_time = 2e-6
        batch = BoundaryBatch()
        batch.append(5e-5, 3, 0, packet)
        assert len(batch) == 1
        (t, link_id, seq, values), = batch.rows()
        assert (t, link_id, seq) == (5e-5, 3, 0)
        clone = packet_from_row(values)
        for name in PACKET_COLUMNS:
            assert getattr(clone, name) == getattr(packet, name), name


class TestEquivalence:
    def test_digest_identical_across_shard_counts(self):
        digests = {k: run(k)["digest"] for k in (1, 2, 4)}
        assert len(set(digests.values())) == 1
        events = {k: run(k)["results"]["events"] for k in (1, 4)}
        assert events[1] == events[4]

    def test_audit_clean_at_every_shard_count(self):
        for k in (1, 4):
            assert run(k)["audit"]["violation_count"] == 0

    def test_cross_pod_flows_really_cross_two_cuts(self):
        report = run(4)
        # Cross-pod flows exist and deliver...
        config = FatTreeConfig()
        cross = [
            f for f in fabric_flows(config)
            if f["src"].split("-")[0][1:] != f["dst"].split("-")[0][1:]
        ]
        assert cross
        for flow in cross:
            assert report["results"]["delivered_bytes"][str(flow["flow_id"])] > 0
        # ...and every imported packet was first exported; re-export at the
        # second cut makes exported exceed unique crossings.
        assert report["boundary"]["exported"] > 0
        plan = FatTreePlan(config, 4)
        # With 4 partitions, agg(p) and core(c) owners differ for some
        # (p, c), so a pod->core->pod path spans three partitions.
        spans = {
            (plan.partition_of("agg0"), plan.partition_of("core1"),
             plan.partition_of("agg1"))
        }
        assert len(next(iter(spans))) == 3

    def test_application_order_is_canonical_not_arrival_order(self):
        # Regression: shuffle the per-epoch source visitation (simulating
        # arbitrary worker completion order) — digests must not move.
        from repro.harness.fabric import build_fabric_partition
        from repro.sim.shard import run_lockstep

        def build_all(k):
            runtimes, finalizers = [], []
            for i in range(k):
                runtime, finalize = build_fabric_partition(
                    partition=i, shards=k, **SMALL
                )
                runtimes.append(runtime)
                finalizers.append(finalize)
            return runtimes, finalizers

        def digest_with(permute):
            from repro.harness.fabric import fabric_digest, merge_results

            runtimes, finalizers = build_all(3)
            run_lockstep(runtimes, DURATION, permute=permute)
            return fabric_digest(merge_results([f() for f in finalizers]))

        reference = digest_with(None)
        reversed_order = digest_with(lambda order, epoch: order[::-1])
        rotated = digest_with(
            lambda order, epoch: order[epoch % len(order):]
            + order[:epoch % len(order)]
        )
        assert reference == reversed_order == rotated

    def test_spawn_mode_matches_inline(self):
        inline = run(2, **SMALL)
        spawn = run_share_fabric(
            2, DURATION, inline=False, **SMALL
        )
        assert spawn["digest"] == inline["digest"]
        assert spawn["epochs"] == inline["epochs"]


class TestFaultsOnCutLinks:
    BLACKOUT = ["agg0->core1", 0.2e-3, 0.6e-3]

    def plan_dict(self):
        from repro.faults.plan import link_blackout_plan

        link, down, up = self.BLACKOUT
        return link_blackout_plan(link, down, up).to_dict()

    def test_blackout_on_cut_link_is_deterministic_and_audited(self):
        runs = {
            k: run(k, fault_plan=self.plan_dict()) for k in (1, 2)
        }
        assert runs[1]["digest"] == runs[2]["digest"]
        for k in (1, 2):
            assert runs[k]["audit"]["violation_count"] == 0
        # The blackout actually dropped traffic on the cut.
        clean = run(2)
        assert (
            sum(runs[2]["results"]["delivered_bytes"].values())
            < sum(clean["results"]["delivered_bytes"].values())
        )

    def test_plan_filtering_partitions_the_events(self):
        plan = FatTreePlan(FatTreeConfig(), 2)
        full = self.plan_dict()
        slices = [filter_fault_plan(full, plan, i) for i in range(2)]
        # agg0->core1 is owned by agg0's partition (0).
        assert len(slices[0]["events"]) == 2
        assert len(slices[1]["events"]) == 0
        total = sum(len(s["events"]) for s in slices)
        assert total == len(full["events"])


class TestTimewinStitch:
    def test_stitch_is_disjoint_union_sorted_by_seq(self, tmp_path):
        report = run_share_fabric(
            2, DURATION, inline=True,
            timewin_dir=str(tmp_path), timewin_params={"window_s": 0.25e-3},
        )
        merged = stitch_window_dumps(
            report["timewin_paths"], out_path=str(tmp_path / "merged.jsonl")
        )
        individual = [
            WindowStore.from_jsonl(path) for path in report["timewin_paths"]
        ]
        assert sorted(merged.ports()) == sorted(
            p for store in individual for p in store.ports()
        )
        for port in merged.ports():
            seqs = [v.seq for v in merged.views(port)]
            assert seqs == sorted(seqs)
        # The merged dump round-trips through the standard loader.
        again = WindowStore.from_jsonl(str(tmp_path / "merged.jsonl"))
        assert again.ports() == merged.ports()
        assert again.window_s == merged.window_s

    def test_partial_eviction_reports_evicted_never_zeros(self, tmp_path):
        # A tiny ring over a long run: early windows wrap out on every
        # shard. The stitched store must answer early-time queries with
        # honest partial/evicted coverage, not silently-zero windows.
        report = run_share_fabric(
            2, 2e-3, inline=True, timewin_dir=str(tmp_path),
            timewin_params={"window_s": 0.05e-3, "num_windows": 8},
        )
        merged = stitch_window_dumps(report["timewin_paths"])
        port = "t0-0.agg0"  # ToR uplink: carries cross-pod flows all run
        assert port in merged.ports()
        _, evicted = merged.eviction_horizon(port)
        assert evicted > 0
        early = merged.who_built(port, 0.0, 0.3e-3)
        assert early.coverage in ("partial", "evicted")
        assert early.evicted_windows > 0
        late = merged.who_built(port, 1.8e-3, 2e-3)
        assert late.coverage == "full"
        assert late.total_bytes > 0

    def test_stitch_rejects_overlap_and_mixed_quantum(self, tmp_path):
        report = run_share_fabric(
            2, DURATION, inline=True,
            timewin_dir=str(tmp_path / "a"),
            timewin_params={"window_s": 0.25e-3},
        )
        paths = report["timewin_paths"]
        with pytest.raises(ConfigurationError, match="not disjoint"):
            stitch_window_dumps([paths[0], paths[0]])
        other = run_share_fabric(
            1, DURATION, inline=True,
            timewin_dir=str(tmp_path / "b"),
            timewin_params={"window_s": 0.5e-3},
        )
        with pytest.raises(ConfigurationError, match="window_s"):
            stitch_window_dumps([paths[0], other["timewin_paths"][0]])
        with pytest.raises(ConfigurationError):
            stitch_window_dumps([])


class TestContractViolations:
    def test_lookahead_below_cut_propagation_is_rejected(self):
        from repro.sim.shard import ShardRuntime
        from repro.topology.fattree import CutLink

        plan = FatTreePlan(FatTreeConfig(), 2)
        runtime = ShardRuntime(0, plan)
        cut = CutLink(0, "agg0", "core0", 0, 0)

        class FakeSim:
            pass

        with pytest.raises(ConfigurationError, match="lookahead"):
            runtime.make_egress(FakeSim(), cut, 1e9, plan.lookahead / 2)

    def test_runtime_rejects_foreign_partition(self):
        from repro.sim.shard import ShardRuntime

        plan = FatTreePlan(FatTreeConfig(), 2)
        with pytest.raises(ConfigurationError):
            ShardRuntime(5, plan)

    def test_lockstep_rejects_mixed_lookahead(self):
        from repro.harness.fabric import build_fabric_partition
        from repro.sim.shard import run_lockstep

        rt_a, _ = build_fabric_partition(partition=0, shards=1, **SMALL)
        rt_b, _ = build_fabric_partition(partition=0, shards=1, **SMALL)
        rt_b.lookahead = rt_a.lookahead * 2
        with pytest.raises(ShardError, match="lookahead"):
            run_lockstep([rt_a, rt_b], DURATION)

    def test_report_is_json_safe(self):
        report = run(2, **SMALL)
        json.dumps(report)
