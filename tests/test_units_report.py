"""Tests for unit helpers and report rendering."""

import pytest

from repro.harness.report import banner, rate_range_str, render_table
from repro.units import (
    format_rate,
    format_size,
    format_time,
    gbps,
    kbps,
    kilobytes,
    mbps,
    megabytes,
    ms,
    rate_to_bytes_per_second,
    transmission_time,
    us,
)


class TestConversions:
    def test_rate_helpers(self):
        assert gbps(10) == 10e9
        assert mbps(5) == 5e6
        assert kbps(2) == 2e3

    def test_size_helpers(self):
        assert kilobytes(1.5) == 1500
        assert megabytes(2) == 2_000_000

    def test_time_helpers(self):
        assert ms(15) == pytest.approx(0.015)
        assert us(10) == pytest.approx(1e-5)

    def test_transmission_time(self):
        # 1250 bytes at 1 Gbps = 10 us.
        assert transmission_time(1250, gbps(1)) == pytest.approx(1e-5)

    def test_transmission_time_rejects_zero_rate(self):
        with pytest.raises(ValueError):
            transmission_time(1500, 0)

    def test_rate_to_bytes(self):
        assert rate_to_bytes_per_second(8e9) == 1e9


class TestFormatting:
    def test_format_rate_scales(self):
        assert format_rate(9.3e9) == "9.30Gbps"
        assert format_rate(5.5e6) == "5.50Mbps"
        assert format_rate(2.2e3) == "2.20Kbps"
        assert format_rate(42) == "42bps"

    def test_format_size_scales(self):
        assert format_size(2_000_000) == "2.00MB"
        assert format_size(1_500) == "1.50KB"
        assert format_size(3_000_000_000) == "3.00GB"
        assert format_size(12) == "12B"

    def test_format_time_scales(self):
        assert format_time(1.5) == "1.500s"
        assert format_time(2.1e-3) == "2.10ms"
        assert format_time(37e-6) == "37.00us"
        assert format_time(5e-9) == "5.0ns"


class TestReport:
    def test_render_table_aligns_columns(self):
        table = render_table(["a", "long-header"], [["xx", "1"], ["y", "22"]])
        lines = table.splitlines()
        assert len(lines) == 4  # header, separator, 2 rows
        assert len(set(len(line) for line in lines)) == 1  # equal widths

    def test_render_table_coerces_cells(self):
        table = render_table(["n"], [[42]])
        assert "42" in table

    def test_rate_range_str(self):
        assert rate_range_str((4.9e9, 5.2e9)) == "4.90Gbps ~ 5.20Gbps"

    def test_banner(self):
        block = banner("Title")
        assert "Title" in block
        assert "=" in block
