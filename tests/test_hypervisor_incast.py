"""Tests for hypervisor tagging and the incast workload."""

import pytest

from repro.cc.registry import make_cc
from repro.core.controller import AqController
from repro.errors import ConfigurationError
from repro.net.hypervisor import Hypervisor, deploy_vm_profiles
from repro.net.packet import make_udp
from repro.stats.meters import ThroughputMeter
from repro.topology.star import Star, StarConfig
from repro.transport.udp import UdpFlow
from repro.workloads.incast import IncastApplication
from repro.units import gbps


def star(num_hosts=4, rate=gbps(1)):
    return Star(StarConfig(num_hosts=num_hosts, link_rate_bps=rate))


class TestHypervisorTagging:
    def test_tags_outbound(self):
        s = star()
        hypervisor = Hypervisor(s.network.hosts["vm0"])
        hypervisor.set_outbound(7)
        seen = []
        s.switch.add_ingress_hook(lambda p, now: seen.append(p.aq_ingress_id) or True)
        s.network.hosts["vm0"].send(make_udp("vm0", "vm1", 1, 1500))
        s.network.run(until=0.01)
        assert seen == [7]
        assert hypervisor.tagged_packets == 1

    def test_tags_inbound_by_destination(self):
        s = star()
        hypervisor = Hypervisor(s.network.hosts["vm0"])
        hypervisor.set_inbound_of("vm1", 9)
        seen = []
        s.switch.add_ingress_hook(lambda p, now: seen.append(p.aq_egress_id) or True)
        s.network.hosts["vm0"].send(make_udp("vm0", "vm1", 1, 1500))
        s.network.hosts["vm0"].send(make_udp("vm0", "vm2", 2, 1500))
        s.network.run(until=0.01)
        assert seen == [9, 0]  # only vm1-bound traffic tagged

    def test_existing_tags_respected(self):
        s = star()
        hypervisor = Hypervisor(s.network.hosts["vm0"])
        hypervisor.set_outbound(7)
        packet = make_udp("vm0", "vm1", 1, 1500)
        packet.aq_ingress_id = 42  # application-managed
        seen = []
        s.switch.add_ingress_hook(lambda p, now: seen.append(p.aq_ingress_id) or True)
        s.network.hosts["vm0"].send(packet)
        s.network.run(until=0.01)
        assert seen == [42]

    def test_double_install_rejected(self):
        s = star()
        Hypervisor(s.network.hosts["vm0"])
        with pytest.raises(ConfigurationError):
            Hypervisor(s.network.hosts["vm0"])

    def test_negative_id_rejected(self):
        s = star()
        hypervisor = Hypervisor(s.network.hosts["vm0"])
        with pytest.raises(ConfigurationError):
            hypervisor.set_outbound(-1)

    def test_deploy_vm_profiles_enforces_table3_without_manual_wiring(self):
        s = star(num_hosts=4, rate=gbps(1))
        controller = AqController(s.network)
        deploy_vm_profiles(controller, s, profile_rate_bps=gbps(0.2),
                           limit_bytes=100 * 1500)
        inbound = ThroughputMeter(s.network.sim, 2e-3)
        # Three blasting senders toward vm0; transports know nothing of AQ.
        for sender in ("vm1", "vm2", "vm3"):
            UdpFlow(s.network, sender, "vm0", rate_bps=gbps(0.5),
                    on_deliver=inbound.add)
        s.network.run(until=0.05)
        rate = inbound.mean_rate(after=0.01)
        # Without AQ inbound would be ~1G (3 x 0.5 capped by the link);
        # the hypervisor-tagged egress AQ pins it at the 0.2G profile.
        assert rate < 1.3 * gbps(0.2)


class TestIncast:
    def test_round_completes(self):
        s = star(num_hosts=5)
        app = IncastApplication(
            s.network, aggregator="vm0", workers=["vm1", "vm2", "vm3", "vm4"],
            response_bytes=50_000, cc_factory=lambda: make_cc("cubic"),
            rounds=1,
        )
        s.network.run(until=1.0)
        assert app.all_done
        assert len(app.completed_rounds) == 1
        assert app.completed_rounds[0].duration > 0

    def test_multiple_rounds_with_think_time(self):
        s = star(num_hosts=4)
        app = IncastApplication(
            s.network, aggregator="vm0", workers=["vm1", "vm2", "vm3"],
            response_bytes=30_000, cc_factory=lambda: make_cc("dctcp"),
            rounds=3, think_time=2e-3,
        )
        s.network.run(until=2.0)
        assert app.all_done
        assert len(app.completed_rounds) == 3
        gaps = [
            b.start_time - a.finish_time
            for a, b in zip(app.completed_rounds, app.completed_rounds[1:])
        ]
        assert all(g == pytest.approx(2e-3, abs=1e-4) for g in gaps)

    def test_percentile_summary(self):
        s = star(num_hosts=4)
        app = IncastApplication(
            s.network, aggregator="vm0", workers=["vm1", "vm2", "vm3"],
            response_bytes=30_000, cc_factory=lambda: make_cc("cubic"),
            rounds=4, think_time=1e-3,
        )
        s.network.run(until=2.0)
        assert app.round_duration_percentile(50.0) > 0

    def test_fan_in_scales_round_duration(self):
        durations = {}
        for n_workers in (2, 6):
            s = star(num_hosts=n_workers + 1)
            app = IncastApplication(
                s.network, aggregator="vm0",
                workers=[f"vm{i}" for i in range(1, n_workers + 1)],
                response_bytes=100_000, cc_factory=lambda: make_cc("cubic"),
            )
            s.network.run(until=2.0)
            durations[n_workers] = app.completed_rounds[0].duration
        # 3x the bytes through the same downlink: meaningfully longer.
        assert durations[6] > 2.0 * durations[2]

    def test_validation(self):
        s = star()
        with pytest.raises(ConfigurationError):
            IncastApplication(s.network, "vm0", [], 1000,
                              cc_factory=lambda: make_cc("cubic"))
        with pytest.raises(ConfigurationError):
            IncastApplication(s.network, "vm0", ["vm1"], 0,
                              cc_factory=lambda: make_cc("cubic"))
