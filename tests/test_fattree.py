"""Tests for the fat-tree-lite fabric (repro.topology.fattree)."""

import pytest

from repro.errors import ConfigurationError
from repro.topology.fattree import (
    FatTreeConfig,
    FatTreePlan,
    build_fattree,
    node_location,
)
from repro.transport.udp import UdpFlow
from repro.units import gbps


def small():
    return FatTreeConfig(pods=2, tors_per_pod=2, hosts_per_tor=2, num_cores=2)


class TestNaming:
    def test_node_location_parses_every_kind(self):
        assert node_location("agg3") == ("agg", 3)
        assert node_location("core1") == ("core", 1)
        assert node_location("t2-1") == ("tor", 2)
        assert node_location("h2-1-0") == ("host", 2)

    @pytest.mark.parametrize("bad", ["x1", "agg", "hq-1", "s-left", ""])
    def test_node_location_rejects_foreign_names(self, bad):
        with pytest.raises(ConfigurationError):
            node_location(bad)

    def test_host_names_cover_the_fabric(self):
        config = small()
        names = config.host_names()
        assert len(names) == 2 * 2 * 2
        assert names[0] == "h0-0-0" and names[-1] == "h1-1-1"


class TestPlan:
    def test_cut_enumeration_is_topology_only(self):
        config = small()
        for shards in (1, 2, 4):
            cuts = FatTreePlan(config, shards).cut_links()
            # pods * cores * 2 directions, stable ids in enumeration order.
            assert len(cuts) == 2 * 2 * 2
            assert [c.link_id for c in cuts] == list(range(8))
            assert cuts[0].name == "agg0->core0"
            assert cuts[1].name == "core0->agg0"

    def test_partition_round_robin(self):
        plan = FatTreePlan(small(), 2)
        assert plan.partition_of("agg0") == 0
        assert plan.partition_of("agg1") == 1
        assert plan.partition_of("h1-0-1") == 1
        assert plan.partition_of("core1") == 1

    def test_owner_of_target_uses_sending_side(self):
        plan = FatTreePlan(small(), 2)
        assert plan.owner_of_target("agg1->core0") == 1
        assert plan.owner_of_target("core0->agg1") == 0
        assert plan.owner_of_target("t1-0") == 1

    def test_lookahead_is_core_prop_delay(self):
        config = small()
        assert FatTreePlan(config, 2).lookahead == config.core_prop_delay

    def test_rejects_bad_shards(self):
        with pytest.raises(ConfigurationError):
            FatTreePlan(small(), 0)


class TestRouting:
    def test_intra_tor_cross_pod_and_ecmp_paths(self):
        tree = build_fattree(small())
        net = tree.network
        UdpFlow(net, "h0-0-0", "h0-0-1", gbps(1), flow_id=1)   # same ToR
        UdpFlow(net, "h0-0-0", "h0-1-0", gbps(1), flow_id=2)   # same pod
        UdpFlow(net, "h0-1-0", "h1-0-1", gbps(1), flow_id=3)   # cross pod
        UdpFlow(net, "h1-1-1", "h0-0-0", gbps(1), flow_id=4)   # cross, odd id
        sinks = {}
        for fid, host in ((1, "h0-0-1"), (2, "h0-1-0"), (3, "h1-0-1"),
                          (4, "h0-0-0")):
            sinks[fid] = net.hosts[host]
        net.sim.run(until=2e-3)
        # Every flow delivers (routing closures cover all three tiers).
        for fid in (1, 2, 3, 4):
            deliveries = [
                s for s in net.switches.values() if s.stats.forwarded_packets
            ]
            assert deliveries
        # ECMP: flow 3 (odd) uses core1, flow 4 (even) uses core0.
        assert net.links["agg0->core1"].stats.delivered_packets > 0
        assert net.links["agg1->core0"].stats.delivered_packets > 0

    def test_build_is_deterministic(self):
        a = build_fattree(small())
        b = build_fattree(small())
        assert sorted(a.network.links) == sorted(b.network.links)
        assert sorted(a.network.switches) == sorted(b.network.switches)
        assert sorted(a.network.hosts) == sorted(b.network.hosts)

    def test_full_build_has_all_elements(self):
        tree = build_fattree(small())
        net = tree.network
        # 2 cores + per pod (1 agg + 2 tors) = 2 + 6
        assert len(net.switches) == 8
        assert len(net.hosts) == 8
        assert "agg0->core0" in net.links and "core1->agg1" in net.links

    def test_owns_without_plan_is_universal(self):
        tree = build_fattree(small())
        assert tree.owns("agg0") and tree.owns("core1") and tree.owns("h1-0-0")
