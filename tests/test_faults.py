"""Tests for the fault-injection subsystem (repro.faults) and the
controller's recovery path.

Covers four layers: plan validation/serialization, the injector's
data-plane actions (link flaps, corruption, switch restarts), the
controller's redeploy-with-backoff recovery including partitions, and
the conservation auditor's fault attribution across a restart.
"""

import pytest

from repro.core.controller import AqController, AqRequest
from repro.errors import FaultPlanError, PartitionError
from repro.faults import (
    KIND_CONTROLLER_HEAL,
    KIND_CONTROLLER_PARTITION,
    KIND_LINK_DOWN,
    KIND_LINK_UP,
    KIND_PACKET_CORRUPTION,
    KIND_SWITCH_RESTART,
    FaultEvent,
    FaultPlan,
    activate_fault_plan,
    get_active_fault_plan,
    link_blackout_plan,
    switch_restart_plan,
)
from repro.harness.scenarios import EntitySpec, run_switch_restart
from repro.net.packet import make_udp
from repro.obs import Telemetry
from repro.topology.dumbbell import Dumbbell, DumbbellConfig
from repro.units import gbps

BOTTLENECK = f"{Dumbbell.LEFT_SWITCH}->{Dumbbell.RIGHT_SWITCH}"


def tiny_dumbbell(rate=gbps(1)):
    return Dumbbell(
        DumbbellConfig(num_left=1, num_right=1, bottleneck_rate_bps=rate)
    )


# -- plan validation & serialization -----------------------------------------------


class TestPlanValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultEvent(time=0.0, kind="meteor_strike", target="s0")

    @pytest.mark.parametrize("time", [-1e-9, float("nan"), float("inf")])
    def test_bad_times_rejected(self, time):
        with pytest.raises(FaultPlanError):
            FaultEvent(time=time, kind=KIND_LINK_DOWN, target="a->b")

    @pytest.mark.parametrize("kind", [KIND_CONTROLLER_PARTITION, KIND_CONTROLLER_HEAL])
    def test_controller_kinds_take_no_target(self, kind):
        with pytest.raises(FaultPlanError, match="takes no target"):
            FaultEvent(time=0.0, kind=kind, target="s0")
        FaultEvent(time=0.0, kind=kind)  # targetless form is fine

    @pytest.mark.parametrize(
        "kind", [KIND_LINK_DOWN, KIND_LINK_UP, KIND_SWITCH_RESTART]
    )
    def test_targeted_kinds_require_target(self, kind):
        with pytest.raises(FaultPlanError, match="requires a target"):
            FaultEvent(time=0.0, kind=kind)

    @pytest.mark.parametrize("probability", [None, 0.0, -0.1, 1.5])
    def test_corruption_probability_bounds(self, probability):
        with pytest.raises(FaultPlanError, match="probability"):
            FaultEvent(
                time=0.0,
                kind=KIND_PACKET_CORRUPTION,
                target="a->b",
                probability=probability,
            )

    def test_corruption_duration_must_be_positive(self):
        with pytest.raises(FaultPlanError, match="duration"):
            FaultEvent(
                time=0.0,
                kind=KIND_PACKET_CORRUPTION,
                target="a->b",
                probability=0.5,
                duration=0.0,
            )

    def test_probability_rejected_on_other_kinds(self):
        with pytest.raises(FaultPlanError, match="neither probability nor"):
            FaultEvent(
                time=0.0, kind=KIND_LINK_DOWN, target="a->b", probability=0.5
            )

    def test_events_sorted_by_time_stably(self):
        plan = FaultPlan(
            events=[
                FaultEvent(time=2e-3, kind=KIND_LINK_UP, target="a->b"),
                FaultEvent(time=1e-3, kind=KIND_LINK_DOWN, target="a->b"),
                FaultEvent(time=1e-3, kind=KIND_CONTROLLER_PARTITION),
            ]
        )
        assert [e.time for e in plan.events] == [1e-3, 1e-3, 2e-3]
        # Simultaneous events keep authored order.
        assert plan.events[0].kind == KIND_LINK_DOWN
        assert plan.events[1].kind == KIND_CONTROLLER_PARTITION

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan(events=[FaultEvent(time=0.0, kind=KIND_CONTROLLER_HEAL)])

    def test_blackout_helper_orders_edges(self):
        with pytest.raises(FaultPlanError, match="must come after"):
            link_blackout_plan("a->b", down_at=2e-3, up_at=1e-3)


class TestPlanSerialization:
    def _plan(self):
        return FaultPlan(
            seed=7,
            events=[
                FaultEvent(time=1e-3, kind=KIND_LINK_DOWN, target="a->b"),
                FaultEvent(time=2e-3, kind=KIND_CONTROLLER_PARTITION),
                FaultEvent(
                    time=3e-3,
                    kind=KIND_PACKET_CORRUPTION,
                    target="a->b",
                    probability=0.25,
                    duration=1e-3,
                ),
            ],
        )

    def test_dict_round_trip(self):
        plan = self._plan()
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_file_round_trip(self, tmp_path):
        plan = self._plan()
        path = str(tmp_path / "plan.json")
        plan.to_file(path)
        assert FaultPlan.from_file(path) == plan

    def test_unknown_event_field_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault event fields"):
            FaultEvent.from_dict(
                {"time": 0.0, "kind": KIND_CONTROLLER_HEAL, "severity": 9}
            )

    def test_missing_required_field_rejected(self):
        with pytest.raises(FaultPlanError, match="missing field"):
            FaultEvent.from_dict({"time": 0.0})

    def test_bad_schema_and_shapes_rejected(self):
        with pytest.raises(FaultPlanError, match="schema"):
            FaultPlan.from_dict({"schema": "fault-plan/99", "events": []})
        with pytest.raises(FaultPlanError, match="'events' list"):
            FaultPlan.from_dict({"events": "nope"})
        with pytest.raises(FaultPlanError, match="seed"):
            FaultPlan.from_dict({"events": [], "seed": "lucky"})

    def test_unreadable_file_raises_plan_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(FaultPlanError, match="cannot read"):
            FaultPlan.from_file(str(bad))
        with pytest.raises(FaultPlanError, match="cannot read"):
            FaultPlan.from_file(str(tmp_path / "missing.json"))


# -- ambient activation ------------------------------------------------------------


class TestAmbientActivation:
    def test_no_plan_means_no_injector(self):
        assert get_active_fault_plan() is None
        d = tiny_dumbbell()
        assert d.network.fault_injector is None

    def test_ambient_plan_arms_networks_built_inside(self):
        plan = switch_restart_plan(Dumbbell.LEFT_SWITCH, 5e-3)
        with activate_fault_plan(plan):
            assert get_active_fault_plan() is plan
            d = tiny_dumbbell()
            assert d.network.fault_injector is not None
            assert d.network.fault_injector.plan is plan
        assert get_active_fault_plan() is None

    def test_empty_plan_is_harmless(self):
        with activate_fault_plan(FaultPlan()):
            d = tiny_dumbbell()
        d.network.run(until=5e-3)
        injector = d.network.fault_injector
        assert injector is None or injector.applied == []


# -- injector data-plane actions ---------------------------------------------------


class _Sink:
    def __init__(self):
        self.arrivals = []

    def on_packet(self, packet, now):
        self.arrivals.append(now)


def _stream(net, until, period=50e-6, size=1000):
    """Schedule a steady h-l0 -> h-r0 UDP stream for the whole run."""
    sink = _Sink()
    net.hosts["h-r0"].set_default_endpoint(sink)
    n = int(until / period)
    for i in range(n):
        net.sim.schedule_at(
            i * period, net.hosts["h-l0"].send, make_udp("h-l0", "h-r0", 1, size)
        )
    return sink


class TestInjectorActions:
    def test_unknown_link_target_raises_at_fire_time(self):
        plan = FaultPlan(
            events=[FaultEvent(time=1e-3, kind=KIND_LINK_DOWN, target="no->where")]
        )
        with activate_fault_plan(plan):
            d = tiny_dumbbell()
        with pytest.raises(FaultPlanError, match="unknown link"):
            d.network.run(until=5e-3)

    def test_unknown_switch_target_raises_at_fire_time(self):
        plan = switch_restart_plan("s-ghost", 1e-3)
        with activate_fault_plan(plan):
            d = tiny_dumbbell()
        with pytest.raises(FaultPlanError, match="unknown switch"):
            d.network.run(until=5e-3)

    def test_link_blackout_drops_then_recovers(self):
        down_at, up_at, until = 4e-3, 8e-3, 12e-3
        plan = link_blackout_plan(BOTTLENECK, down_at, up_at)
        with activate_fault_plan(plan):
            d = tiny_dumbbell()
        sink = _stream(d.network, until)
        d.network.run(until=until)

        link = d.network.link(Dumbbell.LEFT_SWITCH, Dumbbell.RIGHT_SWITCH)
        assert link.stats.dropped_packets > 0
        assert not link.is_down  # came back up
        margin = 1e-3  # serialization + propagation slack
        assert any(t < down_at for t in sink.arrivals), "no pre-fault traffic"
        assert any(t > up_at + margin for t in sink.arrivals), "never recovered"
        blackout = [t for t in sink.arrivals if down_at + margin < t < up_at]
        assert blackout == [], f"delivered during blackout: {blackout[:3]}"
        # Both plan events were applied, in order.
        kinds = [e.kind for e in d.network.fault_injector.applied]
        assert kinds == [KIND_LINK_DOWN, KIND_LINK_UP]

    def test_total_corruption_window_then_recovery(self):
        start, dur, until = 4e-3, 3e-3, 12e-3
        plan = FaultPlan(
            events=[
                FaultEvent(
                    time=start,
                    kind=KIND_PACKET_CORRUPTION,
                    target=BOTTLENECK,
                    probability=1.0,
                    duration=dur,
                )
            ]
        )
        with activate_fault_plan(plan):
            d = tiny_dumbbell()
        sink = _stream(d.network, until)
        d.network.run(until=until)

        link = d.network.link(Dumbbell.LEFT_SWITCH, Dumbbell.RIGHT_SWITCH)
        assert link.stats.corrupted_packets > 0
        margin = 1e-3
        corrupted = [t for t in sink.arrivals if start + margin < t < start + dur]
        assert corrupted == []
        assert any(t > start + dur + margin for t in sink.arrivals)

    def test_corruption_draws_are_seed_deterministic(self):
        def delivered(seed):
            plan = FaultPlan(
                seed=seed,
                events=[
                    FaultEvent(
                        time=1e-3,
                        kind=KIND_PACKET_CORRUPTION,
                        target=BOTTLENECK,
                        probability=0.5,
                    )
                ],
            )
            with activate_fault_plan(plan):
                d = tiny_dumbbell()
            sink = _stream(d.network, 8e-3)
            d.network.run(until=8e-3)
            return len(sink.arrivals)

        first = delivered(seed=3)
        assert delivered(seed=3) == first  # bit-identical replay
        # Sanity: the lossy window really was lossy.
        assert 0 < first < int(8e-3 / 50e-6)

    def test_switch_restart_drains_backlog_as_attributed_drops(self):
        plan = switch_restart_plan(Dumbbell.LEFT_SWITCH, 2e-3)
        with activate_fault_plan(plan):
            # Slow bottleneck so the left switch holds a backlog at 2 ms.
            d = tiny_dumbbell(rate=gbps(0.1))
        _stream(d.network, 4e-3, period=20e-6, size=1500)
        d.network.run(until=4e-3)

        switch = d.network.switches[Dumbbell.LEFT_SWITCH]
        assert switch.stats.restarts == 1
        assert switch.stats.restart_drained_packets > 0
        assert (
            switch.stats.restart_drained_bytes
            == switch.stats.restart_drained_packets * 1500
        )
        applied = d.network.fault_injector.applied
        assert [e.kind for e in applied] == [KIND_SWITCH_RESTART]


# -- controller recovery -----------------------------------------------------------

SMALL = dict(
    entities=[
        EntitySpec(name="A", cc="cubic", num_flows=2, weight=1.0),
        EntitySpec(name="B", cc="cubic", num_flows=2, weight=1.0),
    ],
    bottleneck_bps=gbps(1),
)


class TestSwitchRestartRecovery:
    def test_restart_recovers_within_tolerance(self):
        result = run_switch_restart(
            approach="aq",
            duration=120e-3,
            warmup=20e-3,
            restart_at=50e-3,
            **SMALL,
        )
        assert result.restart_stats[Dumbbell.LEFT_SWITCH]["restarts"] == 1
        assert [e["kind"] for e in result.faults_applied] == [KIND_SWITCH_RESTART]
        # Every grant's degraded window opened at the fault and was closed
        # by a successful redeploy.
        assert result.degraded_windows
        for window in result.degraded_windows:
            assert window["start"] == pytest.approx(50e-3)
            assert window["end"] is not None
            assert window["end"] > window["start"]
        assert result.recovered(tolerance=0.05)
        assert 0 <= result.max_reconvergence_s < result.duration

    def test_parameter_ordering_validated(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_switch_restart(duration=10e-3, warmup=5e-3, restart_at=2e-3)


class TestPartitionRecovery:
    def _controller(self):
        d = Dumbbell(
            DumbbellConfig(num_left=2, num_right=2, bottleneck_rate_bps=gbps(10))
        )
        controller = AqController(d.network)
        controller.register_resource("bn", gbps(10))
        return d, controller

    def test_partitioned_controller_refuses_control_ops(self):
        _, controller = self._controller()
        req = AqRequest(
            entity="e",
            switch=Dumbbell.LEFT_SWITCH,
            position="ingress",
            absolute_rate_bps=gbps(1),
            share_group="bn",
        )
        grant = controller.request(req)
        controller.partition()
        with pytest.raises(PartitionError):
            controller.request(req)
        with pytest.raises(PartitionError):
            controller.withdraw(grant)
        controller.heal()
        controller.withdraw(grant)  # works again after heal

    def test_redeploy_waits_for_heal(self):
        heal_at = 45e-3
        plan = FaultPlan(
            events=[
                FaultEvent(time=28e-3, kind=KIND_CONTROLLER_PARTITION),
                FaultEvent(
                    time=30e-3,
                    kind=KIND_SWITCH_RESTART,
                    target=Dumbbell.LEFT_SWITCH,
                ),
                FaultEvent(time=heal_at, kind=KIND_CONTROLLER_HEAL),
            ]
        )
        result = run_switch_restart(
            approach="aq",
            duration=110e-3,
            warmup=15e-3,
            restart_at=30e-3,
            plan=plan,
            **SMALL,
        )
        kinds = [e["kind"] for e in result.faults_applied]
        assert kinds == [
            KIND_CONTROLLER_PARTITION,
            KIND_SWITCH_RESTART,
            KIND_CONTROLLER_HEAL,
        ]
        assert result.degraded_windows
        for window in result.degraded_windows:
            # No redeploy can land while partitioned: every window stays
            # open until the heal, then closes promptly.
            assert window["end"] is not None
            assert window["end"] >= heal_at
            assert window["end"] < heal_at + 5e-3
        assert result.recovered(tolerance=0.1)

    def test_unhealed_partition_abandons_redeploy(self):
        plan = FaultPlan(
            events=[
                FaultEvent(time=18e-3, kind=KIND_CONTROLLER_PARTITION),
                FaultEvent(
                    time=20e-3,
                    kind=KIND_SWITCH_RESTART,
                    target=Dumbbell.LEFT_SWITCH,
                ),
            ]
        )
        # Backoff schedule: attempts at +1, +3, +7, +15, +31, +63 ms after
        # the restart; the 6th attempt abandons. 100 ms covers it all.
        result = run_switch_restart(
            approach="aq",
            duration=100e-3,
            warmup=10e-3,
            restart_at=20e-3,
            plan=plan,
            **SMALL,
        )
        assert result.degraded_windows
        for window in result.degraded_windows:
            assert window["end"] is None, "redeploy landed despite partition"
        controller = result.env.controller
        assert controller.partitioned
        assert len(controller.open_degraded_windows()) == len(
            result.degraded_windows
        )


# -- audit across a restart --------------------------------------------------------


class TestAuditAcrossRestart:
    def test_restart_run_audits_clean_with_attributed_losses(self):
        tele = Telemetry()
        auditor = tele.enable_audit()
        with tele.activate():
            result = run_switch_restart(
                approach="aq",
                duration=90e-3,
                warmup=15e-3,
                restart_at=35e-3,
                **SMALL,
            )
        tele.close()
        assert auditor.finish() == []

        report = auditor.report()
        faults = report["faults"]
        assert faults["events"]["switch_restart"] == 1
        assert faults["events"].get("aq_state_lost", 0) >= 1
        assert faults["events"].get("redeploy", 0) >= 1
        # Every byte the restart drained is attributed to the fault
        # window — that is exactly why the conservation ledger stays clean.
        drained = result.restart_stats.get(Dumbbell.LEFT_SWITCH, {})
        assert faults["attributed_dropped_packets"].get(
            "switch_restart", 0
        ) == drained.get("drained_packets", 0)
        assert faults["attributed_dropped_bytes"].get(
            "switch_restart", 0
        ) == drained.get("drained_bytes", 0)
