"""Tests for the Section 6 work-conservation gate."""

import pytest

from repro.cc.registry import make_cc
from repro.core.controller import AqController, AqRequest
from repro.core.feedback import drop_policy
from repro.core.workconserving import WorkConservingGate
from repro.errors import ConfigurationError
from repro.topology.dumbbell import Dumbbell, DumbbellConfig
from repro.transport.tcp import TcpConnection
from repro.units import gbps


def build(allocated=gbps(2.5), capacity=gbps(10), gated=True):
    dumbbell = Dumbbell(
        DumbbellConfig(num_left=2, num_right=2, bottleneck_rate_bps=capacity)
    )
    network = dumbbell.network
    controller = AqController(network)
    controller.register_resource("bn", capacity)
    grant = controller.request(
        AqRequest(
            entity="t",
            switch=Dumbbell.LEFT_SWITCH,
            position="ingress",
            absolute_rate_bps=allocated,
            share_group="bn",
            policy=drop_policy(),
            limit_bytes=200 * 1500,
        )
    )
    gate = None
    if gated:
        gate = WorkConservingGate(
            dumbbell.bottleneck_switch,
            controller.pipeline(Dumbbell.LEFT_SWITCH),
            watched_port=Dumbbell.RIGHT_SWITCH,
        )
    return dumbbell, grant, gate


class TestGate:
    def test_idle_fabric_allows_exceeding_allocation(self):
        dumbbell, grant, gate = build(gated=True)
        meter = []
        for _ in range(4):
            TcpConnection(
                dumbbell.network, "h-l0", "h-r0", make_cc("cubic"),
                aq_ingress_id=grant.aq_id,
                on_deliver=lambda n, t: meter.append(n),
            )
        dumbbell.network.run(until=40e-3)
        rate = sum(meter) * 8 / 40e-3
        assert rate > 1.5 * gbps(2.5)
        assert gate.bypassed_packets > 0

    def test_strict_aq_pins_to_allocation(self):
        dumbbell, grant, _ = build(gated=False)
        meter = []
        TcpConnection(
            dumbbell.network, "h-l0", "h-r0", make_cc("cubic"),
            aq_ingress_id=grant.aq_id,
            on_deliver=lambda n, t: meter.append(n),
        )
        dumbbell.network.run(until=40e-3)
        rate = sum(meter) * 8 / 40e-3
        assert rate < 1.2 * gbps(2.5)

    def test_contention_reengages_enforcement(self):
        dumbbell, grant, gate = build(gated=True)
        meter = []
        TcpConnection(
            dumbbell.network, "h-l0", "h-r0", make_cc("cubic"),
            aq_ingress_id=grant.aq_id,
            on_deliver=lambda n, t: meter.append(n),
        )
        for _ in range(4):
            TcpConnection(dumbbell.network, "h-l1", "h-r1", make_cc("cubic"))
        dumbbell.network.run(until=60e-3)
        assert gate.enforced_packets > 0
        rate = sum(meter) * 8 / 60e-3
        # With contention, the tenant lands near its 2.5G allocation, far
        # below the ~10G it could grab on an idle fabric.
        assert rate < 1.6 * gbps(2.5)

    def test_bypassed_packets_not_accounted_in_gap(self):
        dumbbell, grant, gate = build(gated=True)
        TcpConnection(
            dumbbell.network, "h-l0", "h-r0", make_cc("cubic"),
            aq_ingress_id=grant.aq_id,
        )
        dumbbell.network.run(until=20e-3)
        # Bypassed packets skip AQ processing entirely.
        assert grant.aq.stats.arrived_packets <= gate.enforced_packets
        assert grant.aq.tracker.gap <= grant.aq.limit_bytes + 1e-6

    def test_default_threshold_is_half_queue_limit(self):
        dumbbell, grant, gate = build(gated=True)
        assert gate.bypass_threshold_bytes == gate.queue.limit_bytes // 2

    def test_unknown_port_rejected(self):
        dumbbell, grant, _ = build(gated=False)
        controller = AqController(dumbbell.network)  # fresh, no hook installed
        with pytest.raises(ConfigurationError):
            WorkConservingGate(
                dumbbell.bottleneck_switch,
                controller.pipeline("s-right"),
                watched_port="nowhere",
            )
