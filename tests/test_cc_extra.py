"""Tests for the extension CCs (TIMELY, BBR) and cross-mechanism
properties (A-Gap limiter vs token bucket duality)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc.base import AckContext, DELAY_BASED
from repro.cc.bbr import Bbr
from repro.cc.registry import cc_kind, make_cc
from repro.cc.timely import Timely
from repro.core.agap import AGapTracker
from repro.sim.engine import Simulator
from repro.ratelimit.token_bucket import TokenBucketShaper
from repro.net.packet import make_udp
from repro.topology.dumbbell import Dumbbell, DumbbellConfig
from repro.transport.tcp import TcpConnection
from repro.units import gbps


def ack(now=0.0, acked=1, rtt=100e-6, base_rtt=60e-6, virtual_delay=0.0,
        flight=10):
    return AckContext(
        now=now, acked_packets=acked, acked_bytes=acked * 1460,
        rtt_sample=rtt, base_rtt=base_rtt, ece=False,
        virtual_delay=virtual_delay, snd_una=0, flightsize_packets=flight,
    )


class TestTimely:
    def test_low_delay_grows(self):
        cc = Timely(t_low=100e-6, t_high=500e-6)
        cc.cwnd = 10.0
        for i in range(5):
            cc.on_ack(ack(now=i * 1e-4, rtt=80e-6))  # 20us < t_low
        assert cc.cwnd > 10.0

    def test_high_delay_shrinks(self):
        cc = Timely(t_low=20e-6, t_high=100e-6)
        cc.cwnd = 10.0
        cc.on_ack(ack(now=0.0, rtt=700e-6))
        cc.on_ack(ack(now=1e-4, rtt=700e-6))  # 640us > t_high
        assert cc.cwnd < 10.0

    def test_gradient_regime_follows_slope(self):
        cc = Timely(t_low=10e-6, t_high=10e-3, min_rtt=20e-6)
        cc.cwnd = 10.0
        # Rising delay between thresholds -> positive gradient -> decrease.
        for i, delay in enumerate((100e-6, 200e-6, 300e-6, 400e-6)):
            cc.on_ack(ack(now=i * 1e-4, rtt=60e-6 + delay))
        assert cc.cwnd < 10.0

    def test_virtual_delay_mode(self):
        cc = Timely(t_low=50e-6, t_high=200e-6, use_virtual_delay=True)
        cc.cwnd = 10.0
        # Huge RTT but zero virtual delay: the entity is within allocation.
        for i in range(4):
            cc.on_ack(ack(now=i * 1e-4, rtt=5e-3, virtual_delay=0.0))
        assert cc.cwnd > 10.0

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            Timely(t_low=100e-6, t_high=50e-6)

    def test_saturates_a_link(self):
        d = Dumbbell(DumbbellConfig(num_left=1, num_right=1,
                                    bottleneck_rate_bps=gbps(1)))
        conn = TcpConnection(d.network, "h-l0", "h-r0", make_cc("timely"))
        d.network.run(until=0.05)
        assert conn.receiver.delivered_bytes * 8 / 0.05 > 0.85 * gbps(1)

    def test_registered_as_delay_based(self):
        assert cc_kind("timely") == DELAY_BASED


class TestBbr:
    def test_model_tracks_bandwidth_and_rtt(self):
        cc = Bbr()
        for i in range(40):
            cc.on_ack(ack(now=i * 1e-4, rtt=100e-6, flight=20))
        # 20 pkts in flight over 100us -> ~2.3 Gbps estimate.
        assert cc.bottleneck_bw_bps == pytest.approx(
            21 * 1460 * 8 / 100e-6, rel=0.1
        )
        assert cc.min_rtt == pytest.approx(100e-6)

    def test_cwnd_converges_to_bdp_multiple(self):
        cc = Bbr()
        for i in range(200):
            cc.on_ack(ack(now=i * 1e-4, rtt=100e-6, flight=20))
        bdp_packets = cc.bottleneck_bw_bps * cc.min_rtt / 8 / 1460
        assert cc.cwnd <= 2.0 * 1.25 * bdp_packets + 2
        assert cc.cwnd >= 1.2 * bdp_packets

    def test_ignores_isolated_loss(self):
        cc = Bbr()
        for i in range(50):
            cc.on_ack(ack(now=i * 1e-4, rtt=100e-6, flight=20))
        before = cc.cwnd
        cc.on_packet_loss(1.0)
        assert cc.cwnd == before

    def test_rto_halves_and_resets_model(self):
        cc = Bbr()
        for i in range(50):
            cc.on_ack(ack(now=i * 1e-4, rtt=100e-6, flight=20))
        cc.on_rto(1.0)
        assert cc.bottleneck_bw_bps == 0.0

    def test_saturates_a_link_with_modest_queue(self):
        d = Dumbbell(DumbbellConfig(num_left=1, num_right=1,
                                    bottleneck_rate_bps=gbps(1)))
        conn = TcpConnection(d.network, "h-l0", "h-r0", make_cc("bbr"))
        d.network.run(until=0.05)
        assert conn.receiver.delivered_bytes * 8 / 0.05 > 0.85 * gbps(1)
        # BBR's signature: far from a full 200-packet buffer.
        assert d.bottleneck_port.queue.stats.max_bytes_queued < 100 * 1500


class TestAGapTokenBucketDuality:
    """An AQ's limit-drop and a token bucket are duals: gap = bucket_size -
    tokens. Their accept/drop decisions must agree packet by packet."""

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1e-7, max_value=5e-4),  # inter-arrival
                st.integers(min_value=64, max_value=1500),  # size
            ),
            min_size=1,
            max_size=80,
        ),
        st.floats(min_value=1e7, max_value=1e10),  # rate
    )
    @settings(max_examples=100, deadline=None)
    def test_accept_decisions_match(self, arrivals, rate):
        limit = 6000.0
        tracker = AGapTracker(rate_bps=rate)
        sim = Simulator()
        released = []
        bucket = TokenBucketShaper(
            sim, rate, released.append,
            bucket_bytes=int(limit), backlog_limit_bytes=1,
        )
        # backlog_limit_bytes=1: anything unaffordable now is dropped, so
        # the bucket acts as a pure policer like the AQ limit.
        t = 0.0
        agreements = 0
        for delta, size in arrivals:
            t += delta
            gap = tracker.on_arrival(t, size)
            aq_accepts = gap <= limit
            if not aq_accepts:
                tracker.undo_arrival(size)
            sim.run(until=t)
            before = len(released)
            bucket.submit(make_udp("a", "b", 1, size))
            bucket_accepts = len(released) > before
            # The duality holds up to the one-packet boundary condition
            # (AQ admits a packet that *reaches* the limit; a bucket needs
            # the tokens up front). Allow equality-region divergence only.
            if aq_accepts == bucket_accepts:
                agreements += 1
        assert agreements >= len(arrivals) - max(2, len(arrivals) // 5)
