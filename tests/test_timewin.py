"""Tests for the PrintQueue-style time-window recorder (repro.obs.timewin).

Unit coverage of the slot arrays, the wrap-around ring, and the JSONL
interchange, plus the integration properties the ISSUE pins down:

* wrap-boundary queries: a range straddling the eviction horizon is
  ``partial``; a range that wrapped out entirely reports ``evicted``
  rather than zeros;
* the recorder agrees with FlightIndex ground truth per (port, window)
  on real scenario runs;
* enabling ``--timewin`` is *neutral* — a job's deterministic results
  digest is bit-identical with and without the recorder;
* the metrics Histogram keeps an exact ``n`` under reservoir sampling
  and the flight JSONL sink's ring mode counts evictions.
"""

import math

import pytest

from repro.errors import ConfigurationError
from repro.harness.runner import JobResult, results_digest
from repro.obs import (
    FlightCollector,
    FlightRecorder,
    Telemetry,
    TimeWindowRecorder,
    WindowStore,
    crosscheck_with_flights,
    read_flights_jsonl,
)
from repro.obs.flightrec import JsonlFlightSink
from repro.obs.metrics import DEFAULT_SAMPLE_CAP, Histogram, MetricsRegistry
from repro.obs.timewin import (
    COLLIDED,
    COVERAGE_EVICTED,
    COVERAGE_FULL,
    COVERAGE_OUTSIDE,
    COVERAGE_PARTIAL,
    build_from_trace,
)
from repro.units import gbps

MS = 1e-3


def small_recorder(num_windows=4, slots_log2=3, window_s=MS):
    return TimeWindowRecorder(
        window_s=window_s, num_windows=num_windows, slots_log2=slots_log2
    )


# -- attribution basics --------------------------------------------------------


class TestAttribution:
    def test_flows_tenants_and_high_water(self):
        rec = small_recorder()
        rec.on_enqueue("p0", flow_id=1, tenant_id=10, size=1500, depth=1500.0,
                       now=0.1 * MS)
        rec.on_enqueue("p0", flow_id=2, tenant_id=20, size=500, depth=2000.0,
                       now=0.2 * MS)
        rec.on_enqueue("p0", flow_id=1, tenant_id=10, size=1500, depth=3500.0,
                       now=0.3 * MS)
        report = rec.who_built("p0", 0.0, 1 * MS)
        assert report.coverage == COVERAGE_FULL
        assert report.flows == {1: (3000, 2), 2: (500, 1)}
        assert report.high_water == 3500.0
        assert report.top_contributors(1) == [(1, 3000, 2)]
        shares = report.tenant_shares()
        assert shares[10] == pytest.approx(3000 / 3500)
        assert shares[20] == pytest.approx(500 / 3500)

    def test_drops_are_charged_to_the_window(self):
        rec = small_recorder()
        rec.on_drop("p0", flow_id=7, tenant_id=0, size=1500, now=0.5 * MS)
        report = rec.who_built("p0", 0.0, 1 * MS)
        assert report.dropped_bytes == 1500
        assert report.total_bytes == 0

    def test_collision_keeps_first_owner_and_reconciles(self):
        rec = small_recorder(slots_log2=1)  # 2 slots: flows 1 and 3 collide
        rec.on_enqueue("p0", 1, 0, 1000, 1000.0, 0.1 * MS)
        rec.on_enqueue("p0", 3, 0, 400, 1400.0, 0.2 * MS)
        report = rec.who_built("p0", 0.0, 1 * MS)
        assert report.flows == {1: (1000, 1)}
        assert report.collision_bytes == 400
        ranked = report.top_contributors(5)
        assert (COLLIDED, 400, 0) in ranked
        attributed = sum(b for _, b, _ in ranked)
        assert attributed == report.total_bytes
        assert rec.stats()["collisions"] == 1

    def test_range_ending_on_boundary_excludes_next_window(self):
        rec = small_recorder()
        rec.on_enqueue("p0", 1, 0, 100, 100.0, 0.5 * MS)   # window 0
        rec.on_enqueue("p0", 2, 0, 200, 200.0, 1.5 * MS)   # window 1
        report = rec.who_built("p0", 0.0, 1 * MS)
        assert report.flows == {1: (100, 1)}

    def test_outside_range_reports_outside(self):
        rec = small_recorder()
        rec.on_enqueue("p0", 1, 0, 100, 100.0, 0.5 * MS)
        assert rec.who_built("p0", 10 * MS, 12 * MS).coverage == COVERAGE_OUTSIDE
        assert rec.who_built("nope", 0.0, 1 * MS).coverage == COVERAGE_OUTSIDE

    def test_reversed_range_raises(self):
        rec = small_recorder()
        with pytest.raises(ConfigurationError):
            rec.who_built("p0", 2 * MS, 1 * MS)


# -- wrap-around ring (satellite: edge cases) ----------------------------------


class TestWrapAround:
    def fill(self, rec, n_windows, port="p0"):
        for w in range(n_windows):
            rec.on_enqueue(port, w % 8, 0, 1000, 1000.0, (w + 0.5) * MS)
        return rec

    def test_memory_stays_fixed_under_wrap(self):
        rec = self.fill(small_recorder(num_windows=4), 50)
        stats = rec.stats()
        # Ring of 4 sealed windows + 1 active buffer, no matter the span.
        assert stats["retained_windows"] <= 5
        assert stats["evicted_windows"] == 50 - stats["retained_windows"]

    def test_fully_evicted_range_reports_evicted_not_zeros(self):
        rec = self.fill(small_recorder(num_windows=4), 50)
        report = rec.who_built("p0", 0.0, 10 * MS)
        assert report.coverage == COVERAGE_EVICTED
        assert report.evicted
        assert report.evicted_windows == 10
        # The report carries no windows -- zeros here would be a lie.
        assert report.windows == []

    def test_query_straddling_horizon_is_partial(self):
        rec = self.fill(small_recorder(num_windows=4), 50)
        horizon, _ = rec.eviction_horizon("p0")
        t0 = (horizon - 2) * MS
        report = rec.who_built("p0", t0, 50 * MS)
        assert report.coverage == COVERAGE_PARTIAL
        assert report.evicted_windows == 2
        assert report.total_bytes > 0

    def test_retained_range_is_full_after_wrap(self):
        rec = self.fill(small_recorder(num_windows=4), 50)
        horizon, _ = rec.eviction_horizon("p0")
        report = rec.who_built("p0", horizon * MS, 50 * MS)
        assert report.coverage == COVERAGE_FULL

    def test_recycled_buffer_is_clean(self):
        rec = small_recorder(num_windows=2, slots_log2=2)
        rec.on_enqueue("p0", 1, 5, 999, 999.0, 0.5 * MS)
        rec.on_drop("p0", 1, 5, 111, 0.6 * MS)
        # Advance far enough that window 0's buffer is recycled.
        for w in range(1, 6):
            rec.on_enqueue("p0", 2, 0, 100, 100.0, (w + 0.5) * MS)
        latest = rec.views("p0")[-1]
        assert latest.flows == {2: (100, 1)}
        assert latest.tenants == {0: 100}
        assert latest.dropped_bytes == 0
        assert latest.high_water == 100.0

    def test_flip_all_seals_active(self):
        rec = small_recorder()
        rec.on_enqueue("p0", 1, 0, 100, 100.0, 0.5 * MS)
        assert rec.views("p0")[-1].active
        rec.flip_all(1 * MS)
        views = rec.views("p0")
        assert views and not views[-1].active


# -- multi-queue prefix aggregation --------------------------------------------


class TestPrefixAggregation:
    def test_subqueues_merge_under_parent(self):
        rec = small_recorder()
        rec.on_enqueue("s0.p0.q0", 1, 0, 1000, 1000.0, 0.5 * MS)
        rec.on_enqueue("s0.p0.q1", 2, 0, 500, 500.0, 0.5 * MS)
        report = rec.who_built("s0.p0", 0.0, 1 * MS)
        assert report.flows == {1: (1000, 1), 2: (500, 1)}
        # No parent-level depth sample: per-class high-waters are summed
        # as the upper bound on the port backlog.
        assert report.high_water == 1500.0

    def test_parent_depth_sample_wins_over_class_sum(self):
        rec = small_recorder()
        rec.on_enqueue("s0.p0.q0", 1, 0, 1000, 1000.0, 0.5 * MS)
        rec.on_enqueue("s0.p0.q1", 2, 0, 500, 500.0, 0.5 * MS)
        rec.on_depth("s0.p0", 1200.0, 0.5 * MS)
        report = rec.who_built("s0.p0", 0.0, 1 * MS)
        assert report.high_water == 1200.0


# -- JSONL dump / offline store ------------------------------------------------


class TestDumpAndStore:
    def _recorded(self):
        rec = small_recorder(num_windows=4)
        for w in range(8):
            rec.on_enqueue("p0", w % 3, w % 2, 1000 + w, 1000.0 + w,
                           (w + 0.5) * MS)
        rec.on_drop("p0", 1, 0, 50, 7.6 * MS)
        return rec

    def test_round_trip_preserves_query_answers(self, tmp_path):
        rec = self._recorded()
        path = str(tmp_path / "w.jsonl")
        written = rec.dump_jsonl(path)
        assert written == rec.stats()["retained_windows"]
        store = WindowStore.from_jsonl(path)
        assert store.window_s == rec.window_s
        assert store.ports() == rec.ports()
        live = rec.who_built("p0", 0.0, 8 * MS)
        loaded = store.who_built("p0", 0.0, 8 * MS)
        assert loaded.to_dict() == live.to_dict()

    def test_store_preserves_eviction_horizon(self, tmp_path):
        rec = self._recorded()
        path = str(tmp_path / "w.jsonl")
        rec.dump_jsonl(path)
        store = WindowStore.from_jsonl(path)
        assert store.eviction_horizon("p0") == rec.eviction_horizon("p0")
        report = store.who_built("p0", 0.0, 2 * MS)
        assert report.coverage == COVERAGE_EVICTED

    def test_bad_record_names_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type":"window"}\n', encoding="utf-8")
        with pytest.raises(ConfigurationError, match="bad.jsonl:1"):
            WindowStore.from_jsonl(str(path))

    def test_build_from_trace(self):
        class Ev:
            def __init__(self, type, time, node, flow_id, size, value):
                self.type, self.time = type, time
                self.node, self.flow_id = node, flow_id
                self.size, self.value = size, value

        events = [
            Ev("enqueue", 0.1 * MS, "p0", 1, 1500, 1500.0),
            Ev("dequeue", 0.2 * MS, "p0", 1, 1500, 0.0),
            Ev("drop", 0.3 * MS, "p0", 2, 500, 1500.0),
        ]
        rec = build_from_trace(events)
        report = rec.who_built("p0", 0.0, 1 * MS)
        assert report.flows == {1: (1500, 1)}
        assert report.dropped_bytes == 500


# -- scenario integration ------------------------------------------------------


class TestScenarioIntegration:
    @pytest.fixture(scope="class")
    def recorded_run(self):
        from repro.harness.scenarios import run_cc_pair

        tele = Telemetry(enabled=True)
        recorder = tele.enable_time_windows()
        collector = FlightCollector()
        tele.enable_flight_recording().attach(collector)
        with tele.activate():
            run_cc_pair("cubic", 2, "dctcp", 2, "aq", gbps(1), 40e-3,
                        warmup=15e-3)
        tele.close()
        return recorder, collector.flights

    def test_switch_ports_and_aqs_are_recorded(self, recorded_run):
        recorder, _ = recorded_run
        ports = recorder.ports()
        assert any(p.startswith("s-left.") for p in ports)
        assert any(p.startswith("aq") for p in ports)
        assert recorder.stats()["records"] > 0

    def test_attribution_matches_flight_ground_truth(self, recorded_run):
        recorder, flights = recorded_run
        verdict = crosscheck_with_flights(recorder, flights)
        assert verdict["ok"], verdict["mismatches"]
        assert verdict["windows_checked"] > 0

    def test_windows_survive_dump_and_still_match(self, recorded_run, tmp_path):
        recorder, flights = recorded_run
        path = str(tmp_path / "w.jsonl")
        recorder.dump_jsonl(path)
        store = WindowStore.from_jsonl(path)
        verdict = crosscheck_with_flights(store, flights)
        assert verdict["ok"], verdict["mismatches"]

    def test_timewin_validate_job_passes(self):
        from repro.harness.jobs import job_timewin_validate

        out = job_timewin_validate("udp-tcp", gbps(1), 30e-3)
        assert out["ok"]
        assert out["windows_checked"] > 0


# -- digest neutrality (satellite) ---------------------------------------------


class TestNeutrality:
    def test_job_digest_identical_with_and_without_timewin(self):
        """The recorder observes; it must never perturb the simulation."""
        from repro.harness._testjobs import job_tiny_scenario

        plain = job_tiny_scenario()

        tele = Telemetry()
        tele.enable_time_windows()
        with tele.activate():
            observed = job_tiny_scenario()
        tele.close()

        wrap = lambda r: [JobResult(name="tiny", status="ok", attempts=1,
                                    wall_s=0.0, result=r)]
        assert results_digest(wrap(plain)) == results_digest(wrap(observed))


# -- histogram reservoir (satellite) -------------------------------------------


class TestHistogramReservoir:
    def test_count_stays_exact_past_the_cap(self):
        hist = Histogram("h", (), sample_cap=100)
        for i in range(1000):
            hist.observe(float(i))
        assert hist.count == 1000
        assert hist.sampled
        summary = hist.summary()
        assert summary["count"] == 1000
        assert summary["sample_size"] == 100
        assert summary["min"] == 0.0 and summary["max"] == 999.0
        assert summary["mean"] == pytest.approx(499.5)

    def test_below_cap_is_exact_and_unsampled(self):
        hist = Histogram("h", (), sample_cap=100)
        hist.observe_many([1.0, 2.0, 3.0])
        assert not hist.sampled
        assert "sample_size" not in hist.summary()
        assert hist.summary()["p50"] == 2.0

    def test_reservoir_is_deterministic_per_name(self):
        a, b = Histogram("h", (), sample_cap=10), Histogram("h", (), sample_cap=10)
        values = [math.sin(i) for i in range(500)]
        a.observe_many(values)
        b.observe_many(values)
        assert a.summary() == b.summary()

    def test_percentiles_stay_plausible_under_sampling(self):
        hist = Histogram("h", (), sample_cap=256)
        for i in range(10_000):
            hist.observe(i / 10_000)
        p50 = hist.summary()["p50"]
        assert 0.3 < p50 < 0.7

    def test_invalid_cap_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", (), sample_cap=0)

    def test_registry_cap_applies_at_creation(self):
        reg = MetricsRegistry()
        hist = reg.histogram("queue_delay_s", sample_cap=7, queue="q")
        assert hist.sample_cap == 7
        assert reg.histogram("queue_delay_s", queue="q") is hist
        assert reg.histogram("other").sample_cap == DEFAULT_SAMPLE_CAP

    def test_incremental_observe_many_pattern(self):
        # fifo's collector appends only the delays the histogram has not
        # seen: hist.observe_many(delays[hist.count:]). Exact `count` is
        # what keeps that pattern correct once sampling kicks in.
        hist = Histogram("h", (), sample_cap=10)
        delays = [float(i) for i in range(50)]
        hist.observe_many(delays[hist.count:])
        delays += [float(i) for i in range(50, 80)]
        hist.observe_many(delays[hist.count:])
        assert hist.count == 80
        assert hist.summary()["max"] == 79.0


# -- flight JSONL ring (satellite) ---------------------------------------------


class TestFlightRing:
    def _run_with_sink(self, sink):
        from repro.harness.scenarios import run_cc_pair

        tele = Telemetry(enabled=True)
        tele.enable_flight_recording().attach(sink)
        with tele.activate():
            run_cc_pair("cubic", 1, "dctcp", 1, "aq", gbps(1), 20e-3,
                        warmup=5e-3)
        tele.close()

    def test_ring_caps_file_and_counts_evictions(self, tmp_path):
        path = str(tmp_path / "f.jsonl")
        sink = JsonlFlightSink(path, max_flights=10)
        self._run_with_sink(sink)
        assert sink.flights_evicted > 0
        flights = list(read_flights_jsonl(path))
        assert len(flights) == 10
        with open(path, encoding="utf-8") as fh:
            first = fh.readline()
        assert '"ring_meta"' in first

    def test_unbounded_sink_has_no_meta(self, tmp_path):
        path = str(tmp_path / "f.jsonl")
        sink = JsonlFlightSink(path)
        self._run_with_sink(sink)
        assert sink.flights_evicted == 0
        with open(path, encoding="utf-8") as fh:
            assert '"ring_meta"' not in fh.readline()

    def test_recorder_add_jsonl_passes_cap(self, tmp_path):
        path = str(tmp_path / "f.jsonl")
        rec = FlightRecorder()
        sink = rec.add_jsonl(path, max_flights=5)
        assert sink.max_flights == 5
        rec.close()
        assert list(read_flights_jsonl(path)) == []

    def test_invalid_cap_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlFlightSink(str(tmp_path / "f.jsonl"), max_flights=0)
