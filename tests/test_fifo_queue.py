"""Unit tests for the physical FIFO queue."""

import pytest

from repro.errors import ConfigurationError
from repro.net.packet import make_data, make_udp
from repro.queues.fifo import PhysicalFifoQueue


def _pkt(size=1500, ect=False, flow=1):
    packet = make_data("a", "b", flow, seq=0, size=size, ect=ect)
    return packet


class TestFifoOrdering:
    def test_fifo_order_preserved(self):
        queue = PhysicalFifoQueue(limit_bytes=10_000)
        packets = [_pkt(100) for _ in range(5)]
        for packet in packets:
            assert queue.enqueue(packet, 0.0)
        out = [queue.dequeue(1.0) for _ in range(5)]
        assert [p.packet_id for p in out] == [p.packet_id for p in packets]

    def test_dequeue_empty_returns_none(self):
        queue = PhysicalFifoQueue(limit_bytes=1000)
        assert queue.dequeue(0.0) is None

    def test_byte_accounting(self):
        queue = PhysicalFifoQueue(limit_bytes=10_000)
        queue.enqueue(_pkt(1500), 0.0)
        queue.enqueue(_pkt(500), 0.0)
        assert queue.bytes_queued == 2000
        assert queue.packets_queued == 2
        queue.dequeue(0.0)
        assert queue.bytes_queued == 500
        assert len(queue) == 1
        assert not queue.is_empty


class TestDropTail:
    def test_drop_when_full(self):
        queue = PhysicalFifoQueue(limit_bytes=3000)
        assert queue.enqueue(_pkt(1500), 0.0)
        assert queue.enqueue(_pkt(1500), 0.0)
        assert not queue.enqueue(_pkt(1500), 0.0)
        assert queue.stats.dropped_packets == 1
        assert queue.stats.dropped_bytes == 1500

    def test_partial_fit_rejected(self):
        # 1000 bytes free but a 1500-byte packet must not squeeze in.
        queue = PhysicalFifoQueue(limit_bytes=2500)
        queue.enqueue(_pkt(1500), 0.0)
        assert not queue.enqueue(_pkt(1500), 0.0)

    def test_limit_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            PhysicalFifoQueue(limit_bytes=0)


class TestEcnMarking:
    def test_marks_ect_packets_above_threshold(self):
        queue = PhysicalFifoQueue(limit_bytes=100_000, ecn_threshold_bytes=3000)
        for _ in range(2):
            queue.enqueue(_pkt(1500, ect=True), 0.0)
        packet = _pkt(1500, ect=True)
        queue.enqueue(packet, 0.0)
        assert packet.ce
        assert queue.stats.ecn_marked_packets == 1

    def test_no_marking_below_threshold(self):
        queue = PhysicalFifoQueue(limit_bytes=100_000, ecn_threshold_bytes=3000)
        packet = _pkt(1500, ect=True)
        queue.enqueue(packet, 0.0)
        assert not packet.ce

    def test_non_ect_red_dropped_at_high_occupancy(self):
        # At >= 2x threshold the RED ramp reaches probability 1.
        queue = PhysicalFifoQueue(limit_bytes=100_000, ecn_threshold_bytes=3000)
        for _ in range(4):
            queue.enqueue(_pkt(1500, ect=True), 0.0)
        assert not queue.enqueue(_pkt(1500, ect=False), 0.0)
        assert queue.stats.dropped_packets == 1

    def test_non_ect_survives_when_red_disabled(self):
        queue = PhysicalFifoQueue(
            limit_bytes=100_000, ecn_threshold_bytes=3000, red_drop_non_ect=False
        )
        for _ in range(6):
            queue.enqueue(_pkt(1500, ect=True), 0.0)
        assert queue.enqueue(_pkt(1500, ect=False), 0.0)

    def test_udp_packets_never_marked(self):
        queue = PhysicalFifoQueue(limit_bytes=100_000, ecn_threshold_bytes=1000)
        filler = make_udp("a", "b", 1, 1500)
        queue.enqueue(filler, 0.0)
        packet = make_udp("a", "b", 1, 1500)
        queue.enqueue(packet, 0.0)
        assert not packet.ce  # not ECT, cannot be marked

    def test_negative_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            PhysicalFifoQueue(limit_bytes=1000, ecn_threshold_bytes=-1)


class TestStats:
    def test_queuing_delay_recorded(self):
        queue = PhysicalFifoQueue(limit_bytes=10_000, collect_delays=True)
        queue.enqueue(_pkt(1500), 1.0)
        queue.dequeue(1.25)
        assert queue.stats.queuing_delays == [pytest.approx(0.25)]

    def test_max_bytes_queued_tracked(self):
        queue = PhysicalFifoQueue(limit_bytes=10_000)
        queue.enqueue(_pkt(1500), 0.0)
        queue.enqueue(_pkt(1500), 0.0)
        queue.dequeue(0.0)
        assert queue.stats.max_bytes_queued == 3000

    def test_enqueue_dequeue_counters(self):
        queue = PhysicalFifoQueue(limit_bytes=10_000)
        queue.enqueue(_pkt(1000), 0.0)
        queue.enqueue(_pkt(2000), 0.0)
        queue.dequeue(0.0)
        stats = queue.stats
        assert stats.enqueued_packets == 2
        assert stats.enqueued_bytes == 3000
        assert stats.dequeued_packets == 1
        assert stats.dequeued_bytes == 1000
