"""Tests for the FCT statistics collector."""

import pytest

from repro.errors import ConfigurationError
from repro.stats.fct import DEFAULT_BIN_EDGES, FctCollector, FlowRecord
from repro.units import gbps


class TestFlowRecord:
    def test_slowdown(self):
        record = FlowRecord(size_bytes=1000, fct=2e-3, ideal_fct=1e-3)
        assert record.slowdown == 2.0

    def test_zero_ideal_is_infinite(self):
        record = FlowRecord(size_bytes=1000, fct=1e-3, ideal_fct=0.0)
        assert record.slowdown == float("inf")


class TestCollector:
    def _collector(self):
        return FctCollector(reference_rate_bps=gbps(1), base_rtt=60e-6)

    def test_ideal_fct_includes_rtt(self):
        collector = self._collector()
        # 125000 bytes at 1 Gbps = 1 ms, plus 60 us RTT.
        assert collector.ideal_fct(125_000) == pytest.approx(1.06e-3)

    def test_record_and_count(self):
        collector = self._collector()
        collector.record(10_000, 1e-3)
        collector.record(2_000_000, 50e-3)
        assert len(collector) == 2

    def test_binning(self):
        collector = self._collector()
        assert collector._bin_label(50_000) == f"(0, {DEFAULT_BIN_EDGES[0]}]B"
        assert collector._bin_label(500_000).startswith(f"({DEFAULT_BIN_EDGES[0]}")
        assert collector._bin_label(5_000_000).startswith(">")

    def test_summary_percentiles(self):
        collector = self._collector()
        for fct_ms in (1, 2, 3, 4, 100):
            collector.record(10_000, fct_ms * 1e-3)
        summary = collector.summary()
        small_bin = collector.bins()[0]
        assert summary[small_bin]["n"] == 5
        assert summary[small_bin]["p50"] < summary[small_bin]["p99"]

    def test_slowdowns_filter_by_bin(self):
        collector = self._collector()
        collector.record(10_000, 1e-3)
        collector.record(5_000_000, 80e-3)
        small = collector.slowdowns(collector.bins()[0])
        assert len(small) == 1

    def test_overall_p99(self):
        collector = self._collector()
        for i in range(100):
            collector.record(10_000, (1 + i) * 1e-4)
        assert collector.overall_p99_slowdown() > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FctCollector(reference_rate_bps=0)
        collector = self._collector()
        with pytest.raises(ConfigurationError):
            collector.record(0, 1e-3)
        with pytest.raises(ConfigurationError):
            collector.overall_p99_slowdown()

    def test_on_complete_hook(self):
        collector = self._collector()

        class FakeConn:
            completion_time = 2e-3

        collector.on_complete_hook(10_000)(FakeConn(), 1.0)
        assert len(collector) == 1
        assert collector.records[0].fct == 2e-3


class TestNonFiniteSlowdowns:
    """Regression: one record with a zero ideal FCT (slowdown = inf)
    must not poison a bin's percentiles/mean — it is excluded and
    reported as ``n_nonfinite`` instead."""

    def _collector_with_inf(self):
        collector = FctCollector(reference_rate_bps=gbps(1))
        for fct_ms in (1, 2, 3):
            collector.record(10_000, fct_ms * 1e-3)
        # Bypass record()'s validation the way a degenerate merge would.
        collector.records.append(
            FlowRecord(size_bytes=10_000, fct=1e-3, ideal_fct=0.0)
        )
        return collector

    def test_summary_excludes_nonfinite(self):
        collector = self._collector_with_inf()
        small_bin = collector.bins()[0]
        stats = collector.summary()[small_bin]
        assert stats["n"] == 3
        assert stats["n_nonfinite"] == 1
        for key in ("p50", "p99", "mean"):
            assert stats[key] != float("inf"), key

    def test_summary_omits_counter_when_all_finite(self):
        collector = FctCollector(reference_rate_bps=gbps(1))
        collector.record(10_000, 1e-3)
        stats = collector.summary()[collector.bins()[0]]
        assert "n_nonfinite" not in stats

    def test_all_nonfinite_bin_keeps_counts_only(self):
        collector = FctCollector(reference_rate_bps=gbps(1))
        collector.records.append(
            FlowRecord(size_bytes=10_000, fct=1e-3, ideal_fct=0.0)
        )
        stats = collector.summary()[collector.bins()[0]]
        assert stats == {"n": 0.0, "n_nonfinite": 1.0}

    def test_overall_p99_ignores_nonfinite(self):
        collector = self._collector_with_inf()
        assert collector.overall_p99_slowdown() != float("inf")

    def test_overall_p99_raises_when_none_finite(self):
        collector = FctCollector(reference_rate_bps=gbps(1))
        collector.records.append(
            FlowRecord(size_bytes=10_000, fct=1e-3, ideal_fct=0.0)
        )
        with pytest.raises(ConfigurationError, match="finite"):
            collector.overall_p99_slowdown()

    def test_slowdowns_finite_only_filter(self):
        collector = self._collector_with_inf()
        assert len(collector.slowdowns()) == 4
        assert len(collector.slowdowns(finite_only=True)) == 3
