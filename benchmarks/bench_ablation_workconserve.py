"""Ablation (paper Section 6, work conservation): strict AQ vs the
bypass-while-queue-empty gate.

Expectation: on an idle fabric the gated tenant exceeds its allocation
(work conservation); on a busy fabric both configurations pin the tenant
near its allocation.
"""

from repro.core.controller import AqController, AqRequest
from repro.core.feedback import drop_policy
from repro.core.workconserving import WorkConservingGate
from repro.cc.registry import make_cc
from repro.harness.common import queue_limit_bytes
from repro.harness.report import print_experiment, render_table
from repro.stats.meters import ThroughputMeter
from repro.topology.dumbbell import Dumbbell, DumbbellConfig
from repro.transport.tcp import TcpConnection
from repro.units import format_rate, gbps

CAPACITY = gbps(10)
ALLOCATED = gbps(2.5)
DURATION = 60e-3
WARMUP = 20e-3


def run_case(work_conserving: bool, with_competitor: bool) -> float:
    dumbbell = Dumbbell(
        DumbbellConfig(num_left=2, num_right=2, bottleneck_rate_bps=CAPACITY)
    )
    network = dumbbell.network
    controller = AqController(network)
    controller.register_resource("bottleneck", CAPACITY)
    grant = controller.request(
        AqRequest(
            entity="tenant",
            switch=Dumbbell.LEFT_SWITCH,
            position="ingress",
            absolute_rate_bps=ALLOCATED,
            share_group="bottleneck",
            policy=drop_policy(),
            limit_bytes=queue_limit_bytes(),
        )
    )
    if work_conserving:
        WorkConservingGate(
            dumbbell.bottleneck_switch,
            controller.pipeline(Dumbbell.LEFT_SWITCH),
            watched_port=Dumbbell.RIGHT_SWITCH,
        )
    meter = ThroughputMeter(network.sim, DURATION / 40)
    for _ in range(4):
        TcpConnection(
            network, "h-l0", "h-r0", make_cc("cubic"),
            aq_ingress_id=grant.aq_id, on_deliver=meter.add,
        )
    if with_competitor:
        for _ in range(4):
            TcpConnection(network, "h-l1", "h-r1", make_cc("cubic"))
    network.run(until=DURATION)
    return meter.mean_rate(after=WARMUP)


def run_grid():
    return {
        (wc, comp): run_case(wc, comp)
        for wc in (False, True)
        for comp in (False, True)
    }


def test_ablation_workconserve(once):
    rates = once(run_grid)
    rows = [
        [
            "gated" if wc else "strict",
            "busy" if comp else "idle",
            format_rate(rate),
            f"{rate / ALLOCATED:.2f}x allocation",
        ]
        for (wc, comp), rate in rates.items()
    ]
    print_experiment(
        "Ablation B - Section 6 work-conservation gate (2.5G of 10G)",
        render_table(["mode", "fabric", "tenant rate", "vs allocation"], rows),
    )
    assert rates[(False, False)] < 1.15 * ALLOCATED  # strict stays pinned
    assert rates[(True, False)] > 1.8 * ALLOCATED  # gate exploits idle fabric
    assert rates[(True, True)] < 2.2 * ALLOCATED  # contention re-engages AQ
