"""Extension: AQ isolation on a multi-path leaf-spine fabric.

The paper evaluates dumbbell/star topologies; this extension checks that
the abstraction survives the deployment reality of a Clos fabric: an
entity's flows spread over multiple spines by ECMP while a single
ingress AQ at the source leaf still enforces the entity's aggregate rate,
and a competing UDP entity cannot starve it anywhere along the path.
"""

from repro.cc.registry import make_cc
from repro.core.controller import AqController, AqRequest
from repro.core.feedback import drop_policy
from repro.harness.report import print_experiment, render_table
from repro.stats.meters import ThroughputMeter
from repro.topology.leafspine import LeafSpine, LeafSpineConfig
from repro.transport.tcp import TcpConnection
from repro.transport.udp import UdpFlow
from repro.units import format_rate, gbps

HOST_LINK = gbps(2)
FABRIC_LINK = gbps(1)  # two spines x 1G: host pairs contend in the fabric
DURATION = 60e-3
WARMUP = 25e-3


def run_case(with_aq: bool):
    fab = LeafSpine(
        LeafSpineConfig(
            num_leaves=2, num_spines=2, hosts_per_leaf=2,
            host_link_bps=HOST_LINK, fabric_link_bps=FABRIC_LINK,
        )
    )
    network = fab.network
    tcp_id = udp_id = 0
    if with_aq:
        controller = AqController(network)
        controller.register_resource("fabric", 2 * FABRIC_LINK)
        tcp_id = controller.request(
            AqRequest(entity="tcp", switch="leaf0", position="ingress",
                      weight=1.0, share_group="fabric", policy=drop_policy())
        ).aq_id
        udp_id = controller.request(
            AqRequest(entity="udp", switch="leaf0", position="ingress",
                      weight=1.0, share_group="fabric", policy=drop_policy())
        ).aq_id
    tcp_meter = ThroughputMeter(network.sim, DURATION / 40, name="tcp")
    udp_meter = ThroughputMeter(network.sim, DURATION / 40, name="udp")
    # 4 TCP flows hash across both spines.
    for _ in range(4):
        TcpConnection(network, "h0-0", "h1-0", make_cc("cubic"),
                      aq_ingress_id=tcp_id, on_deliver=tcp_meter.add)
    # Two UDP flows (hashing onto both spines) saturate the whole fabric.
    for _ in range(2):
        UdpFlow(network, "h0-1", "h1-1", rate_bps=FABRIC_LINK,
                aq_ingress_id=udp_id, on_deliver=udp_meter.add)
    network.run(until=DURATION)
    return (
        tcp_meter.mean_rate(after=WARMUP),
        udp_meter.mean_rate(after=WARMUP),
    )


def test_ext_leafspine(once):
    results = once(lambda: {mode: run_case(mode == "aq")
                            for mode in ("pq", "aq")})
    rows = [
        [mode.upper(), format_rate(tcp), format_rate(udp)]
        for mode, (tcp, udp) in results.items()
    ]
    print_experiment(
        "Extension - entity isolation across a 2-leaf/2-spine ECMP fabric "
        "(2 x 1G spine capacity)",
        render_table(["mode", "tcp entity", "udp entity"], rows),
    )
    pq_tcp, pq_udp = results["pq"]
    aq_tcp, aq_udp = results["aq"]
    # PQ: UDP dominates the fabric paths it shares.
    assert pq_udp > 2.5 * pq_tcp
    # AQ at the source leaf restores the weighted split fabric-wide.
    assert aq_tcp > 0.6 * FABRIC_LINK
    assert aq_udp < 1.4 * FABRIC_LINK
