"""Shared benchmark configuration.

Every benchmark runs a scaled-down version of a paper experiment
(rates /4 to /10, durations in the tens of milliseconds — see
EXPERIMENTS.md for the scale of record) and prints the same rows/series
the paper reports. ``pytest benchmarks/ --benchmark-only`` regenerates
everything; each scenario is executed once per benchmark round via
``benchmark.pedantic``.
"""

import pytest

from repro.harness.common import telemetry_from_env


@pytest.fixture(autouse=True)
def env_telemetry():
    """Instrument benchmark runs from the environment: set
    ``REPRO_TELEMETRY=out.jsonl`` (and/or ``REPRO_PROFILE=1``) to record a
    trace of whatever benchmark you run, with zero code changes."""
    with telemetry_from_env() as tele:
        yield tele


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result.

    Packet-level scenario runs are seconds long and deterministic, so one
    round is both sufficient and necessary to keep the suite's wall time
    sane.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run


def run_registry_job(benchmark, name):
    """Run one ``repro run-all`` registry job (by exact name) under
    pytest-benchmark, in-process. The same job specs back both this suite
    and the parallel runner, so a benchmark and ``repro run-all --filter``
    measure identical work.
    """
    from repro.harness.jobs import default_jobs
    from repro.harness.runner import resolve_target

    spec = next(s for s in default_jobs() if s.name == name)
    return run_once(benchmark, resolve_target(spec.target), **spec.kwargs)


@pytest.fixture
def registry_job(benchmark):
    def _run(name):
        return run_registry_job(benchmark, name)

    return _run
