"""Figure 6: normalized workload completion time of a single entity vs
its VM count.

Paper result: AQ tracks PQ (~1.0, full utilization) while PRL and DRL
grow with the VM count — their per-VM slices waste bandwidth whenever the
runtime demand of a VM mismatches its fixed (PRL) or 15 ms-stale (DRL)
allocation. Scaled: 2 Gbps bottleneck, 8 MB web-search volume.
"""

from repro.harness.report import print_experiment, render_table
from repro.harness.scenarios import run_single_entity_wct
from repro.units import gbps

BOTTLENECK = gbps(2)
VOLUME = 8_000_000
VM_COUNTS = (1, 2, 4, 8)
APPROACHES = ("pq", "aq", "prl", "drl")


def run_grid():
    wct = {}
    for approach in APPROACHES:
        for num_vms in VM_COUNTS:
            wct[(approach, num_vms)] = run_single_entity_wct(
                num_vms, approach, VOLUME,
                bottleneck_bps=BOTTLENECK, max_sim_time=10.0,
            )
    return wct


def test_fig06_wct_vs_vms(once):
    wct = once(run_grid)
    rows = []
    for approach in APPROACHES:
        row = [approach.upper()]
        for num_vms in VM_COUNTS:
            normalized = wct[(approach, num_vms)] / wct[("pq", num_vms)]
            row.append(f"{normalized:.2f}")
        rows.append(row)
    print_experiment(
        "Figure 6 - workload completion time normalized to PQ, per VM count",
        render_table(
            ["approach"] + [f"{n} VMs" for n in VM_COUNTS], rows
        ),
    )
    for num_vms in VM_COUNTS:
        aq_norm = wct[("aq", num_vms)] / wct[("pq", num_vms)]
        assert aq_norm < 1.15, f"AQ must track PQ (got {aq_norm:.2f} at {num_vms} VMs)"
    # Rate-limiting baselines degrade as VMs multiply.
    assert wct[("prl", 8)] / wct[("pq", 8)] > 1.1
