"""Figure 10: entity fairness and total completion time when two 4-VM
entities with *different CC algorithms* run equal web-search volumes.

Paper result: (a) fairness ~1 for AQ/PRL/DRL, ~0.6 for PQ (the
aggressive CC finishes first); (b) total completion time of AQ matches PQ
(full utilization) while PRL and DRL take significantly longer.
"""

from repro.harness.report import print_experiment, render_table
from repro.harness.scenarios import run_cc_pair_wct
from repro.units import gbps

BOTTLENECK = gbps(2)
VOLUME = 6_000_000
PAIRS = [("cubic", "dctcp"), ("newreno", "dctcp"), ("cubic", "swift")]
APPROACHES = ("pq", "aq", "prl", "drl")


def run_grid():
    results = {}
    for pair in PAIRS:
        for approach in APPROACHES:
            results[(pair, approach)] = run_cc_pair_wct(
                pair[0], pair[1], approach, VOLUME,
                num_vms=4, bottleneck_bps=BOTTLENECK, max_sim_time=10.0,
            )
    return results


def test_fig10_cc_wct(once):
    results = once(run_grid)
    fairness_rows, total_rows = [], []
    for pair in PAIRS:
        label = f"{pair[0]}+{pair[1]}"
        fairness_rows.append(
            [label]
            + [f"{results[(pair, a)].fairness():.2f}" for a in APPROACHES]
        )
        total_rows.append(
            [label]
            + [f"{results[(pair, a)].total_wct * 1e3:.1f}ms" for a in APPROACHES]
        )
    header = ["CC pair"] + [a.upper() for a in APPROACHES]
    print_experiment("Figure 10a - entity fairness", render_table(header, fairness_rows))
    print_experiment(
        "Figure 10b - total workload completion time", render_table(header, total_rows)
    )

    for pair in PAIRS:
        aq = results[(pair, "aq")]
        pq = results[(pair, "pq")]
        assert aq.fairness() > 0.8, f"AQ fairness low for {pair}"
        # AQ's total completion stays close to PQ's (full utilization).
        assert aq.total_wct < 1.35 * pq.total_wct
    # PQ is unfair for at least the strongly-mismatched pairs.
    assert min(results[(p, "pq")].fairness() for p in PAIRS) < 0.75
