"""Extension: Section 2.2's "even with multiple physical queues" argument.

A switch port has a handful of physical queues; entities hash onto them.
With more entities than queues, collisions are pigeonhole-guaranteed and
a colliding UDP entity starves its queue-mates even though the scheduler
isolates the queues from each other. AQ needs only ONE physical queue to
isolate all of them.
"""

from repro.core.controller import AqController, AqRequest
from repro.core.feedback import drop_policy
from repro.harness.report import print_experiment, render_table
from repro.queues.multiqueue import MultiQueuePort
from repro.stats.meters import ThroughputMeter
from repro.topology.dumbbell import Dumbbell, DumbbellConfig
from repro.transport.udp import UdpFlow
from repro.units import format_rate, gbps

BOTTLENECK = gbps(2)
NUM_ENTITIES = 8
NUM_QUEUES = 4
DURATION = 50e-3


def run_case(mechanism: str):
    """8 UDP entities, each entitled to 1/8 of the link; entity 0 is a
    blaster at line rate, the rest offer exactly their share."""
    dumbbell = Dumbbell(
        DumbbellConfig(
            num_left=NUM_ENTITIES, num_right=NUM_ENTITIES,
            bottleneck_rate_bps=BOTTLENECK,
        )
    )
    network = dumbbell.network
    share = BOTTLENECK / NUM_ENTITIES
    ids = list(range(1, NUM_ENTITIES + 1))

    if mechanism == "multiqueue":
        port = dumbbell.bottleneck_port
        port.queue = MultiQueuePort(
            num_queues=NUM_QUEUES,
            limit_bytes_per_queue=50 * 1500,
            classifier=lambda p: p.aq_ingress_id % NUM_QUEUES,
        )
        port.transmitter.queue = port.queue
    elif mechanism == "aq":
        controller = AqController(network)
        controller.register_resource("bn", BOTTLENECK)
        ids = []
        for i in range(NUM_ENTITIES):
            grant = controller.request(
                AqRequest(
                    entity=f"e{i}", switch=Dumbbell.LEFT_SWITCH,
                    position="ingress", weight=1.0, share_group="bn",
                    policy=drop_policy(),
                )
            )
            ids.append(grant.aq_id)

    meters = []
    for i in range(NUM_ENTITIES):
        meter = ThroughputMeter(network.sim, DURATION / 25)
        meters.append(meter)
        rate = BOTTLENECK if i == 0 else share
        UdpFlow(
            network, dumbbell.left_hosts[i], dumbbell.right_hosts[i],
            rate_bps=rate, aq_ingress_id=ids[i], on_deliver=meter.add,
        )
    network.run(until=DURATION)
    return [m.mean_rate(after=DURATION * 0.4) for m in meters]


def test_ext_multiqueue(once):
    results = once(lambda: {m: run_case(m) for m in ("multiqueue", "aq")})
    share = BOTTLENECK / NUM_ENTITIES
    rows = []
    for mechanism, rates in results.items():
        blaster = rates[0]
        # Victims that hash into the blaster's queue (IDs ≡ 1 mod 4).
        colliding = [rates[i] for i in range(1, NUM_ENTITIES)
                     if (i + 1) % NUM_QUEUES == 1]
        others = [rates[i] for i in range(1, NUM_ENTITIES)
                  if (i + 1) % NUM_QUEUES != 1]
        rows.append(
            [
                mechanism,
                format_rate(blaster),
                format_rate(min(colliding)) if colliding else "-",
                format_rate(min(others)),
            ]
        )
    print_experiment(
        f"Extension (Sec 2.2) - {NUM_ENTITIES} entities on "
        f"{NUM_QUEUES} physical queues vs AQ on one queue "
        f"(fair share {format_rate(share)})",
        render_table(
            ["mechanism", "blaster", "worst colliding victim",
             "worst non-colliding"],
            rows,
        ),
    )
    mq = results["multiqueue"]
    aq = results["aq"]
    # Multi-queue: the blaster's queue-mates are starved.
    colliding_victims = [mq[i] for i in range(1, NUM_ENTITIES)
                         if (i + 1) % NUM_QUEUES == 1]
    assert min(colliding_victims) < 0.6 * share
    # AQ: every victim keeps ~its full share; the blaster is capped.
    assert min(aq[1:]) > 0.8 * share
    assert aq[0] < 1.5 * share
