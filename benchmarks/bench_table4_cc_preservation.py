"""Table 4: an AQ-managed entity behaves like the same entity on a
dedicated link.

Paper result (25G allocation inside a 100G fabric vs a real 25G link):
identical throughput per CC, and the AQ's *virtual* queuing-delay
distribution matches the physical one within ~2.3% at the 95th
percentile (CUBIC ~698us, NewReno ~721us, DCTCP ~88us).
Scaled: 2.5G allocation inside a 10G fabric vs a 2.5G link.
"""

from repro.harness.report import print_experiment, render_table
from repro.harness.scenarios import run_cc_preservation
from repro.units import format_rate, gbps

ALLOCATED = gbps(2.5)
CAPACITY = gbps(10)
CCS = ("cubic", "newreno", "dctcp")


def run_all():
    results = {}
    for cc in CCS:
        results[(cc, "pq")] = run_cc_preservation(
            cc, use_aq=False, allocated_bps=ALLOCATED, capacity_bps=CAPACITY
        )
        results[(cc, "aq")] = run_cc_preservation(
            cc, use_aq=True, allocated_bps=ALLOCATED, capacity_bps=CAPACITY
        )
    return results


def test_table4_cc_preservation(once):
    results = once(run_all)
    rows = []
    for cc in CCS:
        pq, aq = results[(cc, "pq")], results[(cc, "aq")]
        rows.append(
            [
                cc,
                format_rate(pq.throughput_bps),
                f"{pq.delay_p95 * 1e6:.0f}us",
                format_rate(aq.throughput_bps),
                f"{aq.delay_p95 * 1e6:.0f}us",
            ]
        )
    print_experiment(
        "Table 4 - CC behaviour preserved: PQ@2.5G link vs AQ 2.5G-of-10G",
        render_table(
            ["CC", "PQ throughput", "PQ 95p delay", "AQ throughput", "AQ 95p delay"],
            rows,
        ),
    )

    for cc in CCS:
        pq, aq = results[(cc, "pq")], results[(cc, "aq")]
        assert aq.throughput_bps > 0.93 * pq.throughput_bps, cc
        ratio = aq.delay_p95 / pq.delay_p95
        assert 0.6 < ratio < 1.6, f"{cc}: delay distributions diverged ({ratio:.2f})"
    # DCTCP's delay stays an order of magnitude below the loss-based CCs
    # in both environments (the paper's qualitative signature).
    assert results[("dctcp", "aq")].delay_p95 < 0.4 * results[("cubic", "aq")].delay_p95
