"""Extension: Section 7's claim that other CC families accommodate AQ.

The paper argues TIMELY-style gradient CCs and BBR-style model-based CCs
also work under the abstraction (AQ can provide the delay and rate
signals they consume). Run each extension CC against DCTCP — a pairing
that under PQ ends in starvation — and check AQ restores the even split.
"""

from repro.harness.report import print_experiment, render_table
from repro.harness.scenarios import run_cc_pair
from repro.units import format_rate, gbps

BOTTLENECK = gbps(2)
DURATION = 70e-3
WARMUP = 30e-3
PAIRS = [("timely", "dctcp"), ("bbr", "dctcp"), ("timely", "cubic")]


def run_grid():
    results = {}
    for pair in PAIRS:
        for approach in ("pq", "aq"):
            results[(pair, approach)] = run_cc_pair(
                pair[0], 5, pair[1], 5, approach,
                bottleneck_bps=BOTTLENECK, duration=DURATION, warmup=WARMUP,
            )
    return results


def test_ext_cc_accommodation(once):
    results = once(run_grid)
    rows = []
    for pair in PAIRS:
        pq = results[(pair, "pq")]
        aq = results[(pair, "aq")]
        rows.append(
            [
                f"{pair[0]} + {pair[1]}",
                f"{format_rate(pq.rates_bps['A'])} + {format_rate(pq.rates_bps['B'])}",
                f"{format_rate(aq.rates_bps['A'])} + {format_rate(aq.rates_bps['B'])}",
                f"{aq.ratio('A', 'B'):.2f}",
            ]
        )
    print_experiment(
        "Extension (paper Sec 7) - TIMELY/BBR accommodate the AQ abstraction",
        render_table(["pairing", "PQ", "AQ", "AQ min/max"], rows),
    )
    for pair in PAIRS:
        aq = results[(pair, "aq")]
        assert aq.ratio("A", "B") > 0.7, f"AQ split broke for {pair}"
        assert aq.utilization > 0.8, f"AQ under-utilized for {pair}"
