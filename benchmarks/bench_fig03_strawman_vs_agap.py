"""Figure 3: strawman D(t) vs the A-Gap driving an over-reducing CC.

Paper result: with D(t) as the discrepancy the rate peaks escalate
(r0 < r1 < r2, Fig 3a) because banked surplus lets each climb overshoot
further; with the A-Gap the surplus is discarded and every peak tops out
at the same r0 (Fig 3b).
"""

from repro.core.agap import simulate_discrepancy_control
from repro.harness.report import print_experiment, render_table


def run_both():
    strawman = simulate_discrepancy_control(use_agap=False)
    agap = simulate_discrepancy_control(use_agap=True)
    return strawman.cycle_peaks(), agap.cycle_peaks()


def test_fig03_strawman_vs_agap(once):
    strawman_peaks, agap_peaks = once(run_both)
    count = min(8, len(strawman_peaks), len(agap_peaks))
    rows = [
        [f"r{i}", f"{strawman_peaks[i] / 1e9:.3f}G", f"{agap_peaks[i] / 1e9:.3f}G"]
        for i in range(count)
    ]
    print_experiment(
        "Figure 3 - rate peaks per congestion cycle (allocated rate 5G)",
        render_table(["cycle peak", "strawman D(t)", "A-Gap A(t)"], rows),
    )
    assert strawman_peaks[-1] > strawman_peaks[0] * 1.2, "D(t) peaks must escalate"
    assert max(agap_peaks) <= min(agap_peaks) * 1.01, "A-Gap peaks must stay level"
