"""Table 3: bi-directional bandwidth guarantee for a VM.

Paper result (25G links, 5G/5G profile for VM A, B+C+D all sending to A):

  ideal  5G out / 5G in
  PQ     ~23G both (nothing limits the rates until link congestion)
  PRL    out ~5G, in ~15G (3 senders x 5G violates the inbound profile)
  DRL    both can dip below 5G (adjustment lag vs shifting demand)
  AQ     both ~5G (ingress + egress AQ pair)

Scaled to 2.5G links / 0.5G profile; the ratios to the profile carry.
"""

from repro.harness.report import print_experiment, rate_range_str, render_table
from repro.harness.scenarios import run_vm_profile
from repro.units import format_rate, gbps

LINK = gbps(2.5)
PROFILE = gbps(0.5)
DURATION = 0.15
APPROACHES = ("pq", "prl", "drl", "aq")


def run_all():
    return {
        approach: run_vm_profile(
            approach, link_rate_bps=LINK, profile_rate_bps=PROFILE,
            duration=DURATION,
        )
        for approach in APPROACHES
    }


def test_table3_vm_profile(once):
    results = once(run_all)
    rows = [["ideal", format_rate(PROFILE), format_rate(PROFILE)]]
    for approach in APPROACHES:
        r = results[approach]
        rows.append(
            [
                approach.upper(),
                rate_range_str(r.outbound_range_bps),
                rate_range_str(r.inbound_range_bps),
            ]
        )
    print_experiment(
        "Table 3 - VM A outbound/inbound rate ranges "
        f"(scaled: {format_rate(LINK)} links, {format_rate(PROFILE)} profile)",
        render_table(["approach", "outbound", "inbound"], rows),
    )

    # PQ: both directions blow far past the profile.
    pq = results["pq"]
    assert pq.outbound_mean_bps > 2 * PROFILE
    assert pq.inbound_mean_bps > 2 * PROFILE
    # PRL: outbound held, inbound ~3x the profile.
    prl = results["prl"]
    assert prl.outbound_mean_bps < 1.2 * PROFILE
    assert prl.inbound_mean_bps > 2.4 * PROFILE
    # AQ: both directions within ~25% of the profile.
    aq = results["aq"]
    assert 0.75 * PROFILE < aq.outbound_mean_bps < 1.25 * PROFILE
    assert 0.75 * PROFILE < aq.inbound_mean_bps < 1.25 * PROFILE
    # DRL: enforces the profile approximately (within ~30%).
    drl = results["drl"]
    assert drl.inbound_mean_bps < 1.3 * PROFILE
