"""Engine hot-path benchmarks: tombstone compaction, the fire-and-forget
event free list, and the idle-link combined serialization event.

Each case asserts that its mechanism actually *engages* (compactions
happen, events are recycled, the uncontended link pays one event per
packet) — a refactor that silently disables a fast path fails here rather
than showing up as an unexplained slowdown. The measured numbers for the
whole group are written to ``BENCH_engine.json`` at the repo root, which
``repro run-all --baseline`` and CI use as the wall-clock reference (see
docs/PERFORMANCE.md for how to read it).
"""

import json
from pathlib import Path

from repro.harness.hotpath import (
    ENGINE_BENCHES,
    bench_backlogged_link,
    bench_fabric_mixed,
    bench_fabric_obs_overhead,
    bench_fire_chain,
    bench_fluid_speedup,
    bench_idle_link,
    bench_shard_speedup,
    bench_timer_churn,
    bench_timewin_overhead,
    engine_bench_payload,
)
from repro.harness.report import print_experiment, render_table

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

_results = {}


def _record(name, result):
    _results[name] = result
    return result


def test_engine_timer_churn(once):
    result = _record("timer_churn", once(bench_timer_churn))
    # 90% of a 200k-event calendar cancelled: compaction must kick in,
    # and the run must only process the surviving 10%.
    assert result["compactions"] >= 1
    assert result["events_processed"] == round(result["n_events"] * 0.1)
    # Compaction keeps tombstones below live events, so the calendar holds
    # at most 2x the survivors when the run starts.
    assert result["calendar_after_cancel"] <= 2 * result["events_processed"]


def test_engine_fire_chain(once):
    result = _record("fire_chain", once(bench_fire_chain))
    assert result["events_processed"] == result["n_events"]
    # The whole chain must be served by pooled Events, not fresh allocations.
    assert result["free_list_size"] <= 4


def test_engine_idle_link(once):
    result = _record("idle_link", once(bench_idle_link))
    # The uncontended link folds finish+propagation into ONE event/packet.
    assert result["events_per_packet"] == 1.0


def test_engine_backlogged_link(once):
    result = _record("backlogged_link", once(bench_backlogged_link))
    assert result["delivered"] == result["n_packets"]
    # The classic two-events-per-packet path (plus the offer events driving
    # the benchmark) must still be exact under backlog.
    assert 2.0 <= result["events_per_packet"] <= 3.5


def test_engine_timewin_overhead(once):
    result = _record("timewin_overhead", once(bench_timewin_overhead))
    # Every packet must be attributed, and the window ring must stay at
    # its configured size (sealed ring + active buffer) no matter how
    # many windows the run spanned -- the fixed-memory claim.
    assert result["records"] == result["n_packets"]
    assert result["windows_spanned"] > result["ring_size"]
    assert result["retained_windows"] <= result["ring_size"] + 1
    assert result["evicted_windows"] == (
        result["windows_spanned"] - result["retained_windows"]
    )


def test_engine_fluid_speedup(once):
    result = _record("fluid_speedup", once(bench_fluid_speedup))
    # The analytic fast path must actually engage (closed-form epochs, not
    # a silent fallback to packet mode) and pay off by >=10x wall-clock on
    # the stable backlogged scenario it is designed for, while delivering
    # the same bytes to within the documented equivalence tolerance.
    assert result["fluid_epochs"] > 0
    assert result["speedup_ratio"] >= result["target_speedup"]
    assert result["delivered_rel_err"] <= 0.01


def test_engine_shard_speedup(once):
    result = _record("shard_speedup", once(bench_shard_speedup))
    # Determinism is unconditional: 1-shard and 4-shard runs must hash
    # identically (the bench raises otherwise), with real boundary
    # traffic crossing the cuts.
    assert result["digest_match"] == 1.0
    assert result["boundary_exported"] > 0
    # The >=2.5x wall-clock gate only means something when the host can
    # actually run the workers in parallel; on fewer cores the measured
    # ratio (recorded in BENCH_engine.json next to ``cpus``) documents
    # the overhead instead (docs/SCALING.md).
    if result["cpus"] >= result["shards"]:
        assert result["speedup_ratio"] >= result["target_speedup"]


def test_engine_fabric_obs_overhead(once):
    result = _record("fabric_obs_overhead", once(bench_fabric_obs_overhead))
    # The structural gates are unconditional: the plane must be
    # digest-neutral (the bench raises otherwise) and the heartbeat
    # timeline must cover every (shard, epoch) pair. The <=1.05 wall
    # ratio is recorded as a trend line in BENCH_engine.json, not
    # hard-asserted -- 2ms runs are dominated by noise (same policy as
    # timewin_overhead).
    assert result["digest_match"] == 1.0
    assert result["heartbeat_frames"] == result["shards"] * result["epochs"]
    assert result["timewin_ports"] > 0
    assert result["target_ratio"] == 1.05


def test_engine_fabric_mixed(once):
    result = _record("fabric_mixed", once(bench_fabric_mixed))
    # The dynamic mixed workload (TCP + AQ tenants + churn) must digest
    # identically serial vs sharded (the bench raises otherwise), with
    # real boundary traffic and a non-trivial completed-flow population.
    # Wall clocks are recorded as trend lines, not gated.
    assert result["digest_match"] == 1.0
    assert result["boundary_exported"] > 0
    assert result["tcp_completed"] > 0


def test_engine_write_baseline(once):
    """Runs last (file order): persist the group's measurements."""
    missing = set(ENGINE_BENCHES) - set(_results)
    assert not missing, f"benches did not run before the writer: {missing}"
    once(lambda: None)  # keep this test selected under --benchmark-only
    BENCH_PATH.write_text(
        json.dumps(engine_bench_payload(_results), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    rows = [
        [name, f"{r.get('events_per_sec', r.get('packets_per_sec', 0)):,.0f}/s"]
        for name, r in sorted(_results.items())
    ]
    print_experiment(
        "Engine hot-path benches (full numbers in BENCH_engine.json)",
        render_table(["bench", "throughput"], rows),
    )
