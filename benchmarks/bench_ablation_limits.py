"""Ablation (paper Section 6, "AQ limit configurations"): sweep the AQ
limit for a fixed allocation and observe achieved rate vs drop rate.

Expectation from the paper's discussion: a too-small limit over-drops and
keeps the entity below its allocated bandwidth; beyond a knee, growing
the limit only adds (virtual) queueing, not throughput.
"""

from repro.harness.report import print_experiment, render_table
from repro.harness.scenarios import run_limit_ablation
from repro.units import MTU_BYTES, format_rate, gbps

ALLOCATED = gbps(2.5)
LIMITS_PACKETS = (4, 8, 16, 32, 64, 128, 200)


def run_sweep():
    return run_limit_ablation(
        [n * MTU_BYTES for n in LIMITS_PACKETS],
        allocated_bps=ALLOCATED,
        capacity_bps=gbps(10),
    )


def test_ablation_limits(once):
    results = once(run_sweep)
    rows = [
        [
            f"{int(r.limit_bytes // MTU_BYTES)} pkts",
            format_rate(r.rate_bps),
            f"{r.rate_bps / ALLOCATED * 100:.0f}%",
            f"{r.drop_fraction * 100:.2f}%",
        ]
        for r in results
    ]
    print_experiment(
        "Ablation A - AQ limit sweep (allocation 2.5G of 10G, CUBIC x4)",
        render_table(["AQ limit", "achieved rate", "of allocation", "drops"], rows),
    )
    # Small limits under-achieve; large limits reach the allocation.
    assert results[0].rate_bps < 0.9 * ALLOCATED
    assert results[-1].rate_bps > 0.9 * ALLOCATED
    # Achieved rate grows with the limit up to the allocation knee.
    assert results[-1].rate_bps > 1.15 * results[0].rate_bps
