"""Figure 1: traffic interference between CC algorithms sharing one
physical queue.

Paper result (10 Gbps dumbbell, 10 flows per CC): DCTCP grabs 8.7 Gbps vs
CUBIC's 0.7 Gbps; Swift falls below 0.2 Gbps against everything. The
benchmark reproduces the pairwise matrix at 1/5 scale (2 Gbps) — the
*shares* are the result, and they are scale-free.
"""

from repro.harness.report import print_experiment, render_table
from repro.harness.scenarios import run_cc_pair
from repro.units import format_rate, gbps

BOTTLENECK = gbps(2)
DURATION = 60e-3
WARMUP = 25e-3
PAIRS = [
    ("cubic", "newreno"),
    ("cubic", "dctcp"),
    ("newreno", "dctcp"),
    ("cubic", "swift"),
    ("dctcp", "swift"),
    ("newreno", "swift"),
]


def run_matrix():
    rows = []
    for cc_a, cc_b in PAIRS:
        result = run_cc_pair(
            cc_a, 10, cc_b, 10, "pq",
            bottleneck_bps=BOTTLENECK, duration=DURATION, warmup=WARMUP,
        )
        rows.append(
            [
                f"10 {cc_a} + 10 {cc_b}",
                format_rate(result.rates_bps["A"]),
                format_rate(result.rates_bps["B"]),
                f"{result.ratio('A', 'B'):.2f}",
            ]
        )
    return rows


def test_fig01_cc_interference(once):
    rows = once(run_matrix)
    print_experiment(
        "Figure 1 - CC interference in a shared physical queue "
        f"(scaled: {format_rate(BOTTLENECK)} bottleneck)",
        render_table(["pairing (PQ)", "A", "B", "min/max ratio"], rows),
    )
    # The paper's headline: mixed-CC pairs cannot share fairly under PQ.
    mixed = [float(row[3]) for row in rows[1:]]
    assert min(mixed) < 0.25, "expected severe interference for mixed CC pairs"
