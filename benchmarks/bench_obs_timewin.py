"""Time-window forensics benchmarks: ground-truth validation and cost.

Two claims from the observability ISSUE are exercised at scenario scale:

* **Attribution is right**: replaying run-all's ``timewin/validate/*``
  jobs, the recorder's per-(port, window) flow attribution must agree
  exactly with FlightIndex ground truth (collided windows at window
  granularity, evicted windows excluded).
* **It is the cheap option**: per-flow per-window byte counts in fixed
  memory must cost well under full INT flight recording, which retains
  per-packet hop lists. The measured walls land in the printed table;
  the engine-level worst case (every event an enqueue) is recorded in
  ``BENCH_engine.json`` by ``bench_engine_hotpath.py``.
"""

import time

from repro.harness.report import print_experiment, render_table
from repro.harness.scenarios import run_cc_pair
from repro.obs import Telemetry
from repro.units import gbps

SCENARIO = dict(bottleneck_bps=gbps(1), duration=60e-3, warmup=20e-3)


def test_timewin_validate_cc_pair(registry_job):
    verdict = registry_job("timewin/validate/cc-pair")
    assert verdict["ok"]
    assert verdict["windows_checked"] > 0
    assert verdict["mismatches"] == []


def test_timewin_validate_udp_tcp(registry_job):
    verdict = registry_job("timewin/validate/udp-tcp")
    assert verdict["ok"]
    assert verdict["windows_checked"] > 0


def test_timewin_validate_weighted(registry_job):
    verdict = registry_job("timewin/validate/weighted")
    assert verdict["ok"]
    assert verdict["windows_checked"] > 0


def _run_scenario(configure):
    tele = Telemetry(enabled=True)
    configure(tele)
    with tele.activate():
        t0 = time.perf_counter()
        run_cc_pair("cubic", 2, "dctcp", 2, "aq", **SCENARIO)
        wall = time.perf_counter() - t0
    tele.close()
    return wall, tele


def test_timewin_cost_vs_flight_recording(once):
    """Windows must undercut full INT on the same run, at fixed memory."""

    def measure():
        base_wall, _ = _run_scenario(lambda tele: None)
        tw_wall, tw_tele = _run_scenario(
            lambda tele: tele.enable_time_windows()
        )
        fr_wall, fr_tele = _run_scenario(
            lambda tele: tele.enable_flight_recording()
        )
        stats = tw_tele.timewin.stats()
        return {
            "telemetry_wall_s": base_wall,
            "timewin_wall_s": tw_wall,
            "flightrec_wall_s": fr_wall,
            "timewin_ratio": tw_wall / base_wall,
            "flightrec_ratio": fr_wall / base_wall,
            "records": stats["records"],
            "retained_windows": stats["retained_windows"],
            "flights": fr_tele.flightrec.flights_completed,
        }

    result = once(measure)
    # Fixed memory: the ring bound holds per port no matter the run length.
    stats_ports = result["retained_windows"]
    assert stats_ports > 0
    assert result["records"] > 0
    rows = [
        ["telemetry only", f"{result['telemetry_wall_s']:.3f}s", "1.00x"],
        ["+ time windows", f"{result['timewin_wall_s']:.3f}s",
         f"{result['timewin_ratio']:.2f}x"],
        ["+ flight recorder", f"{result['flightrec_wall_s']:.3f}s",
         f"{result['flightrec_ratio']:.2f}x"],
    ]
    print_experiment(
        "Time-window recorder vs full INT on a cc-pair run "
        f"({result['records']} records, {result['flights']} flights)",
        render_table(["configuration", "wall", "ratio"], rows),
    )
