"""Table 2: throughput of entities with different CC settings, PQ vs AQ.

Paper result (10 Gbps): under PQ, DCTCP starves drop-based CCs
(e.g. 0.7+8.7 for CUBIC+DCTCP), everything starves Swift, and a UDP
entity starves three TCP entities (8.9 vs 0.4 total); under AQ every row
splits ~evenly (4.6-4.7 each; ~2.2-2.4 each in the 4-entity row).
Scaled to 2 Gbps; shares are scale-free.
"""

from repro.harness.common import EntitySpec
from repro.harness.report import print_experiment, render_table
from repro.harness.scenarios import run_cc_pair, run_longlived_share
from repro.units import format_rate, gbps

BOTTLENECK = gbps(2)
DURATION = 70e-3
WARMUP = 25e-3

PAIR_ROWS = [
    ("5 cubic + 5 cubic", "cubic", 5, "cubic", 5),
    ("5 cubic + 5 dctcp", "cubic", 5, "dctcp", 5),
    ("5 newreno + 5 dctcp", "newreno", 5, "dctcp", 5),
    ("5 illinois + 5 dctcp", "illinois", 5, "dctcp", 5),
    ("5 cubic + 5 swift", "cubic", 5, "swift", 5),
    ("5 dctcp + 5 swift", "dctcp", 5, "swift", 5),
    ("10 dctcp + 5 newreno", "dctcp", 10, "newreno", 5),
    ("10 dctcp + 5 swift", "dctcp", 10, "swift", 5),
]


def run_rows():
    rows = []
    for label, cc_a, n_a, cc_b, n_b in PAIR_ROWS:
        pq = run_cc_pair(cc_a, n_a, cc_b, n_b, "pq",
                         bottleneck_bps=BOTTLENECK, duration=DURATION, warmup=WARMUP)
        aq = run_cc_pair(cc_a, n_a, cc_b, n_b, "aq",
                         bottleneck_bps=BOTTLENECK, duration=DURATION, warmup=WARMUP)
        rows.append((label, pq, aq))

    # Final row: 1 UDP + 3 CUBIC + 3 DCTCP + 3 Swift (four entities).
    entities = [
        EntitySpec(name="udp", cc="udp", num_flows=1),
        EntitySpec(name="cubic", cc="cubic", num_flows=3),
        EntitySpec(name="dctcp", cc="dctcp", num_flows=3),
        EntitySpec(name="swift", cc="swift", num_flows=3),
    ]
    pq4 = run_longlived_share(entities, "pq", bottleneck_bps=BOTTLENECK,
                              duration=DURATION, warmup=WARMUP)
    aq4 = run_longlived_share(entities, "aq", bottleneck_bps=BOTTLENECK,
                              duration=DURATION, warmup=WARMUP)
    return rows, pq4, aq4


def _fmt_pair(result):
    return (
        f"{format_rate(result.rates_bps['A'])} + {format_rate(result.rates_bps['B'])}"
    )


def test_table2_cc_sharing(once):
    rows, pq4, aq4 = once(run_rows)
    table = [
        [label, _fmt_pair(pq), _fmt_pair(aq), f"{aq.ratio('A', 'B'):.2f}"]
        for label, pq, aq in rows
    ]
    four = ["udp", "cubic", "dctcp", "swift"]
    table.append(
        [
            "1 udp + 3x3 tcp",
            " + ".join(format_rate(pq4.rates_bps[e]) for e in four),
            " + ".join(format_rate(aq4.rates_bps[e]) for e in four),
            f"{min(aq4.rates_bps.values()) / max(aq4.rates_bps.values()):.2f}",
        ]
    )
    print_experiment(
        "Table 2 - entity throughput under different CC settings "
        f"(scaled: {format_rate(BOTTLENECK)})",
        render_table(["congestion control", "PQ", "AQ", "AQ min/max"], table),
    )

    for label, pq, aq in rows:
        assert aq.ratio("A", "B") > 0.8, f"AQ must split ~evenly for {label}"
        assert aq.utilization > 0.8, f"AQ must keep the link busy for {label}"
    mixed = [r for r in rows if r[0] != "5 cubic + 5 cubic"]
    assert any(pq.ratio("A", "B") < 0.25 for _, pq, _ in mixed)
    # Four-entity row: UDP starves TCP under PQ, AQ splits ~1/4 each.
    tcp_total_pq = sum(pq4.rates_bps[e] for e in ("cubic", "dctcp", "swift"))
    assert pq4.rates_bps["udp"] > 0.7 * BOTTLENECK
    assert tcp_total_pq < 0.3 * BOTTLENECK
    assert min(aq4.rates_bps.values()) > 0.15 * BOTTLENECK
