"""Figure 12: switch memory consumption vs number of deployed AQs.

Paper result: 15 bytes per AQ (Table 1's fields), so millions of
concurrent AQs fit comfortably in a programmable switch's tens of MB of
SRAM — the scalability half of the paper's title.
"""

from repro.core.resources import (
    AQ_RECORD_BYTES,
    TOFINO_SRAM_BYTES,
    max_aqs_in_sram,
    memory_series,
)
from repro.harness.report import print_experiment, render_table

COUNTS = [10_000, 100_000, 500_000, 1_000_000, 2_000_000, 5_000_000]


def test_fig12_memory(once):
    series = once(memory_series, COUNTS)
    rows = [
        [f"{count:,}", f"{megabytes:.2f} MB"]
        for count, megabytes in series.items()
    ]
    print_experiment(
        "Figure 12 - switch memory vs number of concurrent AQs "
        f"({AQ_RECORD_BYTES} B per AQ)",
        render_table(["AQs (traffic constituents)", "memory"], rows),
    )
    assert AQ_RECORD_BYTES == 15
    # One million AQs need ~14.3 MB: inside a single switch's SRAM.
    assert series[1_000_000] < TOFINO_SRAM_BYTES / (1024 * 1024)
    assert max_aqs_in_sram() > 1_000_000
