"""Figure 8: bandwidth sharing vs flow count — entity A opens 1 TCP flow,
entity B opens 1..64.

Paper result: under PQ the split tracks the flow count (B starves A at
64 flows); under AQ the split tracks the configured weights regardless of
flow count, including the 1:2 weighted case.
"""

from repro.harness.report import print_experiment, render_table
from repro.harness.scenarios import run_longlived_share
from repro.harness.common import EntitySpec
from repro.units import format_rate, gbps

BOTTLENECK = gbps(2)
DURATION = 80e-3
WARMUP = 30e-3
FLOW_COUNTS = (1, 4, 16, 64)


def run_case(flows_b, weight_b, approach):
    entities = [
        EntitySpec(name="A", cc="cubic", num_flows=1, weight=1.0),
        EntitySpec(name="B", cc="cubic", num_flows=flows_b, weight=weight_b),
    ]
    return run_longlived_share(
        entities, approach,
        bottleneck_bps=BOTTLENECK, duration=DURATION, warmup=WARMUP,
    )


def run_grid():
    results = {}
    for flows_b in FLOW_COUNTS:
        for approach in ("pq", "aq"):
            results[(approach, flows_b)] = run_case(flows_b, 1.0, approach)
    results[("aq-1:2", 16)] = run_case(16, 2.0, "aq")
    return results


def test_fig08_flow_count(once):
    results = once(run_grid)
    rows = []
    for flows_b in FLOW_COUNTS:
        for approach in ("pq", "aq"):
            r = results[(approach, flows_b)]
            rows.append(
                [
                    f"1 vs {flows_b} flows",
                    approach.upper(),
                    format_rate(r.rates_bps["A"]),
                    format_rate(r.rates_bps["B"]),
                ]
            )
    weighted = results[("aq-1:2", 16)]
    rows.append(
        [
            "weights 1:2 (16 flows)",
            "AQ",
            format_rate(weighted.rates_bps["A"]),
            format_rate(weighted.rates_bps["B"]),
        ]
    )
    print_experiment(
        "Figure 8 - throughput vs flow count (equal weights unless noted)",
        render_table(["scenario", "approach", "entity A", "entity B"], rows),
    )

    # PQ: B's share grows with its flow count and A is starved at 64.
    pq64 = results[("pq", 64)]
    assert pq64.rates_bps["A"] < 0.15 * BOTTLENECK
    # AQ: the split stays ~50/50 even at 64 flows.
    aq64 = results[("aq", 64)]
    assert aq64.ratio("A", "B") > 0.8
    # AQ weighted 1:2: B gets ~2x A.
    ratio = weighted.rates_bps["B"] / weighted.rates_bps["A"]
    assert 1.6 < ratio < 2.5
