"""Extension: the Section 1/2 motivation quantified as FCT slowdown.

"Traffic from aggressive and gentle applications alike sharing a physical
queue can interfere with each other, leading to unpredictable performance
that can vary by an order of magnitude." A latency-sensitive entity
sending small web-search flows at 20% of its share competes with a UDP
entity blasting at line rate: under PQ its flow-completion-time slowdown
explodes (or flows never finish); under AQ it stays near the ideal.
"""

from repro.errors import ConfigurationError
from repro.harness.report import print_experiment, render_table
from repro.harness.scenarios import run_small_flow_protection
from repro.units import gbps

BOTTLENECK = gbps(2)


def run_both():
    results = {}
    for approach in ("pq", "aq"):
        try:
            results[approach] = run_small_flow_protection(
                approach, bottleneck_bps=BOTTLENECK, duration=0.1
            )
        except ConfigurationError:
            results[approach] = None  # PQ can starve the victim entirely
    return results


def test_ext_fct_protection(once):
    results = once(run_both)
    rows = []
    for approach, result in results.items():
        if result is None:
            rows.append([approach.upper(), "-", "starved", "starved", "0"])
        else:
            rows.append(
                [
                    approach.upper(),
                    str(result.completed_flows),
                    f"{result.p50_slowdown:.1f}x",
                    f"{result.p99_slowdown:.1f}x",
                    f"{result.mean_slowdown:.1f}x",
                ]
            )
    print_experiment(
        "Extension - small-flow FCT slowdown vs a line-rate UDP blaster",
        render_table(
            ["approach", "flows done", "p50 slowdown", "p99 slowdown", "mean"],
            rows,
        ),
    )
    aq = results["aq"]
    assert aq is not None and aq.completed_flows > 10
    assert aq.p50_slowdown < 4.0, "AQ must keep small-flow FCTs near ideal"
    pq = results["pq"]
    # PQ either starves the victim outright or inflates its tail by ~an
    # order of magnitude relative to AQ.
    if pq is not None:
        assert (
            pq.completed_flows < aq.completed_flows // 2
            or pq.p99_slowdown > 4 * aq.p99_slowdown
        )
