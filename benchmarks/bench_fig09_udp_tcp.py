"""Figure 9: UDP and TCP entities sharing a bottleneck over time.

Paper result: under PQ a UDP entity blasting at line rate starves every
TCP entity (Fig 9a); under AQ with weighted allocation each of the n
*active* entities holds ~1/n of the link (>95% total saturation), with
reallocation following entities as they join and leave (Fig 9b).

Timeline: TCP entities T1..T4 join staggered; a UDP entity joins in
phase 4 and leaves after phase 5.
"""

from repro.harness.report import print_experiment, render_table
from repro.harness.scenarios import run_udp_tcp_timeline
from repro.units import gbps

BOTTLENECK = gbps(2)
PHASE = 40e-3
ENTITIES = ("T1", "T2", "T3", "T4", "U")
#: Entities expected active in each phase.
ACTIVE = {
    0: ("T1",),
    1: ("T1", "T2"),
    2: ("T1", "T2", "T3"),
    3: ("T1", "T2", "T3", "T4"),
    4: ("T1", "T2", "T3", "T4", "U"),
    5: ("T1", "T2", "T3", "T4", "U"),
    6: ("T1", "T2", "T3", "T4"),
}


def run_both():
    return {
        approach: run_udp_tcp_timeline(
            approach, bottleneck_bps=BOTTLENECK, phase=PHASE
        )
        for approach in ("pq", "aq")
    }


def test_fig09_udp_tcp(once):
    results = once(run_both)
    for approach, result in results.items():
        rows = []
        for k in range(7):
            window = result.rates_in_window[f"phase{k}"]
            rows.append(
                [f"phase {k} ({len(ACTIVE[k])} active)"]
                + [f"{window[e] / BOTTLENECK:.2f}" for e in ENTITIES]
            )
        print_experiment(
            f"Figure 9 ({approach.upper()}) - per-entity share of the link "
            "per phase",
            render_table(["phase"] + list(ENTITIES), rows),
        )

    # PQ: once UDP joins, it grabs nearly everything.
    pq_phase5 = results["pq"].rates_in_window["phase5"]
    tcp_total = sum(pq_phase5[e] for e in ("T1", "T2", "T3", "T4"))
    assert pq_phase5["U"] > 0.75 * BOTTLENECK
    assert tcp_total < 0.2 * BOTTLENECK

    # AQ: each active entity holds ~1/n; total saturation >= 90%.
    for k, active in ACTIVE.items():
        window = results["aq"].rates_in_window[f"phase{k}"]
        expected = BOTTLENECK / len(active)
        for entity in active:
            assert window[entity] > 0.5 * expected, (
                f"phase {k}: {entity} got {window[entity] / 1e9:.2f}G, "
                f"expected ~{expected / 1e9:.2f}G"
            )
    last = results["aq"].rates_in_window["phase6"]
    assert sum(last.values()) > 0.9 * BOTTLENECK
