"""Related-work comparison (paper Sections 1 and 7): per-flow/per-entity
queueing vs AQ.

Two claims to reproduce:

1. **Scalability** — dedicating a queue per constituent costs orders of
   magnitude more switch state than 15 B AQ records, and commodity
   switches cap out at dozens of queues per port (vs millions of tenants).
2. **Functionality** — a per-entity DRR queue shares a *congested* link
   fairly, but "can release traffic that exceeds the specified VM
   bandwidth" when the link is NOT congested: with no backlog it cannot
   hold an entity down to its allocation, while an AQ's limit-drop can.
"""

from repro.harness.report import print_experiment, render_table
from repro.core.controller import AqController, AqRequest
from repro.queues.perflow import (
    PER_QUEUE_STATE_BYTES,
    PerFlowQueue,
    entity_key,
    state_bytes_per_entity,
)
from repro.topology.dumbbell import Dumbbell, DumbbellConfig
from repro.transport.udp import UdpFlow
from repro.units import format_rate, format_size, gbps

CAPACITY = gbps(2.5)
ALLOCATED = gbps(0.5)
DURATION = 50e-3


def run_enforcement(mechanism: str) -> float:
    """One UDP entity offering 2x its 0.5G allocation on an uncongested
    2.5G link; return the delivered rate."""
    dumbbell = Dumbbell(
        DumbbellConfig(num_left=2, num_right=2, bottleneck_rate_bps=CAPACITY)
    )
    network = dumbbell.network
    aq_id = 0
    if mechanism == "aq":
        controller = AqController(network)
        controller.register_resource("bn", CAPACITY)
        grant = controller.request(
            AqRequest(
                entity="e", switch=Dumbbell.LEFT_SWITCH, position="ingress",
                absolute_rate_bps=ALLOCATED, share_group="bn",
                limit_bytes=100 * 1500,
            )
        )
        aq_id = grant.aq_id
    elif mechanism == "pfq":
        port = dumbbell.bottleneck_port
        port.queue = PerFlowQueue(
            limit_bytes_per_queue=100 * 1500, key_fn=entity_key
        )
        port.transmitter.queue = port.queue
    flow = UdpFlow(
        dumbbell.network, "h-l0", "h-r0",
        rate_bps=2 * ALLOCATED, aq_ingress_id=aq_id,
    )
    network.run(until=DURATION)
    return flow.sink.delivered_bytes * 8 / DURATION


def run_all():
    rates = {m: run_enforcement(m) for m in ("pfq", "aq")}
    state = {
        n: (
            state_bytes_per_entity(n, per_flow_queues=True),
            state_bytes_per_entity(n, per_flow_queues=False),
        )
        for n in (1_000, 100_000, 1_000_000)
    }
    return rates, state


def test_related_perflow(once):
    rates, state = once(run_all)
    rows = [
        ["per-entity DRR queue", format_rate(rates["pfq"]),
         f"{rates['pfq'] / ALLOCATED:.2f}x allocation"],
        ["AQ (limit-drop)", format_rate(rates["aq"]),
         f"{rates['aq'] / ALLOCATED:.2f}x allocation"],
    ]
    print_experiment(
        "Related work - enforcing 0.5G on an uncongested 2.5G link",
        render_table(["mechanism", "delivered", "vs allocation"], rows),
    )
    state_rows = [
        [f"{n:,}", format_size(pfq), format_size(aq), f"{pfq / aq:.0f}x"]
        for n, (pfq, aq) in state.items()
    ]
    print_experiment(
        "Related work - switch state to support N constituents "
        f"(queue ~= {PER_QUEUE_STATE_BYTES} B vs AQ record = 15 B)",
        render_table(["constituents", "per-entity queues", "AQ", "ratio"],
                     state_rows),
    )

    # PFQ releases the excess (no congestion, no backlog, no enforcement).
    assert rates["pfq"] > 1.7 * ALLOCATED
    # AQ pins the entity at its allocation.
    assert rates["aq"] < 1.1 * ALLOCATED
    # State gap: >100x at every scale.
    assert all(pfq / aq > 100 for pfq, aq in state.values())
