"""Figure 11: AQ's data-plane resource usage on a Tofino switch.

Without the hardware this is the paper's reported static accounting
reproduced from the analytic model in ``repro.core.resources`` (the
percentages are compile-time properties of the P4 program, not runtime
measurements — see DESIGN.md, substitutions).
"""

from repro.core.resources import tofino_usage
from repro.harness.report import print_experiment, render_table


def test_fig11_resources(once):
    usage = once(tofino_usage)
    rows = [[u.resource, f"{u.used_percent:.1f}%", u.explanation] for u in usage]
    print_experiment(
        "Figure 11 - switch data-plane resource usage (analytic model)",
        render_table(["resource", "used", "consumed by"], rows),
    )
    by_name = {u.resource: u.used_percent for u in usage}
    assert by_name["pipeline stages"] == 16.8
    assert by_name["MAUs"] == 12.5
    assert by_name["PHV size"] == 7.5
    # Headline: every resource class stays well under 20%.
    assert max(u.used_percent for u in usage) < 20.0
