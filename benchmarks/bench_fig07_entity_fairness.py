"""Figure 7: entity fairness when entity A (1 VM) and entity B (n VMs)
share a bottleneck with equal weights and equal workload volumes.

Paper result: AQ keeps entity fairness ~1 at every VM count; PQ's
flow-level fair share favours the VM-rich entity (down to ~0.14 at 8
VMs); PRL/DRL favour the single-VM entity because B's per-VM slices
mismatch its shifting demand (0.16 / 0.21 at 8 VMs). The reproduced
*shape*: AQ flat at ~1, every baseline decaying with n.
"""

from repro.harness.report import print_experiment, render_table
from repro.harness.scenarios import run_two_entity_fairness
from repro.units import gbps

BOTTLENECK = gbps(2)
VOLUME = 8_000_000
VM_COUNTS = (1, 2, 4, 8)
APPROACHES = ("pq", "aq", "prl", "drl")


def run_grid():
    fairness = {}
    for approach in APPROACHES:
        for num_vms in VM_COUNTS:
            result = run_two_entity_fairness(
                num_vms, approach, VOLUME,
                bottleneck_bps=BOTTLENECK, max_sim_time=10.0,
            )
            fairness[(approach, num_vms)] = result.fairness()
    return fairness


def test_fig07_entity_fairness(once):
    fairness = once(run_grid)
    rows = []
    for approach in APPROACHES:
        rows.append(
            [approach.upper()]
            + [f"{fairness[(approach, n)]:.2f}" for n in VM_COUNTS]
        )
    print_experiment(
        "Figure 7 - entity fairness (1 VM vs n VMs), equal weights/volumes",
        render_table(["approach"] + [f"B={n} VMs" for n in VM_COUNTS], rows),
    )
    for num_vms in VM_COUNTS:
        # AQ isolates the entities, so each one's completion reflects its
        # own (random) workload draw — allow that variance at n=1 while
        # still requiring ~1 fairness where the baselines degrade.
        floor = 0.8 if num_vms == 1 else 0.9
        assert fairness[("aq", num_vms)] > floor, "AQ fairness must stay ~1"
    # Baselines lose fairness as B's VM count grows.
    assert fairness[("pq", 8)] < 0.9
    assert fairness[("prl", 8)] < 0.85
