"""Ablation C: weighted-mode reallocation interval (design choice in
Section 4.1's "determines (or updates)" behaviour, DESIGN.md).

A joining entity must ramp from its parked floor to its fair share; the
reallocation interval bounds how stale the split can be. Sweep the
interval and measure the late joiner's throughput in the settling window
right after it joins, plus total link saturation.
"""

from repro.harness.common import EntitySpec
from repro.harness.report import print_experiment, render_table
from repro.harness.scenarios import run_longlived_share
from repro.units import format_rate, gbps

BOTTLENECK = gbps(2)
PHASE = 30e-3
INTERVALS = (2e-3, 5e-3, 10e-3, 20e-3)


def run_sweep():
    results = {}
    for interval in INTERVALS:
        entities = [
            EntitySpec(name="early", cc="cubic", num_flows=2, start_time=0.0),
            EntitySpec(name="late", cc="cubic", num_flows=2, start_time=PHASE),
        ]
        share = run_longlived_share(
            entities, "aq",
            bottleneck_bps=BOTTLENECK, duration=3 * PHASE, warmup=PHASE / 2,
            meter_interval=PHASE / 10,
            enable_reallocation=True, reallocation_interval=interval,
        )
        late = share.meters["late"].mean_rate(
            after=PHASE + 5e-3, before=2 * PHASE
        )
        steady_total = sum(
            m.mean_rate(after=2 * PHASE) for m in share.meters.values()
        )
        results[interval] = (late, steady_total)
    return results


def test_ablation_realloc(once):
    results = once(run_sweep)
    rows = [
        [
            f"{interval * 1e3:.0f}ms",
            format_rate(late),
            f"{late / (BOTTLENECK / 2) * 100:.0f}%",
            f"{total / BOTTLENECK * 100:.0f}%",
        ]
        for interval, (late, total) in results.items()
    ]
    print_experiment(
        "Ablation C - weighted reallocation interval vs late-joiner ramp",
        render_table(
            ["interval", "late joiner (settling)", "of fair share",
             "steady saturation"],
            rows,
        ),
    )
    # Faster reallocation gets the late joiner closer to its share during
    # settling; steady-state saturation stays high regardless.
    fastest = results[INTERVALS[0]][0]
    slowest = results[INTERVALS[-1]][0]
    assert fastest > slowest
    for _, (late, total) in results.items():
        assert total > 0.85 * BOTTLENECK
