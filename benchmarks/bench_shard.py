"""Sharded-fabric benchmarks: spawn-mode equivalence and window stitching.

The ``engine/shard_speedup`` gate lives in ``bench_engine_hotpath.py``
(it feeds BENCH_engine.json); this file covers the *correctness* half of
the scaling story at record scale:

* spawn-isolated workers produce the same results digest as the
  in-process lockstep driver and the 1-shard run — the determinism
  contract of docs/SCALING.md, checked across all three drivers;
* per-shard time-window dumps stitch into one fabric-wide store that
  answers ``who_built`` for ports owned by different workers.
"""

import pytest

from repro.harness.fabric import run_share_fabric
from repro.harness.report import print_experiment, render_table
from repro.obs.timewin import stitch_window_dumps

DURATION = 2e-3


@pytest.fixture(scope="module")
def inline_baseline():
    return run_share_fabric(1, DURATION, inline=True, audit=True)


def test_shard_spawn_equivalence(once, inline_baseline):
    sharded = once(run_share_fabric, 4, DURATION, inline=False, audit=True)
    assert sharded["audit"]["violation_count"] == 0
    assert inline_baseline["audit"]["violation_count"] == 0
    assert sharded["digest"] == inline_baseline["digest"]
    assert sharded["results"]["events"] == inline_baseline["results"]["events"]
    # Real cross-partition traffic, re-exported through two cuts.
    assert sharded["boundary"]["exported"] > 0
    assert sharded["boundary"]["exported"] >= sharded["boundary"]["imported"]
    rows = [
        ["shards=1 inline", inline_baseline["digest"][:16],
         f"{inline_baseline['wall_s']:.2f}s"],
        ["shards=4 spawn", sharded["digest"][:16], f"{sharded['wall_s']:.2f}s"],
    ]
    print_experiment(
        "Sharded fabric equivalence (identical digests required)",
        render_table(["run", "digest", "wall"], rows),
    )


def test_shard_fabric_stitch(once, tmp_path_factory):
    out = tmp_path_factory.mktemp("shardwin")
    report = once(
        run_share_fabric, 2, DURATION, inline=True,
        timewin_dir=str(out), timewin_params={"window_s": 0.25e-3},
    )
    store = stitch_window_dumps(
        report["timewin_paths"], out_path=str(out / "merged.windows.jsonl")
    )
    # One store answers for ports recorded by different shards.
    for port in ("agg0.core0", "agg1.core0"):
        verdict = store.who_built(port, 0.0, DURATION)
        assert verdict.coverage == "full"
        assert verdict.total_bytes > 0
