"""Extension: protecting a partition-aggregate (incast) application.

An aggregator fans requests out to 3 workers whose synchronized responses
converge on its downlink — the latency-critical pattern of the paper's
application-layer motivation. A UDP tenant blasts at the same aggregator
host. Under PQ the incast rounds stall behind the blaster; with an
egress AQ pair (blaster capped, incast guaranteed) round latency returns
to near the uncontended baseline.
"""

from repro.cc.registry import make_cc
from repro.core.controller import AqController, AqRequest
from repro.core.feedback import drop_policy
from repro.harness.report import print_experiment, render_table
from repro.topology.star import Star, StarConfig
from repro.transport.udp import UdpFlow
from repro.units import gbps
from repro.workloads.incast import IncastApplication

LINK = gbps(1)
RESPONSE_BYTES = 60_000
ROUNDS = 8


def run_case(mode: str) -> float:
    """Returns the p95 incast round duration (seconds)."""
    star = Star(StarConfig(num_hosts=5, link_rate_bps=LINK))
    network = star.network
    incast_egress = blaster_egress = 0
    if mode == "aq":
        controller = AqController(network)
        controller.register_resource("agg-down", LINK)
        incast_egress = controller.request(
            AqRequest(entity="incast", switch=Star.SWITCH, position="egress",
                      absolute_rate_bps=0.7 * LINK, share_group="agg-down",
                      policy=drop_policy(), limit_bytes=100 * 1500)
        ).aq_id
        blaster_egress = controller.request(
            AqRequest(entity="blaster", switch=Star.SWITCH, position="egress",
                      absolute_rate_bps=0.3 * LINK, share_group="agg-down",
                      policy=drop_policy(), limit_bytes=100 * 1500)
        ).aq_id
    app = IncastApplication(
        network, aggregator="vm0", workers=["vm1", "vm2", "vm3"],
        response_bytes=RESPONSE_BYTES,
        cc_factory=lambda: make_cc("cubic"),
        rounds=ROUNDS, think_time=1e-3,
        aq_egress_id=incast_egress,
    )
    if mode != "baseline":
        UdpFlow(network, "vm4", "vm0", rate_bps=LINK,
                aq_egress_id=blaster_egress)
    network.run(until=3.0)
    if not app.all_done:
        return float("inf")
    return app.round_duration_percentile(95.0)


def test_ext_incast(once):
    results = once(lambda: {m: run_case(m) for m in ("baseline", "pq", "aq")})
    rows = [
        [mode, f"{duration * 1e3:.2f}ms" if duration != float("inf") else "stalled"]
        for mode, duration in results.items()
    ]
    print_experiment(
        "Extension - incast (3-worker fan-in) p95 round latency vs a UDP "
        "blaster on the aggregator's downlink",
        render_table(["configuration", "p95 round duration"], rows),
    )
    baseline, pq, aq = results["baseline"], results["pq"], results["aq"]
    # Blaster under PQ inflates rounds by >5x (or stalls them outright).
    assert pq > 5 * baseline
    # AQ restores round latency to within ~3x of the uncontended baseline
    # (the incast entity holds 0.7x of the downlink instead of all of it).
    assert aq < 3 * baseline
    assert aq < pq / 2
