#!/usr/bin/env python3
"""Quickstart: protect TCP from a UDP blaster with one Augmented Queue.

The scenario is the paper's motivating example (Section 2.1 / Figure 9):
two tenants share a 10 Gbps bottleneck. One runs well-behaved CUBIC TCP,
the other blasts UDP at line rate. With plain physical queues the UDP
tenant starves the TCP tenant; with two weighted AQs deployed at the
bottleneck switch each tenant is held to its guaranteed half.

Run:
    python examples/quickstart.py
"""

from repro import AQ, PQ, EntitySpec, run_longlived_share
from repro.units import format_rate, gbps

BOTTLENECK = gbps(10)


def main() -> None:
    entities = [
        EntitySpec(name="tcp-tenant", cc="cubic", num_flows=4, weight=1.0),
        EntitySpec(name="udp-tenant", cc="udp", weight=1.0),
    ]

    for approach in (PQ, AQ):
        result = run_longlived_share(
            entities,
            approach=approach,
            bottleneck_bps=BOTTLENECK,
            duration=60e-3,
            warmup=20e-3,
        )
        print(f"\n--- {approach.upper()} ---")
        for name, rate in result.rates_bps.items():
            share = rate / BOTTLENECK * 100
            print(f"  {name:<12} {format_rate(rate):>12}  ({share:.0f}% of link)")
        print(f"  link utilization: {result.utilization * 100:.0f}%")

    print(
        "\nWith PQ the UDP tenant monopolizes the link; with AQ both tenants"
        "\nhold their guaranteed half -- the paper's headline behaviour."
    )


if __name__ == "__main__":
    main()
