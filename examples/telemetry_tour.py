#!/usr/bin/env python3
"""Telemetry tour: metrics, trace events, and the sim-loop profiler.

Runs one DCTCP-vs-UDP sharing experiment under AQ with every pillar of
the observability subsystem switched on, then shows what each one saw:

1. **SummarySink** — constant-space tallies of the typed event stream
   (how many drops, ECN marks, A-Gap updates, cwnd changes...).
2. **JsonlSink** — the same stream written as one JSON object per line,
   re-read with ``read_jsonl`` (this is what ``--telemetry out.jsonl``
   writes and ``python -m repro telemetry summarize`` consumes).
3. **MetricsRegistry** — labeled counters/gauges/histograms mirrored
   from every component's stats at snapshot time.
4. **SimProfiler** — where the wall clock went, callback site by
   callback site.

Run:
    python examples/telemetry_tour.py
"""

import os
import tempfile

from repro import Telemetry, read_jsonl, run_cc_pair
from repro.harness.report import render_metrics_summary
from repro.units import gbps


def main() -> None:
    tele = Telemetry(enabled=True, profile=True)
    summary = tele.add_summary()
    trace_path = os.path.join(tempfile.mkdtemp(), "tour.jsonl")
    tele.add_jsonl(trace_path)

    # activate() installs `tele` as the ambient telemetry, so the
    # simulator the scenario builds internally picks it up.
    with tele.activate():
        result = run_cc_pair(
            "dctcp", 2, "udp", 1, "aq",
            bottleneck_bps=gbps(1), duration=40e-3, warmup=15e-3,
        )
    tele.close()  # flush the JSONL sink

    print("--- scenario ---")
    for name, rate in result.rates_bps.items():
        print(f"  {name}: {rate / 1e9:.2f} Gbps")

    print("\n--- 1. event tallies (SummarySink) ---")
    for event_type, count in sorted(summary.by_type.items()):
        print(f"  {event_type:<12} {count:>8}")

    print("\n--- 2. JSONL trace round trip ---")
    events = list(read_jsonl(trace_path))
    print(f"  {len(events)} events re-read from {trace_path}")
    first_drop = next((e for e in events if e.type == "rate_limit"), None)
    if first_drop is not None:
        print(f"  first rate_limit event: {first_drop!r}")

    print("\n--- 3. metrics snapshot (selected series) ---")
    snapshot = tele.metrics.snapshot()
    print(render_metrics_summary(snapshot, max_rows=15))

    print("\n--- 4. sim-loop profile ---")
    print(tele.profiler.render())


if __name__ == "__main__":
    main()
