#!/usr/bin/env python3
"""Application isolation: weighted sharing immune to flow-count gaming.

The paper's Section 2.1 / Figure 8 scenario: entity A opens ONE TCP flow,
entity B opens 64. Flow-level fairness (what a physical queue + any
TCP-fair CC provides) hands B ~98% of the link. Weighted AQs restore
*entity*-level sharing: 1:1 when weights are equal, and exactly 1:2 when
B pays for twice the weight — regardless of how many flows each side opens.

Run:
    python examples/app_isolation.py
"""

from repro import AQ, PQ, EntitySpec, run_longlived_share
from repro.harness.report import render_table
from repro.units import format_rate, gbps

BOTTLENECK = gbps(10)


def run(flows_b: int, weight_b: float, approach: str):
    entities = [
        EntitySpec(name="A", cc="cubic", num_flows=1, weight=1.0),
        EntitySpec(name="B", cc="cubic", num_flows=flows_b, weight=weight_b),
    ]
    return run_longlived_share(
        entities,
        approach=approach,
        bottleneck_bps=BOTTLENECK,
        duration=80e-3,
        warmup=30e-3,
    )


def main() -> None:
    rows = []
    for flows_b in (1, 16, 64):
        for approach in (PQ, AQ):
            result = run(flows_b, weight_b=1.0, approach=approach)
            rows.append(
                [
                    f"1 vs {flows_b} flows",
                    approach.upper(),
                    format_rate(result.rates_bps["A"]),
                    format_rate(result.rates_bps["B"]),
                ]
            )
    # Weighted 1:2 sharing, the paper's second Figure 8 case.
    result = run(flows_b=16, weight_b=2.0, approach=AQ)
    rows.append(
        [
            "weights 1:2",
            AQ.upper(),
            format_rate(result.rates_bps["A"]),
            format_rate(result.rates_bps["B"]),
        ]
    )
    print(render_table(["scenario", "approach", "entity A", "entity B"], rows))
    print(
        "\nPQ: B's share grows with its flow count (gaming works)."
        "\nAQ: shares follow the configured weights, not the flow count."
    )


if __name__ == "__main__":
    main()
