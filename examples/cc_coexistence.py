#!/usr/bin/env python3
"""CC coexistence: make DCTCP, CUBIC and Swift share a link gracefully.

The paper's Section 2.2 problem: different congestion-control algorithms
react so differently to shared-queue congestion that one starves the
others (DCTCP crushes CUBIC; everything crushes Swift). An AQ per CC
aggregate gives each algorithm its *own* feedback — loss for CUBIC, ECN
from its own A-Gap for DCTCP, virtual queuing delay for Swift — so all
three coexist at their allocated shares.

Run:
    python examples/cc_coexistence.py
"""

from repro import AQ, PQ, EntitySpec, run_longlived_share
from repro.harness.report import render_table
from repro.units import format_rate, gbps

BOTTLENECK = gbps(10)


def main() -> None:
    entities = [
        EntitySpec(name="dctcp-apps", cc="dctcp", num_flows=5),
        EntitySpec(name="cubic-apps", cc="cubic", num_flows=5),
        EntitySpec(name="swift-apps", cc="swift", num_flows=5),
    ]

    rows = []
    for approach in (PQ, AQ):
        result = run_longlived_share(
            entities,
            approach=approach,
            bottleneck_bps=BOTTLENECK,
            duration=80e-3,
            warmup=30e-3,
        )
        rows.append(
            [approach.upper()]
            + [format_rate(result.rates_bps[e.name]) for e in entities]
        )

    print(render_table(["approach"] + [e.name for e in entities], rows))
    print(
        "\nUnder PQ the three algorithms cannot share (Figure 1 of the"
        "\npaper); under AQ each holds ~1/3 of the bottleneck."
    )


if __name__ == "__main__":
    main()
