#!/usr/bin/env python3
"""Work conservation extension (paper Section 6).

Strict AQ guarantees are non-work-conserving: a tenant allocated 25% of
the link stays at 25% even when everyone else is idle. The paper sketches
a bypass — skip AQ enforcement while the physical queue is empty — so an
entity can opportunistically exceed its allocation on an idle fabric but
is pinned back the moment contention (queue build-up) appears.

This example deploys one CUBIC entity with a 2.5 Gbps allocation on a
10 Gbps link and compares strict AQ against the work-conserving gate,
with and without a competing entity.

Run:
    python examples/work_conservation.py
"""

from repro import AqController, AqRequest, TcpConnection, drop_policy
from repro.cc.registry import make_cc
from repro.core.workconserving import WorkConservingGate
from repro.harness.common import queue_limit_bytes
from repro.harness.report import render_table
from repro.stats.meters import ThroughputMeter
from repro.topology.dumbbell import Dumbbell, DumbbellConfig
from repro.units import format_rate, gbps

CAPACITY = gbps(10)
ALLOCATED = gbps(2.5)
DURATION = 60e-3
WARMUP = 20e-3


def run(work_conserving: bool, with_competitor: bool) -> float:
    dumbbell = Dumbbell(
        DumbbellConfig(num_left=2, num_right=2, bottleneck_rate_bps=CAPACITY)
    )
    network = dumbbell.network
    controller = AqController(network)
    controller.register_resource("bottleneck", CAPACITY)
    grant = controller.request(
        AqRequest(
            entity="tenant",
            switch=Dumbbell.LEFT_SWITCH,
            position="ingress",
            absolute_rate_bps=ALLOCATED,
            share_group="bottleneck",
            policy=drop_policy(),
            limit_bytes=queue_limit_bytes(),
        )
    )
    if work_conserving:
        WorkConservingGate(
            dumbbell.bottleneck_switch,
            controller.pipeline(Dumbbell.LEFT_SWITCH),
            watched_port=Dumbbell.RIGHT_SWITCH,
        )

    meter = ThroughputMeter(network.sim, DURATION / 40)
    for _ in range(4):
        TcpConnection(
            network, "h-l0", "h-r0", make_cc("cubic"),
            aq_ingress_id=grant.aq_id, on_deliver=meter.add,
        )
    if with_competitor:
        for _ in range(4):
            TcpConnection(network, "h-l1", "h-r1", make_cc("cubic"))

    network.run(until=DURATION)
    return meter.mean_rate(after=WARMUP)


def main() -> None:
    rows = []
    for work_conserving in (False, True):
        for with_competitor in (False, True):
            rate = run(work_conserving, with_competitor)
            rows.append(
                [
                    "gated (work-conserving)" if work_conserving else "strict AQ",
                    "busy fabric" if with_competitor else "idle fabric",
                    format_rate(rate),
                ]
            )
    print(render_table(["mode", "fabric", "tenant throughput"], rows))
    print(
        "\nStrict AQ pins the tenant at its 2.5 Gbps allocation even on an"
        "\nidle fabric; the Section 6 gate lets it grab spare bandwidth while"
        "\nstill yielding when the physical queue builds up."
    )


if __name__ == "__main__":
    main()
