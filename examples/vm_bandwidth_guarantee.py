#!/usr/bin/env python3
"""Bi-directional VM bandwidth guarantees (the paper's Table 3 scenario).

Four VMs hang off one ToR switch (Figure 2). VM A buys a traffic profile
of 5 Gbps outbound AND 5 Gbps inbound. Rate limiters at the sender can
cap outbound, but when three VMs all blast at VM A its inbound hits 15
Gbps — the profile is violated. Deploying one AQ at the switch *ingress*
pipeline (A's outbound) and one at the *egress* pipeline (A's inbound)
enforces both directions regardless of the traffic pattern.

Run:
    python examples/vm_bandwidth_guarantee.py
"""

from repro import APPROACHES, run_vm_profile
from repro.harness.report import rate_range_str, render_table
from repro.units import format_rate, gbps

# 1/10 of the paper's testbed (25G links / 5G profile); the ratios to the
# profile are the result and they are scale-free.
LINK = gbps(2.5)
PROFILE = gbps(0.5)


def main() -> None:
    rows = [["ideal", f"{format_rate(PROFILE)}", f"{format_rate(PROFILE)}"]]
    for approach in APPROACHES:
        result = run_vm_profile(
            approach,
            link_rate_bps=LINK,
            profile_rate_bps=PROFILE,
            duration=0.1,
        )
        rows.append(
            [
                approach.upper(),
                rate_range_str(result.outbound_range_bps),
                rate_range_str(result.inbound_range_bps),
            ]
        )
    print(render_table(["approach", "VM A outbound", "VM A inbound"], rows))
    print(
        "\nPQ lets both directions blow past the profile; PRL holds outbound"
        "\nbut not inbound (3 senders x the profile = 3x); DRL lags demand"
        "\nshifts; AQ pins both directions to ~the profile."
    )


if __name__ == "__main__":
    main()
