#!/usr/bin/env python3
"""AQ on a leaf-spine fabric with ECMP (deployment-scale example).

The paper's experiments use a single bottleneck; a real deployment is a
Clos fabric where an entity's flows hash across several spines. This
example builds a 2-leaf/2-spine fabric, deploys one weighted ingress AQ
per entity at the source leaf, and shows that entity-level isolation
holds fabric-wide: a UDP entity saturating both spine paths cannot starve
a TCP entity, and the virtual queuing delay the AQ abstraction exports
accumulates correctly across hops.

Run:
    python examples/leafspine_fabric.py
"""

from repro.cc.registry import make_cc
from repro.core.controller import AqController, AqRequest
from repro.core.feedback import drop_policy
from repro.harness.report import render_table
from repro.stats.meters import ThroughputMeter
from repro.topology.leafspine import LeafSpine, LeafSpineConfig
from repro.transport.tcp import TcpConnection
from repro.transport.udp import UdpFlow
from repro.units import format_rate, gbps

FABRIC_LINK = gbps(1)
DURATION = 60e-3
WARMUP = 25e-3


def run(with_aq: bool):
    fabric = LeafSpine(
        LeafSpineConfig(
            num_leaves=2, num_spines=2, hosts_per_leaf=2,
            host_link_bps=gbps(2), fabric_link_bps=FABRIC_LINK,
        )
    )
    network = fabric.network
    tcp_id = udp_id = 0
    if with_aq:
        controller = AqController(network)
        controller.register_resource("fabric", 2 * FABRIC_LINK)
        tcp_id = controller.request(
            AqRequest(entity="tcp", switch="leaf0", position="ingress",
                      weight=1.0, share_group="fabric", policy=drop_policy())
        ).aq_id
        udp_id = controller.request(
            AqRequest(entity="udp", switch="leaf0", position="ingress",
                      weight=1.0, share_group="fabric", policy=drop_policy())
        ).aq_id

    tcp_meter = ThroughputMeter(network.sim, DURATION / 40)
    udp_meter = ThroughputMeter(network.sim, DURATION / 40)
    for _ in range(4):
        TcpConnection(network, "h0-0", "h1-0", make_cc("cubic"),
                      aq_ingress_id=tcp_id, on_deliver=tcp_meter.add)
    for _ in range(2):  # two flows -> ECMP lands one per spine
        UdpFlow(network, "h0-1", "h1-1", rate_bps=FABRIC_LINK,
                aq_ingress_id=udp_id, on_deliver=udp_meter.add)
    network.run(until=DURATION)
    return (
        tcp_meter.mean_rate(after=WARMUP),
        udp_meter.mean_rate(after=WARMUP),
        fabric,
    )


def main() -> None:
    rows = []
    for with_aq in (False, True):
        tcp, udp, fabric = run(with_aq)
        spines_used = sum(
            1 for s in fabric.spines
            if fabric.network.switches[s].stats.forwarded_packets > 0
        )
        rows.append(
            [
                "AQ at leaf0" if with_aq else "plain fabric",
                format_rate(tcp),
                format_rate(udp),
                str(spines_used),
            ]
        )
    print(render_table(
        ["mode", "tcp entity", "udp entity", "spines used"], rows
    ))
    print(
        "\nECMP spreads both entities over both spines; without AQ the UDP"
        "\nentity starves TCP on every path, with one ingress AQ per entity"
        "\nat the source leaf the fabric-wide split returns to 50/50."
    )


if __name__ == "__main__":
    main()
