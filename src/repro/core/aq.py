"""The Augmented Queue itself: A-Gap state + the traffic-control framework.

One :class:`AugmentedQueue` is the deployed form of one granted AQ request
(the right-hand column of Table 1): an ID, an allocated rate, a limit, the
A-Gap registers, and the CC feedback policy. :meth:`process` implements
Algorithm 2 (``Generate_NFB``) on top of Algorithm 1's streaming A-Gap.
"""

from __future__ import annotations

from typing import Optional

from ..cc.base import DELAY_BASED, ECN_BASED
from ..errors import ConfigurationError
from ..net.packet import Packet
from ..obs.events import EV_AGAP_UPDATE, EV_AQ_RATE, EV_ECN_MARK, EV_RATE_LIMIT
from .agap import AGapTracker
from .feedback import FeedbackPolicy, drop_policy


class AqStats:
    """Per-AQ counters (used by meters and the weighted allocator)."""

    __slots__ = (
        "arrived_packets",
        "arrived_bytes",
        "dropped_packets",
        "dropped_bytes",
        "marked_packets",
        "max_gap",
        "delay_samples",
    )

    def __init__(self) -> None:
        self.arrived_packets = 0
        self.arrived_bytes = 0
        self.dropped_packets = 0
        self.dropped_bytes = 0
        self.marked_packets = 0
        self.max_gap = 0.0
        #: Per-packet virtual queuing delays, populated when the owning AQ
        #: was created with ``record_delays=True`` (Table 4's comparison).
        self.delay_samples: list = []

    @property
    def accepted_bytes(self) -> int:
        return self.arrived_bytes - self.dropped_bytes


class AugmentedQueue:
    """A deployed AQ (Table 1 configuration + runtime state).

    Parameters
    ----------
    aq_id:
        The unique ID tenants tag into packet headers (4 bytes on the wire).
    rate_bps:
        The allocated rate ``R``.
    limit_bytes:
        Maximum A-Gap; packets pushing the gap beyond it are dropped
        (rate limiting, Section 3.2.2). Plays the role a buffer limit plays
        for a physical queue.
    policy:
        The CC feedback policy (drop / ECN / delay), see
        :mod:`repro.core.feedback`.
    entity / telemetry:
        Observability identity and handle. With enabled telemetry the AQ
        emits ``agap_update`` / ``rate_limit`` / ``ecn_mark`` trace
        events and publishes its counters into the metrics registry.
    """

    def __init__(
        self,
        aq_id: int,
        rate_bps: float,
        limit_bytes: float,
        policy: Optional[FeedbackPolicy] = None,
        start_time: float = 0.0,
        record_delays: bool = False,
        entity: str = "",
        telemetry=None,
    ) -> None:
        if aq_id <= 0:
            raise ConfigurationError(f"AQ id must be positive, got {aq_id}")
        if limit_bytes <= 0:
            raise ConfigurationError(f"AQ limit must be positive, got {limit_bytes}")
        self.aq_id = aq_id
        self.limit_bytes = limit_bytes
        self.policy = policy or drop_policy()
        self.tracker = AGapTracker(rate_bps, start_time=start_time)
        self.stats = AqStats()
        self.record_delays = record_delays
        self.entity = entity
        #: Deployment position ("ingress"/"egress"), stamped by
        #: :meth:`repro.core.pipeline.AqPipeline.deploy` for drop attribution.
        self.position = ""
        self._tele = telemetry if telemetry is not None and telemetry.enabled else None
        self._flight = self._tele.flightrec if self._tele is not None else None
        tw = self._tele.timewin if self._tele is not None else None
        #: Window-recorder node label: the virtual queue is attributed like
        #: a port, with the A-Gap standing in for physical backlog. The
        #: handle binds the label once so the admit path skips the lookup.
        self._timewin_node = f"aq{aq_id}" if not entity else f"aq{aq_id}:{entity}"
        self._timewin = (
            tw.port_handle(self._timewin_node) if tw is not None else None
        )
        #: Last rate announced on the trace (``aq_rate`` events let the run
        #: auditor replay the Theorem 3.2 recurrence with the right R).
        self._traced_rate: Optional[float] = None
        if self._tele is not None:
            self._tele.metrics.add_collector(self._collect_metrics)

    def _collect_metrics(self, registry) -> None:
        stats = self.stats
        labels = {"aq_id": self.aq_id}
        if self.entity:
            labels["entity"] = self.entity
        registry.counter("aq_arrived_packets", **labels).set(stats.arrived_packets)
        registry.counter("aq_arrived_bytes", **labels).set(stats.arrived_bytes)
        registry.counter("aq_dropped_packets", **labels).set(stats.dropped_packets)
        registry.counter("aq_marked_packets", **labels).set(stats.marked_packets)
        registry.gauge("aq_rate_bps", **labels).set(self.rate_bps)
        registry.gauge("aq_gap_bytes", **labels).set(self.gap_bytes)
        registry.gauge("aq_max_gap_bytes", **labels).set(stats.max_gap)
        if stats.delay_samples:
            hist = registry.histogram("aq_virtual_delay_s", **labels)
            hist.observe_many(stats.delay_samples[hist.count :])

    # -- configuration ------------------------------------------------------------

    @property
    def rate_bps(self) -> float:
        return self.tracker.rate_bps

    def set_rate(self, now: float, rate_bps: float) -> None:
        """Weighted-mode rate update from the controller."""
        self.tracker.set_rate(now, rate_bps)
        tele = self._tele
        if tele is not None and tele.enabled:
            tele.trace.emit_fields(EV_AQ_RATE, now, aq_id=self.aq_id, value=rate_bps)
            self._traced_rate = rate_bps

    @property
    def gap_bytes(self) -> float:
        return self.tracker.gap

    def current_gap(self, now: float) -> float:
        return self.tracker.peek(now)

    # -- fluid fast path (driven by :mod:`repro.sim.fluid`) -----------------------

    def fluid_announce_rate(self, now: float) -> None:
        """Emit an ``aq_rate`` event so the auditor's Theorem 3.2 replay
        knows the drain rate in force before the first analytic epoch
        (mirrors the lazy per-packet announce in :meth:`process`)."""
        tele = self._tele
        if tele is None or not tele.enabled:
            return
        if self._traced_rate != self.tracker.rate_bps:
            self._traced_rate = self.tracker.rate_bps
            tele.trace.emit_fields(
                EV_AQ_RATE, now, aq_id=self.aq_id, value=self._traced_rate
            )

    def fluid_advance(
        self,
        now: float,
        gap: float,
        arrived_bytes: int,
        arrived_packets: int,
        dropped_bytes: int = 0,
        dropped_packets: int = 0,
    ) -> None:
        """Adopt a closed-form epoch result: re-anchor the tracker at
        ``(now, gap)`` and book the epoch's aggregate counters. The caller
        (the fluid engine) has already advanced the recurrence analytically
        and emitted the matching trace events."""
        tracker = self.tracker
        tracker.gap = gap
        tracker.last_time = now
        stats = self.stats
        stats.arrived_packets += arrived_packets
        stats.arrived_bytes += arrived_bytes
        stats.dropped_packets += dropped_packets
        stats.dropped_bytes += dropped_bytes
        if gap > stats.max_gap:
            stats.max_gap = gap

    # -- data path (Algorithms 1 + 2) ------------------------------------------------

    def process(self, packet: Packet, now: float) -> bool:
        """Run the packet through this AQ. Returns ``False`` if dropped.

        Mirrors Algorithm 2: update the A-Gap for the arrival; drop beyond
        the limit (removing the packet's contribution); otherwise generate
        the entity's CC feedback.
        """
        stats = self.stats
        stats.arrived_packets += 1
        stats.arrived_bytes += packet.size
        gap = self.tracker.on_arrival(now, packet.size)
        if gap > stats.max_gap:
            stats.max_gap = gap
        tele = self._tele
        trace = tele.trace if tele is not None and tele.enabled else None
        if trace is not None:
            if self._traced_rate != self.tracker.rate_bps:
                # Announce R lazily so the auditor's Theorem 3.2 replay
                # always knows the drain rate in force for the next interval.
                self._traced_rate = self.tracker.rate_bps
                trace.emit_fields(
                    EV_AQ_RATE, now, aq_id=self.aq_id, value=self._traced_rate
                )
            trace.emit_fields(
                EV_AGAP_UPDATE, now, aq_id=self.aq_id,
                flow_id=packet.flow_id, size=packet.size, value=gap,
            )
        if gap > self.limit_bytes:
            self.tracker.undo_arrival(packet.size)
            stats.dropped_packets += 1
            stats.dropped_bytes += packet.size
            if trace is not None:
                trace.emit_fields(
                    EV_RATE_LIMIT, now, aq_id=self.aq_id,
                    flow_id=packet.flow_id, size=packet.size, value=gap,
                    reason="rate_limit",
                )
            fr = self._flight
            if fr is not None and packet.flight is not None:
                fr.aq_hop(
                    packet, self.entity, now, self.aq_id, self.position,
                    agap=gap, limit=self.limit_bytes, ecn=False, dropped=True,
                )
            tw = self._timewin
            if tw is not None:
                tw.on_drop(packet.flow_id, self.aq_id, packet.size, now)
            return False
        tw = self._timewin
        if tw is not None:
            # Who is building this *virtual* queue: the accepted packet's
            # flow, with the post-arrival A-Gap as the depth sample.
            tw.on_enqueue(packet.flow_id, self.aq_id, packet.size, gap, now)
        if self.record_delays:
            stats.delay_samples.append(self.tracker.virtual_queuing_delay())
        kind = self.policy.kind
        if kind == ECN_BASED:
            threshold = self.policy.ecn_threshold_bytes
            if threshold is not None and gap > threshold and packet.ect:
                packet.mark_ce()
                stats.marked_packets += 1
                if trace is not None:
                    trace.emit_fields(
                        EV_ECN_MARK, now, aq_id=self.aq_id,
                        flow_id=packet.flow_id, size=packet.size, value=gap,
                    )
        elif kind == DELAY_BASED:
            packet.virtual_delay += self.tracker.virtual_queuing_delay()
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<AQ id={self.aq_id} rate={self.rate_bps:.3g}bps "
            f"gap={self.gap_bytes:.0f}B limit={self.limit_bytes:.0f}B "
            f"policy={self.policy.kind}>"
        )
