"""Analytic model of AQ's switch resource footprint (Figures 11 and 12).

The paper reports static resource accounting from compiling its P4
implementation for a Tofino: pipeline-stage, MAU, PHV, and table usage
percentages, and a 15-byte per-AQ memory record. Without the hardware,
these are *models*, not measurements — the structure below reproduces the
accounting: the per-AQ record layout follows Table 1 (4 B ID + 3 B rate +
the gap/limit/last-time registers and CC fields totalling 15 B), and the
data-plane usage constants are the paper's reported fractions, annotated
with the program structure that produces them (A-Gap update, two table
lookups, feedback actions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..errors import ConfigurationError

#: Per-AQ record layout in switch SRAM, bytes (Table 1 + Section 5.5:
#: "Each AQ requires 15 bytes in total").
AQ_ID_BYTES = 4        # unique AQ ID (supports millions of entities)
AQ_RATE_BYTES = 3      # allocated rate, 1MB~1TB range
AQ_LIMIT_BYTES = 2     # max A-Gap
AQ_GAP_BYTES = 3       # current A-Gap register
AQ_LAST_TIME_BYTES = 2 # last-arrival timestamp register
AQ_CC_FIELD_BYTES = 1  # CC type + marking configuration selector

AQ_RECORD_BYTES = (
    AQ_ID_BYTES
    + AQ_RATE_BYTES
    + AQ_LIMIT_BYTES
    + AQ_GAP_BYTES
    + AQ_LAST_TIME_BYTES
    + AQ_CC_FIELD_BYTES
)
assert AQ_RECORD_BYTES == 15, "per-AQ record must match the paper's 15 bytes"

#: Typical programmable-switch SRAM budget (tens of MB; Tofino ~ 20 MB).
TOFINO_SRAM_BYTES = 20 * 1024 * 1024


@dataclass(frozen=True)
class ResourceUsage:
    """One data-plane resource's utilization by the AQ program."""

    resource: str
    used_percent: float
    explanation: str


def tofino_usage() -> List[ResourceUsage]:
    """The AQ P4 program's Tofino footprint (Figure 11's bars).

    Percentages are the paper's reported values; the explanations record
    which part of Algorithms 1-2 consumes each resource.
    """
    return [
        ResourceUsage(
            "pipeline stages", 16.8,
            "A-Gap update chain: timestamp delta, rate multiply (shift-add), "
            "clamp, add packet size, limit compare — sequential dependencies "
            "across stages, at both ingress and egress",
        ),
        ResourceUsage(
            "MAUs", 12.5,
            "two exact-match lookups (ingress/egress AQ ID) plus the "
            "feedback-action tables (drop / ECN mark / delay piggyback)",
        ),
        ResourceUsage(
            "PHV size", 7.5,
            "carried metadata: two 4B AQ IDs, the virtual-delay accumulator, "
            "and intermediate A-Gap arithmetic values",
        ),
        ResourceUsage(
            "SRAM", 9.4,
            "AQ register arrays (15 B/AQ) sized for the evaluated table",
        ),
        ResourceUsage(
            "VLIW instructions", 10.2,
            "clamped-subtract and saturating-add actions of Algorithm 1",
        ),
    ]


def memory_for_aqs(num_aqs: int) -> int:
    """Bytes of switch memory to hold ``num_aqs`` concurrent AQs (Fig 12)."""
    if num_aqs < 0:
        raise ConfigurationError(f"number of AQs must be >= 0, got {num_aqs}")
    return num_aqs * AQ_RECORD_BYTES


def max_aqs_in_sram(sram_bytes: int = TOFINO_SRAM_BYTES) -> int:
    """How many AQs fit in a given SRAM budget.

    With the default 20 MB this exceeds a million — the paper's scalability
    claim ("support millions of concurrent AQs").
    """
    if sram_bytes <= 0:
        raise ConfigurationError(f"SRAM budget must be positive, got {sram_bytes}")
    return sram_bytes // AQ_RECORD_BYTES


def memory_series(counts: List[int]) -> Dict[int, float]:
    """Memory in megabytes for each entity count (Figure 12's series)."""
    return {count: memory_for_aqs(count) / (1024 * 1024) for count in counts}
