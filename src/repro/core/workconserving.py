"""Work-conservation extension (paper Section 6, first mechanism).

Strict AQ guarantees are intentionally non-work-conserving: an entity whose
allocation is 5 Gbps stays at 5 Gbps even when the fabric is idle. The
paper sketches a bypass: *"invoke AQ only when the physical queue starts to
build up; when the physical queue is empty, the switch can bypass AQ"*.

:class:`WorkConservingGate` wraps an :class:`~repro.core.pipeline.AqPipeline`
ingress position with that bypass: while the guarded physical queue's
backlog is at or below ``bypass_threshold_bytes``, packets skip AQ
processing entirely (no drops, no marks, no A-Gap accounting — the gap
keeps draining, so enforcement re-engages gently when backlog appears).

The threshold defaults to half the watched queue's limit. "Empty" cannot
be taken literally: a loss-based CC keeps some backlog by design even when
the entity is alone on the fabric, so a zero threshold would degenerate to
strict enforcement. Half the buffer separates "self-inflicted transient
backlog" from "sustained contention".
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConfigurationError
from ..net.packet import NO_AQ, Packet
from ..net.switch import Switch
from ..obs.events import EV_GATE
from .pipeline import AqPipeline


class WorkConservingGate:
    """Bypasses ingress AQ enforcement while the watched queue is shallow."""

    def __init__(
        self,
        switch: Switch,
        pipeline: AqPipeline,
        watched_port: str,
        bypass_threshold_bytes: Optional[int] = None,
    ) -> None:
        port = switch.ports.get(watched_port)
        if port is None:
            raise ConfigurationError(
                f"switch {switch.name} has no port {watched_port!r}"
            )
        self.pipeline = pipeline
        self.queue = port.queue
        if bypass_threshold_bytes is None:
            bypass_threshold_bytes = self.queue.limit_bytes // 2
        if bypass_threshold_bytes < 0:
            raise ConfigurationError(
                f"bypass threshold must be >= 0, got {bypass_threshold_bytes}"
            )
        self.bypass_threshold_bytes = bypass_threshold_bytes
        self.bypassed_packets = 0
        self.enforced_packets = 0
        self._gate_name = f"{switch.name}.{watched_port}.wc-gate"
        self._last_decision: Optional[str] = None
        tele = switch.sim.telemetry
        self._tele = tele if tele is not None and tele.enabled else None
        if tele is not None and tele.enabled:
            tele.metrics.add_collector(self._collect_metrics)
        # Replace the pipeline's ingress hook with the gated version.
        hooks = switch.ingress_hooks
        for index, hook in enumerate(hooks):
            if hook == pipeline._ingress_hook:
                hooks[index] = self._gated_ingress
                break
        else:
            raise ConfigurationError(
                "pipeline ingress hook not installed on this switch"
            )

    def _collect_metrics(self, registry) -> None:
        registry.counter("wc_bypassed_packets", gate=self._gate_name).set(
            self.bypassed_packets
        )
        registry.counter("wc_enforced_packets", gate=self._gate_name).set(
            self.enforced_packets
        )

    def _gated_ingress(self, packet: Packet, now: float) -> bool:
        if packet.aq_ingress_id == NO_AQ:
            return True
        backlog = self.queue.bytes_queued
        if backlog <= self.bypass_threshold_bytes:
            # Fabric is (effectively) idle: bypass AQ entirely, exactly as
            # Section 6 describes. The A-Gap keeps draining in the
            # background, so enforcement resumes from a clean slate.
            self.bypassed_packets += 1
            if self._tele is not None and self._last_decision != "bypass":
                self._emit_decision("bypass", now, backlog)
            return True
        self.enforced_packets += 1
        if self._tele is not None and self._last_decision != "enforce":
            self._emit_decision("enforce", now, backlog)
        return self.pipeline._ingress_hook(packet, now)

    def _emit_decision(self, decision: str, now: float, backlog: int) -> None:
        # Transition-only gate events: the auditor cross-checks the
        # work-conservation contract (enforce only above the threshold).
        if not self._tele.enabled:
            return
        self._last_decision = decision
        self._tele.trace.emit_fields(
            EV_GATE, now, node=self._gate_name,
            size=self.bypass_threshold_bytes, value=float(backlog),
            reason=decision,
        )
