"""Switch data-plane integration (paper Section 4.2).

An :class:`AqPipeline` holds the AQ tables of one switch. Its ingress hook
runs when a packet arrives at the switch and matches ``aq_ingress_id``;
its egress hook runs at output-port dequeue time and matches
``aq_egress_id``. The default header value (0) means "no AQ at this
position" and the packet passes untouched — exactly the lookup procedure
the paper describes.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from ..errors import ConfigurationError
from ..net.packet import NO_AQ, Packet
from ..net.switch import Switch
from .aq import AugmentedQueue

INGRESS = "ingress"
EGRESS = "egress"
POSITIONS = (INGRESS, EGRESS)


class AqPipeline:
    """The per-switch AQ match tables, installed onto the switch's hooks."""

    def __init__(self, switch: Switch) -> None:
        self.switch = switch
        self._ingress: Dict[int, AugmentedQueue] = {}
        self._egress: Dict[int, AugmentedQueue] = {}
        switch.add_ingress_hook(self._ingress_hook)
        for port in switch.ports.values():
            port.add_egress_hook(self._egress_hook)

    # -- table management -----------------------------------------------------------

    def deploy(self, aq: AugmentedQueue, position: str) -> None:
        table = self._table(position)
        if aq.aq_id in table:
            raise ConfigurationError(
                f"AQ {aq.aq_id} already deployed at {position} of {self.switch.name}"
            )
        table[aq.aq_id] = aq
        aq.position = position  # stamped for flight-record drop attribution

    def withdraw(self, aq_id: int, position: str) -> None:
        self._table(position).pop(aq_id, None)

    def clear(self) -> "list[tuple[AugmentedQueue, str]]":
        """Wipe both match tables (a switch restart losing the per-AQ
        registers), returning the lost ``(aq, position)`` deployments so
        the controller can redeploy them from its granted-state snapshot."""
        lost = [(aq, INGRESS) for aq in self._ingress.values()]
        lost += [(aq, EGRESS) for aq in self._egress.values()]
        self._ingress.clear()
        self._egress.clear()
        return lost

    def lookup(self, aq_id: int, position: str) -> Optional[AugmentedQueue]:
        return self._table(position).get(aq_id)

    def deployed(self) -> Iterator[AugmentedQueue]:
        yield from self._ingress.values()
        yield from self._egress.values()

    def _table(self, position: str) -> Dict[int, AugmentedQueue]:
        if position == INGRESS:
            return self._ingress
        if position == EGRESS:
            return self._egress
        raise ConfigurationError(
            f"position must be one of {POSITIONS}, got {position!r}"
        )

    # -- data path --------------------------------------------------------------------

    def _ingress_hook(self, packet: Packet, now: float) -> bool:
        aq_id = packet.aq_ingress_id
        if aq_id == NO_AQ:
            return True
        aq = self._ingress.get(aq_id)
        if aq is None:
            return True  # no AQ deployed here for this ID; pass through
        return aq.process(packet, now)

    def _egress_hook(self, packet: Packet, now: float) -> bool:
        aq_id = packet.aq_egress_id
        if aq_id == NO_AQ:
            return True
        aq = self._egress.get(aq_id)
        if aq is None:
            return True
        return aq.process(packet, now)
