"""The AQ Controller — the control plane of Section 4.1.

Tenants submit :class:`AqRequest`\\ s carrying the three kinds of
information the paper enumerates:

* **rate-related** — an absolute bandwidth demand *or* a network weight
  (``absolute`` vs ``weighted`` mode), plus the *share group* naming the
  bottleneck resource the AQ competes for;
* **CC-related** — the :class:`~repro.core.feedback.FeedbackPolicy`;
* **position-related** — which switch and which pipeline position
  (ingress or egress).

The controller grants or declines (absolute mode is admission-controlled
against the share group's capacity), allocates the unique AQ ID the tenant
must tag into packet headers, deploys the AQ into the target switch's
:class:`~repro.core.pipeline.AqPipeline`, and — in weighted mode — keeps
per-AQ rates up to date as membership and activity change
(:class:`WeightedAllocator`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import AdmissionError, ConfigurationError, PartitionError, ReproError
from ..obs.events import EV_FAULT
from ..sim.engine import PeriodicTask
from .aq import AugmentedQueue
from .feedback import FeedbackPolicy, drop_policy  # noqa: F401 (from_dict)
from .pipeline import AqPipeline, POSITIONS

#: Default maximum A-Gap, mirroring a commodity 200-packet port buffer.
DEFAULT_LIMIT_BYTES = 200 * 1500


@dataclass
class AqRequest:
    """A tenant's request for one AQ (Table 1, left column)."""

    entity: str
    switch: str
    position: str
    absolute_rate_bps: Optional[float] = None
    weight: Optional[float] = None
    share_group: str = "default"
    policy: FeedbackPolicy = field(default_factory=drop_policy)
    limit_bytes: float = DEFAULT_LIMIT_BYTES
    #: Record per-packet virtual queuing delays (measurement aid, Table 4).
    record_delays: bool = False

    def __post_init__(self) -> None:
        if self.position not in POSITIONS:
            raise ConfigurationError(
                f"position must be one of {POSITIONS}, got {self.position!r}"
            )
        has_abs = self.absolute_rate_bps is not None
        has_weight = self.weight is not None
        if has_abs == has_weight:
            raise ConfigurationError(
                "exactly one of absolute_rate_bps / weight must be given"
            )
        if has_abs and self.absolute_rate_bps <= 0:
            raise ConfigurationError("absolute rate must be positive")
        if has_weight and self.weight <= 0:
            raise ConfigurationError("weight must be positive")

    @property
    def is_weighted(self) -> bool:
        return self.weight is not None

    def to_dict(self) -> dict:
        """JSON-serializable form of the request (tenant -> controller)."""
        payload = {
            "entity": self.entity,
            "switch": self.switch,
            "position": self.position,
            "share_group": self.share_group,
            "policy": self.policy.to_dict(),
            "limit_bytes": self.limit_bytes,
        }
        if self.absolute_rate_bps is not None:
            payload["absolute_rate_bps"] = self.absolute_rate_bps
        if self.weight is not None:
            payload["weight"] = self.weight
        if self.record_delays:
            payload["record_delays"] = True
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "AqRequest":
        """Inverse of :meth:`to_dict`; validates like the constructor."""
        return cls(
            entity=payload["entity"],
            switch=payload["switch"],
            position=payload["position"],
            absolute_rate_bps=payload.get("absolute_rate_bps"),
            weight=payload.get("weight"),
            share_group=payload.get("share_group", "default"),
            policy=FeedbackPolicy.from_dict(payload.get("policy", {})),
            limit_bytes=payload.get("limit_bytes", DEFAULT_LIMIT_BYTES),
            record_delays=payload.get("record_delays", False),
        )


@dataclass
class AqGrant:
    """A granted request: the ID to tag into headers plus the live AQ."""

    aq_id: int
    request: AqRequest
    aq: AugmentedQueue


@dataclass
class DegradedWindow:
    """One interval during which a granted AQ had no data-plane presence.

    Opened when a switch restart wipes the AQ's register state, closed
    when the controller's redeploy lands. While a window is open the
    grant's guarantee is explicitly *degraded*: the entity's traffic
    passes unpoliced (or not at all, if the restart also blackholed it),
    and the run report must not treat the granted rate as enforced.
    """

    aq_id: int
    entity: str
    switch: str
    position: str
    start: float
    end: Optional[float] = None

    @property
    def open(self) -> bool:
        return self.end is None

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> dict:
        return {
            "aq_id": self.aq_id,
            "entity": self.entity,
            "switch": self.switch,
            "position": self.position,
            "start": self.start,
            "end": self.end,
        }


@dataclass
class _LostDeployment:
    """Everything needed to rebuild one wiped AQ deployment."""

    aq_id: int
    position: str
    rate_bps: float
    limit_bytes: float
    policy: FeedbackPolicy
    entity: str
    record_delays: bool
    window: DegradedWindow


class _ShareGroup:
    """Book-keeping for one contended resource (usually one link)."""

    def __init__(self, name: str, capacity_bps: float) -> None:
        if capacity_bps <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity_bps}")
        self.name = name
        self.capacity_bps = capacity_bps
        self.absolute_committed_bps = 0.0
        self.weighted_grants: List[AqGrant] = []
        self.allocator: Optional["WeightedAllocator"] = None

    @property
    def weighted_capacity_bps(self) -> float:
        """Capacity left for weighted AQs after absolute commitments."""
        return self.capacity_bps - self.absolute_committed_bps


class AqController:
    """Cloud-operator control plane managing AQ grants and deployments.

    Typical use::

        controller = AqController(network)
        controller.register_resource("bottleneck", gbps(10))
        grant = controller.request(AqRequest(
            entity="tenantA", switch="s0", position="ingress",
            weight=1.0, share_group="bottleneck",
            policy=drop_policy(), limit_bytes=150_000,
        ))
        # tag packets with grant.aq_id; read grant.aq.stats afterwards
    """

    #: Delay before the first post-restart redeploy attempt (a control-plane
    #: round trip), the multiplier applied between attempts, and the attempt
    #: cap — bounded retry with exponential backoff.
    REDEPLOY_DELAY_S = 1e-3
    REDEPLOY_BACKOFF = 2.0
    REDEPLOY_MAX_ATTEMPTS = 6

    def __init__(self, network) -> None:
        self.network = network
        self._pipelines: Dict[str, AqPipeline] = {}
        self._groups: Dict[str, _ShareGroup] = {}
        self._grants: Dict[int, AqGrant] = {}
        self._next_aq_id = 0
        #: True while a controller_partition fault is active: every push
        #: to the data plane (deploy/redeploy) fails until the heal.
        self.partitioned = False
        #: Closed and still-open degraded-guarantee intervals, in order.
        self.degraded_windows: List[DegradedWindow] = []
        #: Deployments lost to a restart and not yet redeployed, by switch.
        self._pending_redeploy: Dict[str, List[_LostDeployment]] = {}
        # Observe injected faults (switch restarts, partitions). The
        # listener list is only walked by a fault injector, so fault-free
        # runs never execute this path.
        network.sim.add_fault_listener(self._on_fault)

    # -- resources ---------------------------------------------------------------

    def register_resource(self, share_group: str, capacity_bps: float) -> None:
        """Declare the capacity of a contended resource (bottleneck link)."""
        if share_group in self._groups:
            raise ConfigurationError(f"share group {share_group!r} already registered")
        self._groups[share_group] = _ShareGroup(share_group, capacity_bps)

    def pipeline(self, switch_name: str) -> AqPipeline:
        """The (lazily created) AQ pipeline of a switch."""
        pipeline = self._pipelines.get(switch_name)
        if pipeline is None:
            switch = self.network.switches.get(switch_name)
            if switch is None:
                raise ConfigurationError(f"unknown switch {switch_name!r}")
            pipeline = AqPipeline(switch)
            self._pipelines[switch_name] = pipeline
        return pipeline

    # -- grants -----------------------------------------------------------------------

    def request(self, req: AqRequest) -> AqGrant:
        """Grant or decline one AQ request (Section 4.1 "AQ grants")."""
        if self.partitioned:
            raise PartitionError("controller is partitioned from the network")
        group = self._groups.get(req.share_group)
        if group is None:
            raise ConfigurationError(
                f"share group {req.share_group!r} is not registered"
            )
        if req.is_weighted:
            rate = self._weighted_admission(group, req)
        else:
            rate = self._absolute_admission(group, req)

        self._next_aq_id += 1
        aq = AugmentedQueue(
            aq_id=self._next_aq_id,
            rate_bps=rate,
            limit_bytes=req.limit_bytes,
            policy=req.policy,
            start_time=self.network.sim.now,
            record_delays=req.record_delays,
            entity=req.entity,
            telemetry=self.network.sim.telemetry,
        )
        grant = AqGrant(aq_id=aq.aq_id, request=req, aq=aq)
        self.pipeline(req.switch).deploy(aq, req.position)
        self._grants[aq.aq_id] = grant
        if req.is_weighted:
            group.weighted_grants.append(grant)
            self._rebalance_weights(group)
        elif group.weighted_grants:
            # An absolute carve-out shrinks the weighted pool; the
            # existing weighted grants must give the bandwidth back.
            self._rebalance_weights(group)
        return grant

    def request_path(self, req: AqRequest, switches: List[str]) -> List[AqGrant]:
        """Deploy one entity's AQ at several switches under a *single* AQ ID.

        The tenant tags one ID into the header (Section 4.1 gives it only
        two header fields), but its traffic may need rate control at every
        hop — e.g. an ingress AQ at each switch of a leaf-spine path, each
        with its own A-Gap state. The first switch's grant allocates the
        ID; the remaining switches get their own AQ instances deployed
        under that same ID. Admission runs once per share group.
        """
        if not switches:
            raise ConfigurationError("request_path needs at least one switch")
        first = AqRequest(**{**req.__dict__, "switch": switches[0]})
        primary = self.request(first)
        grants = [primary]
        for switch_name in switches[1:]:
            aq = AugmentedQueue(
                aq_id=primary.aq_id,
                rate_bps=primary.aq.rate_bps,
                limit_bytes=req.limit_bytes,
                policy=req.policy,
                start_time=self.network.sim.now,
                record_delays=req.record_delays,
                entity=req.entity,
                telemetry=self.network.sim.telemetry,
            )
            self.pipeline(switch_name).deploy(aq, req.position)
            secondary = AqGrant(
                aq_id=primary.aq_id,
                request=AqRequest(**{**req.__dict__, "switch": switch_name}),
                aq=aq,
            )
            grants.append(secondary)
        return grants

    def withdraw_path(self, grants: List[AqGrant]) -> None:
        """Undo :meth:`request_path`: remove the secondary deployments,
        then release the primary grant.

        Robust against partial failure: every secondary is attempted even
        if one raises, and the primary's capacity is always released, so
        a withdraw that trips halfway cannot strand committed bandwidth
        or stale weight in the share group. The first error (if any) is
        re-raised after the books are settled. Idempotent: re-running the
        same sequence is a no-op.
        """
        if not grants:
            return
        first_error: Optional[ReproError] = None
        for grant in grants[1:]:
            try:
                self.pipeline(grant.request.switch).withdraw(
                    grant.aq_id, grant.request.position
                )
            except ReproError as exc:
                if first_error is None:
                    first_error = exc
        self.withdraw(grants[0])
        if first_error is not None:
            raise first_error

    def withdraw(self, grant: AqGrant) -> None:
        """Remove a granted AQ from the data plane and release its rate.

        Idempotent, and safe to call with a *secondary* path grant (one
        returned by :meth:`request_path` beyond the first): secondaries
        share the primary's AQ ID but hold no capacity of their own, so
        only their switch deployment is removed — the primary's admission
        stays booked until the primary itself is withdrawn.
        """
        if self.partitioned:
            raise PartitionError("controller is partitioned from the network")
        stored = self._grants.get(grant.aq_id)
        if stored is not None and stored is not grant:
            # A secondary deployment riding on the primary's ID.
            self.pipeline(grant.request.switch).withdraw(
                grant.aq_id, grant.request.position
            )
            return
        stored = self._grants.pop(grant.aq_id, None)
        if stored is None:
            # Already released (repeated withdraw) — or a secondary whose
            # primary is gone. Clearing this grant's own deployment keeps
            # both cases idempotent without touching the books twice.
            self.pipeline(grant.request.switch).withdraw(
                grant.aq_id, grant.request.position
            )
            return
        req = stored.request
        self.pipeline(req.switch).withdraw(stored.aq_id, req.position)
        group = self._groups[req.share_group]
        if req.is_weighted:
            remaining = [g for g in group.weighted_grants if g is not stored]
            if len(remaining) != len(group.weighted_grants):
                group.weighted_grants = remaining
                self._rebalance_weights(group)
        else:
            group.absolute_committed_bps -= req.absolute_rate_bps
            if group.weighted_grants:
                # The weighted pool just grew by the released carve-out;
                # without a rebalance the weighted AQs would keep their
                # stale (smaller) rates indefinitely.
                self._rebalance_weights(group)

    def grant_for(self, aq_id: int) -> Optional[AqGrant]:
        return self._grants.get(aq_id)

    # -- fault recovery -------------------------------------------------------------

    def snapshot(self) -> List[dict]:
        """JSON-able view of all granted state — what the controller would
        persist so grants survive its own crash. Redeploy-on-restart works
        from the live equivalent of exactly this state."""
        return [
            {
                "aq_id": grant.aq_id,
                "rate_bps": grant.aq.rate_bps,
                "request": grant.request.to_dict(),
            }
            for grant in self._grants.values()
        ]

    def partition(self) -> None:
        """Sever the controller from the data plane (fault injection)."""
        self.partitioned = True

    def heal(self) -> None:
        """Restore control-plane connectivity and immediately retry any
        redeploys that failed while partitioned."""
        self.partitioned = False
        for switch_name in list(self._pending_redeploy):
            self._attempt_redeploy(switch_name, attempt=1)

    def open_degraded_windows(self) -> List[DegradedWindow]:
        return [w for w in self.degraded_windows if w.open]

    def _on_fault(self, fault_event) -> None:
        """Fault-listener entry point (registered on the simulator)."""
        kind = getattr(fault_event, "kind", None)
        if kind == "switch_restart":
            self._handle_switch_restart(fault_event.target)
        elif kind == "controller_partition":
            self.partition()
        elif kind == "controller_heal":
            self.heal()

    def _handle_switch_restart(self, switch_name: str) -> None:
        """A switch lost its per-AQ registers: open degraded windows for
        every wiped deployment and schedule bounded-retry redeploy."""
        pipeline = self._pipelines.get(switch_name)
        if pipeline is None:
            return  # we never deployed anything there
        lost = pipeline.clear()
        if not lost:
            return
        sim = self.network.sim
        now = sim.now
        tele = sim.telemetry
        pending = self._pending_redeploy.setdefault(switch_name, [])
        for aq, position in lost:
            window = DegradedWindow(
                aq_id=aq.aq_id, entity=aq.entity, switch=switch_name,
                position=position, start=now,
            )
            self.degraded_windows.append(window)
            pending.append(_LostDeployment(
                aq_id=aq.aq_id, position=position, rate_bps=aq.rate_bps,
                limit_bytes=aq.limit_bytes, policy=aq.policy,
                entity=aq.entity, record_delays=aq.record_delays,
                window=window,
            ))
            if tele is not None and tele.enabled:
                tele.trace.emit_fields(
                    EV_FAULT, now, node=switch_name, aq_id=aq.aq_id,
                    reason="aq_state_lost",
                )
        sim.schedule(self.REDEPLOY_DELAY_S, self._attempt_redeploy, switch_name, 1)

    def _attempt_redeploy(self, switch_name: str, attempt: int) -> None:
        """One redeploy attempt; reschedules itself with exponential
        backoff while the controller is partitioned, up to the cap."""
        pending = self._pending_redeploy.get(switch_name)
        if not pending:
            return
        sim = self.network.sim
        tele = sim.telemetry
        if self.partitioned:
            if attempt >= self.REDEPLOY_MAX_ATTEMPTS:
                # Give up: the degraded windows stay open, which is the
                # honest account — the guarantee is not being enforced.
                if tele is not None and tele.enabled:
                    tele.trace.emit_fields(
                        EV_FAULT, sim.now, node=switch_name,
                        reason="redeploy_abandoned",
                    )
                return
            delay = self.REDEPLOY_DELAY_S * self.REDEPLOY_BACKOFF ** attempt
            sim.schedule(delay, self._attempt_redeploy, switch_name, attempt + 1)
            if tele is not None and tele.enabled:
                tele.trace.emit_fields(
                    EV_FAULT, sim.now, node=switch_name, value=float(attempt),
                    reason="redeploy_retry",
                )
            return
        now = sim.now
        pipeline = self.pipeline(switch_name)
        touched_groups = set()
        for item in self._pending_redeploy.pop(switch_name):
            aq = AugmentedQueue(
                aq_id=item.aq_id,
                rate_bps=item.rate_bps,
                limit_bytes=item.limit_bytes,
                policy=item.policy,
                start_time=now,
                record_delays=item.record_delays,
                entity=item.entity,
                telemetry=sim.telemetry,
            )
            pipeline.deploy(aq, item.position)
            item.window.end = now
            grant = self._grants.get(item.aq_id)
            if grant is not None and grant.request.switch == switch_name:
                # Swap the primary grant onto the fresh AQ so future rate
                # updates (weighted rebalance) reach the live deployment.
                grant.aq = aq
                if grant.request.is_weighted:
                    touched_groups.add(grant.request.share_group)
            if tele is not None and tele.enabled:
                tele.trace.emit_fields(
                    EV_FAULT, now, node=switch_name, aq_id=item.aq_id,
                    value=float(attempt), reason="redeploy",
                )
        for group_name in touched_groups:
            group = self._groups[group_name]
            if group.allocator is not None:
                group.allocator.note_redeploy()
            self._rebalance_weights(group)

    # -- admission helpers ----------------------------------------------------------

    def _absolute_admission(self, group: _ShareGroup, req: AqRequest) -> float:
        rate = req.absolute_rate_bps
        assert rate is not None
        if group.absolute_committed_bps + rate > group.capacity_bps + 1e-6:
            raise AdmissionError(
                f"declined: share group {group.name!r} has "
                f"{group.capacity_bps - group.absolute_committed_bps:.3g}bps free, "
                f"requested {rate:.3g}bps"
            )
        group.absolute_committed_bps += rate
        return rate

    def _weighted_admission(self, group: _ShareGroup, req: AqRequest) -> float:
        total_weight = sum(g.request.weight for g in group.weighted_grants)
        total_weight += req.weight  # include the newcomer
        return group.weighted_capacity_bps * req.weight / total_weight

    def _rebalance_weights(self, group: _ShareGroup) -> None:
        """Static weighted split: every weighted AQ gets its proportional
        share (the allocator refines this with activity when enabled)."""
        if group.allocator is not None:
            group.allocator.rebalance_now()
            return
        total = sum(g.request.weight for g in group.weighted_grants)
        if total <= 0:
            return
        now = self.network.sim.now
        for grant in group.weighted_grants:
            rate = group.weighted_capacity_bps * grant.request.weight / total
            grant.aq.set_rate(now, rate)

    # -- weighted-mode dynamic reallocation -----------------------------------------

    def enable_weighted_reallocation(
        self,
        share_group: str,
        interval: float = 10e-3,
        activity_fraction: float = 0.1,
        inactive_floor: float = 0.05,
    ) -> "WeightedAllocator":
        """Start periodic activity-aware reallocation for a share group.

        This implements the "determines (or updates) the specific bandwidth
        for each AQ based on their weights" behaviour of Section 4.1: AQs
        whose measured arrival rate is below ``activity_fraction`` of their
        fair share are considered idle and parked at a small ramp-up floor;
        their bandwidth is redistributed to active AQs by weight.
        """
        group = self._groups.get(share_group)
        if group is None:
            raise ConfigurationError(f"share group {share_group!r} is not registered")
        if group.allocator is not None:
            raise ConfigurationError(
                f"share group {share_group!r} already has an allocator"
            )
        allocator = WeightedAllocator(
            self.network.sim, group, interval, activity_fraction, inactive_floor
        )
        group.allocator = allocator
        return allocator


class WeightedAllocator:
    """Periodic activity-aware weighted reallocation (Fig 9's mechanism)."""

    def __init__(
        self,
        sim,
        group: _ShareGroup,
        interval: float,
        activity_fraction: float,
        inactive_floor: float,
    ) -> None:
        self.sim = sim
        self.group = group
        self.interval = interval
        self.activity_fraction = activity_fraction
        self.inactive_floor = inactive_floor
        self._last_arrived: Dict[int, int] = {}
        self._task = PeriodicTask(sim, interval, self._tick)

    def stop(self) -> None:
        self._task.stop()

    def note_redeploy(self) -> None:
        """Forget per-AQ arrival baselines: a redeployed AQ starts from
        zero arrived bytes, so stale baselines would read as negative
        rates and misclassify active senders as idle."""
        self._last_arrived.clear()

    def rebalance_now(self) -> None:
        """Re-run allocation immediately (called on membership changes)."""
        self._tick(first_classification=True)

    def _measured_rates(self) -> Dict[int, float]:
        rates: Dict[int, float] = {}
        for grant in self.group.weighted_grants:
            arrived = grant.aq.stats.arrived_bytes
            last = self._last_arrived.get(grant.aq_id, 0)
            # Clamped: a restart-redeployed AQ restarts its byte counter,
            # and a negative "rate" must not park an active sender.
            rates[grant.aq_id] = max(0.0, (arrived - last) * 8.0 / self.interval)
            self._last_arrived[grant.aq_id] = arrived
        return rates

    def _tick(self, first_classification: bool = False) -> None:
        grants = self.group.weighted_grants
        if not grants:
            return
        capacity = self.group.weighted_capacity_bps
        total_weight = sum(g.request.weight for g in grants)
        rates = self._measured_rates()
        now = self.sim.now

        active: List[AqGrant] = []
        idle: List[AqGrant] = []
        for grant in grants:
            fair_share = capacity * grant.request.weight / total_weight
            # Newly granted AQs start as active so they can ramp immediately.
            is_new = first_classification and grant.aq.stats.arrived_bytes == 0
            if is_new or rates[grant.aq_id] >= self.activity_fraction * fair_share:
                active.append(grant)
            else:
                idle.append(grant)
        if not active:
            # Nobody is sending; park everyone at the static split.
            for grant in grants:
                grant.aq.set_rate(
                    now, capacity * grant.request.weight / total_weight
                )
            return

        floor_total = 0.0
        for grant in idle:
            fair_share = capacity * grant.request.weight / total_weight
            floor = fair_share * self.inactive_floor
            grant.aq.set_rate(now, floor)
            floor_total += floor

        remaining = max(capacity - floor_total, 0.0)
        active_weight = sum(g.request.weight for g in active)
        for grant in active:
            grant.aq.set_rate(now, remaining * grant.request.weight / active_weight)
