"""The AQ Controller — the control plane of Section 4.1.

Tenants submit :class:`AqRequest`\\ s carrying the three kinds of
information the paper enumerates:

* **rate-related** — an absolute bandwidth demand *or* a network weight
  (``absolute`` vs ``weighted`` mode), plus the *share group* naming the
  bottleneck resource the AQ competes for;
* **CC-related** — the :class:`~repro.core.feedback.FeedbackPolicy`;
* **position-related** — which switch and which pipeline position
  (ingress or egress).

The controller grants or declines (absolute mode is admission-controlled
against the share group's capacity), allocates the unique AQ ID the tenant
must tag into packet headers, deploys the AQ into the target switch's
:class:`~repro.core.pipeline.AqPipeline`, and — in weighted mode — keeps
per-AQ rates up to date as membership and activity change
(:class:`WeightedAllocator`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import AdmissionError, ConfigurationError
from ..sim.engine import PeriodicTask
from .aq import AugmentedQueue
from .feedback import FeedbackPolicy, drop_policy  # noqa: F401 (from_dict)
from .pipeline import AqPipeline, POSITIONS

#: Default maximum A-Gap, mirroring a commodity 200-packet port buffer.
DEFAULT_LIMIT_BYTES = 200 * 1500


@dataclass
class AqRequest:
    """A tenant's request for one AQ (Table 1, left column)."""

    entity: str
    switch: str
    position: str
    absolute_rate_bps: Optional[float] = None
    weight: Optional[float] = None
    share_group: str = "default"
    policy: FeedbackPolicy = field(default_factory=drop_policy)
    limit_bytes: float = DEFAULT_LIMIT_BYTES
    #: Record per-packet virtual queuing delays (measurement aid, Table 4).
    record_delays: bool = False

    def __post_init__(self) -> None:
        if self.position not in POSITIONS:
            raise ConfigurationError(
                f"position must be one of {POSITIONS}, got {self.position!r}"
            )
        has_abs = self.absolute_rate_bps is not None
        has_weight = self.weight is not None
        if has_abs == has_weight:
            raise ConfigurationError(
                "exactly one of absolute_rate_bps / weight must be given"
            )
        if has_abs and self.absolute_rate_bps <= 0:
            raise ConfigurationError("absolute rate must be positive")
        if has_weight and self.weight <= 0:
            raise ConfigurationError("weight must be positive")

    @property
    def is_weighted(self) -> bool:
        return self.weight is not None

    def to_dict(self) -> dict:
        """JSON-serializable form of the request (tenant -> controller)."""
        payload = {
            "entity": self.entity,
            "switch": self.switch,
            "position": self.position,
            "share_group": self.share_group,
            "policy": self.policy.to_dict(),
            "limit_bytes": self.limit_bytes,
        }
        if self.absolute_rate_bps is not None:
            payload["absolute_rate_bps"] = self.absolute_rate_bps
        if self.weight is not None:
            payload["weight"] = self.weight
        if self.record_delays:
            payload["record_delays"] = True
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "AqRequest":
        """Inverse of :meth:`to_dict`; validates like the constructor."""
        return cls(
            entity=payload["entity"],
            switch=payload["switch"],
            position=payload["position"],
            absolute_rate_bps=payload.get("absolute_rate_bps"),
            weight=payload.get("weight"),
            share_group=payload.get("share_group", "default"),
            policy=FeedbackPolicy.from_dict(payload.get("policy", {})),
            limit_bytes=payload.get("limit_bytes", DEFAULT_LIMIT_BYTES),
            record_delays=payload.get("record_delays", False),
        )


@dataclass
class AqGrant:
    """A granted request: the ID to tag into headers plus the live AQ."""

    aq_id: int
    request: AqRequest
    aq: AugmentedQueue


class _ShareGroup:
    """Book-keeping for one contended resource (usually one link)."""

    def __init__(self, name: str, capacity_bps: float) -> None:
        if capacity_bps <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity_bps}")
        self.name = name
        self.capacity_bps = capacity_bps
        self.absolute_committed_bps = 0.0
        self.weighted_grants: List[AqGrant] = []
        self.allocator: Optional["WeightedAllocator"] = None

    @property
    def weighted_capacity_bps(self) -> float:
        """Capacity left for weighted AQs after absolute commitments."""
        return self.capacity_bps - self.absolute_committed_bps


class AqController:
    """Cloud-operator control plane managing AQ grants and deployments.

    Typical use::

        controller = AqController(network)
        controller.register_resource("bottleneck", gbps(10))
        grant = controller.request(AqRequest(
            entity="tenantA", switch="s0", position="ingress",
            weight=1.0, share_group="bottleneck",
            policy=drop_policy(), limit_bytes=150_000,
        ))
        # tag packets with grant.aq_id; read grant.aq.stats afterwards
    """

    def __init__(self, network) -> None:
        self.network = network
        self._pipelines: Dict[str, AqPipeline] = {}
        self._groups: Dict[str, _ShareGroup] = {}
        self._grants: Dict[int, AqGrant] = {}
        self._next_aq_id = 0

    # -- resources ---------------------------------------------------------------

    def register_resource(self, share_group: str, capacity_bps: float) -> None:
        """Declare the capacity of a contended resource (bottleneck link)."""
        if share_group in self._groups:
            raise ConfigurationError(f"share group {share_group!r} already registered")
        self._groups[share_group] = _ShareGroup(share_group, capacity_bps)

    def pipeline(self, switch_name: str) -> AqPipeline:
        """The (lazily created) AQ pipeline of a switch."""
        pipeline = self._pipelines.get(switch_name)
        if pipeline is None:
            switch = self.network.switches.get(switch_name)
            if switch is None:
                raise ConfigurationError(f"unknown switch {switch_name!r}")
            pipeline = AqPipeline(switch)
            self._pipelines[switch_name] = pipeline
        return pipeline

    # -- grants -----------------------------------------------------------------------

    def request(self, req: AqRequest) -> AqGrant:
        """Grant or decline one AQ request (Section 4.1 "AQ grants")."""
        group = self._groups.get(req.share_group)
        if group is None:
            raise ConfigurationError(
                f"share group {req.share_group!r} is not registered"
            )
        if req.is_weighted:
            rate = self._weighted_admission(group, req)
        else:
            rate = self._absolute_admission(group, req)

        self._next_aq_id += 1
        aq = AugmentedQueue(
            aq_id=self._next_aq_id,
            rate_bps=rate,
            limit_bytes=req.limit_bytes,
            policy=req.policy,
            start_time=self.network.sim.now,
            record_delays=req.record_delays,
            entity=req.entity,
            telemetry=self.network.sim.telemetry,
        )
        grant = AqGrant(aq_id=aq.aq_id, request=req, aq=aq)
        self.pipeline(req.switch).deploy(aq, req.position)
        self._grants[aq.aq_id] = grant
        if req.is_weighted:
            group.weighted_grants.append(grant)
            self._rebalance_weights(group)
        return grant

    def request_path(self, req: AqRequest, switches: List[str]) -> List[AqGrant]:
        """Deploy one entity's AQ at several switches under a *single* AQ ID.

        The tenant tags one ID into the header (Section 4.1 gives it only
        two header fields), but its traffic may need rate control at every
        hop — e.g. an ingress AQ at each switch of a leaf-spine path, each
        with its own A-Gap state. The first switch's grant allocates the
        ID; the remaining switches get their own AQ instances deployed
        under that same ID. Admission runs once per share group.
        """
        if not switches:
            raise ConfigurationError("request_path needs at least one switch")
        first = AqRequest(**{**req.__dict__, "switch": switches[0]})
        primary = self.request(first)
        grants = [primary]
        for switch_name in switches[1:]:
            aq = AugmentedQueue(
                aq_id=primary.aq_id,
                rate_bps=primary.aq.rate_bps,
                limit_bytes=req.limit_bytes,
                policy=req.policy,
                start_time=self.network.sim.now,
                record_delays=req.record_delays,
                entity=req.entity,
                telemetry=self.network.sim.telemetry,
            )
            self.pipeline(switch_name).deploy(aq, req.position)
            secondary = AqGrant(
                aq_id=primary.aq_id,
                request=AqRequest(**{**req.__dict__, "switch": switch_name}),
                aq=aq,
            )
            grants.append(secondary)
        return grants

    def withdraw_path(self, grants: List[AqGrant]) -> None:
        """Undo :meth:`request_path`: remove the secondary deployments,
        then release the primary grant."""
        for grant in grants[1:]:
            self.pipeline(grant.request.switch).withdraw(
                grant.aq_id, grant.request.position
            )
        if grants:
            self.withdraw(grants[0])

    def withdraw(self, grant: AqGrant) -> None:
        """Remove a granted AQ from the data plane and release its rate."""
        stored = self._grants.pop(grant.aq_id, None)
        if stored is None:
            return
        req = grant.request
        self.pipeline(req.switch).withdraw(grant.aq_id, req.position)
        group = self._groups[req.share_group]
        if req.is_weighted:
            group.weighted_grants = [
                g for g in group.weighted_grants if g.aq_id != grant.aq_id
            ]
            self._rebalance_weights(group)
        else:
            group.absolute_committed_bps -= req.absolute_rate_bps

    def grant_for(self, aq_id: int) -> Optional[AqGrant]:
        return self._grants.get(aq_id)

    # -- admission helpers ----------------------------------------------------------

    def _absolute_admission(self, group: _ShareGroup, req: AqRequest) -> float:
        rate = req.absolute_rate_bps
        assert rate is not None
        if group.absolute_committed_bps + rate > group.capacity_bps + 1e-6:
            raise AdmissionError(
                f"declined: share group {group.name!r} has "
                f"{group.capacity_bps - group.absolute_committed_bps:.3g}bps free, "
                f"requested {rate:.3g}bps"
            )
        group.absolute_committed_bps += rate
        return rate

    def _weighted_admission(self, group: _ShareGroup, req: AqRequest) -> float:
        total_weight = sum(g.request.weight for g in group.weighted_grants)
        total_weight += req.weight  # include the newcomer
        return group.weighted_capacity_bps * req.weight / total_weight

    def _rebalance_weights(self, group: _ShareGroup) -> None:
        """Static weighted split: every weighted AQ gets its proportional
        share (the allocator refines this with activity when enabled)."""
        if group.allocator is not None:
            group.allocator.rebalance_now()
            return
        total = sum(g.request.weight for g in group.weighted_grants)
        if total <= 0:
            return
        now = self.network.sim.now
        for grant in group.weighted_grants:
            rate = group.weighted_capacity_bps * grant.request.weight / total
            grant.aq.set_rate(now, rate)

    # -- weighted-mode dynamic reallocation -----------------------------------------

    def enable_weighted_reallocation(
        self,
        share_group: str,
        interval: float = 10e-3,
        activity_fraction: float = 0.1,
        inactive_floor: float = 0.05,
    ) -> "WeightedAllocator":
        """Start periodic activity-aware reallocation for a share group.

        This implements the "determines (or updates) the specific bandwidth
        for each AQ based on their weights" behaviour of Section 4.1: AQs
        whose measured arrival rate is below ``activity_fraction`` of their
        fair share are considered idle and parked at a small ramp-up floor;
        their bandwidth is redistributed to active AQs by weight.
        """
        group = self._groups.get(share_group)
        if group is None:
            raise ConfigurationError(f"share group {share_group!r} is not registered")
        if group.allocator is not None:
            raise ConfigurationError(
                f"share group {share_group!r} already has an allocator"
            )
        allocator = WeightedAllocator(
            self.network.sim, group, interval, activity_fraction, inactive_floor
        )
        group.allocator = allocator
        return allocator


class WeightedAllocator:
    """Periodic activity-aware weighted reallocation (Fig 9's mechanism)."""

    def __init__(
        self,
        sim,
        group: _ShareGroup,
        interval: float,
        activity_fraction: float,
        inactive_floor: float,
    ) -> None:
        self.sim = sim
        self.group = group
        self.interval = interval
        self.activity_fraction = activity_fraction
        self.inactive_floor = inactive_floor
        self._last_arrived: Dict[int, int] = {}
        self._task = PeriodicTask(sim, interval, self._tick)

    def stop(self) -> None:
        self._task.stop()

    def rebalance_now(self) -> None:
        """Re-run allocation immediately (called on membership changes)."""
        self._tick(first_classification=True)

    def _measured_rates(self) -> Dict[int, float]:
        rates: Dict[int, float] = {}
        for grant in self.group.weighted_grants:
            arrived = grant.aq.stats.arrived_bytes
            last = self._last_arrived.get(grant.aq_id, 0)
            rates[grant.aq_id] = (arrived - last) * 8.0 / self.interval
            self._last_arrived[grant.aq_id] = arrived
        return rates

    def _tick(self, first_classification: bool = False) -> None:
        grants = self.group.weighted_grants
        if not grants:
            return
        capacity = self.group.weighted_capacity_bps
        total_weight = sum(g.request.weight for g in grants)
        rates = self._measured_rates()
        now = self.sim.now

        active: List[AqGrant] = []
        idle: List[AqGrant] = []
        for grant in grants:
            fair_share = capacity * grant.request.weight / total_weight
            # Newly granted AQs start as active so they can ramp immediately.
            is_new = first_classification and grant.aq.stats.arrived_bytes == 0
            if is_new or rates[grant.aq_id] >= self.activity_fraction * fair_share:
                active.append(grant)
            else:
                idle.append(grant)
        if not active:
            # Nobody is sending; park everyone at the static split.
            for grant in grants:
                grant.aq.set_rate(
                    now, capacity * grant.request.weight / total_weight
                )
            return

        floor_total = 0.0
        for grant in idle:
            fair_share = capacity * grant.request.weight / total_weight
            floor = fair_share * self.inactive_floor
            grant.aq.set_rate(now, floor)
            floor_total += floor

        remaining = max(capacity - floor_total, 0.0)
        active_weight = sum(g.request.weight for g in active)
        for grant in active:
            grant.aq.set_rate(now, remaining * grant.request.weight / active_weight)
