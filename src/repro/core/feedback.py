"""Feedback policies — the CC-related half of an AQ configuration.

Algorithm 2 dispatches on the entity's CC family:

* **drop** — nothing beyond the limit-drop (drop-based CCs react to loss);
* **ecn** — CE-mark the packet when the A-Gap exceeds the entity's virtual
  ECN threshold (per-entity DCTCP marking);
* **delay** — add the AQ's virtual queuing delay ``A/R`` to the packet's
  accumulated delay header for delay-based CCs.

The policy travels inside the AQ request (the paper's "CC fields") and is
copied verbatim into the deployed AQ configuration (Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cc.base import DELAY_BASED, DROP_BASED, ECN_BASED
from ..errors import ConfigurationError

_VALID_KINDS = (DROP_BASED, ECN_BASED, DELAY_BASED)


@dataclass(frozen=True)
class FeedbackPolicy:
    """How an AQ turns its A-Gap into network feedback for one entity."""

    kind: str = DROP_BASED
    #: A-Gap level (bytes) above which ECN-capable packets are CE-marked.
    #: Required when ``kind == "ecn"``.
    ecn_threshold_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise ConfigurationError(
                f"unknown feedback kind {self.kind!r}; expected one of {_VALID_KINDS}"
            )
        if self.kind == ECN_BASED and self.ecn_threshold_bytes is None:
            raise ConfigurationError("ECN feedback requires ecn_threshold_bytes")
        if self.ecn_threshold_bytes is not None and self.ecn_threshold_bytes < 0:
            raise ConfigurationError(
                f"ECN threshold must be non-negative, got {self.ecn_threshold_bytes}"
            )

    def to_dict(self) -> dict:
        """Wire/JSON form (the "CC fields" of an AQ request, Section 4.1)."""
        payload = {"kind": self.kind}
        if self.ecn_threshold_bytes is not None:
            payload["ecn_threshold_bytes"] = self.ecn_threshold_bytes
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "FeedbackPolicy":
        """Inverse of :meth:`to_dict`; validates like the constructor."""
        return cls(
            kind=payload.get("kind", DROP_BASED),
            ecn_threshold_bytes=payload.get("ecn_threshold_bytes"),
        )


def drop_policy() -> FeedbackPolicy:
    """Feedback for drop-based CCs (CUBIC, NewReno, Illinois) and UDP."""
    return FeedbackPolicy(kind=DROP_BASED)


def ecn_policy(ecn_threshold_bytes: int) -> FeedbackPolicy:
    """Feedback for ECN-based CCs (DCTCP)."""
    return FeedbackPolicy(kind=ECN_BASED, ecn_threshold_bytes=ecn_threshold_bytes)


def delay_policy() -> FeedbackPolicy:
    """Feedback for delay-based CCs (Swift)."""
    return FeedbackPolicy(kind=DELAY_BASED)


def policy_for_cc(
    cc_name: str, ecn_threshold_bytes: Optional[int] = None
) -> FeedbackPolicy:
    """Build the matching policy for a registered CC name."""
    from ..cc.registry import cc_kind  # local import to avoid a cycle

    kind = cc_kind(cc_name)
    if kind == ECN_BASED:
        if ecn_threshold_bytes is None:
            raise ConfigurationError(
                f"CC {cc_name!r} is ECN-based and needs an ecn_threshold_bytes"
            )
        return ecn_policy(ecn_threshold_bytes)
    if kind == DELAY_BASED:
        return delay_policy()
    return drop_policy()
