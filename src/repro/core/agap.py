"""The A-Gap discrepancy measure (paper Section 3.2-3.3).

This module contains the paper's mathematical core:

* :class:`AGapTracker` — the streaming algorithm (Algorithm 1) computing
  the A-Gap of Theorem 3.2 per packet arrival:

  .. math::

      A(p_k.time) = \\max(0, A(p_{k-1}.time) - \\Delta(k) R) + p_k.size

* :class:`DGapTracker` — the strawman integrated-difference function
  ``D(t)`` of Expressions (4)-(5), kept for the Figure 3 comparison;
* :func:`simulate_discrepancy_control` — the fluid-model experiment behind
  Figure 3 showing that a CC driven by ``D(t)`` lets its rate peaks escalate
  (surplus abuse) while the A-Gap pins them.

Units: the allocated rate ``R`` is in bits/second (like everything else in
this package); gaps are in **bytes**, so the drain term is ``Δ · R / 8``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigurationError


class AGapTracker:
    """Streaming A-Gap (Algorithm 1).

    The tracker is deliberately tiny — two floats of state, exactly the
    ``AQ gap`` and ``AQ last_time`` fields a switch register would hold
    (Table 1).
    """

    __slots__ = ("rate_bps", "gap", "last_time")

    def __init__(self, rate_bps: float, start_time: float = 0.0) -> None:
        if rate_bps <= 0:
            raise ConfigurationError(f"allocated rate must be positive, got {rate_bps}")
        self.rate_bps = rate_bps
        self.gap = 0.0  # bytes
        self.last_time = start_time

    def on_arrival(self, time: float, size_bytes: float) -> float:
        """Update for a packet of ``size_bytes`` arriving at ``time``;
        returns the new A-Gap (Theorem 3.2)."""
        delta = time - self.last_time
        if delta < 0:
            raise ConfigurationError(
                f"packet arrival at {time} precedes last arrival {self.last_time}"
            )
        drained = self.gap - delta * (self.rate_bps / 8.0)
        self.gap = (drained if drained > 0.0 else 0.0) + size_bytes
        self.last_time = time
        return self.gap

    def peek(self, time: float) -> float:
        """The A-Gap at ``time`` if no packet arrives in between."""
        delta = time - self.last_time
        if delta < 0:
            raise ConfigurationError(f"cannot peek into the past ({time})")
        drained = self.gap - delta * (self.rate_bps / 8.0)
        return drained if drained > 0.0 else 0.0

    def undo_arrival(self, size_bytes: float) -> None:
        """Remove a just-added packet from the gap (Algorithm 2, line 3:
        dropped packets do not consume the entity's allocation)."""
        self.gap -= size_bytes
        if self.gap < 0.0:
            self.gap = 0.0

    def set_rate(self, time: float, rate_bps: float) -> None:
        """Change the allocated rate (weighted-mode updates), draining at
        the old rate up to ``time`` first so history stays consistent."""
        if rate_bps <= 0:
            raise ConfigurationError(f"allocated rate must be positive, got {rate_bps}")
        self.gap = self.peek(time)
        self.last_time = time
        self.rate_bps = rate_bps

    def virtual_queuing_delay(self) -> float:
        """Time to drain the current gap at the allocated rate —
        the paper's *virtual queuing delay* ``A(k)/R`` (Section 3.3.2)."""
        return self.gap / (self.rate_bps / 8.0)


class DGapTracker:
    """The strawman ``D(t)`` (Expressions 4-5): like the A-Gap but the
    clamp to zero applies only in *empty* periods, so surplus (negative
    ``D``) accumulates inside a backlogged period.

    The discrete form treats the interval between two packets of a
    backlogged period as part of that period (no clamp) and applies the
    clamp when an *empty period* is declared via :meth:`on_empty_until`.
    """

    __slots__ = ("rate_bps", "gap", "last_time")

    def __init__(self, rate_bps: float, start_time: float = 0.0) -> None:
        if rate_bps <= 0:
            raise ConfigurationError(f"allocated rate must be positive, got {rate_bps}")
        self.rate_bps = rate_bps
        self.gap = 0.0
        self.last_time = start_time

    def on_arrival(self, time: float, size_bytes: float) -> float:
        delta = time - self.last_time
        if delta < 0:
            raise ConfigurationError(
                f"packet arrival at {time} precedes last arrival {self.last_time}"
            )
        self.gap += size_bytes - delta * (self.rate_bps / 8.0)
        self.last_time = time
        return self.gap

    def on_empty_until(self, time: float) -> float:
        """Declare ``(last_time, time]`` an empty period: drain and clamp."""
        delta = time - self.last_time
        if delta < 0:
            raise ConfigurationError(f"cannot move time backwards to {time}")
        self.gap = max(0.0, self.gap - delta * (self.rate_bps / 8.0))
        self.last_time = time
        return self.gap


# --------------------------------------------------------------------------
# Figure 3: fluid-model comparison of D(t) vs A(t) driving an aggressive CC
# --------------------------------------------------------------------------


@dataclass
class FluidTrace:
    """Result of :func:`simulate_discrepancy_control`."""

    times: List[float] = field(default_factory=list)
    rates: List[float] = field(default_factory=list)
    measures: List[float] = field(default_factory=list)

    def rate_peaks(self) -> List[float]:
        """Local maxima of the rate trajectory (the r0, r1, r2 of Fig 3)."""
        peaks = []
        rates = self.rates
        for i in range(1, len(rates) - 1):
            if rates[i] >= rates[i - 1] and rates[i] > rates[i + 1]:
                peaks.append(rates[i])
        return peaks

    def cycle_peaks(self) -> List[float]:
        """The rate at the onset of each congestion episode — one value per
        contiguous ``measure > 0`` period. This is the clean reading of
        Figure 3's r0, r1, r2: the rate reached just as the discrepancy
        turns positive and the CC starts its back-off."""
        peaks: List[float] = []
        in_episode = False
        for rate, measure in zip(self.rates, self.measures):
            if measure > 0.0 and not in_episode:
                peaks.append(rate)
                in_episode = True
            elif measure <= 0.0:
                in_episode = False
        return peaks


def simulate_discrepancy_control(
    use_agap: bool,
    allocated_rate_bps: float = 5e9,
    duration: float = 0.25,
    dt: float = 2e-6,
    increase_slope: float = 200.0,
    decrease_factor: float = 8000.0,
    over_correction: float = 1.5,
) -> FluidTrace:
    """Fluid model of an entity whose CC *overly reduces* its rate, driven
    by either the strawman ``D(t)`` or the A-Gap (Figure 3).

    The CC climbs additively (``increase_slope`` allocated-rates per
    second) when not backing off. When the measure turns positive it backs
    off multiplicatively and — because it "aims for zero queuing delay" and
    over-corrects — keeps backing off until the measure has been driven
    ``over_correction`` times the positive excursion *below* zero.

    With ``D(t)`` that over-correction is banked as surplus: the deeper
    the dig, the longer the next climb stays above the allocated rate
    before the measure turns positive again, so each peak exceeds the last
    (``r0 < r1 < r2``, Figure 3(a)) and congestion worsens without bound.
    The A-Gap clamps the measure at zero — the surplus is discarded, the
    back-off ends as soon as the gap drains, and every peak tops out at
    the same ``r0`` (Figure 3(b)).
    """
    trace = FluidTrace()
    allocated = allocated_rate_bps
    rate = allocated  # r(t), bits/s
    measure = 0.0  # bytes
    episode_peak_measure = 0.0
    backing_off = False
    steps = int(duration / dt)
    for step in range(steps):
        t = step * dt
        measure += (rate - allocated) / 8.0 * dt
        if use_agap and measure < 0.0:
            measure = 0.0
        if measure > 0.0:
            backing_off = True
            if measure > episode_peak_measure:
                episode_peak_measure = measure
        elif backing_off:
            # The CC resumes once its over-correction target is reached.
            # Under the A-Gap the measure bottoms out at zero — the surplus
            # the CC would have banked is discarded, so it resumes at once.
            target = 0.0 if use_agap else -over_correction * episode_peak_measure
            if measure <= target:
                backing_off = False
                episode_peak_measure = 0.0
        if backing_off:
            rate *= max(0.0, 1.0 - decrease_factor * dt)
        else:
            rate += increase_slope * allocated * dt
        trace.times.append(t)
        trace.rates.append(rate)
        trace.measures.append(measure)
    return trace


# --------------------------------------------------------------------------
# Reference evaluators used by property-based tests and the run auditor
# --------------------------------------------------------------------------


class AGapReplay:
    """Re-derives the Theorem 3.2 recurrence from a trace event stream.

    The conservation-law auditor (:mod:`repro.obs.audit`) feeds this the
    same observations :class:`AGapTracker` consumed live — arrivals
    (``agap_update`` events), limit-drop undos (``rate_limit`` events),
    and rate changes (``aq_rate`` events) — and compares the replayed gap
    against the value the data plane reported. The arithmetic mirrors the
    tracker expression-for-expression so a clean run replays exactly.
    """

    __slots__ = ("rate_bps", "gap", "last_time")

    def __init__(self) -> None:
        self.rate_bps: float = 0.0
        self.gap = 0.0
        self.last_time: float = 0.0

    def on_rate(self, time: float, rate_bps: float) -> None:
        """Apply a rate change: drain at the old rate first (set_rate)."""
        if self.rate_bps > 0.0:
            self.gap = self._drained(time)
        self.last_time = time
        self.rate_bps = rate_bps

    def expected_on_arrival(self, time: float, size_bytes: float) -> float:
        """The gap an uncorrupted tracker would report for this arrival."""
        return self._drained(time) + size_bytes

    def commit_arrival(self, time: float, gap: float) -> None:
        """Adopt the data plane's reported gap as ground truth, so one
        discrepancy yields one violation instead of a cascade."""
        self.gap = gap
        self.last_time = time

    def on_undo(self, size_bytes: float) -> None:
        """Mirror ``undo_arrival``: a limit-dropped packet is backed out."""
        self.gap -= size_bytes
        if self.gap < 0.0:
            self.gap = 0.0

    def _drained(self, time: float) -> float:
        delta = time - self.last_time
        if delta < 0:
            return self.gap
        drained = self.gap - delta * (self.rate_bps / 8.0)
        return drained if drained > 0.0 else 0.0


def fluid_gap_after(
    gap0: float, arrival_Bps: float, drain_Bps: float, dt: float
) -> float:
    """Closed form of the Theorem 3.2 recurrence under constant rates.

    With a constant fluid arrival rate ``λ`` (bytes/s) and drain ``R/8``
    (bytes/s), the per-packet recurrence ``A ← max(0, A − Δ·R/8) + size``
    converges to the trajectory ``A(t) = A₀ + (λ − R/8)·t``, clamped at
    zero: once the gap empties under ``λ < R/8`` it stays empty, so the
    end value after ``dt`` seconds is simply ``max(0, A₀ + slope·dt)``.
    This is the analytic A-Gap advance the fluid fast path applies per
    epoch instead of per packet.
    """
    end = gap0 + (arrival_Bps - drain_Bps) * dt
    return end if end > 0.0 else 0.0


def fluid_gap_crossing(
    gap0: float, arrival_Bps: float, drain_Bps: float, target: float
) -> Optional[float]:
    """Seconds until the constant-rate gap trajectory reaches ``target``,
    or ``None`` if it never does (wrong direction or already past). Used
    by the fluid engine to schedule epoch ends at A-Gap regime changes
    (limit saturation going up, empty going down)."""
    slope = arrival_Bps - drain_Bps
    if slope > 0.0 and target > gap0:
        return (target - gap0) / slope
    if slope < 0.0 and target < gap0:
        return (target - gap0) / slope
    return None


def agap_reference(
    arrivals: Sequence[Tuple[float, float]], rate_bps: float
) -> List[float]:
    """Direct evaluation of Theorem 3.2 over a full arrival sequence.

    ``arrivals`` is a list of ``(time, size_bytes)`` with non-decreasing
    times. Returns the A-Gap after each arrival. Used as the oracle against
    which the streaming tracker (and checkpoint-invariance properties) are
    tested.
    """
    gaps: List[float] = []
    gap = 0.0
    last_time = 0.0
    for time, size in arrivals:
        delta = time - last_time
        gap = max(0.0, gap - delta * rate_bps / 8.0) + size
        last_time = time
        gaps.append(gap)
    return gaps
