"""Hardware-faithful fixed-point A-Gap (what the Tofino actually computes).

A programmable switch has no floating point: Algorithm 1 runs on integer
registers. This module mirrors that implementation:

* **timestamps** are integer nanoseconds (the ingress timestamp),
* **gaps** are integer bytes,
* the **AQ rate** is the paper's 3-byte field (Table 1, "1MB ~ 1TB"
  range): an 8-bit exponent and 16-bit mantissa encoding bytes-per-
  second as ``mantissa << exponent``, so the drain term
  ``Δns · rate / 1e9`` reduces to multiply-and-shift,
* ``max(0, ·)`` is the saturating subtract Tofino's ALUs provide.

:class:`FixedPointAGap` is register-for-register comparable with the
reference :class:`~repro.core.agap.AGapTracker`; the property tests in
``tests/test_fixedpoint.py`` bound the quantization error between them,
which is the fidelity argument for the float model used by the simulator.
"""

from __future__ import annotations

import math
from typing import Tuple

from ..errors import ConfigurationError

#: Encodable rate range of the 3-byte field, bytes/second. The paper
#: quotes "1MB ~ 1TB" (bytes per second).
MIN_RATE_BYTES_PER_S = 1_000_000
MAX_RATE_BYTES_PER_S = 1_000_000_000_000

_MANTISSA_BITS = 16
_MANTISSA_MAX = (1 << _MANTISSA_BITS) - 1

#: Nanoseconds per second, as the integer the data plane divides by
#: (implemented as a multiply by a reciprocal constant + shift; modelled
#: here as exact integer arithmetic on the product).
NS_PER_S = 1_000_000_000


def encode_rate(rate_bytes_per_s: float) -> Tuple[int, int]:
    """Encode a rate into the 3-byte (mantissa, exponent) wire format.

    Rounds to the nearest representable value; raises for rates outside
    the paper's supported range.
    """
    if not math.isfinite(rate_bytes_per_s):
        raise ConfigurationError(
            f"rate must be a finite number, got {rate_bytes_per_s!r}"
        )
    if rate_bytes_per_s <= 0:
        raise ConfigurationError(
            f"rate must be positive, got {rate_bytes_per_s:.3g} B/s "
            "(a zero-rate AQ would make the drain term and the virtual "
            "delay division meaningless)"
        )
    if not MIN_RATE_BYTES_PER_S <= rate_bytes_per_s <= MAX_RATE_BYTES_PER_S:
        raise ConfigurationError(
            f"rate {rate_bytes_per_s:.3g} B/s outside the 3-byte field's "
            f"range [{MIN_RATE_BYTES_PER_S}, {MAX_RATE_BYTES_PER_S}]"
        )
    exponent = 0
    value = rate_bytes_per_s
    while value > _MANTISSA_MAX:
        value /= 2.0
        exponent += 1
    mantissa = int(round(value))
    if mantissa > _MANTISSA_MAX:
        # Rounding at the top of the mantissa range would silently wrap the
        # 16-bit field in hardware; renormalize into the next exponent.
        mantissa >>= 1
        exponent += 1
    return mantissa, exponent


def decode_rate(mantissa: int, exponent: int) -> int:
    """Decode the wire format back to bytes/second."""
    if not 0 <= mantissa <= _MANTISSA_MAX:
        raise ConfigurationError(f"mantissa {mantissa} exceeds 16 bits")
    if not 0 <= exponent <= 255:
        raise ConfigurationError(f"exponent {exponent} exceeds 8 bits")
    return mantissa << exponent


def rate_quantization_error(rate_bytes_per_s: float) -> float:
    """Relative error introduced by the 3-byte encoding (<= 2^-16)."""
    if not math.isfinite(rate_bytes_per_s) or rate_bytes_per_s <= 0:
        # encode_rate would reject these too, but guard explicitly so the
        # relative-error division below can never divide by zero.
        raise ConfigurationError(
            f"quantization error undefined for rate {rate_bytes_per_s!r} B/s"
        )
    mantissa, exponent = encode_rate(rate_bytes_per_s)
    return abs(decode_rate(mantissa, exponent) - rate_bytes_per_s) / rate_bytes_per_s


class FixedPointAGap:
    """Integer-register implementation of Algorithm 1.

    State: ``gap`` (bytes, 32-bit in hardware), ``last_time_ns`` and the
    encoded rate — 15 bytes total per Table 1.
    """

    __slots__ = ("mantissa", "exponent", "gap_bytes", "last_time_ns")

    def __init__(self, rate_bytes_per_s: float, start_time_ns: int = 0) -> None:
        self.mantissa, self.exponent = encode_rate(rate_bytes_per_s)
        self.gap_bytes = 0
        self.last_time_ns = int(start_time_ns)

    @property
    def rate_bytes_per_s(self) -> int:
        return decode_rate(self.mantissa, self.exponent)

    def on_arrival(self, time_ns: int, size_bytes: int) -> int:
        """Integer Theorem 3.2: saturating drain, then add the packet."""
        time_ns = int(time_ns)
        if time_ns < self.last_time_ns:
            raise ConfigurationError(
                f"arrival at {time_ns}ns precedes {self.last_time_ns}ns"
            )
        delta_ns = time_ns - self.last_time_ns
        # drain = Δns * rate / 1e9, computed as (Δns * mantissa) >> shift
        # then divided by NS_PER_S — all integer.
        drained_bytes = (delta_ns * self.mantissa << self.exponent) // NS_PER_S
        gap = self.gap_bytes - drained_bytes
        if gap < 0:
            gap = 0  # saturating subtract
        self.gap_bytes = gap + int(size_bytes)
        self.last_time_ns = time_ns
        return self.gap_bytes

    def undo_arrival(self, size_bytes: int) -> None:
        """Algorithm 2's drop path (saturating)."""
        self.gap_bytes = max(0, self.gap_bytes - int(size_bytes))

    def virtual_queuing_delay_ns(self) -> int:
        """``gap / rate`` in integer nanoseconds (the piggybacked value)."""
        rate = self.rate_bytes_per_s
        if rate <= 0:
            # encode_rate forbids zero rates, but the registers could be
            # poked directly (e.g. a wiped switch); fail loudly rather
            # than dividing by zero.
            raise ConfigurationError(
                "virtual queuing delay undefined for a zero-rate AQ"
            )
        return self.gap_bytes * NS_PER_S // rate
