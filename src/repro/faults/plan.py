"""Deterministic fault schedules.

A :class:`FaultPlan` is an ordered list of timed :class:`FaultEvent`\\ s
plus a seed for any randomized fault behaviour (packet corruption draws
from one ``random.Random(seed)`` shared by the whole plan, so a plan
replays bit-identically). Plans are plain JSON on disk::

    {
      "schema": "fault-plan/1",
      "seed": 7,
      "events": [
        {"time": 0.010, "kind": "link_down",      "target": "s0->h2"},
        {"time": 0.014, "kind": "link_up",        "target": "s0->h2"},
        {"time": 0.020, "kind": "switch_restart", "target": "s0"},
        {"time": 0.018, "kind": "controller_partition"},
        {"time": 0.025, "kind": "controller_heal"},
        {"time": 0.030, "kind": "packet_corruption", "target": "h0->s0",
         "probability": 0.01, "duration": 0.005}
      ]
    }

``target`` names a :class:`~repro.net.link.Link` (``"src->dst"``) for the
link kinds or a switch for ``switch_restart``; the controller kinds take
no target. Semantics are documented in ``docs/FAULTS.md``.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import FaultPlanError

#: The JSON schema tag written/accepted by :meth:`FaultPlan.to_dict`.
SCHEMA = "fault-plan/1"

KIND_LINK_DOWN = "link_down"
KIND_LINK_UP = "link_up"
KIND_SWITCH_RESTART = "switch_restart"
KIND_CONTROLLER_PARTITION = "controller_partition"
KIND_CONTROLLER_HEAL = "controller_heal"
KIND_PACKET_CORRUPTION = "packet_corruption"

#: Every fault kind a plan may schedule.
FAULT_KINDS = (
    KIND_LINK_DOWN,
    KIND_LINK_UP,
    KIND_SWITCH_RESTART,
    KIND_CONTROLLER_PARTITION,
    KIND_CONTROLLER_HEAL,
    KIND_PACKET_CORRUPTION,
)

#: Kinds whose ``target`` is a link name (``"src->dst"``).
LINK_KINDS = (KIND_LINK_DOWN, KIND_LINK_UP, KIND_PACKET_CORRUPTION)
#: Kinds that address the controller and therefore take no target.
CONTROLLER_KINDS = (KIND_CONTROLLER_PARTITION, KIND_CONTROLLER_HEAL)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault."""

    time: float
    kind: str
    target: Optional[str] = None
    #: Per-packet drop probability (``packet_corruption`` only).
    probability: Optional[float] = None
    #: How long corruption stays active; ``None`` means until end of run.
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        if not isinstance(self.time, (int, float)) or not math.isfinite(self.time):
            raise FaultPlanError(f"fault time must be finite, got {self.time!r}")
        if self.time < 0:
            raise FaultPlanError(f"fault time must be >= 0, got {self.time}")
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.kind in CONTROLLER_KINDS:
            if self.target is not None:
                raise FaultPlanError(f"{self.kind} takes no target")
        elif not self.target:
            raise FaultPlanError(f"{self.kind} requires a target")
        if self.kind == KIND_PACKET_CORRUPTION:
            if self.probability is None or not 0.0 < self.probability <= 1.0:
                raise FaultPlanError(
                    "packet_corruption needs a probability in (0, 1], got "
                    f"{self.probability!r}"
                )
            if self.duration is not None and self.duration <= 0:
                raise FaultPlanError(
                    f"corruption duration must be positive, got {self.duration}"
                )
        elif self.probability is not None or self.duration is not None:
            raise FaultPlanError(
                f"{self.kind} takes neither probability nor duration"
            )

    def to_dict(self) -> dict:
        out: dict = {"time": self.time, "kind": self.kind}
        if self.target is not None:
            out["target"] = self.target
        if self.probability is not None:
            out["probability"] = self.probability
        if self.duration is not None:
            out["duration"] = self.duration
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        try:
            time = data["time"]
            kind = data["kind"]
        except KeyError as exc:
            raise FaultPlanError(f"fault event missing field {exc}") from None
        unknown = set(data) - {"time", "kind", "target", "probability", "duration"}
        if unknown:
            raise FaultPlanError(f"unknown fault event fields {sorted(unknown)}")
        return cls(
            time=time,
            kind=kind,
            target=data.get("target"),
            probability=data.get("probability"),
            duration=data.get("duration"),
        )


@dataclass
class FaultPlan:
    """A seedable, deterministic schedule of faults for one run."""

    events: List[FaultEvent] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self) -> None:
        # Stable order for application and display: sort by time only, so
        # simultaneous faults keep their authored order.
        self.events = sorted(self.events, key=lambda event: event.time)

    def __bool__(self) -> bool:
        return bool(self.events)

    def make_rng(self) -> random.Random:
        """The plan's private RNG (packet-corruption draws)."""
        return random.Random(self.seed)

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "seed": self.seed,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        schema = data.get("schema", SCHEMA)
        if schema != SCHEMA:
            raise FaultPlanError(f"unsupported fault-plan schema {schema!r}")
        events_raw = data.get("events")
        if not isinstance(events_raw, list):
            raise FaultPlanError("fault plan needs an 'events' list")
        seed = data.get("seed", 0)
        if not isinstance(seed, int):
            raise FaultPlanError(f"seed must be an integer, got {seed!r}")
        return cls(
            events=[FaultEvent.from_dict(item) for item in events_raw],
            seed=seed,
        )

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise FaultPlanError(f"cannot read fault plan {path!r}: {exc}") from exc
        return cls.from_dict(data)

    def to_file(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")


def switch_restart_plan(switch: str, at: float, seed: int = 0) -> FaultPlan:
    """The canonical one-event plan: restart ``switch`` at time ``at``."""
    return FaultPlan(
        events=[FaultEvent(time=at, kind=KIND_SWITCH_RESTART, target=switch)],
        seed=seed,
    )


def link_blackout_plan(
    link: str, down_at: float, up_at: float, seed: int = 0
) -> FaultPlan:
    """Take ``link`` down at ``down_at`` and back up at ``up_at``."""
    if up_at <= down_at:
        raise FaultPlanError(
            f"link_up at {up_at} must come after link_down at {down_at}"
        )
    return FaultPlan(
        events=[
            FaultEvent(time=down_at, kind=KIND_LINK_DOWN, target=link),
            FaultEvent(time=up_at, kind=KIND_LINK_UP, target=link),
        ],
        seed=seed,
    )
