"""Applying a :class:`~repro.faults.plan.FaultPlan` to a live network.

The :class:`FaultInjector` schedules every plan event on the network's
simulator at arm time and resolves targets *lazily* — by name, at fire
time — so a plan can be activated before the topology is built (the CLI
activates the plan ambiently, then the scenario constructs its own
:class:`~repro.topology.base.Network`, which arms an injector on itself).

Each applied fault:

* emits an :data:`~repro.obs.events.EV_FAULT` trace event (so the fault
  window is first-class in telemetry, flight records, and the
  conservation auditor),
* mutates the target component (link down/up/corrupting, switch queue
  drain), and
* is broadcast through :meth:`Simulator.notify_fault
  <repro.sim.engine.Simulator.add_fault_listener>` — which is how the
  :class:`~repro.core.controller.AqController` learns that a restart
  wiped its deployments and starts its bounded-retry redeploy.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, List, Optional

from ..errors import FaultPlanError
from ..obs.events import EV_FAULT
from .plan import (
    KIND_CONTROLLER_HEAL,
    KIND_CONTROLLER_PARTITION,
    KIND_LINK_DOWN,
    KIND_LINK_UP,
    KIND_PACKET_CORRUPTION,
    KIND_SWITCH_RESTART,
    FaultEvent,
    FaultPlan,
)

#: Module-global ambient fault plan; see :func:`activate_fault_plan`.
_ACTIVE_PLAN: Optional[FaultPlan] = None


def get_active_fault_plan() -> Optional[FaultPlan]:
    """The ambient plan installed by :func:`activate_fault_plan`, if any."""
    return _ACTIVE_PLAN


@contextlib.contextmanager
def activate_fault_plan(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` as the ambient fault plan: every
    :class:`~repro.topology.base.Network` built inside the ``with`` block
    arms a :class:`FaultInjector` for it. Mirrors
    :meth:`repro.obs.Telemetry.activate`; nesting restores the previous
    ambient value."""
    global _ACTIVE_PLAN
    previous = _ACTIVE_PLAN
    _ACTIVE_PLAN = plan
    try:
        yield plan
    finally:
        _ACTIVE_PLAN = previous


class FaultInjector:
    """Schedules and applies one plan's faults on one network."""

    def __init__(self, plan: FaultPlan, network) -> None:
        self.plan = plan
        self.network = network
        self.sim = network.sim
        self._rng = plan.make_rng()
        self._armed = False
        #: Events applied so far, in application order (for reports/tests).
        self.applied: List[FaultEvent] = []

    def arm(self) -> None:
        """Schedule every plan event on the simulator. Idempotent."""
        if self._armed:
            return
        self._armed = True
        for event in self.plan.events:
            self.sim.schedule_at(event.time, self._apply, event)

    # -- application -----------------------------------------------------------

    def _apply(self, event: FaultEvent) -> None:
        kind = event.kind
        value: Optional[float] = None
        if kind == KIND_LINK_DOWN:
            self._link(event.target).set_down()
        elif kind == KIND_LINK_UP:
            self._link(event.target).set_up()
        elif kind == KIND_PACKET_CORRUPTION:
            link = self._link(event.target)
            link.set_corruption(event.probability, self._rng)
            if event.duration is not None:
                self.sim.schedule(event.duration, self._end_corruption, event.target)
            value = event.probability
        elif kind == KIND_SWITCH_RESTART:
            switch = self.network.switches.get(event.target)
            if switch is None:
                raise FaultPlanError(f"unknown switch {event.target!r}")
            info = switch.restart()
            value = float(info["drained_bytes"])
        # Controller kinds carry no data-plane action of their own: the
        # notify below is the whole fault.
        self._emit(event, value)
        self.sim.notify_fault(event)
        self.applied.append(event)

    def _end_corruption(self, target: str) -> None:
        self._link(target).clear_corruption()
        self._emit(
            FaultEvent(time=self.sim.now, kind=KIND_LINK_UP, target=target),
            None,
            reason="corruption_end",
        )

    def _link(self, name: str):
        link = self.network.links.get(name)
        if link is None:
            raise FaultPlanError(
                f"unknown link {name!r}; known: {sorted(self.network.links)}"
            )
        return link

    def _emit(
        self, event: FaultEvent, value: Optional[float], reason: Optional[str] = None
    ) -> None:
        tele = self.sim.telemetry
        if tele is not None and tele.enabled:
            tele.trace.emit_fields(
                EV_FAULT,
                self.sim.now,
                node=event.target if event.target is not None else "controller",
                value=value,
                reason=reason or event.kind,
            )
