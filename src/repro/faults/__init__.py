"""Fault injection & recovery (the robustness layer).

Deterministic, seedable fault schedules (:class:`FaultPlan`) drive link
flaps, switch restarts that wipe per-AQ register state, controller
partitions, and on-link packet corruption through a live simulation via
the :class:`FaultInjector`. The controller's recovery path
(:mod:`repro.core.controller`) redeploys wiped AQ state with bounded
retry/backoff and accounts every interval of missing enforcement as an
explicit :class:`~repro.core.controller.DegradedWindow`.

See ``docs/FAULTS.md`` for the plan schema and recovery semantics.
"""

from .injector import FaultInjector, activate_fault_plan, get_active_fault_plan
from .plan import (
    CONTROLLER_KINDS,
    FAULT_KINDS,
    KIND_CONTROLLER_HEAL,
    KIND_CONTROLLER_PARTITION,
    KIND_LINK_DOWN,
    KIND_LINK_UP,
    KIND_PACKET_CORRUPTION,
    KIND_SWITCH_RESTART,
    LINK_KINDS,
    FaultEvent,
    FaultPlan,
    link_blackout_plan,
    switch_restart_plan,
)

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "FAULT_KINDS",
    "LINK_KINDS",
    "CONTROLLER_KINDS",
    "KIND_LINK_DOWN",
    "KIND_LINK_UP",
    "KIND_SWITCH_RESTART",
    "KIND_CONTROLLER_PARTITION",
    "KIND_CONTROLLER_HEAL",
    "KIND_PACKET_CORRUPTION",
    "activate_fault_plan",
    "get_active_fault_plan",
    "switch_restart_plan",
    "link_blackout_plan",
]
