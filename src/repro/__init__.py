"""Augmented Queue (AQ) reproduction.

A faithful, from-scratch Python implementation of *"Augmented Queue: A
Scalable In-Network Abstraction for Data Center Network Sharing"*
(Wu, Wang, Wang, Ng -- ACM SIGCOMM 2023), together with the full substrate
the paper evaluates on: a packet-level discrete-event network simulator,
five congestion-control algorithms, and the paper's baselines (physical
queues, HTB-style pre-determined rate limiters, ElasticSwitch-style
dynamic rate limiters).

Quick taste::

    from repro import EntitySpec, run_longlived_share
    from repro.units import gbps

    result = run_longlived_share(
        [EntitySpec("tcp", cc="cubic", num_flows=4),
         EntitySpec("udp", cc="udp")],
        approach="aq",
        bottleneck_bps=gbps(10),
    )
    print(result.rates_bps)  # each entity holds its guaranteed half

See ``DESIGN.md`` for the architecture and ``EXPERIMENTS.md`` for the
paper-vs-measured record of every table and figure.
"""

from .core.agap import AGapTracker, DGapTracker, simulate_discrepancy_control
from .core.aq import AugmentedQueue
from .core.controller import AqController, AqGrant, AqRequest
from .core.feedback import (
    FeedbackPolicy,
    delay_policy,
    drop_policy,
    ecn_policy,
    policy_for_cc,
)
from .core.pipeline import AqPipeline
from .core.resources import memory_for_aqs, tofino_usage
from .errors import (
    AdmissionError,
    ConfigurationError,
    ReproError,
    RoutingError,
    SimulationError,
    TransportError,
)
from .harness.common import (
    APPROACHES,
    AQ,
    DRL,
    PQ,
    PRL,
    EntitySpec,
    telemetry_from_env,
    telemetry_session,
)
from .obs import (
    AuditViolation,
    FlightIndex,
    FlightRecorder,
    JsonlSink,
    MetricsRegistry,
    RingBufferSink,
    RunAuditor,
    SimProfiler,
    SummarySink,
    Telemetry,
    TraceBus,
    TraceEvent,
    read_flights_jsonl,
    read_jsonl,
)
from .harness.scenarios import (
    run_cc_pair,
    run_cc_pair_wct,
    run_cc_preservation,
    run_longlived_share,
    run_single_entity_wct,
    run_two_entity_fairness,
    run_udp_tcp_timeline,
    run_vm_profile,
    run_wct,
)
from .core.workconserving import WorkConservingGate
from .queues.fifo import PhysicalFifoQueue
from .queues.multiqueue import MultiQueuePort
from .queues.perflow import PerFlowQueue
from .ratelimit.dynamic import DynamicVmAllocator
from .ratelimit.elasticswitch import ElasticSwitch, VmProfile
from .ratelimit.token_bucket import TokenBucketShaper
from .sim.engine import Event, PeriodicTask, Simulator
from .stats.fct import FctCollector
from .stats.meters import CompletionTracker, ThroughputMeter, percentile
from .stats.fairness import entity_fairness, jain_index
from .stats.trace import PacketTrace
from .topology.base import Network, QueueConfig
from .topology.dumbbell import Dumbbell, DumbbellConfig
from .topology.leafspine import LeafSpine, LeafSpineConfig
from .topology.star import Star, StarConfig
from .transport.tcp import TcpConnection, TcpReceiver, TcpSender
from .transport.udp import UdpFlow, UdpSender, UdpSink

__version__ = "1.0.0"

__all__ = [
    # core abstraction
    "AGapTracker",
    "DGapTracker",
    "AugmentedQueue",
    "AqController",
    "AqGrant",
    "AqRequest",
    "AqPipeline",
    "FeedbackPolicy",
    "drop_policy",
    "ecn_policy",
    "delay_policy",
    "policy_for_cc",
    "simulate_discrepancy_control",
    "memory_for_aqs",
    "tofino_usage",
    # simulator & topology
    "Simulator",
    "Event",
    "PeriodicTask",
    "Network",
    "QueueConfig",
    "Dumbbell",
    "DumbbellConfig",
    "Star",
    "StarConfig",
    # transport
    "TcpConnection",
    "TcpSender",
    "TcpReceiver",
    "UdpFlow",
    "UdpSender",
    "UdpSink",
    # harness
    "EntitySpec",
    "APPROACHES",
    "PQ",
    "AQ",
    "PRL",
    "DRL",
    "run_longlived_share",
    "run_cc_pair",
    "run_cc_pair_wct",
    "run_cc_preservation",
    "run_single_entity_wct",
    "run_two_entity_fairness",
    "run_udp_tcp_timeline",
    "run_vm_profile",
    "run_wct",
    # substrates & instruments
    "PhysicalFifoQueue",
    "MultiQueuePort",
    "PerFlowQueue",
    "TokenBucketShaper",
    "DynamicVmAllocator",
    "ElasticSwitch",
    "VmProfile",
    "WorkConservingGate",
    "LeafSpine",
    "LeafSpineConfig",
    "ThroughputMeter",
    "CompletionTracker",
    "percentile",
    "entity_fairness",
    "jain_index",
    "FctCollector",
    "PacketTrace",
    # observability
    "Telemetry",
    "MetricsRegistry",
    "TraceBus",
    "TraceEvent",
    "SimProfiler",
    "RingBufferSink",
    "JsonlSink",
    "SummarySink",
    "read_jsonl",
    "FlightRecorder",
    "FlightIndex",
    "read_flights_jsonl",
    "RunAuditor",
    "AuditViolation",
    "telemetry_session",
    "telemetry_from_env",
    # errors
    "ReproError",
    "SimulationError",
    "ConfigurationError",
    "RoutingError",
    "AdmissionError",
    "TransportError",
]
