"""Per-flow (per-entity) queueing with Deficit Round Robin — the
related-work baseline the paper contrasts AQ against (Section 1, 7).

A :class:`PerFlowQueue` keeps one FIFO per classification key (flow ID by
default, or any key function — e.g. the AQ ID header for per-entity
queues) and serves them with weighted DRR [Shreedhar & Varghese 1995].
It provides fair sharing among backlogged keys, but demonstrates the two
limitations the paper leans on:

* **scalability** — the switch must provision a queue (buffer + scheduler
  state) per constituent, while AQ needs 15 bytes
  (:func:`state_bytes_per_entity` quantifies the gap for the comparison
  benchmark);
* **no rate guarantees without congestion** — an idle link produces no
  backlog, so a per-flow queue cannot hold a constituent *down* to an
  allocated rate the way an AQ's limit-drop does (it "can release traffic
  that exceeds the specified VM bandwidth").
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Callable, Deque, Optional

from ..errors import ConfigurationError
from ..net.packet import Packet
from ..obs.events import EV_DROP
from .base import QueueDiscipline

#: Classification function: packet -> key.
KeyFn = Callable[[Packet], int]


def flow_key(packet: Packet) -> int:
    """Classify by flow (true per-flow queueing)."""
    return packet.flow_id


def entity_key(packet: Packet) -> int:
    """Classify by the ingress AQ ID header (per-entity queueing)."""
    return packet.aq_ingress_id


#: Rough switch-state cost of one dedicated queue: descriptor + scheduler
#: state + a guaranteed buffer carve-out (conservative 2 KB, far below
#: real per-queue buffer reservations).
PER_QUEUE_STATE_BYTES = 2048


def state_bytes_per_entity(num_entities: int, per_flow_queues: bool) -> int:
    """Switch state to support ``num_entities`` constituents: dedicated
    queues vs AQ records (15 B). Used by the scalability comparison."""
    if num_entities < 0:
        raise ConfigurationError("entity count must be >= 0")
    if per_flow_queues:
        return num_entities * PER_QUEUE_STATE_BYTES
    from ..core.resources import AQ_RECORD_BYTES

    return num_entities * AQ_RECORD_BYTES


class _SubQueue:
    __slots__ = ("packets", "bytes", "deficit", "weight")

    def __init__(self, weight: float) -> None:
        self.packets: Deque[Packet] = deque()
        self.bytes = 0
        self.deficit = 0.0
        self.weight = weight


class PerFlowQueue(QueueDiscipline):
    """Weighted-DRR scheduler over dynamically-created per-key FIFOs."""

    def __init__(
        self,
        limit_bytes_per_queue: int,
        quantum_bytes: int = 1500,
        key_fn: KeyFn = flow_key,
        max_queues: Optional[int] = None,
        weight_fn: Optional[Callable[[int], float]] = None,
        name: str = "",
        telemetry=None,
    ) -> None:
        if limit_bytes_per_queue <= 0:
            raise ConfigurationError("per-queue limit must be positive")
        if quantum_bytes <= 0:
            raise ConfigurationError("quantum must be positive")
        self.limit_bytes_per_queue = limit_bytes_per_queue
        self.quantum_bytes = quantum_bytes
        self.key_fn = key_fn
        self.max_queues = max_queues
        self.weight_fn = weight_fn
        self.name = name
        #: Active (backlogged) queues in round-robin order.
        self._queues: "OrderedDict[int, _SubQueue]" = OrderedDict()
        self._bytes = 0
        self.dropped_packets = 0
        self.dropped_buffer_packets = 0
        self.dropped_no_queue_packets = 0
        self.dropped_fault_packets = 0
        self.peak_queue_count = 0
        self._tele = telemetry if telemetry is not None and telemetry.enabled else None
        self._flight = self._tele.flightrec if self._tele is not None else None
        tw = self._tele.timewin if self._tele is not None else None
        self._timewin = tw.port_handle(name) if tw is not None else None
        if self._tele is not None:
            self._tele.metrics.add_collector(self._collect_metrics)

    def _collect_metrics(self, registry) -> None:
        label = self.name or f"perflow@{id(self):x}"
        registry.counter("queue_dropped_packets", queue=label, reason="buffer").set(
            self.dropped_buffer_packets
        )
        registry.counter("queue_dropped_packets", queue=label, reason="no_queue").set(
            self.dropped_no_queue_packets
        )
        registry.counter("queue_dropped_packets", queue=label, reason="fault").set(
            self.dropped_fault_packets
        )
        registry.gauge("queue_backlog_bytes", queue=label).set(self._bytes)
        registry.gauge("perflow_peak_queue_count", queue=label).set(
            self.peak_queue_count
        )

    # -- QueueDiscipline -----------------------------------------------------

    def _emit_drop(self, packet: Packet, now: float, reason: str) -> None:
        tele = self._tele
        if tele is not None and tele.enabled:
            tele.trace.emit_fields(
                EV_DROP, now, node=self.name, flow_id=packet.flow_id,
                size=packet.size, value=float(self._bytes), reason=reason,
            )
        fr = self._flight
        if fr is not None and packet.flight is not None:
            fr.drop_hop(packet, self.name, now, reason, depth=float(self._bytes))
            fr.complete(packet, now, "dropped", node=self.name)
        tw = self._timewin
        if tw is not None:
            tw.on_drop(packet.flow_id, packet.aq_ingress_id, packet.size, now)

    def enqueue(self, packet: Packet, now: float) -> bool:
        key = self.key_fn(packet)
        queue = self._queues.get(key)
        if queue is None:
            if self.max_queues is not None and len(self._queues) >= self.max_queues:
                # No free queue: the fate of the 'not enough queues' regime
                # the paper describes — drop (a real switch would fall back
                # to a shared default queue, same loss of isolation).
                self.dropped_packets += 1
                self.dropped_no_queue_packets += 1
                self._emit_drop(packet, now, "no_queue")
                return False
            weight = self.weight_fn(key) if self.weight_fn else 1.0
            queue = _SubQueue(weight)
            self._queues[key] = queue
            if len(self._queues) > self.peak_queue_count:
                self.peak_queue_count = len(self._queues)
        if queue.bytes + packet.size > self.limit_bytes_per_queue:
            self.dropped_packets += 1
            self.dropped_buffer_packets += 1
            self._emit_drop(packet, now, "buffer")
            return False
        packet.enqueue_time = now
        queue.packets.append(packet)
        queue.bytes += packet.size
        self._bytes += packet.size
        tw = self._timewin
        if tw is not None:
            tw.on_enqueue(
                packet.flow_id, packet.aq_ingress_id,
                packet.size, float(self._bytes), now,
            )
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        """Weighted DRR: cycle active queues, topping up deficits."""
        if self._bytes == 0:
            return None
        while True:
            key, queue = next(iter(self._queues.items()))
            if queue.packets and queue.deficit >= queue.packets[0].size:
                packet = queue.packets.popleft()
                queue.deficit -= packet.size
                queue.bytes -= packet.size
                self._bytes -= packet.size
                if not queue.packets:
                    # Idle queues leave the schedule (and forfeit deficit).
                    del self._queues[key]
                return packet
            # Move to the back of the round and grant a quantum.
            self._queues.move_to_end(key)
            if queue.packets:
                queue.deficit += self.quantum_bytes * queue.weight
            else:
                del self._queues[key]

    def drain(self, now: float, reason: str = "switch_restart") -> list:
        """Discard every sub-queue's backlog as fault-attributed drops."""
        drained = []
        for queue in self._queues.values():
            while queue.packets:
                packet = queue.packets.popleft()
                queue.bytes -= packet.size
                self._bytes -= packet.size
                self.dropped_packets += 1
                self.dropped_fault_packets += 1
                self._emit_drop(packet, now, reason)
                drained.append(packet)
        self._queues.clear()
        return drained

    @property
    def bytes_queued(self) -> int:
        return self._bytes

    @property
    def packets_queued(self) -> int:
        return sum(len(q.packets) for q in self._queues.values())

    @property
    def active_queues(self) -> int:
        return len(self._queues)
