"""Queue discipline interface shared by physical queues.

A queue here is purely a buffering discipline; (de)queueing cadence is driven
by the :class:`~repro.net.link.Transmitter` that owns it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from ..net.packet import Packet


class QueueDiscipline(ABC):
    """Abstract buffering discipline for an output port."""

    #: True when the discipline supports bulk fluid accounting — i.e. the
    #: fluid fast path (:mod:`repro.sim.fluid`) can snapshot its per-flow
    #: backlog composition, advance it in closed form, and rebuild the
    #: buffer on epoch exit. Disciplines that keep per-packet semantics the
    #: closed form cannot reproduce (RED marking, per-flow scheduling)
    #: leave this ``False`` and force packet mode.
    supports_fluid = False

    @abstractmethod
    def enqueue(self, packet: Packet, now: float) -> bool:
        """Offer ``packet`` at time ``now``. Returns ``False`` if dropped."""

    @abstractmethod
    def dequeue(self, now: float) -> Optional[Packet]:
        """Remove and return the next packet, or ``None`` when empty."""

    @property
    @abstractmethod
    def bytes_queued(self) -> int:
        """Current backlog in bytes."""

    @property
    @abstractmethod
    def packets_queued(self) -> int:
        """Current backlog in packets."""

    def drain(self, now: float, reason: str = "switch_restart") -> "list[Packet]":
        """Discard every buffered packet (switch-restart semantics).

        Returns the drained packets. Implementations are expected to
        account these as *drops* attributed to ``reason`` — emitting one
        ``drop`` trace event per packet rather than ``dequeue`` events —
        so the conservation auditor can attribute the loss to the fault
        window. This fallback reuses :meth:`dequeue` (and therefore
        emits dequeue telemetry); the in-tree disciplines all override
        it with fault-attributed versions.
        """
        packets = []
        while True:
            packet = self.dequeue(now)
            if packet is None:
                return packets
            packets.append(packet)

    def __len__(self) -> int:
        return self.packets_queued

    @property
    def is_empty(self) -> bool:
        return self.packets_queued == 0
