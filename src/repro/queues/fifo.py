"""The physical FIFO queue the paper argues about.

This models the per-port drop-tail queue of a commodity switch:

* a byte limit (drop-tail beyond it),
* an optional instantaneous-queue-length ECN marking threshold
  (the standard single-threshold DCTCP marking scheme),
* statistics: drops, marks, per-packet queuing delay, backlog samples.

The two properties Section 2 of the paper attributes to physical queues fall
out of this model directly: the buffer is shared by everything routed to the
port, and congestion signals appear only once backlog builds.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Optional

from ..errors import ConfigurationError
from ..net.packet import Packet
from ..obs.events import EV_DEQUEUE, EV_DROP, EV_ECN_MARK, EV_ENQUEUE
from .base import QueueDiscipline


class FifoQueueStats:
    """Counters exposed by :class:`PhysicalFifoQueue`."""

    __slots__ = (
        "enqueued_packets",
        "enqueued_bytes",
        "dequeued_packets",
        "dequeued_bytes",
        "dropped_packets",
        "dropped_bytes",
        "dropped_buffer_packets",
        "dropped_red_packets",
        "dropped_fault_packets",
        "ecn_marked_packets",
        "max_bytes_queued",
        "queuing_delays",
    )

    def __init__(self) -> None:
        self.enqueued_packets = 0
        self.enqueued_bytes = 0
        self.dequeued_packets = 0
        self.dequeued_bytes = 0
        self.dropped_packets = 0
        self.dropped_bytes = 0
        self.dropped_buffer_packets = 0
        self.dropped_red_packets = 0
        self.dropped_fault_packets = 0
        self.ecn_marked_packets = 0
        self.max_bytes_queued = 0
        self.queuing_delays: list = []

    def record_delay(self, delay: float) -> None:
        self.queuing_delays.append(delay)


class PhysicalFifoQueue(QueueDiscipline):
    """Shared drop-tail FIFO with optional ECN marking.

    Drop-tail FIFO dynamics have an exact fluid counterpart (shared
    backlog, proportional-share drain), so this discipline supports the
    bulk accounting the fluid fast path needs (``supports_fluid``); the
    engine still refuses queues with an ECN/RED threshold, whose
    per-packet marking the closed form cannot reproduce.

    Parameters
    ----------
    limit_bytes:
        Buffer size; packets arriving when ``bytes_queued + size`` would
        exceed it are dropped (drop-tail).
    ecn_threshold_bytes:
        If set, ECN-capable packets are CE-marked when the instantaneous
        backlog at enqueue time is at or above this threshold (DCTCP's
        single-threshold marking). Following standard RED-with-ECN switch
        behaviour (and the paper's NS3 setup), packets that are *not*
        ECN-capable are dropped at the same threshold unless
        ``red_drop_non_ect`` is disabled.
    collect_delays:
        Record per-packet queuing delay (off by default; it allocates).
    name / telemetry:
        Identity and telemetry handle for the observability layer. When
        the telemetry is enabled at construction time the queue emits
        ``enqueue``/``dequeue``/``drop``/``ecn_mark`` trace events and
        registers a metrics collector; otherwise the data path is
        untouched (one ``is not None`` check).
    """

    supports_fluid = True

    def __init__(
        self,
        limit_bytes: int,
        ecn_threshold_bytes: Optional[int] = None,
        collect_delays: bool = False,
        red_drop_non_ect: bool = True,
        seed: int = 0,
        name: str = "",
        telemetry=None,
    ) -> None:
        if limit_bytes <= 0:
            raise ConfigurationError(f"queue limit must be positive, got {limit_bytes}")
        if ecn_threshold_bytes is not None and ecn_threshold_bytes < 0:
            raise ConfigurationError(
                f"ECN threshold must be non-negative, got {ecn_threshold_bytes}"
            )
        self.limit_bytes = limit_bytes
        self.ecn_threshold_bytes = ecn_threshold_bytes
        self.red_drop_non_ect = red_drop_non_ect
        self._collect_delays = collect_delays
        self._rng = random.Random(seed)
        self._queue: Deque[Packet] = deque()
        self._bytes = 0
        self.stats = FifoQueueStats()
        self.name = name
        # Only carry an enabled telemetry; a disabled one would still cost
        # the ``tele.enabled`` load per packet for nothing.
        self._tele = telemetry if telemetry is not None and telemetry.enabled else None
        self._flight = self._tele.flightrec if self._tele is not None else None
        tw = self._tele.timewin if self._tele is not None else None
        # Bind the port handle once: the per-packet hooks skip the port
        # lookup and the window-boundary division entirely.
        self._timewin = tw.port_handle(name) if tw is not None else None
        if self._tele is not None:
            self._tele.metrics.add_collector(self._collect_metrics)

    def _collect_metrics(self, registry) -> None:
        stats = self.stats
        label = self.name or f"fifo@{id(self):x}"
        registry.counter("queue_enqueued_packets", queue=label).set(
            stats.enqueued_packets
        )
        registry.counter("queue_dequeued_packets", queue=label).set(
            stats.dequeued_packets
        )
        # One series per drop cause; ``value("queue_dropped_packets", ...)``
        # sums them, so the undifferentiated total is still reconstructable.
        registry.counter("queue_dropped_packets", queue=label, reason="buffer").set(
            stats.dropped_buffer_packets
        )
        registry.counter("queue_dropped_packets", queue=label, reason="red").set(
            stats.dropped_red_packets
        )
        registry.counter("queue_dropped_packets", queue=label, reason="fault").set(
            stats.dropped_fault_packets
        )
        registry.counter("queue_ecn_marked_packets", queue=label).set(
            stats.ecn_marked_packets
        )
        registry.gauge("queue_backlog_bytes", queue=label).set(self._bytes)
        registry.gauge("queue_max_backlog_bytes", queue=label).set(
            stats.max_bytes_queued
        )
        if stats.queuing_delays:
            hist = registry.histogram("queue_delay_s", queue=label)
            hist.observe_many(stats.queuing_delays[hist.count :])

    # -- QueueDiscipline -------------------------------------------------------

    def enqueue(self, packet: Packet, now: float) -> bool:
        tele = self._tele
        if self._bytes + packet.size > self.limit_bytes:
            self.stats.dropped_packets += 1
            self.stats.dropped_bytes += packet.size
            self.stats.dropped_buffer_packets += 1
            if tele is not None and tele.enabled:
                tele.trace.emit_fields(
                    EV_DROP, now, node=self.name, flow_id=packet.flow_id,
                    size=packet.size, value=float(self._bytes), reason="buffer",
                )
                fr = self._flight
                if fr is not None and packet.flight is not None:
                    fr.drop_hop(
                        packet, self.name, now, "buffer", depth=float(self._bytes)
                    )
                    fr.complete(packet, now, "dropped", node=self.name)
                tw = self._timewin
                if tw is not None:
                    tw.on_drop(
                        packet.flow_id, packet.aq_ingress_id, packet.size, now
                    )
            return False
        if (
            self.ecn_threshold_bytes is not None
            and self._bytes >= self.ecn_threshold_bytes
        ):
            if packet.ect:
                packet.mark_ce()
                self.stats.ecn_marked_packets += 1
                if tele is not None and tele.enabled:
                    tele.trace.emit_fields(
                        EV_ECN_MARK, now, node=self.name, flow_id=packet.flow_id,
                        size=packet.size, value=float(self._bytes),
                    )
            elif self.red_drop_non_ect:
                # RED-style early drop for non-ECT traffic: probability
                # ramps linearly from 0 at the threshold to 1 at twice the
                # threshold (capped by the hard limit).
                min_th = self.ecn_threshold_bytes
                max_th = min(2 * min_th, self.limit_bytes)
                if max_th <= min_th:
                    drop_probability = 1.0
                else:
                    drop_probability = (self._bytes - min_th) / (max_th - min_th)
                if self._rng.random() < drop_probability:
                    self.stats.dropped_packets += 1
                    self.stats.dropped_bytes += packet.size
                    self.stats.dropped_red_packets += 1
                    if tele is not None and tele.enabled:
                        tele.trace.emit_fields(
                            EV_DROP, now, node=self.name, flow_id=packet.flow_id,
                            size=packet.size, value=float(self._bytes), reason="red",
                        )
                        fr = self._flight
                        if fr is not None and packet.flight is not None:
                            fr.drop_hop(
                                packet, self.name, now, "red", depth=float(self._bytes)
                            )
                            fr.complete(packet, now, "dropped", node=self.name)
                        tw = self._timewin
                        if tw is not None:
                            tw.on_drop(
                                packet.flow_id, packet.aq_ingress_id,
                                packet.size, now,
                            )
                    return False
        packet.enqueue_time = now
        self._queue.append(packet)
        self._bytes += packet.size
        self.stats.enqueued_packets += 1
        self.stats.enqueued_bytes += packet.size
        if self._bytes > self.stats.max_bytes_queued:
            self.stats.max_bytes_queued = self._bytes
        if tele is not None and tele.enabled:
            tele.trace.emit_fields(
                EV_ENQUEUE, now, node=self.name, flow_id=packet.flow_id,
                size=packet.size, value=float(self._bytes),
            )
            # Nested under the telemetry guard (flight recording implies
            # enabled telemetry) so the disabled path stays one flag check.
            fr = self._flight
            if fr is not None and packet.flight is not None:
                fr.queue_hop(packet, self.name, now, float(self._bytes))
            # Same post-enqueue backlog the flight hop carries, so window
            # high-waters and FlightIndex ground truth agree exactly.
            tw = self._timewin
            if tw is not None:
                tw.on_enqueue(
                    packet.flow_id, packet.aq_ingress_id,
                    packet.size, float(self._bytes), now,
                )
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._bytes -= packet.size
        self.stats.dequeued_packets += 1
        self.stats.dequeued_bytes += packet.size
        if self._collect_delays:
            self.stats.record_delay(now - packet.enqueue_time)
        tele = self._tele
        if tele is not None and tele.enabled:
            tele.trace.emit_fields(
                EV_DEQUEUE, now, node=self.name, flow_id=packet.flow_id,
                size=packet.size, value=float(self._bytes),
            )
            fr = self._flight
            if fr is not None and packet.flight is not None:
                fr.queue_exit(packet, self.name, now)
        return packet

    def drain(self, now: float, reason: str = "switch_restart") -> list:
        """Discard the whole backlog, attributing each packet to ``reason``.

        Unlike the base-class fallback this emits ``drop`` (not
        ``dequeue``) events, so a restart's losses are charged to the
        fault window rather than looking like forwarded traffic.
        """
        drained = []
        tele = self._tele
        while self._queue:
            packet = self._queue.popleft()
            self._bytes -= packet.size
            self.stats.dropped_packets += 1
            self.stats.dropped_bytes += packet.size
            self.stats.dropped_fault_packets += 1
            if tele is not None and tele.enabled:
                tele.trace.emit_fields(
                    EV_DROP, now, node=self.name, flow_id=packet.flow_id,
                    size=packet.size, value=float(self._bytes), reason=reason,
                )
                fr = self._flight
                if fr is not None and packet.flight is not None:
                    fr.drop_hop(
                        packet, self.name, now, reason, depth=float(self._bytes)
                    )
                    fr.complete(packet, now, "dropped", node=self.name)
                tw = self._timewin
                if tw is not None:
                    tw.on_drop(
                        packet.flow_id, packet.aq_ingress_id, packet.size, now
                    )
            drained.append(packet)
        return drained

    @property
    def bytes_queued(self) -> int:
        return self._bytes

    @property
    def packets_queued(self) -> int:
        return len(self._queue)

    # -- fluid fast path (driven by :mod:`repro.sim.fluid`) --------------------

    def fluid_capture(self) -> "dict[int, int]":
        """Hand the buffered packets over to the fluid engine: returns the
        per-flow byte composition and empties the deque (the engine owns
        the backlog as state from here until :meth:`fluid_restore`).
        ``_bytes`` keeps reporting the backlog so gauges stay truthful."""
        composition: "dict[int, int]" = {}
        for packet in self._queue:
            composition[packet.flow_id] = (
                composition.get(packet.flow_id, 0) + packet.size
            )
        self._queue.clear()
        return composition

    def fluid_account(
        self,
        enqueued_packets: int,
        enqueued_bytes: int,
        dequeued_packets: int,
        dequeued_bytes: int,
        dropped_packets: int,
        dropped_bytes: int,
        backlog_bytes: int,
    ) -> None:
        """Book one epoch's aggregate counters and adopt the end backlog.
        The engine emits the matching trace events itself (it controls
        per-flow attribution and ordering); this keeps the stats and the
        live ``_bytes`` gauge in step with them."""
        stats = self.stats
        stats.enqueued_packets += enqueued_packets
        stats.enqueued_bytes += enqueued_bytes
        stats.dequeued_packets += dequeued_packets
        stats.dequeued_bytes += dequeued_bytes
        stats.dropped_packets += dropped_packets
        stats.dropped_bytes += dropped_bytes
        stats.dropped_buffer_packets += dropped_packets
        self._bytes = int(backlog_bytes)
        if self._bytes > stats.max_bytes_queued:
            stats.max_bytes_queued = self._bytes

    def fluid_restore(self, packets, now: float) -> None:
        """Rebuild the packet-mode buffer from synthesized packets on
        epoch exit; ``_bytes`` must already equal their total size."""
        for packet in packets:
            packet.enqueue_time = now
        self._queue = deque(packets)
        total = sum(p.size for p in packets)
        if total != self._bytes:
            raise ConfigurationError(
                f"fluid_restore size mismatch on {self.name or 'fifo'}: "
                f"rebuilt {total}B but accounted {self._bytes}B"
            )
