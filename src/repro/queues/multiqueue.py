"""Multi-queue switch ports: a small, fixed number of physical queues.

Commodity switches offer a handful of queues per port (typically 8
traffic classes). Section 2 of the paper argues this is fundamentally
insufficient: with far more entities than queues, *some entities must
share a queue*, and within a shared queue all of Section 2's interference
problems reappear. :class:`MultiQueuePort` models exactly that: N
physical FIFOs, a classifier mapping packets to queues (entities hash
onto the limited set), and a scheduler (round-robin or strict priority)
serving them.

Used by the multi-queue interference tests/bench to reproduce the paper's
"even with multiple physical queues ..." argument (Section 2.2).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..errors import ConfigurationError
from ..net.packet import Packet
from .base import QueueDiscipline
from .fifo import PhysicalFifoQueue

#: Classifier: packet -> queue index.
Classifier = Callable[[Packet], int]

ROUND_ROBIN = "rr"
STRICT_PRIORITY = "sp"
SCHEDULERS = (ROUND_ROBIN, STRICT_PRIORITY)


def hash_on_entity(num_queues: int) -> Classifier:
    """The realistic default: entities (AQ ingress IDs, or flows when
    untagged) hash onto the limited queue set — collisions unavoidable
    once entities outnumber queues."""

    def classify(packet: Packet) -> int:
        key = packet.aq_ingress_id or packet.flow_id
        return hash(key) % num_queues

    return classify


class MultiQueuePort(QueueDiscipline):
    """A port with a fixed set of physical FIFO queues and a scheduler."""

    def __init__(
        self,
        num_queues: int,
        limit_bytes_per_queue: int,
        classifier: Optional[Classifier] = None,
        scheduler: str = ROUND_ROBIN,
        ecn_threshold_bytes: Optional[int] = None,
        weights: Optional[Sequence[float]] = None,
        name: str = "",
        telemetry=None,
    ) -> None:
        if num_queues < 1:
            raise ConfigurationError(f"need at least one queue, got {num_queues}")
        if scheduler not in SCHEDULERS:
            raise ConfigurationError(
                f"scheduler must be one of {SCHEDULERS}, got {scheduler!r}"
            )
        if weights is not None and len(weights) != num_queues:
            raise ConfigurationError("one weight per queue required")
        self.num_queues = num_queues
        self.scheduler = scheduler
        self.classifier = classifier or hash_on_entity(num_queues)
        self.name = name
        # Even unnamed ports give their sub-queues distinct names: the run
        # auditor keys per-queue conservation on the node label, and two
        # queues sharing a label would be conflated into one ledger.
        base = name if name else f"mq@{id(self):x}"
        self.queues: List[PhysicalFifoQueue] = [
            PhysicalFifoQueue(
                limit_bytes=limit_bytes_per_queue,
                ecn_threshold_bytes=ecn_threshold_bytes,
                name=f"{base}.q{i}",
                telemetry=telemetry,
            )
            for i in range(num_queues)
        ]
        self.weights = list(weights) if weights is not None else [1.0] * num_queues
        self._rr_index = 0
        self._deficits = [0.0] * num_queues
        self._quantum = 1500.0
        # Sub-queues attribute flows under "<base>.qN"; the port itself
        # contributes only the summed-backlog depth samples the per-class
        # windows cannot derive (their high-waters never coincide).
        tele = telemetry if telemetry is not None and telemetry.enabled else None
        tw = tele.timewin if tele is not None else None
        # The port only records when named — sub-queues carry their own
        # "<base>.qN" handles and the unnamed composite has no label to
        # attribute the summed backlog to.
        self._timewin = tw.port_handle(name) if tw is not None and name else None

    # -- QueueDiscipline -----------------------------------------------------

    def enqueue(self, packet: Packet, now: float) -> bool:
        index = self.classifier(packet)
        if not 0 <= index < self.num_queues:
            raise ConfigurationError(
                f"classifier returned queue {index} of {self.num_queues}"
            )
        accepted = self.queues[index].enqueue(packet, now)
        tw = self._timewin
        if tw is not None and accepted:
            tw.on_depth(float(self.bytes_queued), now)
        return accepted

    def dequeue(self, now: float) -> Optional[Packet]:
        if self.scheduler == STRICT_PRIORITY:
            # Queue 0 is the highest priority.
            for queue in self.queues:
                if not queue.is_empty:
                    return queue.dequeue(now)
            return None
        # Weighted round robin with deficits. Each visit either serves the
        # queue (index unchanged, so back-to-back packets drain while the
        # deficit lasts) or grants a quantum and moves on.
        for _ in range(3 * self.num_queues):
            index = self._rr_index
            queue = self.queues[index]
            if queue.is_empty:
                self._deficits[index] = 0.0
                self._rr_index = (index + 1) % self.num_queues
                continue
            head_size = queue._queue[0].size
            if self._deficits[index] >= head_size:
                self._deficits[index] -= head_size
                return queue.dequeue(now)
            self._deficits[index] += self._quantum * self.weights[index]
            self._rr_index = (index + 1) % self.num_queues
        # All empty (or pathological packet > several quanta; bounded scan).
        return None

    def drain(self, now: float, reason: str = "switch_restart") -> List[Packet]:
        """Discard every sub-queue's backlog as fault-attributed drops."""
        drained: List[Packet] = []
        for index, queue in enumerate(self.queues):
            drained.extend(queue.drain(now, reason))
            self._deficits[index] = 0.0
        self._rr_index = 0
        return drained

    @property
    def bytes_queued(self) -> int:
        return sum(q.bytes_queued for q in self.queues)

    @property
    def packets_queued(self) -> int:
        return sum(q.packets_queued for q in self.queues)

    def queue_of(self, packet: Packet) -> int:
        """Which queue a packet would be classified into (for tests)."""
        return self.classifier(packet)
