"""Subpackage of the AQ reproduction."""
