"""Token-bucket shaper — the PRL (pre-determined rate limiter) baseline.

Models an HTB-style egress limiter at the end host: packets are released
at the configured rate; bursts up to ``bucket_bytes`` pass through
unshaped; excess is buffered (and dropped beyond the backlog cap). The
configuration is fixed for the lifetime of the entity, which is exactly
the property the paper's Figures 6-7 and Table 3 exercise: a fixed split
cannot track an arbitrary, shifting traffic pattern.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from ..errors import ConfigurationError
from ..net.packet import ACK, Packet
from ..obs.events import EV_RATE_LIMIT
from ..units import MTU_BYTES

#: Tolerance for float round-off in token accounting. Without it, a
#: deficit of ~1e-10 bytes schedules a ~1e-18 s release delay, which is
#: below the double-precision ulp of the clock — time freezes and the
#: release event re-fires forever.
_EPSILON_BYTES = 1e-6
#: Floor on the release delay (50 ns ~= a few bytes at 1 Gbps) so release
#: events always advance simulation time.
_MIN_RELEASE_DELAY = 50e-9


class TokenBucketShaper:
    """Shapes a packet stream to ``rate_bps`` with bounded burst."""

    def __init__(
        self,
        sim,
        rate_bps: float,
        forward: Callable[[Packet], None],
        bucket_bytes: int = 10 * MTU_BYTES,
        backlog_limit_bytes: int = 2 * 1024 * 1024,
        shape_acks: bool = False,
    ) -> None:
        if rate_bps <= 0:
            raise ConfigurationError(f"shaper rate must be positive, got {rate_bps}")
        if bucket_bytes < MTU_BYTES:
            raise ConfigurationError(
                f"bucket must hold at least one MTU, got {bucket_bytes}"
            )
        self.sim = sim
        self.rate_bps = rate_bps
        self.forward = forward
        self.bucket_bytes = bucket_bytes
        self.backlog_limit_bytes = backlog_limit_bytes
        self.shape_acks = shape_acks
        self.submitted_bytes = 0
        self._tokens = float(bucket_bytes)
        self._last_refill = sim.now
        self._backlog: Deque[Packet] = deque()
        self._backlog_bytes = 0
        self._release_event = None
        self.shaped_packets = 0
        self.dropped_packets = 0
        tele = sim.telemetry
        self._tele = tele if tele is not None and tele.enabled else None
        if self._tele is not None:
            self._tele.metrics.add_collector(self._collect_metrics)

    def _collect_metrics(self, registry) -> None:
        labels = {"shaper": f"tb@{id(self):x}"}
        registry.counter("shaper_shaped_packets", **labels).set(self.shaped_packets)
        registry.counter("shaper_dropped_packets", **labels).set(
            self.dropped_packets
        )
        registry.gauge("shaper_rate_bps", **labels).set(self.rate_bps)
        registry.gauge("shaper_backlog_bytes", **labels).set(self._backlog_bytes)

    # -- configuration ------------------------------------------------------------

    def set_rate(self, rate_bps: float) -> None:
        """Retarget the shaper (used by the DRL baseline's adjuster)."""
        if rate_bps <= 0:
            raise ConfigurationError(f"shaper rate must be positive, got {rate_bps}")
        self._refill()
        self.rate_bps = rate_bps
        # A pending release was computed at the old rate; redo it.
        if self._release_event is not None:
            self._release_event.cancel()
            self._release_event = None
            self._schedule_release()

    # -- shaping -------------------------------------------------------------------

    def submit(self, packet: Packet) -> None:
        """Entry point: forward now if tokens allow, else buffer.

        Pure ACKs bypass shaping by default (like real deployments, which
        would otherwise strangle the reverse path's feedback loop).
        """
        if packet.kind == ACK and not self.shape_acks:
            self.forward(packet)
            return
        self.submitted_bytes += packet.size
        self._refill()
        if not self._backlog and self._tokens + _EPSILON_BYTES >= packet.size:
            self._tokens -= packet.size
            self.forward(packet)
            return
        if self._backlog_bytes + packet.size > self.backlog_limit_bytes:
            self.dropped_packets += 1
            tele = self._tele
            if tele is not None and tele.enabled:
                # No aq_id: the auditor uses its absence to tell shaper
                # discards (pre-injection) from in-fabric AQ limit drops.
                tele.trace.emit_fields(
                    EV_RATE_LIMIT, self.sim.now, node="shaper",
                    flow_id=packet.flow_id, size=packet.size,
                    value=float(self._backlog_bytes), reason="shaper",
                )
            return
        self._backlog.append(packet)
        self._backlog_bytes += packet.size
        self.shaped_packets += 1
        self._schedule_release()

    @property
    def backlog_bytes(self) -> int:
        return self._backlog_bytes

    # -- fluid fast path (driven by :mod:`repro.sim.fluid`) ------------------------

    def fluid_pause(self) -> "tuple[float, float]":
        """Hand the drain over to the fluid engine: settle the token count,
        cancel the pending release, and return ``(tokens, backlog_bytes)``
        as the float state the closed form evolves."""
        self._refill()
        if self._release_event is not None:
            self._release_event.cancel()
            self._release_event = None
        return self._tokens, float(self._backlog_bytes)

    def fluid_phase(
        self, tokens: float, backlog: float, arrival_Bps: float
    ) -> "tuple[float, float, float, float, Optional[float]]":
        """Piecewise-linear shaper dynamics under constant fluid input.

        Returns ``(out_Bps, drop_Bps, tokens_slope, backlog_slope,
        boundary_s)`` for the phase the ``(tokens, backlog)`` state is in:

        * **pass-through** — no backlog and tokens cover the input: output
          equals input, tokens drift at ``ρ − λ`` (boundary when the
          bucket runs dry under ``λ > ρ``);
        * **drain** — backlog present, or bucket empty with ``λ > ρ``:
          output is the token rate ``ρ``, backlog drifts at ``λ − ρ``
          (boundary when the backlog empties or reaches the cap);
        * **saturated** — backlog pinned at the cap with ``λ > ρ``: output
          ``ρ``, the excess ``λ − ρ`` is dropped pre-injection.

        ``boundary_s`` is ``None`` when the phase is stable under constant
        input. State stays with the caller (the fluid engine) so epochs can
        be advanced without touching the packet-mode deque.
        """
        rho = self.rate_bps / 8.0
        lam = arrival_Bps
        if backlog > _EPSILON_BYTES or (tokens <= _EPSILON_BYTES and lam > rho):
            if backlog >= self.backlog_limit_bytes - _EPSILON_BYTES and lam > rho:
                return rho, lam - rho, 0.0, 0.0, None
            slope = lam - rho
            if slope > 0.0:
                boundary: Optional[float] = (
                    self.backlog_limit_bytes - backlog
                ) / slope
            elif slope < 0.0 and backlog > _EPSILON_BYTES:
                boundary = backlog / -slope
            else:
                boundary = None
            return rho, 0.0, 0.0, slope, boundary
        t_slope = rho - lam
        boundary = tokens / -t_slope if t_slope < 0.0 else None
        return lam, 0.0, t_slope, 0.0, boundary

    def fluid_account(
        self, submitted_bytes: int, shaped_packets: int, dropped_packets: int
    ) -> None:
        """Book one epoch's aggregate counters (mirrors :meth:`submit`)."""
        self.submitted_bytes += submitted_bytes
        self.shaped_packets += shaped_packets
        self.dropped_packets += dropped_packets

    def fluid_resume(
        self, tokens: float, backlog_packets, backlog_bytes: int
    ) -> None:
        """Adopt the closed-form end state and re-arm per-packet releases."""
        self._tokens = min(float(self.bucket_bytes), max(0.0, tokens))
        self._last_refill = self.sim.now
        self._backlog = deque(backlog_packets)
        self._backlog_bytes = int(backlog_bytes)
        self._schedule_release()

    def _refill(self) -> None:
        now = self.sim.now
        elapsed = now - self._last_refill
        if elapsed > 0:
            self._tokens = min(
                float(self.bucket_bytes),
                self._tokens + elapsed * self.rate_bps / 8.0,
            )
            self._last_refill = now

    def _schedule_release(self) -> None:
        if self._release_event is not None or not self._backlog:
            return
        head = self._backlog[0]
        deficit = head.size - self._tokens
        if deficit <= _EPSILON_BYTES:
            delay = 0.0
        else:
            delay = max(deficit * 8.0 / self.rate_bps, _MIN_RELEASE_DELAY)
        self._release_event = self.sim.schedule(delay, self._release)

    def _release(self) -> None:
        self._release_event = None
        self._refill()
        while self._backlog and self._tokens + _EPSILON_BYTES >= self._backlog[0].size:
            packet = self._backlog.popleft()
            self._backlog_bytes -= packet.size
            self._tokens -= packet.size
            self.forward(packet)
        self._schedule_release()
