"""ElasticSwitch-style dynamic rate limiter — the DRL baseline.

ElasticSwitch (Popa et al., SIGCOMM 2013) enforces hose-model VM
guarantees with two periodically-run layers:

* **Guarantee Partitioning (GP)** — each VM's outbound (resp. inbound)
  guarantee is divided among its currently-active destination (resp.
  source) VMs according to demand; a VM-pair's guarantee is the min of the
  two splits.
* **Rate Allocation (RA)** — pair rate limiters track the pair guarantee
  and optionally probe above it when no congestion is observed.

This implementation keeps the part that drives the paper's comparisons —
the *15 ms adjustment interval* between demand shifts and limiter updates
(Section 5.1) — and simplifies the distributed GP protocol into a
centralized computation (the simulator has the global view anyway; noted
in DESIGN.md). RA probing above the guarantee is off by default because
the paper's DRL rows enforce the profile strictly (Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import ConfigurationError
from ..net.host import Host
from ..net.packet import ACK, Packet
from ..sim.engine import PeriodicTask
from ..units import ms
from .token_bucket import TokenBucketShaper

PairKey = Tuple[str, str]

#: ElasticSwitch's rate-adjustment period as configured in the paper.
DEFAULT_INTERVAL = ms(15)

#: Fraction of the source VM's guarantee given to pairs that showed no
#: demand in the last window, so a resuming pair can ramp before the next
#: tick re-partitions (ElasticSwitch's RA similarly never drops a pair's
#: limiter to zero).
IDLE_PAIR_FLOOR = 0.25


@dataclass
class VmProfile:
    """Hose-model guarantee of one VM."""

    name: str
    outbound_bps: float
    inbound_bps: float

    def __post_init__(self) -> None:
        if self.outbound_bps <= 0 or self.inbound_bps <= 0:
            raise ConfigurationError(
                f"VM {self.name}: guarantees must be positive "
                f"(out={self.outbound_bps}, in={self.inbound_bps})"
            )


class _PairShaper:
    """Per-host shaper that classifies by destination into pair buckets."""

    def __init__(self, sim, host: Host, manager: "ElasticSwitch") -> None:
        self.sim = sim
        self.host = host
        self.manager = manager
        self.buckets: Dict[str, TokenBucketShaper] = {}
        #: Bytes submitted per destination since the manager's last tick.
        self.submitted: Dict[str, int] = {}

    def submit(self, packet: Packet) -> None:
        if packet.kind == ACK:
            # Control traffic is never shaped (as in real deployments).
            self.host.forward_to_nic(packet)
            return
        dst = packet.dst
        bucket = self.buckets.get(dst)
        if bucket is None:
            rate = self.manager.initial_pair_rate(self.host.name, dst)
            bucket = TokenBucketShaper(
                self.sim, rate, self.host.forward_to_nic
            )
            self.buckets[dst] = bucket
        self.submitted[dst] = self.submitted.get(dst, 0) + packet.size
        bucket.submit(packet)


class ElasticSwitch:
    """Centralized GP+RA manager over a set of VM hosts."""

    def __init__(
        self,
        network,
        interval: float = DEFAULT_INTERVAL,
        work_conserving: bool = False,
        probe_increase: float = 0.2,
        congestion_decrease: float = 0.3,
        link_capacity_bps: Optional[float] = None,
    ) -> None:
        self.network = network
        self.interval = interval
        self.work_conserving = work_conserving
        self.probe_increase = probe_increase
        self.congestion_decrease = congestion_decrease
        self.link_capacity_bps = link_capacity_bps
        self.profiles: Dict[str, VmProfile] = {}
        self.shapers: Dict[str, _PairShaper] = {}
        #: VM -> budget-owner name; by default each VM owns its own budget,
        #: but VMs of one entity may pool theirs (Figures 6/7/10 use this).
        self._owner_of: Dict[str, str] = {}
        self._pair_rates: Dict[PairKey, float] = {}
        self._delivered: Dict[PairKey, int] = {}
        self._delivered_last: Dict[PairKey, int] = {}
        self._released_last: Dict[PairKey, int] = {}
        self._task: Optional[PeriodicTask] = None

    # -- setup -------------------------------------------------------------------

    def add_vm(self, profile: VmProfile, owner: Optional[str] = None) -> None:
        """Register a VM. ``owner`` pools budgets: all VMs sharing an owner
        share one outbound/inbound budget (the sum of their profiles), and
        GP splits that pooled budget across the owner's active pairs."""
        if profile.name in self.profiles:
            raise ConfigurationError(f"VM {profile.name} already registered")
        host = self.network.hosts.get(profile.name)
        if host is None:
            raise ConfigurationError(f"no host named {profile.name}")
        self.profiles[profile.name] = profile
        self._owner_of[profile.name] = owner if owner is not None else profile.name
        shaper = _PairShaper(self.network.sim, host, self)
        self.shapers[profile.name] = shaper
        host.install_shaper(shaper)
        host.receive_taps.append(self._count_delivery)

    def _owner_budget(self, owner: str, outbound: bool) -> float:
        total = 0.0
        for vm, vm_owner in self._owner_of.items():
            if vm_owner == owner:
                profile = self.profiles[vm]
                total += profile.outbound_bps if outbound else profile.inbound_bps
        return total

    def start(self) -> None:
        """Begin the periodic GP/RA adjustment loop."""
        if self._task is not None:
            raise ConfigurationError("ElasticSwitch already started")
        self._task = PeriodicTask(self.network.sim, self.interval, self._tick)

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    # -- signals --------------------------------------------------------------------

    def _count_delivery(self, packet: Packet, now: float) -> None:
        if packet.kind == ACK:
            return
        key = (packet.src, packet.dst)
        if packet.src in self.profiles:
            self._delivered[key] = self._delivered.get(key, 0) + packet.size

    def initial_pair_rate(self, src: str, dst: str) -> float:
        """Rate for a pair's first packet, before any GP tick ran.

        Optimistic cold start at the source VM's full outbound guarantee —
        the next GP tick partitions it properly. (A pessimistic cold start
        would throttle every short flow that fits inside one 15 ms window,
        which is not how ElasticSwitch behaves.)
        """
        rate = self._pair_rates.get((src, dst))
        if rate is not None:
            return rate
        rate = self.profiles[src].outbound_bps
        self._pair_rates[(src, dst)] = rate
        return rate

    # -- the periodic adjustment ------------------------------------------------------

    def _demands(self) -> Dict[PairKey, float]:
        """Per-pair demand observed since the last tick (bps), including
        the shaper backlog that is still waiting."""
        demands: Dict[PairKey, float] = {}
        for src, shaper in self.shapers.items():
            for dst, submitted in shaper.submitted.items():
                backlog = 0
                bucket = shaper.buckets.get(dst)
                if bucket is not None:
                    backlog = bucket.backlog_bytes
                demands[(src, dst)] = (submitted + backlog) * 8.0 / self.interval
            shaper.submitted.clear()
        return demands

    def _tick(self) -> None:
        demands = self._demands()

        # Guarantee Partitioning: split guarantees over active pairs by demand.
        out_splits = self._split(demands, by_src=True)
        in_splits = self._split(demands, by_src=False)

        for src, shaper in self.shapers.items():
            profile = self.profiles[src]
            floor = profile.outbound_bps * IDLE_PAIR_FLOOR
            for dst, bucket in shaper.buckets.items():
                key = (src, dst)
                pair_guarantee = min(
                    out_splits.get(key, floor),
                    in_splits.get(key, float("inf")),
                )
                pair_guarantee = max(pair_guarantee, floor)
                rate = pair_guarantee
                if self.work_conserving:
                    rate = self._rate_allocation(key, bucket, pair_guarantee)
                self._pair_rates[key] = rate
                bucket.set_rate(rate)

    def _split(
        self, demands: Dict[PairKey, float], by_src: bool
    ) -> Dict[PairKey, float]:
        """Divide each budget owner's guarantee among its active pairs
        proportionally to demand (the GP step)."""
        groups: Dict[str, Dict[PairKey, float]] = {}
        for (src, dst), demand in demands.items():
            if demand <= 0:
                continue
            vm = src if by_src else dst
            if vm not in self.profiles:
                continue
            owner = self._owner_of[vm]
            groups.setdefault(owner, {})[(src, dst)] = demand
        splits: Dict[PairKey, float] = {}
        for owner, pair_demands in groups.items():
            total = sum(pair_demands.values())
            budget = self._owner_budget(owner, outbound=by_src)
            for key, demand in pair_demands.items():
                splits[key] = budget * demand / total
        return splits

    def _rate_allocation(
        self, key: PairKey, bucket: TokenBucketShaper, pair_guarantee: float
    ) -> float:
        """RA probing: climb above the guarantee while loss-free."""
        delivered = self._delivered.get(key, 0)
        delivered_delta = delivered - self._delivered_last.get(key, 0)
        self._delivered_last[key] = delivered
        released_bytes = self._released_last.get(key, 0)
        current = self._pair_rates.get(key, pair_guarantee)
        sent_estimate = current * self.interval / 8.0
        congested = (
            delivered_delta > 0 and delivered_delta < 0.9 * min(sent_estimate, released_bytes or sent_estimate)
        )
        if congested:
            rate = max(pair_guarantee, current * (1.0 - self.congestion_decrease))
        else:
            ceiling = self.link_capacity_bps or float("inf")
            rate = min(ceiling, current * (1.0 + self.probe_increase))
            rate = max(rate, pair_guarantee)
        self._released_last[key] = int(sent_estimate)
        return rate
