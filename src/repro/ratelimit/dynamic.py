"""Entity-level dynamic rate limiting — the DRL baseline for the
bandwidth-sharing experiments (Figures 6, 7, 10).

Each VM of an entity gets a token-bucket limiter; every adjustment
interval (15 ms, matching ElasticSwitch's configuration in the paper) the
entity's total share is re-partitioned across its VMs proportionally to
their measured demand (bytes submitted plus backlog), with a ramp-up floor
for idle VMs. This is "the rates are dynamically adjusted based on the
traffic pattern" of Section 5.1, at VM granularity.

The pair-granularity hose-model variant lives in
:mod:`repro.ratelimit.elasticswitch` and is used for the Table 3
bi-directional-profile experiment.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import ConfigurationError
from ..sim.engine import PeriodicTask
from ..units import ms
from .token_bucket import TokenBucketShaper

#: Fraction of a VM's even split retained while it shows no demand.
IDLE_VM_FLOOR = 0.25


class DynamicVmAllocator:
    """Re-partitions one entity's bandwidth share across its VMs."""

    def __init__(
        self,
        network,
        entity_share_bps: float,
        vm_hosts: List[str],
        interval: float = ms(15),
        idle_floor: float = IDLE_VM_FLOOR,
    ) -> None:
        if entity_share_bps <= 0:
            raise ConfigurationError("entity share must be positive")
        if not vm_hosts:
            raise ConfigurationError("at least one VM host required")
        if not 0.0 <= idle_floor < 1.0:
            raise ConfigurationError(f"idle floor must be in [0, 1), got {idle_floor}")
        self.network = network
        self.entity_share_bps = entity_share_bps
        self.interval = interval
        self.idle_floor = idle_floor
        self.shapers: Dict[str, TokenBucketShaper] = {}
        self._last_submitted: Dict[str, int] = {}

        even = entity_share_bps / len(vm_hosts)
        for name in vm_hosts:
            host = network.hosts[name]
            shaper = TokenBucketShaper(network.sim, even, host.forward_to_nic)
            host.install_shaper(shaper)
            self.shapers[name] = shaper
            self._last_submitted[name] = 0
        self._task = PeriodicTask(network.sim, interval, self._tick)

    def stop(self) -> None:
        self._task.stop()

    def _demands_bps(self) -> Dict[str, float]:
        demands: Dict[str, float] = {}
        for name, shaper in self.shapers.items():
            submitted = shaper.submitted_bytes
            delta = submitted - self._last_submitted[name]
            self._last_submitted[name] = submitted
            demands[name] = (delta + shaper.backlog_bytes) * 8.0 / self.interval
        return demands

    def _tick(self) -> None:
        demands = self._demands_bps()
        even = self.entity_share_bps / len(self.shapers)
        floor = even * self.idle_floor
        active = {name: d for name, d in demands.items() if d > 0.0}
        if not active:
            for shaper in self.shapers.values():
                shaper.set_rate(even)
            return
        idle_count = len(self.shapers) - len(active)
        distributable = self.entity_share_bps - idle_count * floor
        total_demand = sum(active.values())
        for name, shaper in self.shapers.items():
            if name in active:
                rate = distributable * active[name] / total_demand
                shaper.set_rate(max(rate, floor))
            else:
                shaper.set_rate(floor)
