"""Exception hierarchy for the AQ reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch the whole family with one ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly (e.g. past scheduling)."""


class ConfigurationError(ReproError):
    """A component was configured with inconsistent or invalid parameters."""


class RoutingError(ReproError):
    """No route exists for a packet, or the topology is malformed."""


class AdmissionError(ReproError):
    """The AQ Controller declined a request (insufficient bandwidth, etc.)."""


class TransportError(ReproError):
    """A transport endpoint was driven into an invalid state."""


class FaultPlanError(ConfigurationError):
    """A fault plan is malformed (unknown kind, bad times, missing target)."""


class PartitionError(ReproError):
    """A control-plane operation was attempted while the controller is
    partitioned from the network (fault injection)."""


class ShardError(ReproError):
    """A sharded (multi-partition) run broke its synchronization contract:
    a worker crashed or desynchronized, a boundary packet violated the
    lookahead, or partitions disagreed on the epoch schedule."""
