"""Conservation-law run auditor: machine-checked invariants over the trace.

:class:`RunAuditor` is a :class:`~repro.obs.tracebus.TraceSink` that
re-derives, event by event, the bookkeeping the data plane claims to be
doing, and raises structured :class:`AuditViolation`\\ s when the two
disagree. It checks:

``flow_conservation``
    Per flow: ``injected = delivered + dropped + in-flight``. Injection
    is the ``host_send`` event (a host handing a packet to its NIC),
    delivery is ``deliver``, and drops are queue ``drop`` events plus AQ
    limit discards (``rate_limit`` events carrying an ``aq_id``; shaper
    ``rate_limit`` events fire *before* injection and are excluded).
    Checked continuously (delivered + dropped may never exceed injected)
    and at :meth:`RunAuditor.finish` (the remainder — bytes still in
    flight — may never be negative).

``queue_conservation``
    Per named queue: the backlog derived from ``enqueue``/``dequeue``
    events must equal the backlog the queue itself reports in each
    event's ``value`` field. A queue that loses, duplicates, or
    mis-sizes a packet diverges here within one event.

``queue_occupancy``
    The derived backlog must stay within ``[0, capacity]``. Capacities
    are optional — register them with
    :meth:`RunAuditor.register_queue_limit`; the lower bound is always
    enforced.

``agap_recurrence``
    Per AQ: replays Theorem 3.2 (via
    :class:`~repro.core.agap.AGapReplay`) from ``agap_update`` arrivals,
    ``rate_limit`` undos, and ``aq_rate`` rate changes, and compares the
    replayed A-Gap against the value the AQ reported.

``gate_work_conservation``
    The work-conserving gate's bypass/enforce decisions (``gate``
    events) must be consistent with the backlog and threshold it
    reports: it may only enforce when the backlog exceeds the threshold.

Violations carry the offending event window (the most recent events seen
before and including the trigger) so a failure is diagnosable without
re-running. In ``strict`` mode the first violation raises
:class:`AuditError`; otherwise violations accumulate for
:meth:`RunAuditor.report`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from ..core.agap import AGapReplay
from ..errors import ReproError
from .events import (
    EV_AGAP_UPDATE,
    EV_AQ_RATE,
    EV_DELIVER,
    EV_DEQUEUE,
    EV_DROP,
    EV_ENQUEUE,
    EV_FAULT,
    EV_FLUID_EPOCH,
    EV_GATE,
    EV_HOST_SEND,
    EV_RATE_LIMIT,
    TraceEvent,
)
from .tracebus import TraceSink

#: Drop reasons that attribute a loss to an injected fault rather than a
#: data-plane decision. ``switch_restart`` drops are queue drains — the
#: packets were already enqueued, so the derived backlog must shrink with
#: them; the on-wire reasons never touched a queue ledger.
FAULT_DROP_REASONS = ("switch_restart", "link_down", "corrupt")
_POST_ENQUEUE_FAULT_REASONS = ("switch_restart",)

#: Bytes of slack allowed between reported and derived queue backlogs
#: (queue accounting is integer arithmetic, so this only absorbs the
#: float round-trip through the event's ``value`` field).
_BACKLOG_TOL = 0.5


class AuditViolation:
    """One broken invariant, with enough context to diagnose it."""

    __slots__ = ("invariant", "time", "subject", "message", "window")

    def __init__(
        self,
        invariant: str,
        time: float,
        subject: str,
        message: str,
        window: List[dict],
    ) -> None:
        self.invariant = invariant
        self.time = time
        self.subject = subject
        self.message = message
        self.window = window

    def to_dict(self) -> dict:
        return {
            "invariant": self.invariant,
            "time": self.time,
            "subject": self.subject,
            "message": self.message,
            "window": self.window,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AuditViolation({self.invariant} @ {self.time:.6f}s "
            f"{self.subject}: {self.message})"
        )


class AuditError(ReproError):
    """Raised in strict mode when an invariant is violated."""

    def __init__(self, violation: AuditViolation) -> None:
        super().__init__(
            f"{violation.invariant} violated at t={violation.time:.6f}s "
            f"({violation.subject}): {violation.message}"
        )
        self.violation = violation


class _FlowBook:
    """Per-flow byte/packet ledger."""

    __slots__ = ("injected_bytes", "delivered_bytes", "dropped_bytes",
                 "injected_packets", "delivered_packets", "dropped_packets")

    def __init__(self) -> None:
        self.injected_bytes = 0
        self.delivered_bytes = 0
        self.dropped_bytes = 0
        self.injected_packets = 0
        self.delivered_packets = 0
        self.dropped_packets = 0

    @property
    def in_flight_bytes(self) -> int:
        return self.injected_bytes - self.delivered_bytes - self.dropped_bytes

    def to_dict(self) -> dict:
        return {
            "injected_bytes": self.injected_bytes,
            "delivered_bytes": self.delivered_bytes,
            "dropped_bytes": self.dropped_bytes,
            "in_flight_bytes": self.in_flight_bytes,
            "injected_packets": self.injected_packets,
            "delivered_packets": self.delivered_packets,
            "dropped_packets": self.dropped_packets,
        }


class RunAuditor(TraceSink):
    """Streams the trace through the conservation invariants above.

    Attach before the run (``telemetry.trace.attach(RunAuditor())`` or
    via :meth:`~repro.obs.telemetry.Telemetry.enable_audit`); call
    :meth:`finish` (or :meth:`close`) after it to run the end-of-run
    checks and collect :attr:`violations`.
    """

    def __init__(
        self,
        strict: bool = False,
        window: int = 32,
        max_violations: int = 1000,
        queue_limits: Optional[Dict[str, float]] = None,
    ) -> None:
        self.strict = strict
        self.violations: List[AuditViolation] = []
        self.events_seen = 0
        self.max_violations = max_violations
        self._window: Deque[TraceEvent] = deque(maxlen=window)
        self._flows: Dict[int, _FlowBook] = {}
        self._backlog: Dict[str, float] = {}
        self._queue_limits: Dict[str, float] = dict(queue_limits or {})
        self._agap: Dict[int, AGapReplay] = {}
        self._agap_checkable: Dict[int, bool] = {}
        self._finished = False
        #: Injected-fault observations: ``fault`` events by reason, and
        #: the drops the trace attributed to fault reasons (packets/bytes
        #: charged to the fault window, not to a conservation error).
        self.fault_events: Dict[str, int] = {}
        self.fault_dropped_packets: Dict[str, int] = {}
        self.fault_dropped_bytes: Dict[str, int] = {}

    def register_queue_limit(self, node: str, limit_bytes: float) -> None:
        """Declare a queue's capacity so the upper occupancy bound applies."""
        self._queue_limits[node] = limit_bytes

    # -- TraceSink interface ------------------------------------------------

    def handle(self, event: TraceEvent) -> None:
        self.events_seen += 1
        self._window.append(event)
        etype = event.type
        if etype == EV_ENQUEUE:
            self._on_queue_op(event, event.size or 0)
        elif etype == EV_DEQUEUE:
            self._on_queue_op(event, -(event.size or 0))
        elif etype == EV_DROP:
            self._on_drop(event)
        elif etype == EV_HOST_SEND:
            book = self._book(event.flow_id)
            book.injected_bytes += event.size or 0
            book.injected_packets += 1
        elif etype == EV_DELIVER:
            book = self._book(event.flow_id)
            book.delivered_bytes += event.size or 0
            book.delivered_packets += 1
            self._check_flow(event, book)
        elif etype == EV_AGAP_UPDATE:
            self._on_agap_update(event)
        elif etype == EV_RATE_LIMIT:
            self._on_rate_limit(event)
        elif etype == EV_AQ_RATE:
            self._on_aq_rate(event)
        elif etype == EV_GATE:
            self._on_gate(event)
        elif etype == EV_FAULT:
            self._on_fault(event)
        elif etype == EV_FLUID_EPOCH:
            self._on_fluid_epoch(event)

    def close(self) -> None:
        self.finish()

    # -- invariant implementations -----------------------------------------

    def _book(self, flow_id: Optional[int]) -> _FlowBook:
        book = self._flows.get(flow_id)
        if book is None:
            book = self._flows[flow_id] = _FlowBook()
        return book

    def _check_flow(self, event: TraceEvent, book: _FlowBook) -> None:
        if book.in_flight_bytes < 0:
            self._violate(
                "flow_conservation",
                event.time,
                f"flow {event.flow_id}",
                f"delivered+dropped bytes "
                f"({book.delivered_bytes}+{book.dropped_bytes}) exceed "
                f"injected bytes ({book.injected_bytes})",
            )

    def _on_queue_op(self, event: TraceEvent, delta: float) -> None:
        node = event.node
        if not node:
            return  # unnamed queues (micro-benches, ad-hoc tests) are not audited
        derived = self._backlog.get(node, 0.0) + delta
        self._backlog[node] = derived
        if derived < -_BACKLOG_TOL:
            self._violate(
                "queue_occupancy",
                event.time,
                node,
                f"derived backlog went negative ({derived:.0f}B) — "
                f"more bytes dequeued than enqueued",
            )
            self._backlog[node] = 0.0
            return
        limit = self._queue_limits.get(node)
        if limit is not None and derived > limit + _BACKLOG_TOL:
            self._violate(
                "queue_occupancy",
                event.time,
                node,
                f"derived backlog {derived:.0f}B exceeds capacity {limit:.0f}B",
            )
        reported = event.value
        if reported is not None and abs(reported - derived) > _BACKLOG_TOL:
            self._violate(
                "queue_conservation",
                event.time,
                node,
                f"queue reports backlog {reported:.0f}B but "
                f"enqueue/dequeue history implies {derived:.0f}B",
            )
            self._backlog[node] = reported  # re-anchor: one fault, one violation

    def _on_drop(self, event: TraceEvent) -> None:
        reason = event.reason
        if reason in FAULT_DROP_REASONS:
            self.fault_dropped_packets[reason] = (
                self.fault_dropped_packets.get(reason, 0) + 1
            )
            self.fault_dropped_bytes[reason] = (
                self.fault_dropped_bytes.get(reason, 0) + (event.size or 0)
            )
            if reason in _POST_ENQUEUE_FAULT_REASONS:
                # A restart drain discards packets that were *in* the
                # queue: the derived backlog must shrink with each one,
                # and the queue's reported backlog is re-verified — this
                # is how conservation holds *across* the restart instead
                # of being suspended for it.
                self._on_queue_op(event, -(event.size or 0))
        if event.flow_id is not None:
            book = self._book(event.flow_id)
            book.dropped_bytes += event.size or 0
            book.dropped_packets += 1
            self._check_flow(event, book)

    def _on_fault(self, event: TraceEvent) -> None:
        reason = event.reason or "fault"
        self.fault_events[reason] = self.fault_events.get(reason, 0) + 1
        if reason == "aq_state_lost" and event.aq_id is not None:
            # The switch lost this AQ's registers: the Theorem 3.2 replay
            # restarts from scratch when the controller's redeploy
            # re-announces the rate (a fresh ``aq_rate`` event).
            self._agap.pop(event.aq_id, None)
            self._agap_checkable[event.aq_id] = False

    def _on_agap_update(self, event: TraceEvent) -> None:
        aq_id = event.aq_id
        if aq_id is None or event.value is None:
            return
        replay = self._agap.get(aq_id)
        if replay is None:
            replay = self._agap[aq_id] = AGapReplay()
        if self._agap_checkable.get(aq_id) and event.size is not None:
            expected = replay.expected_on_arrival(event.time, event.size)
            tol = 1e-6 * max(1.0, abs(expected)) + 1e-9
            if abs(expected - event.value) > tol:
                self._violate(
                    "agap_recurrence",
                    event.time,
                    f"aq {aq_id}",
                    f"reported A-Gap {event.value:.3f}B disagrees with "
                    f"Theorem 3.2 replay {expected:.3f}B "
                    f"(size {event.size}B)",
                )
        replay.commit_arrival(event.time, event.value)

    def _on_rate_limit(self, event: TraceEvent) -> None:
        aq_id = event.aq_id
        if aq_id is None:
            return  # shaper discard: pre-injection, not an in-network drop
        replay = self._agap.get(aq_id)
        if replay is not None and event.size is not None and event.reason != "fluid":
            # Fluid epochs book their drops in aggregate; the epoch's
            # ``fluid_epoch`` event re-anchors the replayed gap, so undoing
            # here would double-count what the closed form already excluded.
            replay.on_undo(event.size)
        if event.flow_id is not None:
            book = self._book(event.flow_id)
            book.dropped_bytes += event.size or 0
            book.dropped_packets += 1
            self._check_flow(event, book)

    def _on_fluid_epoch(self, event: TraceEvent) -> None:
        """Check a fluid epoch's end gap against the recurrence bounds.

        Per-packet replay is impossible across an analytic epoch (there
        are no per-packet events), but Theorem 3.2 still brackets the
        reachable gap: with ``S`` bytes admitted over ``Δt`` at drain rate
        ``R``, the end gap must lie in ``[max(0, g₀ + S − R·Δt/8),
        g₀ + S]`` — the lower bound is the no-clamping trajectory (the
        ``max(0, ·)`` clamp can only keep the gap higher), the upper bound
        is zero drain. The replay then re-anchors at the reported value,
        exactly like ``commit_arrival`` on a per-packet update.
        """
        aq_id = event.aq_id
        if aq_id is None or event.value is None:
            return
        replay = self._agap.get(aq_id)
        if replay is None:
            replay = self._agap[aq_id] = AGapReplay()
        if self._agap_checkable.get(aq_id) and event.size is not None:
            admitted = float(event.size)
            dt = event.time - replay.last_time
            drain = (replay.rate_bps / 8.0) * max(0.0, dt)
            upper = replay.gap + admitted
            lower = max(0.0, upper - drain)
            tol = 1e-6 * max(1.0, abs(upper)) + 1.0
            if not (lower - tol <= event.value <= upper + tol):
                self._violate(
                    "agap_recurrence",
                    event.time,
                    f"aq {aq_id}",
                    f"fluid epoch reports end gap {event.value:.3f}B outside "
                    f"the Theorem 3.2 envelope [{lower:.3f}, {upper:.3f}]B "
                    f"(admitted {admitted:.0f}B over {dt:.6f}s)",
                )
        replay.commit_arrival(event.time, event.value)

    def _on_aq_rate(self, event: TraceEvent) -> None:
        aq_id = event.aq_id
        if aq_id is None or event.value is None:
            return
        replay = self._agap.get(aq_id)
        if replay is None:
            replay = self._agap[aq_id] = AGapReplay()
        replay.on_rate(event.time, event.value)
        self._agap_checkable[aq_id] = True

    def _on_gate(self, event: TraceEvent) -> None:
        if event.value is None or event.size is None or event.reason is None:
            return
        backlog, threshold = event.value, event.size
        if event.reason == "enforce" and backlog <= threshold:
            self._violate(
                "gate_work_conservation",
                event.time,
                event.node or "gate",
                f"gate enforced AQs at backlog {backlog:.0f}B although the "
                f"bypass threshold is {threshold:.0f}B",
            )
        elif event.reason == "bypass" and backlog > threshold:
            self._violate(
                "gate_work_conservation",
                event.time,
                event.node or "gate",
                f"gate bypassed AQs at backlog {backlog:.0f}B above the "
                f"threshold {threshold:.0f}B",
            )

    def _violate(
        self, invariant: str, time: float, subject: str, message: str
    ) -> None:
        if len(self.violations) >= self.max_violations:
            return
        violation = AuditViolation(
            invariant, time, subject, message,
            [e.to_dict() for e in self._window],
        )
        self.violations.append(violation)
        if self.strict:
            raise AuditError(violation)

    # -- end-of-run ---------------------------------------------------------

    def finish(self) -> List[AuditViolation]:
        """Run the final conservation checks; idempotent."""
        if self._finished:
            return self.violations
        self._finished = True
        for flow_id, book in sorted(self._flows.items(), key=lambda kv: kv[0] or 0):
            if book.in_flight_bytes < 0:
                self._violate(
                    "flow_conservation",
                    -1.0,
                    f"flow {flow_id}",
                    f"at end of run delivered+dropped bytes "
                    f"({book.delivered_bytes}+{book.dropped_bytes}) exceed "
                    f"injected bytes ({book.injected_bytes})",
                )
        return self.violations

    def report(self) -> dict:
        """JSON-safe summary: violation list plus the per-flow ledgers."""
        self.finish()
        out = {
            "events_seen": self.events_seen,
            "violation_count": len(self.violations),
            "violations": [v.to_dict() for v in self.violations],
            "flows": {
                str(fid): book.to_dict()
                for fid, book in sorted(
                    self._flows.items(), key=lambda kv: kv[0] or 0
                )
            },
        }
        if self.fault_events or self.fault_dropped_packets:
            out["faults"] = {
                "events": dict(self.fault_events),
                "attributed_dropped_packets": dict(self.fault_dropped_packets),
                "attributed_dropped_bytes": dict(self.fault_dropped_bytes),
            }
        return out
