"""TraceBus: fan-out of typed events to pluggable sinks.

The bus is the *push* half of the observability layer. Emitting is a
plain method call — components hold a reference to the bus (or reach it
via ``sim.telemetry.trace``) and guard emission with the telemetry
``enabled`` flag so the disabled path costs one attribute check.

Three sinks ship with the bus:

* :class:`RingBufferSink` — last-N events in memory, for tests and
  interactive debugging.
* :class:`JsonlSink` — one JSON object per line, the interchange format
  the CLI's ``--telemetry out.jsonl`` writes and ``repro telemetry
  summarize`` reads.
* :class:`SummarySink` — O(1)-space counts by type / node / AQ id; the
  reconstruction tests compare these against component counters.
"""

from __future__ import annotations

import json
from collections import Counter as _TallyCounter
from collections import deque
from typing import IO, Callable, Deque, Iterator, List, Optional, Union

from ..errors import ConfigurationError
from .events import TraceEvent


class TraceSink:
    """Interface: receives every event published on the bus."""

    def handle(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release resources; called by ``TraceBus.close()``."""


class RingBufferSink(TraceSink):
    """Keeps the most recent ``capacity`` events."""

    def __init__(self, capacity: int = 10000) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"ring capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.total_seen = 0

    def handle(self, event: TraceEvent) -> None:
        self.events.append(event)
        self.total_seen += 1

    @property
    def dropped(self) -> int:
        """Events that fell off the front of the ring."""
        return self.total_seen - len(self.events)

    def of_type(self, event_type: str) -> List[TraceEvent]:
        return [e for e in self.events if e.type == event_type]


class JsonlSink(TraceSink):
    """Appends each event as a JSON line to a file or file-like object."""

    def __init__(self, destination: Union[str, IO[str]]) -> None:
        if isinstance(destination, str):
            self._fh: IO[str] = open(destination, "w", encoding="utf-8")
            self._owns_fh = True
        else:
            self._fh = destination
            self._owns_fh = False
        self.events_written = 0

    def handle(self, event: TraceEvent) -> None:
        self._fh.write(json.dumps(event.to_dict(), separators=(",", ":")))
        self._fh.write("\n")
        self.events_written += 1

    def close(self) -> None:
        self._fh.flush()
        if self._owns_fh:
            self._fh.close()


class SummarySink(TraceSink):
    """Constant-space tallies of the event stream."""

    def __init__(self) -> None:
        self.by_type: _TallyCounter = _TallyCounter()
        self.by_node: _TallyCounter = _TallyCounter()
        self.by_aq: _TallyCounter = _TallyCounter()
        self.bytes_by_type: _TallyCounter = _TallyCounter()
        self.first_time: Optional[float] = None
        self.last_time: Optional[float] = None

    def handle(self, event: TraceEvent) -> None:
        self.by_type[event.type] += 1
        if event.node is not None:
            self.by_node[(event.type, event.node)] += 1
        if event.aq_id is not None:
            self.by_aq[(event.type, event.aq_id)] += 1
        if event.size is not None:
            self.bytes_by_type[event.type] += event.size
        if self.first_time is None:
            self.first_time = event.time
        self.last_time = event.time

    def count(self, event_type: str, node: Optional[str] = None,
              aq_id: Optional[int] = None) -> int:
        if node is not None:
            return self.by_node[(event_type, node)]
        if aq_id is not None:
            return self.by_aq[(event_type, aq_id)]
        return self.by_type[event_type]

    def to_dict(self) -> dict:
        return {
            "by_type": dict(self.by_type),
            "bytes_by_type": dict(self.bytes_by_type),
            "by_node": {f"{t}@{n}": c for (t, n), c in self.by_node.items()},
            "by_aq": {f"{t}@aq{a}": c for (t, a), c in self.by_aq.items()},
            "first_time": self.first_time,
            "last_time": self.last_time,
        }


class TraceBus:
    """Publishes :class:`TraceEvent` objects to every attached sink."""

    def __init__(self) -> None:
        self._sinks: List[TraceSink] = []
        self.events_published = 0

    def attach(self, sink: TraceSink) -> TraceSink:
        self._sinks.append(sink)
        return sink

    def detach(self, sink: TraceSink) -> None:
        self._sinks.remove(sink)

    @property
    def has_sinks(self) -> bool:
        return bool(self._sinks)

    def emit(self, event: TraceEvent) -> None:
        self.events_published += 1
        for sink in self._sinks:
            sink.handle(event)

    def emit_fields(
        self,
        type: str,
        time: float,
        node: Optional[str] = None,
        flow_id: Optional[int] = None,
        aq_id: Optional[int] = None,
        size: Optional[int] = None,
        value: Optional[float] = None,
        reason: Optional[str] = None,
    ) -> None:
        """Convenience wrapper so hot-path call sites stay one line."""
        self.emit(TraceEvent(type, time, node, flow_id, aq_id, size, value, reason))

    def close(self) -> None:
        for sink in self._sinks:
            sink.close()


def read_jsonl(
    path: str,
    *,
    strict: bool = True,
    on_skip: Optional[Callable[[int, str], None]] = None,
) -> Iterator[TraceEvent]:
    """Stream events back from a :class:`JsonlSink` file.

    By default a malformed line raises :class:`ConfigurationError` with
    the offending line number. With ``strict=False`` bad lines (invalid
    JSON — e.g. a truncated final line — or records missing the required
    ``type``/``time`` keys) are skipped instead; ``on_skip(lineno, detail)``
    is called for each so callers can warn. I/O errors (missing or
    unreadable file) always propagate as :class:`OSError`.
    """
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
                if not isinstance(data, dict):
                    raise KeyError("not a JSON object")
                event = TraceEvent.from_dict(data)
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                if strict:
                    raise ConfigurationError(
                        f"{path}:{lineno}: invalid JSONL trace line: {exc}"
                    ) from exc
                if on_skip is not None:
                    on_skip(lineno, str(exc))
                continue
            yield event
