"""Typed trace events — the vocabulary of the TraceBus.

Every event is a :class:`TraceEvent` with a small fixed field set so
sinks can serialize without per-type schemas. The ``type`` strings below
are the core vocabulary; components may emit additional types, but the
seven here are what the CI smoke test and ``repro telemetry summarize``
treat as first-class.

Field semantics (``None`` means "not applicable", dropped from JSON):

========== ===================================================================
``type``   one of the ``EV_*`` constants (or a custom string)
``time``   simulation time in seconds
``node``   emitting component, e.g. ``"s0.p0"`` (switch port queue),
           ``"h1.nic"`` (host NIC queue), ``"tcp"`` (a transport)
``flow_id`` transport flow id carried by the packet, if any
``aq_id``  Augmented Queue id for AQ-originated events
``size``   packet size in bytes, where a packet is involved
``value``  type-specific scalar: the A-Gap in bytes for ``agap_update``,
           the congestion window in bytes for ``cwnd_change``, the
           backlog in bytes for queue events
========== ===================================================================
"""

from __future__ import annotations

from typing import Optional

#: A packet was accepted into a physical queue.
EV_ENQUEUE = "enqueue"
#: A packet left a physical queue for transmission.
EV_DEQUEUE = "dequeue"
#: A packet was discarded by a physical queue (tail/RED drop).
EV_DROP = "drop"
#: A packet got its CE bit set (physical ECN or AQ virtual ECN).
EV_ECN_MARK = "ecn_mark"
#: An Augmented Queue recomputed its A-Gap on arrival.
EV_AGAP_UPDATE = "agap_update"
#: A rate limiter discarded a packet (AQ limit-drop or shaper backlog cap).
EV_RATE_LIMIT = "rate_limit"
#: A congestion-control algorithm changed its window.
EV_CWND_CHANGE = "cwnd_change"

#: The canonical event vocabulary, in emission-likelihood order.
CORE_EVENT_TYPES = (
    EV_ENQUEUE,
    EV_DEQUEUE,
    EV_DROP,
    EV_ECN_MARK,
    EV_AGAP_UPDATE,
    EV_RATE_LIMIT,
    EV_CWND_CHANGE,
)

_FIELDS = ("type", "time", "node", "flow_id", "aq_id", "size", "value")


class TraceEvent:
    """One structured observation; cheap to construct, trivially JSON-able."""

    __slots__ = _FIELDS

    def __init__(
        self,
        type: str,
        time: float,
        node: Optional[str] = None,
        flow_id: Optional[int] = None,
        aq_id: Optional[int] = None,
        size: Optional[int] = None,
        value: Optional[float] = None,
    ) -> None:
        self.type = type
        self.time = time
        self.node = node
        self.flow_id = flow_id
        self.aq_id = aq_id
        self.size = size
        self.value = value

    def to_dict(self) -> dict:
        """Compact dict: ``None`` fields are omitted entirely."""
        out = {"type": self.type, "time": self.time}
        for field in _FIELDS[2:]:
            val = getattr(self, field)
            if val is not None:
                out[field] = val
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "TraceEvent":
        return cls(
            type=data["type"],
            time=data["time"],
            node=data.get("node"),
            flow_id=data.get("flow_id"),
            aq_id=data.get("aq_id"),
            size=data.get("size"),
            value=data.get("value"),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{f}={getattr(self, f)!r}"
            for f in _FIELDS
            if getattr(self, f) is not None
        )
        return f"TraceEvent({parts})"
