"""Typed trace events — the vocabulary of the TraceBus.

Every event is a :class:`TraceEvent` with a small fixed field set so
sinks can serialize without per-type schemas. The ``type`` strings below
are the core vocabulary; components may emit additional types, but the
seven in :data:`CORE_EVENT_TYPES` are what the CI smoke test and
``repro telemetry summarize`` treat as first-class. The four in
:data:`AUDIT_EVENT_TYPES` exist so the conservation-law auditor
(:mod:`repro.obs.audit`) can close its books: they mark where packets
enter and leave the network and carry the side-band state (AQ drain
rate, gate decisions) the replayed invariants need.

Field semantics (``None`` means "not applicable", dropped from JSON):

========== ===================================================================
``type``   one of the ``EV_*`` constants (or a custom string)
``time``   simulation time in seconds
``node``   emitting component, e.g. ``"s0.p0"`` (switch port queue),
           ``"h1.nic"`` (host NIC queue), ``"tcp"`` (a transport)
``flow_id`` transport flow id carried by the packet, if any
``aq_id``  Augmented Queue id for AQ-originated events
``size``   packet size in bytes, where a packet is involved (for ``gate``
           events: the bypass threshold in bytes)
``value``  type-specific scalar: the A-Gap in bytes for ``agap_update``,
           the congestion window in bytes for ``cwnd_change``, the
           backlog in bytes for queue events, the drain rate in bit/s
           for ``aq_rate``
``reason`` short cause label on discard/decision events: ``"buffer"``
           (tail drop), ``"red"`` (probabilistic RED drop), ``"no_queue"``
           (per-flow queue table exhausted), ``"rate_limit"`` (AQ limit
           drop), ``"fluid"`` (aggregate AQ limit drops booked by a fluid
           epoch), ``"shaper"`` (token-bucket backlog cap),
           ``"bypass"``/``"enforce"`` on ``gate`` events, and the
           fault-attributed discard labels ``"link_down"``,
           ``"switch_restart"`` (queue drained by a restart), and
           ``"corrupt"`` (packet corrupted on a faulty link)
========== ===================================================================
"""

from __future__ import annotations

from typing import Optional

#: A packet was accepted into a physical queue.
EV_ENQUEUE = "enqueue"
#: A packet left a physical queue for transmission.
EV_DEQUEUE = "dequeue"
#: A packet was discarded by a physical queue (tail/RED drop).
EV_DROP = "drop"
#: A packet got its CE bit set (physical ECN or AQ virtual ECN).
EV_ECN_MARK = "ecn_mark"
#: An Augmented Queue recomputed its A-Gap on arrival.
EV_AGAP_UPDATE = "agap_update"
#: A rate limiter discarded a packet (AQ limit-drop or shaper backlog cap).
EV_RATE_LIMIT = "rate_limit"
#: A congestion-control algorithm changed its window.
EV_CWND_CHANGE = "cwnd_change"
#: A host handed a packet to its NIC — the packet is now "injected".
EV_HOST_SEND = "host_send"
#: A host received a packet off the wire — the packet is now "delivered".
EV_DELIVER = "deliver"
#: An Augmented Queue's drain rate was (re)announced; ``value`` is bit/s.
EV_AQ_RATE = "aq_rate"
#: The work-conserving gate flipped between bypass and enforce.
EV_GATE = "gate"
#: An injected fault fired or a recovery step ran (``reason`` names the
#: fault kind/step, ``node`` the affected component, ``aq_id`` the wiped
#: or redeployed Augmented Queue where applicable).
EV_FAULT = "fault"
#: The fluid fast path closed one analytic epoch over an Augmented Queue:
#: ``size`` is the bytes admitted through the AQ during the epoch and
#: ``value`` the A-Gap register at the epoch end. The auditor checks the
#: end gap against the Theorem 3.2 recurrence bounds and re-anchors its
#: replay there, exactly as a per-packet ``agap_update`` would.
EV_FLUID_EPOCH = "fluid_epoch"

#: The canonical event vocabulary, in emission-likelihood order.
CORE_EVENT_TYPES = (
    EV_ENQUEUE,
    EV_DEQUEUE,
    EV_DROP,
    EV_ECN_MARK,
    EV_AGAP_UPDATE,
    EV_RATE_LIMIT,
    EV_CWND_CHANGE,
)

#: Auxiliary events emitted for the conservation-law auditor and the
#: flight recorder; always on when telemetry is enabled, but not part of
#: the core seven the smoke test requires in every trace.
AUDIT_EVENT_TYPES = (
    EV_HOST_SEND,
    EV_DELIVER,
    EV_AQ_RATE,
    EV_GATE,
)

#: Fault-injection events; only present in traces of runs driven by a
#: :class:`~repro.faults.FaultPlan`. The auditor uses them to attribute
#: fault-window losses and to reset per-AQ recurrence replay after a
#: switch restart wipes register state.
FAULT_EVENT_TYPES = (EV_FAULT,)

#: Fluid fast-path events; only present in traces of hybrid runs driven
#: by :class:`~repro.sim.fluid.FluidEngine`. Epoch summaries let the
#: conservation-law auditor close its books across analytically-advanced
#: stretches where no per-packet events exist.
FLUID_EVENT_TYPES = (EV_FLUID_EPOCH,)

#: Every event type the simulator itself emits.
ALL_EVENT_TYPES = (
    CORE_EVENT_TYPES + AUDIT_EVENT_TYPES + FAULT_EVENT_TYPES + FLUID_EVENT_TYPES
)

_FIELDS = ("type", "time", "node", "flow_id", "aq_id", "size", "value", "reason")


class TraceEvent:
    """One structured observation; cheap to construct, trivially JSON-able."""

    __slots__ = _FIELDS

    def __init__(
        self,
        type: str,
        time: float,
        node: Optional[str] = None,
        flow_id: Optional[int] = None,
        aq_id: Optional[int] = None,
        size: Optional[int] = None,
        value: Optional[float] = None,
        reason: Optional[str] = None,
    ) -> None:
        self.type = type
        self.time = time
        self.node = node
        self.flow_id = flow_id
        self.aq_id = aq_id
        self.size = size
        self.value = value
        self.reason = reason

    def to_dict(self) -> dict:
        """Compact dict: ``None`` fields are omitted entirely."""
        out = {"type": self.type, "time": self.time}
        for field in _FIELDS[2:]:
            val = getattr(self, field)
            if val is not None:
                out[field] = val
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "TraceEvent":
        return cls(
            type=data["type"],
            time=data["time"],
            node=data.get("node"),
            flow_id=data.get("flow_id"),
            aq_id=data.get("aq_id"),
            size=data.get("size"),
            value=data.get("value"),
            reason=data.get("reason"),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{f}={getattr(self, f)!r}"
            for f in _FIELDS
            if getattr(self, f) is not None
        )
        return f"TraceEvent({parts})"
