"""INT-style per-packet flight recorder.

The paper's data plane already piggybacks one in-band scalar on every
packet (``virtual_delay``, Section 3.3.2). This module extends that idea
into a full in-band network telemetry (INT) header: when a
:class:`FlightRecorder` is installed on the active
:class:`~repro.obs.telemetry.Telemetry`, every packet a host injects
carries a ``flight`` list and each component on the path appends a
:class:`HopRecord` — queues record enqueue/dequeue times and depth, AQs
record their id, deployment position, the A-Gap value, and the ECN/drop
decision. When the packet leaves the network (delivered at a host, or
discarded anywhere), the accumulated header becomes an immutable
:class:`Flight` and is fanned out to flight sinks; receivers additionally
echo a compact digest back to the sender on ACKs, exactly the way
``echo_virtual_delay`` travels.

:class:`FlightIndex` is the default in-memory sink: it reconstructs
per-flow paths, per-hop latency breakdowns, and human-readable drop
attribution ("dropped at s0.p1 by AQ 7 rate-limit (ingress), A=1.2MB >
limit 1.0MB"). :class:`JsonlFlightSink`/:func:`read_flights_jsonl` are
the file interchange pair behind ``repro telemetry flights``.

Hot-path contract: components cache ``self._flight`` (the recorder or
``None``) at construction, so with recording disabled the added cost is
one attribute load + branch per site — the same discipline as the
TraceBus ``enabled`` guard.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from typing import IO, Deque, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError

_HOP_FIELDS = (
    "kind",       # "queue" | "aq" | "drop" | "cut"
    "node",       # component name
    "t_in",       # enqueue / decision time (s)
    "t_out",      # dequeue time for queue hops (s)
    "depth",      # queue backlog in bytes after the operation
    "aq_id",      # Augmented Queue id for "aq" hops
    "position",   # AQ deployment position: "ingress" | "egress"
    "agap",       # A-Gap value in bytes at the AQ decision
    "limit",      # AQ limit in bytes (None when unlimited)
    "ecn",        # True when the AQ/queue marked CE on this hop
    "reason",     # drop cause label ("buffer", "red", "rate_limit", ...)
    "corr",       # cross-shard correlation key for "cut" hops
)


class HopRecord:
    """One in-band telemetry entry appended to a packet's flight header."""

    __slots__ = _HOP_FIELDS

    def __init__(
        self,
        kind: str,
        node: str,
        t_in: float,
        t_out: Optional[float] = None,
        depth: Optional[float] = None,
        aq_id: Optional[int] = None,
        position: Optional[str] = None,
        agap: Optional[float] = None,
        limit: Optional[float] = None,
        ecn: Optional[bool] = None,
        reason: Optional[str] = None,
        corr: Optional[str] = None,
    ) -> None:
        self.kind = kind
        self.node = node
        self.t_in = t_in
        self.t_out = t_out
        self.depth = depth
        self.aq_id = aq_id
        self.position = position
        self.agap = agap
        self.limit = limit
        self.ecn = ecn
        self.reason = reason
        self.corr = corr

    def to_dict(self) -> dict:
        """Compact dict: ``None`` fields are omitted."""
        out = {}
        for field in _HOP_FIELDS:
            val = getattr(self, field)
            if val is not None:
                out[field] = val
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "HopRecord":
        return cls(**{f: data.get(f) for f in _HOP_FIELDS if f in data})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{f}={getattr(self, f)!r}"
            for f in _HOP_FIELDS
            if getattr(self, f) is not None
        )
        return f"HopRecord({parts})"


class Flight:
    """A completed packet journey: identity, outcome, and its hop records."""

    __slots__ = (
        "packet_id", "flow_id", "src", "dst", "kind", "size",
        "status", "t_start", "t_end", "end_node", "hops", "retransmission",
    )

    def __init__(
        self,
        packet_id: int,
        flow_id: int,
        src: str,
        dst: str,
        kind: int,
        size: int,
        status: str,
        t_start: float,
        t_end: float,
        hops: List[HopRecord],
        end_node: str = "",
        retransmission: bool = False,
    ) -> None:
        self.packet_id = packet_id
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.kind = kind
        self.size = size
        self.status = status
        self.t_start = t_start
        self.t_end = t_end
        self.end_node = end_node
        self.hops = hops
        self.retransmission = retransmission

    @property
    def latency(self) -> float:
        """End-to-end time from injection to completion, in seconds."""
        return self.t_end - self.t_start

    @property
    def path(self) -> Tuple[str, ...]:
        """The sequence of node names the packet visited."""
        return tuple(h.node for h in self.hops)

    @property
    def corr_in(self) -> Optional[str]:
        """Correlation key this segment continues from, if it begins at a cut."""
        if self.hops and self.hops[0].kind == "cut":
            return self.hops[0].corr
        return None

    @property
    def corr_out(self) -> Optional[str]:
        """Correlation key this segment exported under, if it ends at a cut."""
        if self.hops and self.hops[-1].kind == "cut":
            return self.hops[-1].corr
        return None

    @property
    def drop_hop(self) -> Optional[HopRecord]:
        """The hop that discarded the packet, if this flight was dropped."""
        if self.status != "dropped":
            return None
        for hop in reversed(self.hops):
            if hop.kind == "drop" or hop.reason is not None:
                return hop
        return self.hops[-1] if self.hops else None

    def attribution(self) -> str:
        """Human-readable one-line account of where/why the packet ended."""
        ident = f"packet #{self.packet_id} flow {self.flow_id}"
        if self.status == "delivered":
            return (
                f"{ident} delivered {self.src}->{self.dst} "
                f"in {self.latency * 1e3:.3f} ms over {len(self.hops)} hops"
            )
        hop = self.drop_hop
        if hop is None:
            where = f" at {self.end_node}" if self.end_node else ""
            return f"{ident} dropped{where} (no hop records)"
        if hop.aq_id is not None:
            site = self.end_node or hop.node
            where = f"at {site}" if site else "in the pipeline"
            detail = f"by AQ {hop.aq_id} rate-limit"
            if hop.position:
                detail += f" ({hop.position})"
            if hop.agap is not None:
                detail += f", A={_fmt_bytes(hop.agap)}"
                if hop.limit is not None:
                    detail += f" > limit {_fmt_bytes(hop.limit)}"
            return f"{ident} dropped {where} {detail}"
        detail = hop.reason or "drop"
        extra = f", backlog {_fmt_bytes(hop.depth)}" if hop.depth is not None else ""
        return f"{ident} dropped at {hop.node} ({detail}{extra})"

    def to_dict(self) -> dict:
        out = {
            "packet_id": self.packet_id,
            "flow_id": self.flow_id,
            "src": self.src,
            "dst": self.dst,
            "kind": self.kind,
            "size": self.size,
            "status": self.status,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "end_node": self.end_node,
            "hops": [h.to_dict() for h in self.hops],
        }
        if self.retransmission:
            out["retransmission"] = True
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Flight":
        return cls(
            packet_id=data["packet_id"],
            flow_id=data["flow_id"],
            src=data.get("src", ""),
            dst=data.get("dst", ""),
            kind=data.get("kind", 0),
            size=data.get("size", 0),
            status=data["status"],
            t_start=data.get("t_start", 0.0),
            t_end=data.get("t_end", 0.0),
            end_node=data.get("end_node", ""),
            hops=[HopRecord.from_dict(h) for h in data.get("hops", [])],
            retransmission=bool(data.get("retransmission", False)),
        )


def _fmt_bytes(value: float) -> str:
    """Format a byte count the way the paper quotes A-Gap values."""
    if value >= 1e6:
        return f"{value / 1e6:.1f}MB"
    if value >= 1e3:
        return f"{value / 1e3:.1f}KB"
    return f"{value:.0f}B"


class FlightSink:
    """Interface: receives every completed :class:`Flight`."""

    def handle_flight(self, flight: Flight) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release resources; called by ``FlightRecorder.close()``."""


class JsonlFlightSink(FlightSink):
    """Appends each completed flight as one JSON line.

    With ``max_flights`` set, the sink becomes a ring: only the most
    recent ``max_flights`` flights survive to the file (written at
    :meth:`close`), and every overwritten one is tallied in
    ``flights_evicted`` — long ``--flight-record`` runs then degrade to
    "the recent past" with an explicit loss count instead of growing the
    output without bound. Unbounded sinks keep the original streaming
    behaviour (each flight hits the file immediately).
    """

    def __init__(
        self,
        destination: Union[str, IO[str]],
        max_flights: Optional[int] = None,
    ) -> None:
        if max_flights is not None and max_flights < 1:
            raise ValueError(f"max_flights must be positive, got {max_flights}")
        if isinstance(destination, str):
            self._fh: IO[str] = open(destination, "w", encoding="utf-8")
            self._owns_fh = True
        else:
            self._fh = destination
            self._owns_fh = False
        self.max_flights = max_flights
        self._ring: Optional[Deque[Flight]] = (
            deque(maxlen=max_flights) if max_flights is not None else None
        )
        self.flights_written = 0
        self.flights_evicted = 0
        self._closed = False

    def _write(self, flight: Flight) -> None:
        self._fh.write(json.dumps(flight.to_dict(), separators=(",", ":")))
        self._fh.write("\n")
        self.flights_written += 1

    def handle_flight(self, flight: Flight) -> None:
        ring = self._ring
        if ring is None:
            self._write(flight)
            return
        if len(ring) == ring.maxlen:
            self.flights_evicted += 1
        ring.append(flight)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._ring is not None:
            if self.flights_evicted:
                # A header line so readers know the file is a suffix of
                # the run, and how much history the ring overwrote.
                self._fh.write(json.dumps(
                    {
                        "type": "ring_meta",
                        "max_flights": self.max_flights,
                        "flights_evicted": self.flights_evicted,
                    },
                    separators=(",", ":"),
                ))
                self._fh.write("\n")
            for flight in self._ring:
                self._write(flight)
            self._ring.clear()
        self._fh.flush()
        if self._owns_fh:
            self._fh.close()


class FlightIndex(FlightSink):
    """In-memory reconstruction of paths, hop latencies, and drops.

    Aggregates are unbounded-safe (counters keyed by flow/node); the raw
    flights kept for inspection are capped (`max_flights` most recent,
    plus up to `max_drops` dropped flights retained separately so drop
    forensics survive long runs).
    """

    def __init__(self, max_flights: int = 10_000, max_drops: int = 10_000) -> None:
        self.flights: Deque[Flight] = deque(maxlen=max_flights)
        self.drops: Deque[Flight] = deque(maxlen=max_drops)
        self.total = 0
        self.delivered = 0
        self.dropped = 0
        self.unfinished = 0
        self.exported = 0
        self.paths_by_flow: Dict[int, Counter] = {}
        self._latency_sum_by_flow: Dict[int, float] = {}
        self._delivered_by_flow: Counter = Counter()
        self._hop_wait_sum: Dict[str, float] = {}
        self._hop_visits: Counter = Counter()
        self.echoes: Dict[int, dict] = {}

    def handle_flight(self, flight: Flight) -> None:
        self.total += 1
        self.flights.append(flight)
        if flight.status == "dropped":
            self.dropped += 1
            self.drops.append(flight)
        elif flight.status == "unfinished":
            # Still in a queue at end of run: its hops count toward the
            # per-node waits below, but not toward delivery latency/paths.
            self.unfinished += 1
        elif flight.status == "exported":
            # Sealed at a shard cut: a partial segment awaiting stitching,
            # not an end-to-end delivery.
            self.exported += 1
        else:
            self.delivered += 1
            self._delivered_by_flow[flight.flow_id] += 1
            self._latency_sum_by_flow[flight.flow_id] = (
                self._latency_sum_by_flow.get(flight.flow_id, 0.0) + flight.latency
            )
            path = flight.path
            self.paths_by_flow.setdefault(flight.flow_id, Counter())[path] += 1
        for hop in flight.hops:
            if hop.kind == "queue" and hop.t_out is not None:
                self._hop_visits[hop.node] += 1
                self._hop_wait_sum[hop.node] = (
                    self._hop_wait_sum.get(hop.node, 0.0) + (hop.t_out - hop.t_in)
                )

    def note_echo(self, flow_id: int, digest: dict, now: float) -> None:
        """Record the latest receiver-echoed digest for a flow."""
        self.echoes[flow_id] = dict(digest, echoed_at=now)

    def path_for(self, flow_id: int) -> Optional[Tuple[str, ...]]:
        """Most common delivered path for a flow, or ``None``."""
        paths = self.paths_by_flow.get(flow_id)
        if not paths:
            return None
        return paths.most_common(1)[0][0]

    def mean_latency(self, flow_id: int) -> Optional[float]:
        """Mean end-to-end latency over delivered flights of a flow."""
        n = self._delivered_by_flow[flow_id]
        if n == 0:
            return None
        return self._latency_sum_by_flow[flow_id] / n

    def hop_latency(self) -> Dict[str, dict]:
        """Per-node queue-wait breakdown: visits and mean wait seconds."""
        out = {}
        for node, visits in sorted(self._hop_visits.items()):
            total = self._hop_wait_sum[node]
            out[node] = {
                "visits": visits,
                "total_wait_s": total,
                "mean_wait_s": total / visits,
            }
        return out

    def drop_attributions(self, limit: Optional[int] = None) -> List[str]:
        """Attribution lines for retained drops, oldest first."""
        drops = list(self.drops)
        if limit is not None:
            drops = drops[:limit]
        return [f.attribution() for f in drops]

    def flights_for(self, flow_id: int) -> List[Flight]:
        """Retained flights of one flow, in completion order."""
        return [f for f in self.flights if f.flow_id == flow_id]


class FlightRecorder:
    """Coordinates in-band hop recording and flight completion fan-out.

    Install via :meth:`repro.obs.telemetry.Telemetry.enable_flight_recording`
    *before* building the network — components cache the recorder at
    construction time, exactly like the TraceBus guard.
    """

    def __init__(self, index: Optional[FlightIndex] = None) -> None:
        self.index = index if index is not None else FlightIndex()
        self._sinks: List[FlightSink] = [self.index]
        self.flights_completed = 0
        # Armed packets whose flights are still open, so :meth:`finalize`
        # can seal in-flight history at end of run instead of dropping it.
        # Compacted in :meth:`start`, so it tracks the true in-flight set
        # (plus recently sealed stragglers), not every packet ever armed.
        self._open: List = []

    def attach(self, sink: FlightSink) -> FlightSink:
        self._sinks.append(sink)
        return sink

    def add_jsonl(
        self,
        destination: Union[str, IO[str]],
        max_flights: Optional[int] = None,
    ) -> JsonlFlightSink:
        """Attach a JSONL file sink for completed flights; ``max_flights``
        bounds it to a most-recent ring (see :class:`JsonlFlightSink`)."""
        sink = JsonlFlightSink(destination, max_flights=max_flights)
        self.attach(sink)
        return sink

    # -- data-plane entry points -------------------------------------------

    def start(self, packet, now: float) -> None:
        """Arm a packet with an empty flight header (called at injection)."""
        packet.flight = [HopRecord("host", packet.src, now)]
        open_packets = self._open
        open_packets.append(packet)
        if len(open_packets) > 4096:
            self._open = [p for p in open_packets if p.flight is not None]

    def begin_segment(self, packet, now: float, node: str, corr: str) -> None:
        """Re-arm a packet imported across a shard cut.

        The opening hop carries the same correlation key the exporting
        shard sealed its segment with, so :func:`stitch_flight_dumps` can
        chain the two back into one end-to-end flight.
        """
        packet.flight = [HopRecord("cut", node, now, corr=corr)]
        open_packets = self._open
        open_packets.append(packet)
        if len(open_packets) > 4096:
            self._open = [p for p in open_packets if p.flight is not None]

    def queue_hop(self, packet, node: str, now: float, depth: float) -> HopRecord:
        """Record acceptance into a physical queue; returns the open hop."""
        hop = HopRecord("queue", node, now, depth=depth)
        packet.flight.append(hop)
        return hop

    def queue_exit(self, packet, node: str, now: float) -> None:
        """Close the most recent open queue hop for ``node``."""
        for hop in reversed(packet.flight):
            if hop.kind == "queue" and hop.node == node and hop.t_out is None:
                hop.t_out = now
                return

    def aq_hop(
        self,
        packet,
        node: str,
        now: float,
        aq_id: int,
        position: str,
        agap: float,
        limit: Optional[float],
        ecn: bool,
        dropped: bool,
    ) -> HopRecord:
        """Record an Augmented Queue decision (mark/forward/limit-drop)."""
        hop = HopRecord(
            "aq", node, now,
            aq_id=aq_id,
            position=position or None,
            agap=agap,
            limit=limit,
            ecn=ecn or None,
            reason="rate_limit" if dropped else None,
        )
        packet.flight.append(hop)
        return hop

    def drop_hop(
        self,
        packet,
        node: str,
        now: float,
        reason: str,
        depth: Optional[float] = None,
    ) -> None:
        """Record a discard decision at a physical queue or shaper."""
        packet.flight.append(HopRecord("drop", node, now, depth=depth, reason=reason))

    def complete(self, packet, now: float, status: str, node: str = "") -> Optional[Flight]:
        """Seal the packet's flight and fan it out; idempotent per packet.

        ``node`` names the component where the journey ended — the
        receiving host for deliveries, the discard site for drops (the AQ
        hop itself only knows its entity, not which switch port it was
        enforced at).
        """
        hops = packet.flight
        if hops is None:
            return None
        packet.flight = None
        flight = Flight(
            packet_id=packet.packet_id,
            flow_id=packet.flow_id,
            src=packet.src,
            dst=packet.dst,
            kind=packet.kind,
            size=packet.size,
            status=status,
            t_start=hops[0].t_in if hops else now,
            t_end=now,
            hops=hops,
            end_node=node,
            retransmission=bool(getattr(packet, "retransmission", False)),
        )
        self.flights_completed += 1
        for sink in self._sinks:
            sink.handle_flight(flight)
        return flight

    def digest_of(self, packet) -> Optional[dict]:
        """Compact receiver-side summary of a packet's in-band header."""
        hops = packet.flight
        if hops is None:
            return None
        queue_wait = 0.0
        for hop in hops:
            if hop.kind == "queue" and hop.t_out is not None:
                queue_wait += hop.t_out - hop.t_in
        return {"hops": len(hops), "queue_wait_s": queue_wait}

    def note_echo(self, flow_id: int, digest: dict, now: float) -> None:
        """Sender-side hook: an ACK carried back a receiver digest."""
        self.index.note_echo(flow_id, digest, now)

    def finalize(self, status: str = "unfinished") -> int:
        """Seal every still-open flight (packets in queues at end of run).

        Without this, in-flight history is silently lost at close — and a
        ground-truth cross-check against the time-window recorder (which
        counted those packets' enqueues) would come up short. Each flight
        ends at its own last recorded hop time. Returns the number sealed.
        """
        sealed = 0
        for packet in self._open:
            hops = packet.flight
            if hops is None:
                continue
            last = hops[-1]
            t_end = last.t_out if last.t_out is not None else last.t_in
            self.complete(packet, t_end, status)
            sealed += 1
        self._open = []
        return sealed

    def close(self) -> None:
        self.finalize()
        for sink in self._sinks:
            sink.close()


def read_flights_jsonl(path: str) -> Iterator[Flight]:
    """Stream flights back from a :class:`JsonlFlightSink` file."""
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            if data.get("type") == "ring_meta":
                # Bounded-sink header: the file holds only the newest
                # ``max_flights`` flights; not a flight itself.
                continue
            yield Flight.from_dict(data)


def journey_key(flight: Flight) -> tuple:
    """Parallelism-invariant identity of an end-to-end flight.

    Excludes ``packet_id`` (a per-process counter that differs between
    inline and spawn runs) but pins everything the determinism contract
    promises: identity, outcome, full path, and exact timing.
    """
    hop = flight.drop_hop
    return (
        flight.flow_id, flight.src, flight.dst, flight.kind, flight.size,
        flight.status, flight.t_start, flight.t_end, flight.end_node,
        flight.path, hop.reason if hop is not None else None,
        flight.retransmission,
    )


def stitch_flight_dumps(
    paths: Sequence[str],
    out_path: Optional[str] = None,
) -> List[Flight]:
    """Reassemble end-to-end flights from per-shard segment dumps.

    Each shard seals a packet's flight when it exports it at a cut link
    (status ``"exported"``, trailing ``"cut"`` hop carrying a correlation
    key) and opens a fresh segment when it imports one (leading ``"cut"``
    hop with the same key). This function chains segments key-to-key into
    single flights whose path/latency/drop attribution match a serial
    1-shard run exactly.

    Segments whose export was never imported (the packet was still on the
    wire at end of run) stay sealed at the cut — honestly reported as
    ``"exported"`` rather than guessed at. Returns the stitched flights
    sorted deterministically; with ``out_path`` they are also written as
    a standard flights JSONL file.
    """
    if not paths:
        raise ConfigurationError("stitch needs at least one flight dump")
    heads: List[Flight] = []
    continuations: Dict[str, Flight] = {}
    for path in paths:
        for flight in read_flights_jsonl(path):
            key = flight.corr_in
            if key is None:
                heads.append(flight)
            elif key in continuations:
                raise ConfigurationError(
                    f"flight dumps overlap: duplicate correlation key {key!r} "
                    f"(is {path} listed twice?)"
                )
            else:
                continuations[key] = flight
    stitched: List[Flight] = []
    for head in heads:
        hops = list(head.hops)
        tail = head
        while tail.corr_out is not None:
            nxt = continuations.pop(tail.corr_out, None)
            if nxt is None:
                # Exported but never imported (in flight at end of run, or
                # the importing shard's dump is missing): terminal as-is.
                break
            hops.extend(nxt.hops)
            tail = nxt
        stitched.append(Flight(
            packet_id=head.packet_id,
            flow_id=head.flow_id,
            src=head.src,
            dst=head.dst,
            kind=head.kind,
            size=head.size,
            status=tail.status,
            t_start=head.t_start,
            t_end=tail.t_end,
            hops=hops,
            end_node=tail.end_node,
            retransmission=head.retransmission,
        ))
    if continuations:
        # Continuation segments whose head never appeared (e.g. a bounded
        # ring evicted it). Keep them — dropping history silently would
        # make the stitched dump lie about coverage.
        stitched.extend(continuations.values())
    stitched.sort(key=lambda f: (
        f.t_start, f.flow_id, f.src, f.dst, f.t_end, f.status, f.packet_id,
    ))
    if out_path is not None:
        with open(out_path, "w", encoding="utf-8") as fh:
            for flight in stitched:
                fh.write(json.dumps(flight.to_dict(), separators=(",", ":")))
                fh.write("\n")
    return stitched
