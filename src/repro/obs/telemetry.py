"""Telemetry facade: one object bundling metrics, tracing, and profiling.

A :class:`Telemetry` instance is what flows through the simulation — the
:class:`~repro.sim.engine.Simulator` holds one, components reach it via
``sim.telemetry`` (or receive it explicitly, e.g. queues built before a
simulator exists), and the hot-path contract is a single check::

    tele = self._tele
    if tele is not None and tele.enabled:
        tele.trace.emit_fields(...)

Disabled is the default: a fresh simulator gets a disabled, sink-less
``Telemetry`` so instrumented call sites cost one attribute load and one
branch. Because enabling toggles a flag on the *same object* (never a
swap), components may cache the reference forever.

For code paths that build their own :class:`Network`/:class:`Simulator`
internally (every harness scenario does), :meth:`Telemetry.activate`
installs the instance as the *ambient* telemetry that new simulators
pick up by default — so the CLI can wrap any experiment without
threading a parameter through every scenario signature.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

from .audit import RunAuditor
from .flightrec import FlightRecorder
from .metrics import MetricsRegistry
from .profiler import SimProfiler
from .timewin import TimeWindowRecorder
from .tracebus import JsonlSink, RingBufferSink, SummarySink, TraceBus

#: Module-global ambient telemetry; see :meth:`Telemetry.activate`.
_ACTIVE: Optional["Telemetry"] = None


def get_active_telemetry() -> Optional["Telemetry"]:
    """The ambient telemetry installed by :meth:`Telemetry.activate`, if any."""
    return _ACTIVE


class Telemetry:
    """Bundle of :class:`MetricsRegistry`, :class:`TraceBus`, and profiler."""

    def __init__(self, enabled: bool = False, profile: bool = False) -> None:
        self.enabled = enabled
        self.metrics = MetricsRegistry()
        self.trace = TraceBus()
        self.profiler: Optional[SimProfiler] = SimProfiler() if profile else None
        #: In-band flight recorder; install with :meth:`enable_flight_recording`
        #: *before* building the network (components cache the reference).
        self.flightrec: Optional[FlightRecorder] = None
        #: Conservation-law auditor; install with :meth:`enable_audit`.
        self.auditor: Optional[RunAuditor] = None
        #: Fixed-memory time-window recorder; install with
        #: :meth:`enable_time_windows` *before* building the network.
        self.timewin: Optional[TimeWindowRecorder] = None

    # -- switches --------------------------------------------------------------

    def enable(self) -> "Telemetry":
        self.enabled = True
        return self

    def disable(self) -> "Telemetry":
        self.enabled = False
        return self

    def enable_profiling(self) -> SimProfiler:
        if self.profiler is None:
            self.profiler = SimProfiler()
        return self.profiler

    def enable_flight_recording(
        self,
        jsonl_path: Optional[str] = None,
        max_flights: Optional[int] = None,
    ) -> FlightRecorder:
        """Install (and return) the INT flight recorder; implies ``enable()``.

        Must run before the network is built — data-plane components cache
        ``telemetry.flightrec`` at construction, mirroring the TraceBus
        guard. ``jsonl_path`` additionally streams completed flights to a
        file readable by ``repro telemetry flights``; ``max_flights``
        bounds that file to the most recent flights (``--flight-max``).
        """
        self.enabled = True
        if self.flightrec is None:
            self.flightrec = FlightRecorder()
        if jsonl_path is not None:
            self.flightrec.add_jsonl(jsonl_path, max_flights=max_flights)
        return self.flightrec

    def enable_time_windows(
        self,
        window_s: Optional[float] = None,
        num_windows: Optional[int] = None,
        slots_log2: Optional[int] = None,
    ) -> TimeWindowRecorder:
        """Install (and return) the time-window recorder; implies ``enable()``.

        Must run before the network is built — data-plane components
        cache ``telemetry.timewin`` at construction, exactly like the
        flight recorder. Unlike flight recording, the windows keep fixed
        memory per port regardless of run length, so this layer is safe
        to leave always-on. Omitted parameters keep the recorder
        defaults (1 ms windows x 32 retained x 64 flow slots).
        """
        self.enabled = True
        if self.timewin is None:
            kwargs = {}
            if window_s is not None:
                kwargs["window_s"] = window_s
            if num_windows is not None:
                kwargs["num_windows"] = num_windows
            if slots_log2 is not None:
                kwargs["slots_log2"] = slots_log2
            self.timewin = TimeWindowRecorder(**kwargs)
            self.metrics.add_collector(self.timewin.collect_metrics)
        return self.timewin

    def enable_audit(self, strict: bool = False) -> RunAuditor:
        """Attach (and return) a conservation-law auditor; implies ``enable()``."""
        self.enabled = True
        if self.auditor is None:
            self.auditor = RunAuditor(strict=strict)
            self.trace.attach(self.auditor)
        return self.auditor

    # -- sink shorthands -------------------------------------------------------

    def add_ring(self, capacity: int = 10000) -> RingBufferSink:
        return self.trace.attach(RingBufferSink(capacity))

    def add_jsonl(self, destination) -> JsonlSink:
        return self.trace.attach(JsonlSink(destination))

    def add_summary(self) -> SummarySink:
        return self.trace.attach(SummarySink())

    def close(self) -> None:
        """Flush every sink (call after the run; safe to call twice)."""
        self.trace.close()
        if self.flightrec is not None:
            self.flightrec.close()

    # -- ambient installation --------------------------------------------------

    @contextlib.contextmanager
    def activate(self) -> Iterator["Telemetry"]:
        """Install as the default telemetry for simulators created inside
        the ``with`` block. Nesting restores the previous ambient value."""
        global _ACTIVE
        previous = _ACTIVE
        _ACTIVE = self
        try:
            yield self
        finally:
            _ACTIVE = previous
