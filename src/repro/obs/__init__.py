"""Unified observability: metrics registry, trace bus, sim-loop profiler.

See DESIGN.md's "Observability" section for the architecture; the short
version: pull-based metrics (collectors run at snapshot time), push-based
typed trace events (guarded by one ``enabled`` check), and an optional
run-loop profiler — all bundled in a :class:`Telemetry` object carried by
the simulator. Two heavier opt-in layers ride on the same guard: the INT
flight recorder (:mod:`repro.obs.flightrec`) piggybacks per-hop records
on packets, and the conservation-law auditor (:mod:`repro.obs.audit`)
re-derives the data plane's bookkeeping from the trace stream.
"""

from .audit import AuditError, AuditViolation, RunAuditor
from .events import (
    ALL_EVENT_TYPES,
    AUDIT_EVENT_TYPES,
    CORE_EVENT_TYPES,
    EV_AGAP_UPDATE,
    EV_AQ_RATE,
    EV_CWND_CHANGE,
    EV_DELIVER,
    EV_DEQUEUE,
    EV_DROP,
    EV_ECN_MARK,
    EV_ENQUEUE,
    EV_FAULT,
    EV_FLUID_EPOCH,
    EV_GATE,
    EV_HOST_SEND,
    EV_RATE_LIMIT,
    FAULT_EVENT_TYPES,
    FLUID_EVENT_TYPES,
    TraceEvent,
)
from .flightrec import (
    Flight,
    FlightIndex,
    FlightRecorder,
    FlightSink,
    HopRecord,
    JsonlFlightSink,
    journey_key,
    read_flights_jsonl,
    stitch_flight_dumps,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_metrics_snapshots,
)
from .profiler import SimProfiler
from .runledger import (
    RunLedger,
    artifact_paths,
    is_run_reference,
    load_manifest,
    read_health_jsonl,
    resolve_inputs,
)
from .telemetry import Telemetry, get_active_telemetry
from .timewin import (
    BuildReport,
    FlightCollector,
    TimeWindowRecorder,
    WindowStore,
    WindowView,
    build_from_trace,
    crosscheck_with_flights,
    params_for_budget,
    stitch_window_dumps,
)
from .tracebus import (
    JsonlSink,
    RingBufferSink,
    SummarySink,
    TraceBus,
    TraceSink,
    read_jsonl,
)

__all__ = [
    "ALL_EVENT_TYPES",
    "AUDIT_EVENT_TYPES",
    "CORE_EVENT_TYPES",
    "FAULT_EVENT_TYPES",
    "FLUID_EVENT_TYPES",
    "EV_FAULT",
    "EV_FLUID_EPOCH",
    "EV_AGAP_UPDATE",
    "EV_AQ_RATE",
    "EV_CWND_CHANGE",
    "EV_DELIVER",
    "EV_DEQUEUE",
    "EV_DROP",
    "EV_ECN_MARK",
    "EV_ENQUEUE",
    "EV_GATE",
    "EV_HOST_SEND",
    "EV_RATE_LIMIT",
    "TraceEvent",
    "AuditError",
    "AuditViolation",
    "RunAuditor",
    "Flight",
    "FlightIndex",
    "FlightRecorder",
    "FlightSink",
    "HopRecord",
    "JsonlFlightSink",
    "journey_key",
    "read_flights_jsonl",
    "stitch_flight_dumps",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_metrics_snapshots",
    "SimProfiler",
    "RunLedger",
    "artifact_paths",
    "is_run_reference",
    "load_manifest",
    "read_health_jsonl",
    "resolve_inputs",
    "Telemetry",
    "get_active_telemetry",
    "BuildReport",
    "FlightCollector",
    "TimeWindowRecorder",
    "WindowStore",
    "WindowView",
    "build_from_trace",
    "crosscheck_with_flights",
    "params_for_budget",
    "stitch_window_dumps",
    "JsonlSink",
    "RingBufferSink",
    "SummarySink",
    "TraceBus",
    "TraceSink",
    "read_jsonl",
]
