"""Unified observability: metrics registry, trace bus, sim-loop profiler.

See DESIGN.md's "Observability" section for the architecture; the short
version: pull-based metrics (collectors run at snapshot time), push-based
typed trace events (guarded by one ``enabled`` check), and an optional
run-loop profiler — all bundled in a :class:`Telemetry` object carried by
the simulator.
"""

from .events import (
    CORE_EVENT_TYPES,
    EV_AGAP_UPDATE,
    EV_CWND_CHANGE,
    EV_DEQUEUE,
    EV_DROP,
    EV_ECN_MARK,
    EV_ENQUEUE,
    EV_RATE_LIMIT,
    TraceEvent,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profiler import SimProfiler
from .telemetry import Telemetry, get_active_telemetry
from .tracebus import (
    JsonlSink,
    RingBufferSink,
    SummarySink,
    TraceBus,
    TraceSink,
    read_jsonl,
)

__all__ = [
    "CORE_EVENT_TYPES",
    "EV_AGAP_UPDATE",
    "EV_CWND_CHANGE",
    "EV_DEQUEUE",
    "EV_DROP",
    "EV_ECN_MARK",
    "EV_ENQUEUE",
    "EV_RATE_LIMIT",
    "TraceEvent",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SimProfiler",
    "Telemetry",
    "get_active_telemetry",
    "JsonlSink",
    "RingBufferSink",
    "SummarySink",
    "TraceBus",
    "TraceSink",
    "read_jsonl",
]
