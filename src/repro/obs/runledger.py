"""The fabric run ledger: one directory per ``share-fabric`` run.

Spawned shard workers scatter their artifacts — window dumps, flight
segments, audit verdicts — across per-shard files, which made every
post-mortem start with "which files belong to this run?". The ledger
answers that structurally: each run writes a directory whose
``manifest.json`` (schema ``fabric-run/1``) records the configuration,
the partition plan, digests, audit verdicts, and a relative-path index
of every artifact the run produced. ``repro telemetry`` subcommands and
``repro fabric-status`` accept the run directory (or the manifest file
itself) anywhere they previously took bare JSONL paths and resolve
through the index.

Layout of a completed run directory::

    manifest.json            fabric-run/1 manifest (this module)
    report.json              the full JSON report of run_share_fabric
    health.jsonl             heartbeat frames, one JSON object per line,
                             appended live while the run progresses
    metrics.json             fabric-wide merged metrics snapshot
    windows/shard{i}.windows.jsonl    per-shard time-window dumps
    windows.stitched.jsonl   fabric-wide stitched window store
    flights/shard{i}.flights.jsonl    per-shard flight segments (opt-in)
    flights.stitched.jsonl   end-to-end stitched flights (opt-in)

The manifest is written twice: once at launch with ``status="running"``
(so ``fabric-status`` can watch a live run) and once at completion with
``status="complete"`` and the final digests/verdicts. Writes go through
a temp file + ``os.replace`` so readers never observe a torn manifest.
"""

from __future__ import annotations

import json
import os
from typing import Callable, List, Optional, Tuple

from ..errors import ConfigurationError

MANIFEST_NAME = "manifest.json"
SCHEMA = "fabric-run/1"

#: Artifact kinds resolvable through the manifest index. Values are
#: (stitched_key, per_shard_key) — resolution prefers the stitched
#: fabric-wide file and falls back to the per-shard list.
_ARTIFACT_KINDS = {
    "windows": ("windows_stitched", "windows"),
    "flights": ("flights_stitched", "flights"),
    "health": ("health", None),
    "metrics": ("metrics", None),
    "report": ("report", None),
}


def manifest_path(run_dir: str) -> str:
    return os.path.join(run_dir, MANIFEST_NAME)


def is_run_reference(path: str) -> bool:
    """True when ``path`` names a run directory or a manifest file —
    something :func:`load_manifest` would accept."""
    if os.path.isdir(path):
        return os.path.isfile(manifest_path(path))
    return os.path.basename(path) == MANIFEST_NAME and os.path.isfile(path)


def load_manifest(ref: str) -> Tuple[str, dict]:
    """Load a manifest from a run directory or manifest path; returns
    ``(run_dir, manifest)``. Raises :class:`ConfigurationError` on
    anything that is not a readable ``fabric-run/1`` manifest."""
    if os.path.isdir(ref):
        path = manifest_path(ref)
        run_dir = ref
    else:
        path = ref
        run_dir = os.path.dirname(ref) or "."
    try:
        with open(path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
    except FileNotFoundError:
        raise ConfigurationError(
            f"{ref}: not a run directory (no {MANIFEST_NAME})"
        ) from None
    except (OSError, ValueError) as exc:
        raise ConfigurationError(f"{path}: unreadable manifest: {exc}") from exc
    schema = manifest.get("schema")
    if schema != SCHEMA:
        raise ConfigurationError(
            f"{path}: unsupported manifest schema {schema!r} "
            f"(expected {SCHEMA!r})"
        )
    return run_dir, manifest


def artifact_paths(ref: str, kind: str) -> List[str]:
    """Absolute paths of one artifact kind, resolved via the manifest.

    ``kind`` is one of ``windows`` / ``flights`` / ``health`` /
    ``metrics`` / ``report``. For stitchable kinds the fabric-wide
    stitched file wins when present; otherwise the per-shard files are
    returned in partition order. Missing artifacts yield ``[]`` (the
    caller decides whether that is an error).
    """
    if kind not in _ARTIFACT_KINDS:
        raise ConfigurationError(
            f"unknown artifact kind {kind!r}; expected one of "
            f"{sorted(_ARTIFACT_KINDS)}"
        )
    run_dir, manifest = load_manifest(ref)
    artifacts = manifest.get("artifacts", {})
    stitched_key, per_shard_key = _ARTIFACT_KINDS[kind]
    stitched = artifacts.get(stitched_key)
    if isinstance(stitched, str):
        path = os.path.join(run_dir, stitched)
        if os.path.isfile(path):
            return [path]
    if per_shard_key is not None:
        rels = artifacts.get(per_shard_key) or []
        paths = [os.path.join(run_dir, rel) for rel in rels]
        return [p for p in paths if os.path.isfile(p)]
    return []


def resolve_inputs(refs: List[str], kind: str) -> List[str]:
    """Expand a mixed list of run references and bare files into file
    paths: run directories/manifests resolve through :func:`artifact_paths`,
    anything else passes through unchanged."""
    out: List[str] = []
    for ref in refs:
        if is_run_reference(ref):
            out.extend(artifact_paths(ref, kind))
        else:
            out.append(ref)
    return out


class RunLedger:
    """Incrementally builds one run directory (see the module docstring).

    Construction creates the directory; :meth:`begin` publishes the
    ``status="running"`` manifest; :meth:`health_writer` returns a
    callable that appends heartbeat frames to ``health.jsonl`` with an
    immediate flush (so ``fabric-status --follow`` sees frames live);
    :meth:`finalize` publishes the completed manifest.
    """

    def __init__(self, run_dir: str) -> None:
        self.run_dir = run_dir
        os.makedirs(run_dir, exist_ok=True)
        self._health_fh = None
        self.health_frames = 0

    def path(self, *parts: str) -> str:
        return os.path.join(self.run_dir, *parts)

    def relpath(self, path: str) -> str:
        return os.path.relpath(path, self.run_dir)

    def _write_manifest(self, manifest: dict) -> str:
        target = manifest_path(self.run_dir)
        tmp = target + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, target)
        return target

    def begin(self, manifest: dict) -> str:
        manifest = dict(manifest, schema=SCHEMA, status="running")
        return self._write_manifest(manifest)

    def health_writer(self) -> Callable[[dict], None]:
        if self._health_fh is None:
            self._health_fh = open(
                self.path("health.jsonl"), "w", encoding="utf-8"
            )

        def append(frame: dict) -> None:
            self._health_fh.write(json.dumps(frame, separators=(",", ":")))
            self._health_fh.write("\n")
            self._health_fh.flush()
            self.health_frames += 1

        return append

    def write_json(self, name: str, payload: dict) -> str:
        path = self.path(name)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    def close_health(self) -> Optional[str]:
        if self._health_fh is None:
            return None
        self._health_fh.close()
        self._health_fh = None
        return self.path("health.jsonl")

    def finalize(self, manifest: dict, status: str = "complete") -> str:
        self.close_health()
        manifest = dict(manifest, schema=SCHEMA, status=status)
        return self._write_manifest(manifest)


def read_health_jsonl(path: str) -> List[dict]:
    """Load heartbeat frames, skipping torn trailing lines (a live run
    may be mid-write)."""
    frames: List[dict] = []
    try:
        fh = open(path, "r", encoding="utf-8")
    except FileNotFoundError:
        return frames
    with fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                frames.append(json.loads(line))
            except ValueError:
                continue
    return frames
