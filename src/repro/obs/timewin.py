"""Time-window queue forensics: bounded-memory "who built this queue?".

The flight recorder (:mod:`repro.obs.flightrec`) answers attribution
questions with per-packet truth at per-packet cost — unusable as
always-on telemetry once fabrics grow. This module is the PrintQueue-
style (SIGCOMM 2022) alternative: attribute queue depth to flows and
tenants using **fixed memory per switch port**, independent of run
length and flow count.

Data structure, per port:

* a wrap-around ring of ``T`` *time windows*, each covering
  ``window_s`` seconds of simulated time and holding ``2^k`` *slots*;
* each slot records one flow's byte/packet contribution to that
  window (slot index = ``flow_id & (2^k - 1)``; a colliding second
  flow is charged to the window's ``collision`` bucket rather than
  corrupting an existing slot);
* per-window aggregates: high-water queue depth, accepted/dropped
  totals, and per-tenant byte counts (tenant = the AQ ingress ID the
  paper's data plane already carries — cardinality bounded by switch
  memory, unlike flows);
* one *active* window receives writes while the sealed ring serves
  reads — the double-buffer "flipping" that lets a hardware control
  plane read windows the data plane is no longer writing. When the
  ring is full the oldest sealed window's buffers are recycled as the
  new active window (wrap-around), and queries that reach into that
  overwritten history report **evicted**, never silent zeros.

Memory per port is exactly ``(T + 1)`` windows x ``2^k`` slots plus a
small tenant map — the property the flight recorder lacks and the
prerequisite for always-on monitoring of million-entity scenarios.

Three front ends share the query API (:class:`WindowQueryAPI`):

* :class:`TimeWindowRecorder` — the live, in-sim recorder installed
  via :meth:`repro.obs.telemetry.Telemetry.enable_time_windows`;
* :class:`WindowStore` — the offline view loaded from a window JSONL
  dump (``--timewin out.jsonl`` / ``repro telemetry windows``);
* :func:`build_from_trace` — reconstruction from a ``--telemetry``
  event trace (no tenant tags there, so tenants all land on 0).

:func:`crosscheck_with_flights` is the ground-truth validator: replay
the flight recorder's per-packet queue hops into the same windows and
require byte/packet-exact agreement per (port, window, flow) — the
recipe PrintQueue's GroundTruth.py applies to its hardware windows.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ConfigurationError

#: Default window duration in (simulated) seconds.
DEFAULT_WINDOW_S = 1e-3
#: Default ring length T (sealed windows retained per port).
DEFAULT_NUM_WINDOWS = 32
#: Default log2 of slots per window (2^6 = 64 flow slots).
DEFAULT_SLOTS_LOG2 = 6

#: Pseudo-flow key used for collision-bucket contributions in reports.
COLLIDED = "(collided)"

#: Budget model: one slot is four parallel list entries (flow, tenant,
#: bytes, pkts) at pointer width.
SLOT_COST_BYTES = 32
#: Budget model: per-window fixed overhead (object + list headers,
#: scalar aggregates, tenant map).
WINDOW_OVERHEAD_BYTES = 640
#: Floors the budget solver will not shrink below: 4 retained windows
#: of 4 flow slots still yield meaningful (if collision-heavy) answers.
MIN_NUM_WINDOWS = 4
MIN_SLOTS_LOG2 = 2
#: Retention cap: beyond this the ring stops growing with the budget.
MAX_NUM_WINDOWS = 4096


def estimate_port_bytes(num_windows: int, slots_log2: int) -> int:
    """Estimated per-port footprint of a recorder configuration.

    ``num_windows`` sealed buffers plus the active window and the spare
    recycled during flips — the documented ``(T + 1)`` windows model,
    rounded up by one for the spare.
    """
    per_window = WINDOW_OVERHEAD_BYTES + (1 << slots_log2) * SLOT_COST_BYTES
    return (num_windows + 2) * per_window


def params_for_budget(
    budget_bytes: int,
    window_s: Optional[float] = None,
) -> dict:
    """Solve for recorder parameters under a per-port memory budget.

    Spends the budget on history first: keeps the default slot count
    (shrinking it only when even a minimal ring would not fit), then
    retains as many windows as the budget covers, clamped to
    [:data:`MIN_NUM_WINDOWS`, :data:`MAX_NUM_WINDOWS`]. Raises
    :class:`ConfigurationError` when the budget cannot fit even the
    minimal configuration — never silently under-delivers. Returns the
    ``enable_time_windows`` keyword dict (``window_s``, ``num_windows``,
    ``slots_log2``).
    """
    if budget_bytes <= 0:
        raise ConfigurationError(
            f"timewin budget must be positive, got {budget_bytes}"
        )
    slots_log2 = DEFAULT_SLOTS_LOG2
    while (slots_log2 > MIN_SLOTS_LOG2
           and estimate_port_bytes(MIN_NUM_WINDOWS, slots_log2) > budget_bytes):
        slots_log2 -= 1
    floor = estimate_port_bytes(MIN_NUM_WINDOWS, slots_log2)
    if floor > budget_bytes:
        raise ConfigurationError(
            f"timewin budget {budget_bytes}B per port cannot fit even "
            f"{MIN_NUM_WINDOWS} windows of {1 << slots_log2} slots "
            f"({floor}B); raise --timewin-budget or disable with --no-timewin"
        )
    per_window = WINDOW_OVERHEAD_BYTES + (1 << slots_log2) * SLOT_COST_BYTES
    num_windows = min(MAX_NUM_WINDOWS, budget_bytes // per_window - 2)
    return {
        "window_s": DEFAULT_WINDOW_S if window_s is None else window_s,
        "num_windows": int(num_windows),
        "slots_log2": slots_log2,
    }


class _Window:
    """One time window: fixed slot arrays plus scalar aggregates.

    Buffers are allocated once and recycled across flips (``reset``
    clears only touched slots), so steady-state recording allocates
    nothing per window.
    """

    __slots__ = (
        "seq", "slots", "slot_flow", "slot_tenant", "slot_bytes", "slot_pkts",
        "touched", "tenant_bytes", "high_water", "total_bytes", "total_pkts",
        "collision_bytes", "collision_pkts", "dropped_bytes", "dropped_pkts",
    )

    def __init__(self, slots: int, seq: int) -> None:
        self.slots = slots
        self.seq = seq
        self.slot_flow = [-1] * slots
        self.slot_tenant = [0] * slots
        self.slot_bytes = [0] * slots
        self.slot_pkts = [0] * slots
        self.touched: List[int] = []
        self.tenant_bytes: Dict[int, int] = {}
        self.high_water = 0.0
        self.total_bytes = 0
        self.total_pkts = 0
        self.collision_bytes = 0
        self.collision_pkts = 0
        self.dropped_bytes = 0
        self.dropped_pkts = 0

    def reset(self, seq: int) -> None:
        """Recycle this buffer as a fresh window (wrap-around reuse)."""
        for index in self.touched:
            self.slot_flow[index] = -1
            self.slot_tenant[index] = 0
            self.slot_bytes[index] = 0
            self.slot_pkts[index] = 0
        self.touched.clear()
        self.tenant_bytes.clear()
        self.seq = seq
        self.high_water = 0.0
        self.total_bytes = 0
        self.total_pkts = 0
        self.collision_bytes = 0
        self.collision_pkts = 0
        self.dropped_bytes = 0
        self.dropped_pkts = 0

    def flows(self) -> Dict[int, Tuple[int, int]]:
        """Per-flow (bytes, packets) recorded in this window's slots."""
        return {
            self.slot_flow[i]: (self.slot_bytes[i], self.slot_pkts[i])
            for i in self.touched
        }


class WindowView:
    """Immutable query-side view of one window (live or loaded)."""

    __slots__ = (
        "port", "seq", "t0", "t1", "flows", "tenants", "high_water",
        "total_bytes", "total_pkts", "collision_bytes", "collision_pkts",
        "dropped_bytes", "dropped_pkts", "active",
    )

    def __init__(
        self,
        port: str,
        seq: int,
        window_s: float,
        flows: Dict[int, Tuple[int, int]],
        tenants: Dict[int, int],
        high_water: float,
        total_bytes: int,
        total_pkts: int,
        collision_bytes: int = 0,
        collision_pkts: int = 0,
        dropped_bytes: int = 0,
        dropped_pkts: int = 0,
        active: bool = False,
    ) -> None:
        self.port = port
        self.seq = seq
        self.t0 = seq * window_s
        self.t1 = (seq + 1) * window_s
        self.flows = flows
        self.tenants = tenants
        self.high_water = high_water
        self.total_bytes = total_bytes
        self.total_pkts = total_pkts
        self.collision_bytes = collision_bytes
        self.collision_pkts = collision_pkts
        self.dropped_bytes = dropped_bytes
        self.dropped_pkts = dropped_pkts
        self.active = active

    def to_dict(self) -> dict:
        out = {
            "type": "window",
            "port": self.port,
            "seq": self.seq,
            "t0": self.t0,
            "t1": self.t1,
            "high_water": self.high_water,
            "bytes": self.total_bytes,
            "pkts": self.total_pkts,
            "flows": {str(f): list(v) for f, v in sorted(self.flows.items())},
            "tenants": {str(t): b for t, b in sorted(self.tenants.items())},
        }
        if self.collision_pkts:
            out["collision_bytes"] = self.collision_bytes
            out["collision_pkts"] = self.collision_pkts
        if self.dropped_pkts:
            out["dropped_bytes"] = self.dropped_bytes
            out["dropped_pkts"] = self.dropped_pkts
        if self.active:
            out["active"] = True
        return out

    @classmethod
    def from_dict(cls, data: dict, window_s: float) -> "WindowView":
        return cls(
            port=data["port"],
            seq=data["seq"],
            window_s=window_s,
            flows={
                int(f): (v[0], v[1]) for f, v in data.get("flows", {}).items()
            },
            tenants={int(t): b for t, b in data.get("tenants", {}).items()},
            high_water=data.get("high_water", 0.0),
            total_bytes=data.get("bytes", 0),
            total_pkts=data.get("pkts", 0),
            collision_bytes=data.get("collision_bytes", 0),
            collision_pkts=data.get("collision_pkts", 0),
            dropped_bytes=data.get("dropped_bytes", 0),
            dropped_pkts=data.get("dropped_pkts", 0),
            active=data.get("active", False),
        )


#: Coverage labels for :class:`BuildReport`.
COVERAGE_FULL = "full"          # every queried window is retained (or empty)
COVERAGE_PARTIAL = "partial"    # some queried windows wrapped out of the ring
COVERAGE_EVICTED = "evicted"    # the whole query range wrapped out
COVERAGE_OUTSIDE = "outside"    # the range never overlapped recorded history


class BuildReport:
    """Answer to ``who_built(port, t0, t1)``: contributors and caveats."""

    def __init__(
        self,
        port: str,
        t0: float,
        t1: float,
        window_s: float,
        coverage: str,
        windows: List[WindowView],
        evicted_windows: int,
    ) -> None:
        self.port = port
        self.t0 = t0
        self.t1 = t1
        self.window_s = window_s
        self.coverage = coverage
        self.windows = windows
        self.evicted_windows = evicted_windows
        self.flows: Dict[int, Tuple[int, int]] = {}
        self.tenants: Dict[int, int] = {}
        self.high_water = 0.0
        self.total_bytes = 0
        self.total_pkts = 0
        self.collision_bytes = 0
        self.dropped_bytes = 0
        for view in windows:
            for flow, (nbytes, npkts) in view.flows.items():
                prev = self.flows.get(flow, (0, 0))
                self.flows[flow] = (prev[0] + nbytes, prev[1] + npkts)
            for tenant, nbytes in view.tenants.items():
                self.tenants[tenant] = self.tenants.get(tenant, 0) + nbytes
            if view.high_water > self.high_water:
                self.high_water = view.high_water
            self.total_bytes += view.total_bytes
            self.total_pkts += view.total_pkts
            self.collision_bytes += view.collision_bytes
            self.dropped_bytes += view.dropped_bytes

    @property
    def evicted(self) -> bool:
        """True when the *entire* query range has wrapped out of memory."""
        return self.coverage == COVERAGE_EVICTED

    def top_contributors(self, k: int = 10) -> List[Tuple[object, int, int]]:
        """``[(flow_id, bytes, packets)]`` sorted by bytes, descending.

        Collision-bucket bytes (flows whose slot was taken) appear as one
        ``"(collided)"`` entry so totals always reconcile.
        """
        ranked: List[Tuple[object, int, int]] = sorted(
            ((flow, b, p) for flow, (b, p) in self.flows.items()),
            key=lambda item: (-item[1], item[0]),
        )
        if self.collision_bytes:
            ranked.append((COLLIDED, self.collision_bytes, 0))
            ranked.sort(key=lambda item: -item[1])
        return ranked[:k]

    def tenant_shares(self) -> Dict[int, float]:
        """Per-tenant fraction of the accepted bytes in the range."""
        total = sum(self.tenants.values())
        if total <= 0:
            return {}
        return {t: b / total for t, b in sorted(self.tenants.items())}

    def to_dict(self) -> dict:
        return {
            "port": self.port,
            "t0": self.t0,
            "t1": self.t1,
            "window_s": self.window_s,
            "coverage": self.coverage,
            "evicted_windows": self.evicted_windows,
            "windows": len(self.windows),
            "high_water": self.high_water,
            "bytes": self.total_bytes,
            "pkts": self.total_pkts,
            "collision_bytes": self.collision_bytes,
            "dropped_bytes": self.dropped_bytes,
            "flows": {str(f): list(v) for f, v in sorted(self.flows.items())},
            "tenant_shares": {
                str(t): share for t, share in self.tenant_shares().items()
            },
        }


class WindowQueryAPI:
    """Shared query surface of the live recorder and the offline store.

    Subclasses provide :meth:`ports`, :meth:`views` (every retained
    window of a port, ascending seq), and :meth:`eviction_horizon` (the
    oldest retained seq, with the count of windows wrapped out before
    it). Everything else — ``who_built``, top-k, tenant shares — is
    derived here, so on-line and post-mortem answers can never drift.
    """

    window_s: float = DEFAULT_WINDOW_S

    def seq_for(self, t: float) -> int:
        """The window sequence number covering simulated time ``t``."""
        return int(t / self.window_s)

    def ports(self) -> List[str]:
        raise NotImplementedError

    def views(self, port: str) -> List[WindowView]:
        raise NotImplementedError

    def eviction_horizon(self, port: str) -> Tuple[Optional[int], int]:
        """(oldest retained seq or None, windows evicted before it)."""
        raise NotImplementedError

    # -- derived queries ---------------------------------------------------

    def _resolve_views(self, port: str) -> Tuple[List[WindowView], int]:
        """Views for ``port``, merging sub-ports (``port.*``) by window.

        Multi-queue ports expose one physical FIFO per traffic class
        (``s0.p0.q3``); querying the parent merges the classes into one
        port-level answer. Returns the merged views plus the largest
        eviction count among the merged sources.
        """
        exact = self.views(port)
        prefix = port + "."
        subs = [name for name in self.ports() if name.startswith(prefix)]
        if not subs:
            _, evicted = self.eviction_horizon(port)
            return exact, evicted
        merged: Dict[int, List[WindowView]] = {}
        for view in exact:
            merged.setdefault(view.seq, []).append(view)
        evicted = self.eviction_horizon(port)[1]
        for sub in subs:
            evicted = max(evicted, self.eviction_horizon(sub)[1])
            for view in self.views(sub):
                merged.setdefault(view.seq, []).append(view)
        out = []
        for seq in sorted(merged):
            group = merged[seq]
            if len(group) == 1 and group[0].port == port:
                out.append(group[0])
                continue
            flows: Dict[int, Tuple[int, int]] = {}
            tenants: Dict[int, int] = {}
            for view in group:
                for flow, (b, p) in view.flows.items():
                    prev = flows.get(flow, (0, 0))
                    flows[flow] = (prev[0] + b, prev[1] + p)
                for tenant, b in view.tenants.items():
                    tenants[tenant] = tenants.get(tenant, 0) + b
            # A parent-level depth sample (MultiQueuePort records the
            # true summed backlog) beats the per-class upper bound.
            parent = [v for v in group if v.port == port]
            high_water = (
                max(v.high_water for v in parent)
                if parent
                else sum(v.high_water for v in group)
            )
            out.append(WindowView(
                port=port,
                seq=seq,
                window_s=self.window_s,
                flows=flows,
                tenants=tenants,
                high_water=high_water,
                total_bytes=sum(v.total_bytes for v in group),
                total_pkts=sum(v.total_pkts for v in group),
                collision_bytes=sum(v.collision_bytes for v in group),
                collision_pkts=sum(v.collision_pkts for v in group),
                dropped_bytes=sum(v.dropped_bytes for v in group),
                dropped_pkts=sum(v.dropped_pkts for v in group),
                active=any(v.active for v in group),
            ))
        return out, evicted

    def who_built(self, port: str, t0: float, t1: float) -> BuildReport:
        """Attribute the queue at ``port`` over ``[t0, t1)`` to its flows.

        The answer is quantized to whole windows: every window
        overlapping the range contributes fully, so reported bytes can
        exceed the exact in-range bytes by at most one window's traffic
        at each edge — the documented quantization error bound.
        """
        if t1 < t0:
            raise ConfigurationError(f"who_built: t1 {t1} before t0 {t0}")
        views, _ = self._resolve_views(port)
        s0 = self.seq_for(t0)
        # A range ending exactly on a boundary does not enter that window.
        s1 = self.seq_for(t1)
        if t1 > t0 and t1 == s1 * self.window_s:
            s1 -= 1
        horizon, evicted_total = self._merged_horizon(port)
        selected = [v for v in views if s0 <= v.seq <= s1]
        evicted_in_range = 0
        if horizon is not None and evicted_total > 0 and s0 < horizon:
            evicted_in_range = min(s1, horizon - 1) - s0 + 1
        if not views:
            coverage = COVERAGE_OUTSIDE
        elif evicted_in_range and s1 < (horizon or 0):
            coverage = COVERAGE_EVICTED
        elif evicted_in_range:
            coverage = COVERAGE_PARTIAL
        elif not selected and (s1 < views[0].seq or s0 > views[-1].seq):
            coverage = COVERAGE_OUTSIDE
        else:
            coverage = COVERAGE_FULL
        return BuildReport(
            port=port,
            t0=t0,
            t1=t1,
            window_s=self.window_s,
            coverage=coverage,
            windows=selected,
            evicted_windows=evicted_in_range,
        )

    def _merged_horizon(self, port: str) -> Tuple[Optional[int], int]:
        horizon, evicted = self.eviction_horizon(port)
        prefix = port + "."
        for sub in self.ports():
            if not sub.startswith(prefix):
                continue
            sub_h, sub_e = self.eviction_horizon(sub)
            evicted = max(evicted, sub_e)
            if sub_h is not None and (horizon is None or sub_h > horizon):
                horizon = sub_h
        return horizon, evicted

    def top_contributors(
        self, port: str, t0: float, t1: float, k: int = 10
    ) -> List[Tuple[object, int, int]]:
        return self.who_built(port, t0, t1).top_contributors(k)

    def tenant_shares(self, port: str, t0: float, t1: float) -> Dict[int, float]:
        return self.who_built(port, t0, t1).tenant_shares()


class _PortWindows:
    """Live per-port state: the sealed ring plus the active write buffer."""

    __slots__ = (
        "name", "sealed", "active", "spare", "first_seq", "evicted",
        "flips", "collisions",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.sealed: List[_Window] = []
        self.active: Optional[_Window] = None
        self.spare: Optional[_Window] = None
        self.first_seq: Optional[int] = None
        self.evicted = 0
        self.flips = 0
        self.collisions = 0


class PortHandle:
    """Pre-bound fast-path writer for one port.

    Components obtain one via :meth:`TimeWindowRecorder.port_handle` at
    construction and call its hooks without the port name. Binding once
    removes the per-record port lookup, and caching the active window
    with its precomputed end time turns the window check into a single
    float compare (``now >= _t1``) instead of a division plus a ``seq``
    comparison — the record path is what every accepted packet pays, so
    it has to be as close to free as Python allows.

    The cache cannot go stale silently: the active window only changes
    when simulated time crosses a window boundary (which the ``_t1``
    compare catches, time being monotonic) or when
    :meth:`TimeWindowRecorder.flip_all` seals mid-window — and that
    path explicitly invalidates every handle.
    """

    __slots__ = ("_recorder", "_port", "_win", "_t1", "_mask", "records")

    def __init__(self, recorder: "TimeWindowRecorder", port: _PortWindows) -> None:
        self._recorder = recorder
        self._port = port
        self._win: Optional[_Window] = None
        self._t1 = 0.0
        self._mask = recorder._mask
        self.records = 0

    def _refresh(self, now: float) -> _Window:
        """Slow path: re-derive the active window and cache its end time."""
        rec = self._recorder
        seq = int(now / rec.window_s)
        port = self._port
        window = port.active
        if window is None or window.seq != seq:
            window = rec._window_for(port, seq)
        self._win = window
        self._t1 = (seq + 1) * rec.window_s
        return window

    def on_enqueue(
        self, flow_id: int, tenant_id: int, size: int, depth: float, now: float
    ) -> None:
        """Same contract as :meth:`TimeWindowRecorder.on_enqueue`, port-bound."""
        window = self._win
        if window is None or now >= self._t1:
            window = self._refresh(now)
        self.records += 1
        window.total_bytes += size
        window.total_pkts += 1
        if depth > window.high_water:
            window.high_water = depth
        tenants = window.tenant_bytes
        tenants[tenant_id] = tenants.get(tenant_id, 0) + size
        index = flow_id & self._mask
        slot_flow = window.slot_flow[index]
        if slot_flow == flow_id:
            window.slot_bytes[index] += size
            window.slot_pkts[index] += 1
        elif slot_flow == -1:
            window.slot_flow[index] = flow_id
            window.slot_tenant[index] = tenant_id
            window.slot_bytes[index] = size
            window.slot_pkts[index] = 1
            window.touched.append(index)
        else:
            window.collision_bytes += size
            window.collision_pkts += 1
            self._port.collisions += 1

    def on_depth(self, depth: float, now: float) -> None:
        """Same contract as :meth:`TimeWindowRecorder.on_depth`, port-bound."""
        window = self._win
        if window is None or now >= self._t1:
            window = self._refresh(now)
        if depth > window.high_water:
            window.high_water = depth

    def on_drop(self, flow_id: int, tenant_id: int, size: int, now: float) -> None:
        """Same contract as :meth:`TimeWindowRecorder.on_drop`, port-bound."""
        window = self._win
        if window is None or now >= self._t1:
            window = self._refresh(now)
        window.dropped_bytes += size
        window.dropped_pkts += 1


class TimeWindowRecorder(WindowQueryAPI):
    """Always-on, fixed-memory queue-buildup attribution.

    Install via :meth:`repro.obs.telemetry.Telemetry.enable_time_windows`
    *before* building the network — data-plane components cache a
    :class:`PortHandle` at construction, exactly like the flight
    recorder. Every hook is a plain method call guarded by one cached
    ``is not None`` check at the call site, and recording perturbs
    nothing: no RNG draws, no packet mutation, so runs are digest-
    neutral with the recorder on or off.
    """

    def __init__(
        self,
        window_s: float = DEFAULT_WINDOW_S,
        num_windows: int = DEFAULT_NUM_WINDOWS,
        slots_log2: int = DEFAULT_SLOTS_LOG2,
    ) -> None:
        if window_s <= 0:
            raise ConfigurationError(f"window_s must be positive, got {window_s}")
        if num_windows < 1:
            raise ConfigurationError(
                f"need at least one window, got {num_windows}"
            )
        if not 0 <= slots_log2 <= 20:
            raise ConfigurationError(
                f"slots_log2 out of range [0, 20]: {slots_log2}"
            )
        self.window_s = window_s
        self.num_windows = num_windows
        self.slots = 1 << slots_log2
        self._mask = self.slots - 1
        self._ports: Dict[str, _PortWindows] = {}
        self._handles: List[PortHandle] = []
        self.records = 0

    # -- wiring ------------------------------------------------------------

    def register_port(self, name: str) -> None:
        """Pre-create a port so idle ports answer queries (as empty)."""
        if name not in self._ports:
            self._ports[name] = _PortWindows(name)

    def port_handle(self, name: str) -> PortHandle:
        """Bind a :class:`PortHandle` to ``name`` (creating the port).

        Multiple handles on the same port are fine — they share the
        port's window state and only cache the lookup.
        """
        port = self._ports.get(name)
        if port is None:
            port = self._ports[name] = _PortWindows(name)
        handle = PortHandle(self, port)
        self._handles.append(handle)
        return handle

    def _window_for(self, port: _PortWindows, seq: int) -> _Window:
        """Slow path of the active-window lookup (miss, flip, or first write).

        The data-plane hooks inline the common case — ``port.active`` already
        covers ``seq`` — and only call here on a window boundary, so this
        runs once per (port, window), not once per packet.
        """
        active = port.active
        if active is None:
            if port.first_seq is None:
                port.first_seq = seq
            window = _Window(self.slots, seq)
            port.active = window
            return window
        if seq <= active.seq:  # pragma: no cover - sim time is monotonic
            return active
        # Flip: seal the active buffer; writes move to a recycled (or
        # fresh) buffer so readers of sealed windows never race writers.
        port.flips += 1
        port.sealed.append(active)
        if len(port.sealed) > self.num_windows:
            recycled = port.sealed.pop(0)
            port.evicted += 1
            recycled.reset(seq)
            port.active = recycled
        elif port.spare is not None:
            recycled = port.spare
            port.spare = None
            recycled.reset(seq)
            port.active = recycled
        else:
            port.active = _Window(self.slots, seq)
        return port.active

    # -- data-plane hooks --------------------------------------------------

    def on_enqueue(
        self,
        port_name: str,
        flow_id: int,
        tenant_id: int,
        size: int,
        depth: float,
        now: float,
    ) -> None:
        """A packet was accepted into ``port_name``'s queue.

        ``depth`` is the backlog *after* acceptance (what the flight
        recorder's queue hops carry, so ground truth lines up exactly);
        ``tenant_id`` is the AQ ingress ID header (0 = untagged).
        """
        port = self._ports.get(port_name)
        if port is None:
            port = self._ports[port_name] = _PortWindows(port_name)
        seq = int(now / self.window_s)
        window = port.active
        if window is None or window.seq != seq:
            window = self._window_for(port, seq)
        self.records += 1
        window.total_bytes += size
        window.total_pkts += 1
        if depth > window.high_water:
            window.high_water = depth
        tenants = window.tenant_bytes
        tenants[tenant_id] = tenants.get(tenant_id, 0) + size
        index = flow_id & self._mask
        slot_flow = window.slot_flow[index]
        if slot_flow == flow_id:
            window.slot_bytes[index] += size
            window.slot_pkts[index] += 1
        elif slot_flow == -1:
            window.slot_flow[index] = flow_id
            window.slot_tenant[index] = tenant_id
            window.slot_bytes[index] = size
            window.slot_pkts[index] = 1
            window.touched.append(index)
        else:
            # Hash collision: the slot keeps its first owner; the newcomer
            # is charged to the window's collision bucket so per-window
            # totals still reconcile (and validators know to widen).
            window.collision_bytes += size
            window.collision_pkts += 1
            port.collisions += 1

    def on_depth(self, port_name: str, depth: float, now: float) -> None:
        """Port-level depth sample without flow attribution.

        Multi-queue ports use this to record the *summed* backlog across
        their traffic classes — the per-class high-waters only bound it.
        """
        port = self._ports.get(port_name)
        if port is None:
            port = self._ports[port_name] = _PortWindows(port_name)
        seq = int(now / self.window_s)
        window = port.active
        if window is None or window.seq != seq:
            window = self._window_for(port, seq)
        if depth > window.high_water:
            window.high_water = depth

    def on_drop(
        self, port_name: str, flow_id: int, tenant_id: int, size: int, now: float
    ) -> None:
        """A packet was discarded at ``port_name`` (tail/RED/fault drop)."""
        port = self._ports.get(port_name)
        if port is None:
            port = self._ports[port_name] = _PortWindows(port_name)
        seq = int(now / self.window_s)
        window = port.active
        if window is None or window.seq != seq:
            window = self._window_for(port, seq)
        window.dropped_bytes += size
        window.dropped_pkts += 1

    # -- WindowQueryAPI ----------------------------------------------------

    def ports(self) -> List[str]:
        return sorted(self._ports)

    def _view(self, port: _PortWindows, window: _Window, active: bool) -> WindowView:
        return WindowView(
            port=port.name,
            seq=window.seq,
            window_s=self.window_s,
            flows=window.flows(),
            tenants=dict(window.tenant_bytes),
            high_water=window.high_water,
            total_bytes=window.total_bytes,
            total_pkts=window.total_pkts,
            collision_bytes=window.collision_bytes,
            collision_pkts=window.collision_pkts,
            dropped_bytes=window.dropped_bytes,
            dropped_pkts=window.dropped_pkts,
            active=active,
        )

    def views(self, port: str) -> List[WindowView]:
        record = self._ports.get(port)
        if record is None:
            return []
        views = [self._view(record, w, False) for w in record.sealed]
        if record.active is not None:
            views.append(self._view(record, record.active, True))
        return views

    def eviction_horizon(self, port: str) -> Tuple[Optional[int], int]:
        record = self._ports.get(port)
        if record is None or record.evicted == 0:
            return None, 0
        oldest = record.sealed[0] if record.sealed else record.active
        return (oldest.seq if oldest is not None else None), record.evicted

    # -- maintenance -------------------------------------------------------

    def flip_all(self, now: float) -> None:
        """Seal every port's active window (end-of-run flush).

        After this, readers see the final partial windows as sealed —
        the simulator's stand-in for the control plane's last flip.
        """
        for record in self._ports.values():
            if record.active is None:
                continue
            record.flips += 1
            record.sealed.append(record.active)
            if len(record.sealed) > self.num_windows:
                evicted = record.sealed.pop(0)
                record.evicted += 1
                record.spare = evicted
            record.active = None
        # Sealing can land mid-window, which the handles' time-based
        # check cannot see — drop their caches so a later write opens a
        # fresh window instead of mutating a sealed one.
        for handle in self._handles:
            handle._win = None

    def stats(self) -> dict:
        """Run-level counters (flips, collisions, evictions, memory)."""
        return {
            "ports": len(self._ports),
            "records": self.records + sum(h.records for h in self._handles),
            "flips": sum(p.flips for p in self._ports.values()),
            "collisions": sum(p.collisions for p in self._ports.values()),
            "evicted_windows": sum(p.evicted for p in self._ports.values()),
            "retained_windows": sum(
                len(p.sealed) + (1 if p.active is not None else 0)
                for p in self._ports.values()
            ),
            "window_s": self.window_s,
            "num_windows": self.num_windows,
            "slots": self.slots,
        }

    def collect_metrics(self, registry) -> None:
        """Metrics-registry collector (installed by ``Telemetry``)."""
        stats = self.stats()
        registry.gauge("timewin_ports").set(stats["ports"])
        registry.counter("timewin_records").set(stats["records"])
        registry.counter("timewin_flips").set(stats["flips"])
        registry.counter("timewin_collisions").set(stats["collisions"])
        registry.counter("timewin_evicted_windows").set(
            stats["evicted_windows"]
        )
        registry.gauge("timewin_retained_windows").set(
            stats["retained_windows"]
        )

    # -- serialization -----------------------------------------------------

    def config_dict(self) -> dict:
        return {
            "type": "timewin_config",
            "window_s": self.window_s,
            "num_windows": self.num_windows,
            "slots": self.slots,
        }

    def dump_jsonl(self, destination) -> int:
        """Write config + per-port metadata + every retained window as
        JSON lines; returns the number of window lines written."""
        owns = isinstance(destination, str)
        fh = open(destination, "w", encoding="utf-8") if owns else destination
        written = 0
        try:
            fh.write(json.dumps(self.config_dict(), separators=(",", ":")))
            fh.write("\n")
            for name in self.ports():
                record = self._ports[name]
                horizon, evicted = self.eviction_horizon(name)
                meta = {
                    "type": "port",
                    "port": name,
                    "flips": record.flips,
                    "collisions": record.collisions,
                    "evicted_windows": evicted,
                    "first_seq": record.first_seq,
                    "oldest_retained_seq": horizon,
                }
                fh.write(json.dumps(meta, separators=(",", ":")))
                fh.write("\n")
                for view in self.views(name):
                    fh.write(json.dumps(view.to_dict(), separators=(",", ":")))
                    fh.write("\n")
                    written += 1
        finally:
            if owns:
                fh.close()
        return written


class WindowStore(WindowQueryAPI):
    """Offline window set loaded from a :meth:`dump_jsonl` file."""

    def __init__(self, window_s: float = DEFAULT_WINDOW_S) -> None:
        self.window_s = window_s
        self.num_windows = DEFAULT_NUM_WINDOWS
        self.slots = 1 << DEFAULT_SLOTS_LOG2
        self._views: Dict[str, List[WindowView]] = {}
        self._meta: Dict[str, dict] = {}

    @classmethod
    def from_jsonl(
        cls,
        path: str,
        strict: bool = True,
        on_skip=None,
    ) -> "WindowStore":
        """Load a dump. ``strict=False`` adopts the
        :func:`repro.obs.tracebus.read_jsonl` skip semantics: corrupt or
        truncated lines are skipped (reported via ``on_skip(lineno, line,
        exc)`` when given) instead of aborting the load — the recovery
        path for dumps cut short by a killed shard worker.
        """
        store = cls()
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                    kind = data.get("type")
                    if kind == "timewin_config":
                        store.window_s = float(data["window_s"])
                        store.num_windows = int(data["num_windows"])
                        store.slots = int(data["slots"])
                    elif kind == "port":
                        store._meta[data["port"]] = data
                        store._views.setdefault(data["port"], [])
                    elif kind == "window":
                        view = WindowView.from_dict(data, store.window_s)
                        store._views.setdefault(view.port, []).append(view)
                    else:
                        raise KeyError(f"unknown record type {kind!r}")
                except (KeyError, TypeError, ValueError, AttributeError) as exc:
                    if strict:
                        raise ConfigurationError(
                            f"{path}:{lineno}: invalid window record: {exc}"
                        ) from exc
                    if on_skip is not None:
                        on_skip(lineno, line, exc)
        for views in store._views.values():
            views.sort(key=lambda v: v.seq)
        return store

    def ports(self) -> List[str]:
        return sorted(self._views)

    def views(self, port: str) -> List[WindowView]:
        return list(self._views.get(port, []))

    def eviction_horizon(self, port: str) -> Tuple[Optional[int], int]:
        meta = self._meta.get(port)
        if meta is None or not meta.get("evicted_windows"):
            return None, 0
        return meta.get("oldest_retained_seq"), int(meta["evicted_windows"])

    def port_meta(self, port: str) -> dict:
        return dict(self._meta.get(port, {}))

    def config_dict(self) -> dict:
        return {
            "type": "timewin_config",
            "window_s": self.window_s,
            "num_windows": self.num_windows,
            "slots": self.slots,
        }

    def dump_jsonl(self, destination) -> int:
        """Write this store back out in the recorder's dump format, so a
        stitched fabric-wide store round-trips through the same CLI
        tooling (``telemetry windows``) as a single-shard dump."""
        owns = isinstance(destination, str)
        fh = open(destination, "w", encoding="utf-8") if owns else destination
        written = 0
        try:
            fh.write(json.dumps(self.config_dict(), separators=(",", ":")))
            fh.write("\n")
            for name in self.ports():
                meta = self._meta.get(name)
                if meta is not None:
                    fh.write(json.dumps(meta, separators=(",", ":")))
                    fh.write("\n")
                for view in self._views[name]:
                    fh.write(json.dumps(view.to_dict(), separators=(",", ":")))
                    fh.write("\n")
                    written += 1
        finally:
            if owns:
                fh.close()
        return written


def stitch_window_dumps(
    paths,
    out_path: Optional[str] = None,
    strict: bool = True,
    on_skip=None,
) -> WindowStore:
    """Stitch per-shard window dumps into one fabric-wide store.

    Each shard of a partitioned run (:mod:`repro.sim.shard`) records only
    the queue ports it owns, so the stitch is a disjoint union: concat
    every shard's views, sort per port by window seq, and carry the
    per-port metadata (``evicted_windows``, ``oldest_retained_seq``)
    through verbatim — a port whose ring partially wrapped in its shard
    still answers :meth:`WindowQueryAPI.who_built` with honest
    ``partial``/``evicted`` coverage in the merged store, never silent
    zeros.

    All dumps must share ``window_s`` (the seq axis is only comparable on
    one quantum); overlapping port names mean the inputs were not shards
    of one run — both raise :class:`ConfigurationError` regardless of
    ``strict``, which only governs per-line corruption (see
    :meth:`WindowStore.from_jsonl`). Passing ``out_path`` also writes the
    merged store as one dump file.
    """
    if not paths:
        raise ConfigurationError("stitch needs at least one window dump")
    merged: Optional[WindowStore] = None
    for path in paths:
        store = WindowStore.from_jsonl(path, strict=strict, on_skip=on_skip)
        if merged is None:
            merged = store
            continue
        if store.window_s != merged.window_s:
            raise ConfigurationError(
                f"{path}: window_s {store.window_s} differs from "
                f"{merged.window_s}; shards of one run share one quantum"
            )
        overlap = set(store._views) & set(merged._views)
        if overlap:
            raise ConfigurationError(
                f"{path}: ports {sorted(overlap)} already present — inputs "
                f"are not disjoint shards of one run"
            )
        merged.num_windows = max(merged.num_windows, store.num_windows)
        merged.slots = max(merged.slots, store.slots)
        merged._views.update(store._views)
        merged._meta.update(store._meta)
    for views in merged._views.values():
        views.sort(key=lambda v: v.seq)
    if out_path is not None:
        merged.dump_jsonl(out_path)
    return merged


def build_from_trace(
    events: Iterable,
    window_s: float = DEFAULT_WINDOW_S,
    num_windows: int = DEFAULT_NUM_WINDOWS,
    slots_log2: int = DEFAULT_SLOTS_LOG2,
) -> TimeWindowRecorder:
    """Reconstruct time windows from a ``--telemetry`` event stream.

    Uses ``enqueue``/``drop`` events (node, flow, size, backlog); trace
    events carry no tenant tag, so tenant attribution lands on 0.
    """
    recorder = TimeWindowRecorder(
        window_s=window_s, num_windows=num_windows, slots_log2=slots_log2
    )
    for event in events:
        if event.node is None or event.size is None:
            continue
        if event.type == "enqueue":
            recorder.on_enqueue(
                event.node, event.flow_id or 0, 0, event.size,
                event.value or 0.0, event.time,
            )
        elif event.type == "drop":
            recorder.on_drop(
                event.node, event.flow_id or 0, 0, event.size, event.time
            )
    return recorder


# -- ground-truth validation ---------------------------------------------------


class FlightCollector:
    """A flight sink that retains every completed flight (validation use).

    Unbounded by design — validation runs are small; always-on runs use
    the time windows precisely to avoid this kind of growth.
    """

    def __init__(self) -> None:
        self.flights: List = []

    def handle_flight(self, flight) -> None:
        self.flights.append(flight)

    def close(self) -> None:
        pass


def crosscheck_with_flights(
    windows: WindowQueryAPI,
    flights: Iterable,
    ports: Optional[Iterable[str]] = None,
    max_mismatches: int = 20,
) -> dict:
    """Validate window attribution against flight-recorder ground truth.

    Replays every flight's queue hops (and queue-level drop hops) into
    the same (port, window) buckets the recorder used and requires:

    * per-(port, window, flow) byte/packet counts to match **exactly**
      for windows without slot collisions (collided windows are checked
      at window-total granularity instead);
    * per-window high-water depth to match the max post-enqueue backlog
      any hop observed;
    * per-window dropped bytes to match the drop hops.

    Windows that wrapped out of the ring are *skipped and counted* —
    eviction is bounded memory working as designed, not a mismatch.
    Returns a JSON-safe verdict dict with ``ok``, counts, and the first
    ``max_mismatches`` discrepancies.
    """
    port_filter = set(ports) if ports is not None else None
    expected: Dict[Tuple[str, int], dict] = {}

    def bucket(port: str, seq: int) -> dict:
        entry = expected.get((port, seq))
        if entry is None:
            entry = expected[(port, seq)] = {
                "flows": {}, "high_water": 0.0, "dropped_bytes": 0,
                "bytes": 0, "pkts": 0,
            }
        return entry

    for flight in flights:
        for hop in flight.hops:
            if hop.node is None:
                continue
            if port_filter is not None and hop.node not in port_filter:
                continue
            if hop.kind == "queue":
                entry = bucket(hop.node, windows.seq_for(hop.t_in))
                flows = entry["flows"]
                prev = flows.get(flight.flow_id, (0, 0))
                flows[flight.flow_id] = (prev[0] + flight.size, prev[1] + 1)
                entry["bytes"] += flight.size
                entry["pkts"] += 1
                if hop.depth is not None and hop.depth > entry["high_water"]:
                    entry["high_water"] = hop.depth
            elif hop.kind == "drop":
                entry = bucket(hop.node, windows.seq_for(hop.t_in))
                entry["dropped_bytes"] += flight.size

    mismatches: List[dict] = []
    windows_checked = 0
    windows_skipped_evicted = 0
    collision_windows = 0
    max_error_bytes = 0
    ports_skipped_unknown: List[str] = []

    def note(port: str, seq: int, field: str, want, got) -> None:
        nonlocal max_error_bytes
        if isinstance(want, (int, float)) and isinstance(got, (int, float)):
            max_error_bytes = max(max_error_bytes, int(abs(want - got)))
        if len(mismatches) < max_mismatches:
            mismatches.append({
                "port": port, "seq": seq, "field": field,
                "expected": want, "recorded": got,
            })

    known_ports = set(windows.ports())
    port_names = sorted({port for port, _ in expected})
    for port in port_names:
        if port not in known_ports:
            # Flights also record hops at components the window recorder
            # does not wire (host shapers, faulted links); those are out
            # of attribution scope, not mismatches.
            ports_skipped_unknown.append(port)
            continue
        horizon, _ = windows.eviction_horizon(port)
        recorded = {v.seq: v for v in windows.views(port)}
        for (entry_port, seq), entry in expected.items():
            if entry_port != port:
                continue
            if horizon is not None and seq < horizon:
                windows_skipped_evicted += 1
                continue
            view = recorded.get(seq)
            windows_checked += 1
            if view is None:
                note(port, seq, "window", entry["bytes"], None)
                continue
            if view.collision_pkts:
                collision_windows += 1
                want = entry["bytes"]
                got = view.total_bytes
                if want != got:
                    note(port, seq, "bytes(total,collided)", want, got)
            else:
                if entry["flows"] != view.flows:
                    for flow in set(entry["flows"]) | set(view.flows):
                        want = entry["flows"].get(flow, (0, 0))
                        got = view.flows.get(flow, (0, 0))
                        if want != got:
                            note(port, seq, f"flow{flow}.bytes", want[0], got[0])
            if entry["high_water"] != view.high_water:
                note(port, seq, "high_water", entry["high_water"], view.high_water)
            if entry["dropped_bytes"] != view.dropped_bytes:
                note(
                    port, seq, "dropped_bytes",
                    entry["dropped_bytes"], view.dropped_bytes,
                )

    return {
        "ok": not mismatches,
        "ports_checked": len(port_names) - len(ports_skipped_unknown),
        "ports_skipped_unknown": ports_skipped_unknown,
        "windows_checked": windows_checked,
        "windows_skipped_evicted": windows_skipped_evicted,
        "collision_windows": collision_windows,
        "max_error_bytes": max_error_bytes,
        "mismatches": mismatches,
    }
