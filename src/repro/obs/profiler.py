"""Sim-loop profiler: where does the wall clock go?

When attached (``Telemetry(profile=True)`` or ``--profile``), the
simulator's run loop switches to an instrumented variant that times every
callback with ``perf_counter`` and keys the cost by the callback's
qualified name — so a report line reads ``Link._finish`` or
``TcpSender._on_timer`` rather than an opaque address. The profiler also
tracks heap depth, events executed, and the wall-clock/sim-time ratio so
"how fast is the simulator" is a one-call answer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class SimProfiler:
    """Accumulates run-loop timing; one instance spans many ``run()`` calls."""

    def __init__(self, top_n: int = 10) -> None:
        self.top_n = top_n
        self.events_executed = 0
        self.wall_time = 0.0
        self.sim_time_advanced = 0.0
        self.max_heap_depth = 0
        self.run_calls = 0
        # site -> [cumulative seconds, calls]
        self._sites: Dict[str, List[float]] = {}

    # -- feeding (called from Simulator.run's instrumented loop) ---------------

    def record_callback(self, site: str, elapsed: float) -> None:
        entry = self._sites.get(site)
        if entry is None:
            self._sites[site] = [elapsed, 1]
        else:
            entry[0] += elapsed
            entry[1] += 1

    def note_heap_depth(self, depth: int) -> None:
        if depth > self.max_heap_depth:
            self.max_heap_depth = depth

    def note_run(self, events: int, wall: float, sim_advanced: float) -> None:
        self.run_calls += 1
        self.events_executed += events
        self.wall_time += wall
        if sim_advanced > 0:
            self.sim_time_advanced += sim_advanced

    # -- reporting -------------------------------------------------------------

    @staticmethod
    def site_name(fn) -> str:
        try:
            return fn.__qualname__
        except AttributeError:
            return repr(fn)

    def hotspots(self, top_n: Optional[int] = None) -> List[Tuple[str, float, int]]:
        """(site, cumulative_seconds, calls) sorted by cumulative time."""
        ranked = sorted(
            ((site, total, calls) for site, (total, calls) in self._sites.items()),
            key=lambda item: item[1],
            reverse=True,
        )
        return ranked[: top_n if top_n is not None else self.top_n]

    @property
    def events_per_second(self) -> float:
        return self.events_executed / self.wall_time if self.wall_time > 0 else 0.0

    @property
    def sim_wall_ratio(self) -> float:
        """>1 means the simulator runs faster than real time."""
        return self.sim_time_advanced / self.wall_time if self.wall_time > 0 else 0.0

    def snapshot(self, sim=None) -> dict:
        snap = {
            "events_executed": self.events_executed,
            "wall_time_s": self.wall_time,
            "sim_time_advanced_s": self.sim_time_advanced,
            "events_per_second": self.events_per_second,
            "sim_wall_ratio": self.sim_wall_ratio,
            "max_heap_depth": self.max_heap_depth,
            "run_calls": self.run_calls,
            "hotspots": [
                {"site": site, "cumulative_s": total, "calls": calls}
                for site, total, calls in self.hotspots()
            ],
        }
        if sim is not None:
            snap["pending_events"] = sim.pending_events()
            snap["next_event_time"] = sim.peek_time()
        return snap

    def render(self, sim=None) -> str:
        snap = self.snapshot(sim)
        lines = [
            "sim-loop profile",
            f"  events executed : {snap['events_executed']}",
            f"  wall time       : {snap['wall_time_s']:.4f} s",
            f"  events/sec      : {snap['events_per_second']:,.0f}",
            f"  sim/wall ratio  : {snap['sim_wall_ratio']:.3f}x",
            f"  max heap depth  : {snap['max_heap_depth']}",
        ]
        if sim is not None:
            lines.append(f"  pending events  : {snap['pending_events']}")
        if snap["hotspots"]:
            lines.append(f"  top {len(snap['hotspots'])} callback sites by cumulative time:")
            width = max(len(h["site"]) for h in snap["hotspots"])
            for h in snap["hotspots"]:
                mean_us = 1e6 * h["cumulative_s"] / h["calls"] if h["calls"] else 0.0
                lines.append(
                    f"    {h['site']:<{width}}  {h['cumulative_s']:.4f} s"
                    f"  x{h['calls']}  ({mean_us:.1f} us/call)"
                )
        return "\n".join(lines)
