"""Metrics registry: labeled counters, gauges, and histograms.

The registry is the *pull* half of the observability layer: components
keep their existing ``__slots__`` stats objects on the hot path (free),
and register a **collector** — a closure that publishes those numbers
into the registry — which runs only when a snapshot is taken. Code that
wants push-style instruments can also create :class:`Counter` /
:class:`Gauge` / :class:`Histogram` directly via the get-or-create
accessors and update them inline.

Snapshots are plain dicts (JSON-safe) so ``harness/report.py`` can write
them next to its text tables and ``repro telemetry summarize`` can read
them back.
"""

from __future__ import annotations

import json
import random
import zlib
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..stats.meters import percentile

#: A label set in canonical (hashable) form: sorted (key, value) pairs.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (packets, bytes, drops...)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(f"counter {self.name}: cannot decrease")
        self.value += amount

    def set(self, value: float) -> None:
        """Publish an absolute total (collector style: the source counter
        is authoritative, the registry mirrors it)."""
        self.value = float(value)


class Gauge:
    """A point-in-time value (backlog bytes, current A-Gap, rate)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


#: Default histogram reservoir size: enough for stable p99 estimates while
#: keeping always-on runs at flat memory regardless of observation count.
DEFAULT_SAMPLE_CAP = 4096


class Histogram:
    """A distribution summarized at snapshot time (delays, gaps, sizes).

    Memory is bounded: beyond ``sample_cap`` observations the stored
    values become a uniform reservoir sample (Vitter's Algorithm R,
    seeded from the metric identity so runs are reproducible) while
    ``count``/``min``/``max``/``mean`` stay exact. Collectors that feed a
    histogram incrementally by slicing their source list from
    ``hist.count`` rely on that exactness — the count is the number of
    observations, never the reservoir size.
    """

    __slots__ = ("name", "labels", "sample_cap", "_values", "_n", "_min", "_max", "_sum", "_rng")

    def __init__(
        self, name: str, labels: LabelKey, sample_cap: int = DEFAULT_SAMPLE_CAP
    ) -> None:
        if sample_cap < 1:
            raise ConfigurationError(
                f"histogram {name}: sample_cap must be positive, got {sample_cap}"
            )
        self.name = name
        self.labels = labels
        self.sample_cap = sample_cap
        self._values: List[float] = []
        self._n = 0
        self._min = 0.0
        self._max = 0.0
        self._sum = 0.0
        # Deterministic per-metric seed (hash() is randomized per process,
        # which would break cross-run and cross-worker reproducibility).
        self._rng = random.Random(
            zlib.crc32(repr((name, labels)).encode("utf-8"))
        )

    def observe(self, value: float) -> None:
        value = float(value)
        if self._n == 0 or value < self._min:
            self._min = value
        if self._n == 0 or value > self._max:
            self._max = value
        self._sum += value
        if self._n < self.sample_cap:
            self._values.append(value)
        else:
            slot = self._rng.randrange(self._n + 1)
            if slot < self.sample_cap:
                self._values[slot] = value
        self._n += 1

    def observe_many(self, values) -> None:
        for value in values:
            self.observe(value)

    @property
    def count(self) -> int:
        """Exact number of observations (not the retained sample size)."""
        return self._n

    @property
    def sampled(self) -> bool:
        """True once the reservoir has started subsampling."""
        return self._n > self.sample_cap

    def summary(self) -> dict:
        if self._n == 0:
            return {"count": 0}
        values = self._values
        out = {
            "count": self._n,
            "min": self._min,
            "max": self._max,
            "mean": self._sum / self._n,
            "p50": percentile(values, 50.0),
            "p95": percentile(values, 95.0),
            "p99": percentile(values, 99.0),
        }
        if self.sampled:
            out["sample_size"] = len(values)
        return out


class MetricsRegistry:
    """Get-or-create store of labeled metrics plus snapshot collectors."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    # -- instruments -----------------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, _label_key(labels))
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter(name, key[1])
        return metric

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, _label_key(labels))
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge(name, key[1])
        return metric

    def histogram(
        self, name: str, sample_cap: Optional[int] = None, **labels: object
    ) -> Histogram:
        """Get-or-create; ``sample_cap`` applies only at creation time
        (an existing series keeps the reservoir it was born with)."""
        key = (name, _label_key(labels))
        metric = self._histograms.get(key)
        if metric is None:
            cap = DEFAULT_SAMPLE_CAP if sample_cap is None else sample_cap
            metric = self._histograms[key] = Histogram(name, key[1], sample_cap=cap)
        return metric

    # -- collectors ------------------------------------------------------------

    def add_collector(self, collector: Callable[["MetricsRegistry"], None]) -> None:
        """Register a closure that publishes component stats into the
        registry; it runs on every :meth:`snapshot` (never on the data
        path)."""
        self._collectors.append(collector)

    def collect(self) -> None:
        for collector in self._collectors:
            collector(self)

    # -- snapshots -------------------------------------------------------------

    @staticmethod
    def _entry(metric, value) -> dict:
        entry = {"name": metric.name, "labels": dict(metric.labels)}
        entry["value"] = value
        return entry

    def snapshot(self, run_collectors: bool = True) -> dict:
        """JSON-safe dump of every metric (after running collectors)."""
        if run_collectors:
            self.collect()
        return {
            "counters": [
                self._entry(m, m.value) for m in self._counters.values()
            ],
            "gauges": [self._entry(m, m.value) for m in self._gauges.values()],
            "histograms": [
                self._entry(m, m.summary()) for m in self._histograms.values()
            ],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def value(self, name: str, **labels: object) -> float:
        """Sum of a counter/gauge across all label sets matching ``labels``
        (a subset match; pass nothing to sum every series of ``name``)."""
        want = set(_label_key(labels))
        total = 0.0
        found = False
        for store in (self._counters, self._gauges):
            for (metric_name, label_key), metric in store.items():
                if metric_name == name and want <= set(label_key):
                    total += metric.value
                    found = True
        if not found:
            raise ConfigurationError(f"no metric named {name!r} matching {labels}")
        return total

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)


def merge_metrics_snapshots(snapshots: List[dict]) -> dict:
    """Union per-shard :meth:`MetricsRegistry.snapshot` dicts into one
    fabric-wide snapshot.

    Counters sum across shards; gauges sum too (every fabric gauge —
    backlog bytes, retained windows — is an extensive quantity over
    disjoint port sets, so the fabric-wide value is the sum of the
    slices). Histogram summaries merge honestly: exact ``count`` /
    ``min`` / ``max`` and the count-weighted ``mean`` survive, while
    percentiles — not mergeable from summaries without the samples — are
    **omitted** rather than fabricated. Same-name series with identical
    labels collapse into one entry; output order is sorted by (name,
    labels) so merges are deterministic.
    """
    counters: Dict[tuple, float] = {}
    gauges: Dict[tuple, float] = {}
    hists: Dict[tuple, dict] = {}

    def key_of(entry: dict) -> tuple:
        return (entry["name"], tuple(sorted(entry["labels"].items())))

    for snap in snapshots:
        for entry in snap.get("counters", []):
            key = key_of(entry)
            counters[key] = counters.get(key, 0.0) + entry["value"]
        for entry in snap.get("gauges", []):
            key = key_of(entry)
            gauges[key] = gauges.get(key, 0.0) + entry["value"]
        for entry in snap.get("histograms", []):
            key = key_of(entry)
            summary = entry["value"]
            count = summary.get("count", 0)
            merged = hists.get(key)
            if merged is None:
                hists[key] = merged = {"count": 0}
            if count == 0:
                continue
            if merged["count"] == 0:
                merged.update(
                    count=count, min=summary["min"], max=summary["max"],
                    mean=summary["mean"],
                )
            else:
                total = merged["count"] + count
                merged["mean"] = (
                    merged["mean"] * merged["count"]
                    + summary["mean"] * count
                ) / total
                merged["min"] = min(merged["min"], summary["min"])
                merged["max"] = max(merged["max"], summary["max"])
                merged["count"] = total

    def entries(table) -> List[dict]:
        return [
            {"name": name, "labels": dict(labels), "value": value}
            for (name, labels), value in sorted(table.items())
        ]

    return {
        "counters": entries(counters),
        "gauges": entries(gauges),
        "histograms": entries(hists),
        "merged_from": len(snapshots),
    }
