"""Command-line interface: run any paper experiment from a shell.

Examples::

    python -m repro fig7 --approach aq --vms 4
    python -m repro table2 --bottleneck-gbps 2 --duration-ms 60
    python -m repro table3
    python -m repro fig12
    python -m repro list

Each subcommand runs the corresponding scenario at the given (scaled)
parameters and prints the paper-style table or series. The benchmark
suite (``pytest benchmarks/ --benchmark-only``) runs the same scenarios at
the scales of record with assertions; the CLI is for interactive poking.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
from collections import Counter
from typing import List, Optional

from .core.agap import simulate_discrepancy_control
from .core.resources import memory_series, tofino_usage
from .errors import ReproError
from .harness.common import APPROACHES, EntitySpec, telemetry_session
from .harness.report import (
    rate_range_str,
    render_metrics_summary,
    render_table,
    write_metrics_snapshot,
)
from .harness.scenarios import (
    run_cc_pair,
    run_cc_pair_wct,
    run_cc_preservation,
    run_fluid_share,
    run_longlived_share,
    run_single_entity_wct,
    run_two_entity_fairness,
    run_udp_tcp_timeline,
    run_vm_profile,
)
from .units import format_rate, gbps


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--bottleneck-gbps", type=float, default=2.0,
                        help="bottleneck rate in Gbps (default 2)")
    parser.add_argument("--duration-ms", type=float, default=60.0,
                        help="simulated duration in ms (default 60)")
    parser.add_argument("--seed", type=int, default=1)
    _add_telemetry(parser)


def _add_telemetry(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--telemetry", metavar="OUT.JSONL", default=None,
                        help="write a structured event trace (JSONL) and a "
                             "metrics snapshot (<OUT>.metrics.json)")
    parser.add_argument("--metrics-summary", action="store_true",
                        help="print a metrics-registry summary after the run")
    parser.add_argument("--profile", action="store_true",
                        help="profile the sim loop and print hotspots")
    parser.add_argument("--flight-record", metavar="FLIGHTS.JSONL", default=None,
                        help="record per-packet INT flights to a JSONL file "
                             "(inspect with 'repro telemetry flights')")
    parser.add_argument("--flight-max", type=int, default=None, metavar="N",
                        help="bound --flight-record to the N most recent "
                             "flights (ring; evictions are counted)")
    parser.add_argument("--timewin", metavar="WINDOWS.JSONL", default=None,
                        help="attach the fixed-memory time-window recorder "
                             "and dump retained windows to a JSONL file "
                             "(inspect with 'repro telemetry windows')")
    parser.add_argument("--timewin-ms", type=float, default=None, metavar="MS",
                        help="time-window duration in ms (default 1.0)")
    parser.add_argument("--audit", action="store_true",
                        help="attach the conservation-law run auditor; "
                             "exit 1 if any invariant is violated")
    parser.add_argument("--faults", metavar="PLAN.JSON", default=None,
                        help="activate a fault plan (docs/FAULTS.md schema) "
                             "for every network the command builds")


def metrics_path_for(trace_path: str) -> str:
    """The metrics-snapshot path written alongside ``--telemetry`` output."""
    stem = trace_path[:-6] if trace_path.endswith(".jsonl") else trace_path
    return f"{stem}.metrics.json"


def _approach_arg(parser: argparse.ArgumentParser, default: Optional[str] = None):
    if default is None:
        parser.add_argument("--approach", choices=APPROACHES, action="append",
                            dest="approaches",
                            help="approach(es) to run (default: all)")
    else:
        parser.add_argument("--approach", choices=APPROACHES, default=default)


def cmd_fig1(args) -> int:
    bottleneck = gbps(args.bottleneck_gbps)
    duration = args.duration_ms * 1e-3
    rows = []
    for cc_a, cc_b in [("cubic", "dctcp"), ("cubic", "swift"), ("dctcp", "swift")]:
        result = run_cc_pair(
            cc_a, args.flows, cc_b, args.flows, "pq",
            bottleneck_bps=bottleneck, duration=duration,
            warmup=duration * 0.4, seed=args.seed,
        )
        rows.append([f"{cc_a} vs {cc_b}",
                     format_rate(result.rates_bps["A"]),
                     format_rate(result.rates_bps["B"])])
    print(render_table(["pairing (PQ)", "A", "B"], rows))
    return 0


def cmd_fig3(args) -> int:
    rows = []
    strawman = simulate_discrepancy_control(use_agap=False).cycle_peaks()
    agap = simulate_discrepancy_control(use_agap=True).cycle_peaks()
    for i in range(min(8, len(strawman), len(agap))):
        rows.append([f"r{i}", f"{strawman[i] / 1e9:.3f}G", f"{agap[i] / 1e9:.3f}G"])
    print(render_table(["cycle", "strawman D(t)", "A-Gap"], rows))
    return 0


def cmd_fig6(args) -> int:
    bottleneck = gbps(args.bottleneck_gbps)
    approaches = args.approaches or list(APPROACHES)
    rows = []
    for approach in approaches:
        row = [approach.upper()]
        for vms in args.vms:
            wct = run_single_entity_wct(
                vms, approach, args.volume_mb * 1_000_000,
                bottleneck_bps=bottleneck, seed=args.seed,
            )
            row.append(f"{wct * 1e3:.1f}ms")
        rows.append(row)
    print(render_table(["approach"] + [f"{v} VMs" for v in args.vms], rows))
    return 0


def cmd_fig7(args) -> int:
    bottleneck = gbps(args.bottleneck_gbps)
    approaches = args.approaches or list(APPROACHES)
    rows = []
    for approach in approaches:
        result = run_two_entity_fairness(
            args.vms, approach, args.volume_mb * 1_000_000,
            bottleneck_bps=bottleneck, seed=args.seed,
        )
        rows.append([approach.upper(), f"{result.fairness():.2f}",
                     f"{result.wct['A'] * 1e3:.1f}ms",
                     f"{result.wct['B'] * 1e3:.1f}ms"])
    print(render_table(["approach", "fairness", "WCT A", f"WCT B ({args.vms} VMs)"],
                       rows))
    return 0


def cmd_fig8(args) -> int:
    bottleneck = gbps(args.bottleneck_gbps)
    duration = args.duration_ms * 1e-3
    rows = []
    for approach in ("pq", "aq"):
        result = run_cc_pair(
            "cubic", 1, "cubic", args.flows, approach,
            bottleneck_bps=bottleneck, duration=duration,
            warmup=duration * 0.4, seed=args.seed,
        )
        rows.append([approach.upper(),
                     format_rate(result.rates_bps["A"]),
                     format_rate(result.rates_bps["B"])])
    print(render_table(["approach", "A (1 flow)", f"B ({args.flows} flows)"], rows))
    return 0


def cmd_fig9(args) -> int:
    bottleneck = gbps(args.bottleneck_gbps)
    result = run_udp_tcp_timeline(
        args.approach, bottleneck_bps=bottleneck,
        phase=args.duration_ms * 1e-3 / 7, seed=args.seed,
    )
    entities = ["T1", "T2", "T3", "T4", "U"]
    rows = []
    for k in range(7):
        window = result.rates_in_window[f"phase{k}"]
        rows.append([f"phase {k}"] + [f"{window[e] / bottleneck:.2f}" for e in entities])
    print(render_table(["phase"] + entities, rows))
    return 0


def cmd_fig10(args) -> int:
    bottleneck = gbps(args.bottleneck_gbps)
    approaches = args.approaches or list(APPROACHES)
    rows = []
    for approach in approaches:
        result = run_cc_pair_wct(
            args.cc_a, args.cc_b, approach, args.volume_mb * 1_000_000,
            bottleneck_bps=bottleneck, seed=args.seed,
        )
        rows.append([approach.upper(), f"{result.fairness():.2f}",
                     f"{result.total_wct * 1e3:.1f}ms"])
    print(render_table(["approach", "fairness", "total WCT"], rows))
    return 0


def cmd_table2(args) -> int:
    bottleneck = gbps(args.bottleneck_gbps)
    duration = args.duration_ms * 1e-3
    rows = []
    for cc_a, n_a, cc_b, n_b in [
        ("cubic", 5, "cubic", 5),
        ("cubic", 5, "dctcp", 5),
        ("cubic", 5, "swift", 5),
        ("dctcp", 10, "swift", 5),
    ]:
        line = [f"{n_a} {cc_a} + {n_b} {cc_b}"]
        for approach in ("pq", "aq"):
            result = run_cc_pair(
                cc_a, n_a, cc_b, n_b, approach,
                bottleneck_bps=bottleneck, duration=duration,
                warmup=duration * 0.4, seed=args.seed,
            )
            line.append(
                f"{format_rate(result.rates_bps['A'])}+"
                f"{format_rate(result.rates_bps['B'])}"
            )
        rows.append(line)
    print(render_table(["setting", "PQ", "AQ"], rows))
    return 0


def cmd_table3(args) -> int:
    link = gbps(args.link_gbps)
    profile = gbps(args.profile_gbps)
    rows = [["ideal", format_rate(profile), format_rate(profile)]]
    approaches = args.approaches or list(APPROACHES)
    for approach in approaches:
        result = run_vm_profile(
            approach, link_rate_bps=link, profile_rate_bps=profile,
            duration=args.duration_ms * 1e-3, seed=args.seed,
        )
        rows.append([approach.upper(),
                     rate_range_str(result.outbound_range_bps),
                     rate_range_str(result.inbound_range_bps)])
    print(render_table(["approach", "VM A outbound", "VM A inbound"], rows))
    return 0


def cmd_table4(args) -> int:
    rows = []
    for cc in args.ccs:
        pq = run_cc_preservation(cc, use_aq=False, seed=args.seed)
        aq = run_cc_preservation(cc, use_aq=True, seed=args.seed)
        rows.append([cc, format_rate(pq.throughput_bps),
                     f"{pq.delay_p95 * 1e6:.0f}us",
                     format_rate(aq.throughput_bps),
                     f"{aq.delay_p95 * 1e6:.0f}us"])
    print(render_table(["CC", "PQ rate", "PQ 95p", "AQ rate", "AQ 95p"], rows))
    return 0


def cmd_fig11(args) -> int:
    rows = [[u.resource, f"{u.used_percent:.1f}%"] for u in tofino_usage()]
    print(render_table(["resource", "used"], rows))
    return 0


def cmd_fig12(args) -> int:
    series = memory_series(args.counts)
    rows = [[f"{n:,}", f"{mb:.2f} MB"] for n, mb in series.items()]
    print(render_table(["AQs", "memory"], rows))
    return 0


def cmd_share(args) -> int:
    """Free-form sharing experiment: N entities with chosen CCs."""
    bottleneck = gbps(args.bottleneck_gbps)
    duration = args.duration_ms * 1e-3
    entities = [
        EntitySpec(name=f"{cc}-{i}", cc=cc, num_flows=args.flows)
        for i, cc in enumerate(args.ccs)
    ]
    if args.fluid:
        if any(cc != "udp" for cc in args.ccs):
            print("--fluid requires all-UDP entities (closed-loop CC needs "
                  "per-packet feedback)", file=sys.stderr)
            return 2
        result = run_fluid_share(
            entities, args.approach,
            bottleneck_bps=bottleneck, duration=duration, seed=args.seed,
            fluid=True,
        )
        rows = [
            [name, format_rate(nbytes * 8 / duration),
             f"{nbytes * 8 / duration / bottleneck * 100:.0f}%"]
            for name, nbytes in result.delivered_total.items()
        ]
        print(render_table(["entity", "goodput", "share"], rows))
        stats = result.fluid
        print(
            f"fluid epochs: {stats.get('epochs', 0)} "
            f"engagements: {stats.get('engagements', 0)} "
            f"exits: {stats.get('exits', {})}"
        )
        if stats.get("static_reason"):
            print(f"fast path ineligible: {stats['static_reason']}")
        return 0
    result = run_longlived_share(
        entities, args.approach,
        bottleneck_bps=bottleneck, duration=duration,
        warmup=duration * 0.4, seed=args.seed,
    )
    rows = [
        [name, format_rate(rate), f"{rate / bottleneck * 100:.0f}%"]
        for name, rate in result.rates_bps.items()
    ]
    print(render_table(["entity", "throughput", "share"], rows))
    print(f"utilization: {result.utilization * 100:.0f}%")
    return 0


def cmd_fault_restart(args) -> int:
    """Guarantee degradation + re-convergence after a switch restart."""
    from .harness.scenarios import run_switch_restart

    bottleneck = gbps(args.bottleneck_gbps)
    duration = args.duration_ms * 1e-3
    result = run_switch_restart(
        bottleneck_bps=bottleneck,
        duration=duration,
        warmup=duration / 6,
        restart_at=args.restart_at_ms * 1e-3,
        seed=args.seed,
        tolerance=args.tolerance,
    )
    rows = []
    for name, share in result.share_bps.items():
        reconv = result.reconvergence_s[name]
        rows.append([
            name,
            format_rate(share),
            format_rate(result.rates_before_bps[name]),
            format_rate(result.rates_during_bps[name]),
            format_rate(result.rates_after_bps[name]),
            f"{reconv * 1e3:.1f}ms" if reconv >= 0 else "never",
        ])
    print(render_table(
        ["entity", "granted", "before", "during", "after", "reconverge"], rows
    ))
    for window in result.degraded_windows:
        end = window["end"]
        closed = f"{(end - window['start']) * 1e3:.2f}ms" if end is not None \
            else "STILL OPEN"
        print(f"degraded: aq={window['aq_id']} entity={window['entity']} "
              f"@{window['switch']}/{window['position']} "
              f"t={window['start'] * 1e3:.1f}ms window={closed}")
    for name, stats in result.restart_stats.items():
        print(f"restart: {name} x{stats['restarts']}, drained "
              f"{stats['drained_packets']} pkts "
              f"({stats['drained_bytes']:,} bytes)")
    ok = result.recovered(args.tolerance)
    print(f"recovered within {args.tolerance * 100:.0f}%: {'yes' if ok else 'NO'}")
    return 0 if ok else 1


def cmd_share_fabric(args) -> int:
    """Run the sharded fat-tree scenario: k lockstep partitions, one
    digest. Telemetry here is per-partition (each worker owns its ports
    and its slice of the conservation ledger), so this command manages
    its own auditor/recorder flags instead of the global ambient ones."""
    from .harness.fabric import run_share_fabric

    fault_plan = None
    if args.shard_faults is not None:
        from .errors import FaultPlanError
        from .faults import FaultPlan

        try:
            fault_plan = FaultPlan.from_file(args.shard_faults).to_dict()
        except FaultPlanError as exc:
            print(f"invalid fault plan {args.shard_faults!r}: {exc}",
                  file=sys.stderr)
            return 2

    run_dir = args.run_dir
    if run_dir is None and not args.no_run_dir:
        import time as _time

        stamp = _time.strftime("%Y%m%d-%H%M%S")
        run_dir = os.path.join("runs", f"share-fabric-{stamp}")
    flight_dir = None
    if args.flights:
        if run_dir is None:
            print("--flights needs a run directory (drop --no-run-dir or "
                  "pass --run-dir)", file=sys.stderr)
            return 2
        flight_dir = os.path.join(run_dir, "flights")

    timewin_params = None
    if args.timewin_window_ms is not None:
        timewin_params = {"window_s": args.timewin_window_ms * 1e-3}
    traffic_kwargs = {}
    if args.traffic == "mixed":
        traffic_kwargs = {
            "load": args.load,
            "churn": args.churn,
            "num_tenants": args.tenants,
            "cc": args.cc,
            "udp_gbps": args.udp_gbps,
        }
    try:
        report = run_share_fabric(
            args.shards,
            args.duration_ms * 1e-3,
            inline=args.inline,
            audit=args.shard_audit,
            timewin_dir=args.timewin_dir,
            timewin_params=timewin_params,
            fault_plan=fault_plan,
            run_dir=run_dir,
            timewin=False if args.no_timewin else None,
            timewin_budget=args.timewin_budget,
            flight_dir=flight_dir,
            pods=args.pods,
            tors_per_pod=args.tors_per_pod,
            hosts_per_tor=args.hosts_per_tor,
            num_cores=args.num_cores,
            seed=args.seed,
            intra_gbps=args.intra_gbps,
            cross_gbps=args.cross_gbps,
            traffic=args.traffic,
            **traffic_kwargs,
        )
    except ReproError as exc:
        print(f"share-fabric failed: {exc}", file=sys.stderr)
        return 1

    results = report["results"]
    print(render_table(
        ["shards", "epochs", "lookahead", "events", "boundary pkts", "wall"],
        [[
            str(report["shards"]), str(report["epochs"]),
            f"{report['lookahead'] * 1e6:.0f}us", f"{results['events']:,}",
            f"{report['boundary']['exported']:,}",
            f"{report['wall_s']:.2f}s",
        ]],
    ))
    delivered = sum(results["delivered_bytes"].values())
    kind = "udp flows" if args.traffic == "mixed" else "flows"
    print(f"delivered: {delivered:,} bytes across "
          f"{len(results['delivered_bytes'])} {kind} "
          f"({report['mode']} mode)")
    print(f"results digest: {report['digest']}")
    fct = report.get("fct")
    if fct:
        overall = fct["overall"]
        slow = overall.get("slowdown") or {}
        print(f"tcp: {overall['completed']}/{overall['flows']} flows "
              f"completed, overall slowdown "
              f"p50={slow.get('p50', float('nan')):.2f} "
              f"p99={slow.get('p99', float('nan')):.2f}")
        rows = []
        for tenant, stats in sorted(fct["tenants"].items(), key=lambda kv: int(kv[0])):
            tslow = stats.get("slowdown") or {}
            rows.append([
                tenant, f"{stats['completed']}/{stats['flows']}",
                f"{tslow.get('p50', float('nan')):.2f}",
                f"{tslow.get('p99', float('nan')):.2f}",
                f"{stats['retransmissions']}",
                f"{stats['goodput_bytes']:,}",
            ])
        print(render_table(
            ["tenant", "done/flows", "sd p50", "sd p99", "rexmit", "goodput B"],
            rows,
        ))
        jain = fct["fairness"]["jain_goodput"]
        if jain is not None:
            print(f"fairness (jain, goodput): {jain:.4f}")

    status = 0
    if args.shard_audit:
        violations = report["audit"]["violation_count"]
        print(f"audit: {report['audit']['events_seen']:,} events checked "
              f"across {report['shards']} partition ledger(s), "
              f"{violations} violation(s)")
        if violations:
            for verdict in report["audit"]["per_partition"]:
                for violation in (verdict or {}).get("violations", [])[:5]:
                    print(f"  {violation}", file=sys.stderr)
            status = 1
    if report.get("timewin_paths"):
        print(f"per-shard windows: {len(report['timewin_paths'])} dumps")
        if args.timewin_merged is not None:
            from .obs.timewin import stitch_window_dumps

            store = stitch_window_dumps(
                report["timewin_paths"], out_path=args.timewin_merged
            )
            print(f"stitched fabric-wide store: {len(store.ports())} ports "
                  f"-> {args.timewin_merged} "
                  f"(query with: repro telemetry windows "
                  f"{args.timewin_merged} --port PORT)")
        elif report.get("timewin_merged_path"):
            print(f"stitched fabric-wide store: {report['timewin_ports']} "
                  f"ports -> {report['timewin_merged_path']}")
    if report.get("flights_stitched_path"):
        print(f"stitched flights: {report['flights_stitched']} "
              f"-> {report['flights_stitched_path']}")
    if report.get("run_dir"):
        print(f"run ledger: {report['run_dir']} "
              f"({report.get('heartbeat_frames', 0)} heartbeat frames; "
              f"watch with: repro fabric-status {report['run_dir']})")
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"full report -> {args.out}")
    return status


def _render_fabric_status(run_dir: str, manifest: dict) -> None:
    from .obs.runledger import read_health_jsonl

    digest = (manifest.get("digests") or {}).get("fabric_digest", "-")
    print(f"{run_dir}: {manifest.get('scenario', '?')} "
          f"[{manifest.get('status', '?')}]  "
          f"shards={manifest.get('shards', '?')} "
          f"mode={manifest.get('mode', '?')} "
          f"digest={digest}")
    if manifest.get("status") == "failed":
        error = manifest.get("error") or {}
        if error:
            print(f"error: {error.get('type', '?')}: "
                  f"{error.get('message', '')}")
        for worker in manifest.get("workers") or []:
            if worker.get("status") == "failed":
                lines = (worker.get("error") or "").strip().splitlines()
                tail = lines[-1] if lines else "failed"
                print(f"  partition {worker.get('partition', '?')}: {tail}")

    frames = read_health_jsonl(os.path.join(run_dir, "health.jsonl"))
    latest: dict = {}
    for frame in frames:
        latest[frame.get("partition")] = frame
    if not latest:
        print("no heartbeat frames yet")
        return
    max_watermark = max(f.get("watermark_s", 0.0) for f in latest.values())
    rows = []
    for partition in sorted(latest):
        f = latest[partition]
        watermark = f.get("watermark_s", 0.0)
        lag = max_watermark - watermark
        rss = f.get("rss_kb")
        rows.append([
            str(partition),
            str(f.get("epoch", "?")),
            f"{watermark * 1e3:.2f}ms",
            f"{lag * 1e6:.0f}us",
            f"{f.get('events_per_s', 0.0):,.0f}",
            str(f.get("backlog_events", 0)),
            f"{f.get('backlog_bytes', 0):,}",
            f"{rss // 1024}MB" if rss else "-",
            f"{f.get('barrier_wait_s', 0.0) * 1e3:.1f}ms",
        ])
    print(render_table(
        ["shard", "epoch", "watermark", "lag", "ev/s", "backlog ev",
         "backlog bytes", "rss", "barrier wait"],
        rows,
    ))
    print(f"{len(frames)} heartbeat frame(s) total")


def cmd_fabric_status(args) -> int:
    """Render the health of a ledgered share-fabric run: manifest status
    plus the latest heartbeat frame per shard. ``--follow`` re-renders
    until the manifest leaves the ``running`` state."""
    import time as _time

    from .obs.runledger import load_manifest

    while True:
        try:
            run_dir, manifest = load_manifest(args.run_dir)
        except ReproError as exc:
            print(f"fabric-status: {exc}", file=sys.stderr)
            return 1
        _render_fabric_status(run_dir, manifest)
        if not args.follow or manifest.get("status") != "running":
            return 0
        _time.sleep(args.interval)
        print()


def cmd_telemetry_stitch(args) -> int:
    """Stitch per-shard window dumps into one fabric-wide store. Inputs
    may be bare JSONL dumps or run directories (resolved through their
    manifest's artifact index)."""
    from .obs.runledger import resolve_inputs
    from .obs.timewin import stitch_window_dumps

    try:
        dumps = resolve_inputs(args.dumps, "windows")
    except ReproError as exc:
        print(f"stitch failed: {exc}", file=sys.stderr)
        return 1
    if not dumps:
        print("warning: no window dumps to stitch (did the run record "
              "time windows?)", file=sys.stderr)
        return 1
    try:
        store = stitch_window_dumps(dumps, out_path=args.out)
    except OSError as exc:
        print(f"cannot read window dump: {exc}", file=sys.stderr)
        return 1
    except ReproError as exc:
        print(f"stitch failed: {exc}", file=sys.stderr)
        return 1
    rows = []
    for port in store.ports()[: args.max_rows]:
        views = store.views(port)
        meta = store.port_meta(port)
        rows.append([
            port, str(len(views)),
            str(meta.get("evicted_windows", 0)),
        ])
    print(render_table(["port", "windows", "evicted"], rows))
    print(f"stitched {len(dumps)} dump(s), {len(store.ports())} ports "
          f"-> {args.out}")
    return 0


def cmd_run_all(args) -> int:
    """Fan the registered experiment jobs out over worker processes."""
    from .harness.jobs import default_jobs, engine_results, filter_jobs
    from .harness.runner import (
        compare_to_baseline,
        load_baseline,
        results_digest,
        run_jobs,
        write_results_jsonl,
    )

    specs = filter_jobs(default_jobs(), args.filters)
    if args.timeout is not None:
        specs = [
            type(spec)(
                name=spec.name, target=spec.target, kwargs=spec.kwargs,
                tags=spec.tags, timeout_s=args.timeout,
            )
            for spec in specs
        ]
    if not specs:
        print("no jobs match the given --filter patterns", file=sys.stderr)
        return 1
    if args.list:
        print(render_table(
            ["job", "target"],
            [[spec.name, spec.target.rsplit(":", 1)[1]] for spec in specs],
        ))
        return 0

    total = len(specs)
    done = [0]

    def progress(result) -> None:
        done[0] += 1
        marker = "ok" if result.ok else result.status.upper()
        print(f"[{done[0]:>{len(str(total))}}/{total}] {result.name:<32} "
              f"{marker:<7} {result.wall_s:6.2f}s", flush=True)

    import time as _time

    t0 = _time.perf_counter()
    results = run_jobs(
        specs, jobs=args.jobs, profile=args.worker_profile,
        audit=args.audit_jobs, flight_dir=args.flight_record_dir,
        timewin_dir=args.timewin_dir, on_result=progress,
    )
    sweep_wall = _time.perf_counter() - t0

    failures = [r for r in results if not r.ok]
    print()
    print(render_table(
        ["job", "status", "wall", "attempts"],
        [[r.name, r.status, f"{r.wall_s:.2f}s", str(r.attempts)] for r in results],
    ))
    print(f"\n{total - len(failures)}/{total} ok in {sweep_wall:.1f}s "
          f"(--jobs {args.jobs}); digest {results_digest(results)[:16]}")

    if args.out:
        write_results_jsonl(results, args.out)
        print(f"results -> {args.out}")

    audit_failed = False
    if args.audit_jobs:
        audited = [r for r in results if r.audit is not None]
        total_events = sum(r.audit["events_seen"] for r in audited)
        total_violations = sum(r.audit["violation_count"] for r in audited)
        print(f"audit: {len(audited)} jobs, {total_events:,} events checked, "
              f"{total_violations} violation(s)")
        if args.flight_record_dir:
            print(f"flight records -> {args.flight_record_dir}/")
        for r in audited:
            if r.audit["violation_count"]:
                audit_failed = True
                print(f"\n--- {r.name}: {r.audit['violation_count']} "
                      f"audit violation(s) ---", file=sys.stderr)
                for v in r.audit["violations"][:5]:
                    print(f"  {v['invariant']} @ t={v['time']:.6f}s "
                          f"{v['subject']}: {v['message']}", file=sys.stderr)
    if args.timewin_dir:
        windowed = [r for r in results if r.timewin is not None]
        total_records = sum(r.timewin["records"] for r in windowed)
        total_retained = sum(r.timewin["retained_windows"] for r in windowed)
        print(f"time windows: {len(windowed)} jobs, {total_records:,} records "
              f"into {total_retained} retained windows -> {args.timewin_dir}/")

    engine = engine_results(results)
    if engine:
        from .harness.hotpath import engine_bench_payload

        with open(args.bench_out, "w", encoding="utf-8") as fh:
            json.dump(engine_bench_payload(engine), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"engine benches -> {args.bench_out}")

    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"cannot read baseline {args.baseline!r}: {exc}", file=sys.stderr)
            return 1
        regressions = [
            delta for delta in compare_to_baseline(results, baseline)
            if delta.ratio > 1.25 and delta.wall_s - delta.baseline_s > 0.5
        ]
        if regressions:
            print("\nwall-clock regressions vs baseline (>25% and >0.5s slower):")
            print(render_table(
                ["job", "baseline", "now", "ratio"],
                [[d.name, f"{d.baseline_s:.2f}s", f"{d.wall_s:.2f}s",
                  f"{d.ratio:.2f}x"] for d in regressions],
            ))
            return 1
        print("no wall-clock regressions vs baseline")

    if failures:
        for failure in failures:
            print(f"\n--- {failure.name} ({failure.status}) ---", file=sys.stderr)
            if failure.error:
                print(failure.error, file=sys.stderr)
        return 1
    return 1 if audit_failed else 0


def _summarize_run_dir(ref: str, max_rows: int) -> int:
    """Summarize a ledgered share-fabric run directory: manifest header,
    per-worker table, and the fabric-wide merged metrics snapshot."""
    from .obs.runledger import artifact_paths, load_manifest

    run_dir, manifest = load_manifest(ref)
    digest = (manifest.get("digests") or {}).get("fabric_digest", "-")
    print(f"run: {run_dir} [{manifest.get('status', '?')}]")
    print(f"scenario: {manifest.get('scenario', '?')}  "
          f"shards: {manifest.get('shards', '?')}  "
          f"mode: {manifest.get('mode', '?')}  "
          f"epochs: {manifest.get('epochs', '?')}  "
          f"digest: {digest}")
    obs = manifest.get("observability", {})
    print("observability: "
          + ", ".join(f"{k}={v}" for k, v in sorted(obs.items())
                      if not isinstance(v, dict)))

    workers = manifest.get("workers") or []
    if workers:
        rows = []
        for w in workers[:max_rows]:
            flights = w.get("flights") or {}
            rows.append([
                str(w.get("partition", "?")), str(w.get("status", "?")),
                f"{w.get('wall_s', 0.0):.2f}s",
                f"{w.get('events', 0):,}",
                f"{w.get('exported_packets', 0):,}",
                f"{w.get('imported_packets', 0):,}",
                str(flights.get("total", "-")),
            ])
        print()
        print(render_table(
            ["shard", "status", "wall", "events", "exported", "imported",
             "flights"],
            rows,
        ))

    metrics = artifact_paths(ref, "metrics")
    if metrics:
        with open(metrics[0], "r", encoding="utf-8") as fh:
            snapshot = json.load(fh)
        print()
        print(f"fabric-wide metrics (merged from "
              f"{snapshot.get('merged_from', '?')} shard snapshot(s)):")
        print(render_metrics_summary(snapshot, max_rows=max_rows))
    return 0


def cmd_telemetry_summarize(args) -> int:
    """Human summary of a recorded telemetry run.

    Accepts either a JSONL trace or a share-fabric run directory (the
    latter renders the manifest + fabric-wide merged metrics). Tolerant
    of damaged input: truncated/corrupt JSONL lines are skipped with a
    warning, and an empty trace is a valid (zero-event) run. Only an
    unreadable file is an error.
    """
    from .obs.runledger import is_run_reference
    from .obs.tracebus import read_jsonl

    if is_run_reference(args.trace):
        try:
            return _summarize_run_dir(args.trace, args.max_rows)
        except ReproError as exc:
            print(f"summarize failed: {exc}", file=sys.stderr)
            return 1
        except OSError as exc:
            print(f"cannot read run artifacts: {exc}", file=sys.stderr)
            return 1

    counts: Counter = Counter()
    first_time = None
    last_time = None
    skipped = [0]

    def warn_skip(lineno: int, problem: str) -> None:
        skipped[0] += 1
        print(f"warning: {args.trace}:{lineno}: skipping bad line: {problem}",
              file=sys.stderr)

    try:
        for event in read_jsonl(args.trace, strict=False, on_skip=warn_skip):
            counts[event.type] += 1
            if first_time is None:
                first_time = event.time
            last_time = event.time
    except OSError as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 1
    total = sum(counts.values())
    rows = [[etype, str(n)] for etype, n in counts.most_common()]
    rows.append(["total", str(total)])
    print(render_table(["event type", "count"], rows))
    if first_time is not None:
        print(f"trace span: {first_time:.6f}s .. {last_time:.6f}s")
    if skipped[0]:
        print(f"({skipped[0]} bad line(s) skipped)", file=sys.stderr)

    metrics_path = args.metrics or metrics_path_for(args.trace)
    try:
        with open(metrics_path, "r", encoding="utf-8") as fh:
            snapshot = json.load(fh)
    except FileNotFoundError:
        if args.metrics is not None:
            print(f"metrics snapshot not found: {metrics_path}", file=sys.stderr)
            return 1
        return 0
    print()
    print(render_metrics_summary(snapshot, max_rows=args.max_rows))
    return 0


def cmd_telemetry_flights(args) -> int:
    """Reconstruct paths, hop latencies, and drop attribution from a
    flight-record JSONL (written by ``--flight-record`` or an audited
    ``run-all`` sweep) — or from a share-fabric run directory, where the
    stitched end-to-end flights are preferred and per-shard segment
    dumps are stitched on the fly."""
    from .obs.flightrec import (
        FlightIndex,
        read_flights_jsonl,
        stitch_flight_dumps,
    )
    from .obs.runledger import artifact_paths, is_run_reference

    index = FlightIndex()
    try:
        if is_run_reference(args.flights):
            paths = artifact_paths(args.flights, "flights")
            if not paths:
                print(f"{args.flights}: run recorded no flights "
                      "(re-run share-fabric with --flights)",
                      file=sys.stderr)
                return 1
            if len(paths) == 1:
                flights = read_flights_jsonl(paths[0])
            else:
                flights = stitch_flight_dumps(paths)
        else:
            flights = read_flights_jsonl(args.flights)
        for flight in flights:
            if args.flow is not None and flight.flow_id != args.flow:
                continue
            index.handle_flight(flight)
    except OSError as exc:
        print(f"cannot read flights: {exc}", file=sys.stderr)
        return 1
    except ReproError as exc:
        print(f"cannot resolve flights: {exc}", file=sys.stderr)
        return 1
    except (ValueError, KeyError, TypeError) as exc:
        print(f"invalid flight record in {args.flights}: {exc}", file=sys.stderr)
        return 1
    print(f"{index.total} flights: {index.delivered} delivered, "
          f"{index.dropped} dropped")

    flow_rows = []
    for flow_id in sorted(index.paths_by_flow)[: args.max_rows]:
        path = index.path_for(flow_id)
        mean = index.mean_latency(flow_id)
        flow_rows.append([
            str(flow_id),
            " -> ".join(path) if path else "-",
            f"{mean * 1e6:.1f}us" if mean is not None else "-",
        ])
    if flow_rows:
        print()
        print(render_table(["flow", "path (most common)", "mean latency"],
                           flow_rows))

    hops = index.hop_latency()
    if hops:
        print()
        print(render_table(
            ["queue", "visits", "mean wait"],
            [[node, str(d["visits"]), f"{d['mean_wait_s'] * 1e6:.1f}us"]
             for node, d in list(hops.items())[: args.max_rows]],
        ))

    attributions = index.drop_attributions(limit=args.max_drops)
    if attributions:
        print(f"\ndrop attribution (showing {len(attributions)} of "
              f"{index.dropped}):")
        for line in attributions:
            print(f"  {line}")
    return 0


def cmd_telemetry_windows(args) -> int:
    """Query a time-window dump: who built each queue, top contributors,
    tenant shares — and optionally cross-validate the fixed-memory
    attribution against a flight-record ground truth. Accepts a bare
    JSONL dump or a run directory (stitched fabric-wide store preferred;
    per-shard dumps are stitched on the fly)."""
    from .obs.runledger import artifact_paths, is_run_reference
    from .obs.timewin import (
        WindowStore,
        crosscheck_with_flights,
        stitch_window_dumps,
    )

    try:
        if is_run_reference(args.windows):
            paths = artifact_paths(args.windows, "windows")
            if not paths:
                print(f"{args.windows}: run recorded no time windows",
                      file=sys.stderr)
                return 1
            if len(paths) == 1:
                store = WindowStore.from_jsonl(paths[0])
            else:
                store = stitch_window_dumps(paths)
        else:
            store = WindowStore.from_jsonl(args.windows)
    except OSError as exc:
        print(f"cannot read windows: {exc}", file=sys.stderr)
        return 1
    except Exception as exc:  # ConfigurationError/json decode
        print(f"invalid window dump {args.windows}: {exc}", file=sys.stderr)
        return 1

    ports = [args.port] if args.port else store.ports()
    if not ports:
        print("no windows recorded")
        return 0

    summary_rows = []
    for port in ports:
        views = store.views(port)
        meta = store.port_meta(port)
        if views:
            t0, t1 = views[0].t0, views[-1].t1
            span = f"{t0 * 1e3:.1f}..{t1 * 1e3:.1f}ms"
        else:
            span = "-"
        summary_rows.append([
            port, str(len(views)), span,
            str(meta.get("evicted_windows", 0)),
            str(meta.get("collisions", 0)),
        ])
    print(render_table(
        ["port", "windows", "span", "evicted", "collisions"],
        summary_rows[: args.max_rows],
    ))

    if args.port:
        views = store.views(args.port)
        t0 = args.t0_ms * 1e-3 if args.t0_ms is not None else (
            views[0].t0 if views else 0.0
        )
        t1 = args.t1_ms * 1e-3 if args.t1_ms is not None else (
            views[-1].t1 if views else 0.0
        )
        report = store.who_built(args.port, t0, t1)
        print(f"\nwho built {args.port} over "
              f"[{t0 * 1e3:.3f}ms, {t1 * 1e3:.3f}ms) — "
              f"coverage: {report.coverage}"
              + (f" ({report.evicted_windows} window(s) evicted)"
                 if report.evicted_windows else ""))
        if report.coverage == "evicted":
            print("the queried range has wrapped out of the ring; "
                  "re-run with a larger --timewin ring or query recent time")
        contributors = report.top_contributors(args.top)
        if contributors:
            total = max(report.total_bytes + report.collision_bytes, 1)
            print(render_table(
                ["flow", "bytes", "pkts", "share"],
                [[str(flow), f"{b:,}", str(p), f"{b / total * 100:.1f}%"]
                 for flow, b, p in contributors],
            ))
        shares = report.tenant_shares()
        if shares:
            print(render_table(
                ["tenant (AQ id)", "occupancy share"],
                [[str(t), f"{share * 100:.1f}%"] for t, share in shares.items()],
            ))
        print(f"high-water depth: {report.high_water:,.0f} bytes; "
              f"dropped: {report.dropped_bytes:,} bytes")

    if args.validate:
        import json as _json

        from .obs.flightrec import read_flights_jsonl

        try:
            # A ring-bounded flight file (--flight-max) is incomplete
            # ground truth: evicted flights' hops are gone, so an exact
            # per-window cross-check would report spurious mismatches.
            with open(args.validate, "r", encoding="utf-8") as fh:
                first = fh.readline().strip()
            if first:
                head = _json.loads(first)
                if head.get("type") == "ring_meta" and head.get("flights_evicted"):
                    print(
                        f"cannot validate against {args.validate}: it is "
                        f"ring-bounded ({head['flights_evicted']} flights "
                        "evicted); re-record without --flight-max",
                        file=sys.stderr,
                    )
                    return 1
            verdict = crosscheck_with_flights(
                store, read_flights_jsonl(args.validate)
            )
        except (OSError, ValueError) as exc:
            print(f"cannot read flights: {exc}", file=sys.stderr)
            return 1
        print(f"\nground-truth crosscheck vs {args.validate}: "
              f"{'OK' if verdict['ok'] else 'MISMATCH'} "
              f"({verdict['windows_checked']} windows checked, "
              f"{verdict['windows_skipped_evicted']} evicted/skipped, "
              f"{verdict['collision_windows']} with slot collisions)")
        if not verdict["ok"]:
            for mismatch in verdict["mismatches"][:10]:
                print(f"  {mismatch['port']} w{mismatch['seq']} "
                      f"{mismatch['field']}: expected {mismatch['expected']} "
                      f"recorded {mismatch['recorded']}", file=sys.stderr)
            return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Augmented Queue (SIGCOMM 2023) reproduction — "
                    "run the paper's experiments from the command line.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig1", help="CC interference under PQ")
    _add_common(p)
    p.add_argument("--flows", type=int, default=10)
    p.set_defaults(fn=cmd_fig1)

    p = sub.add_parser("fig3", help="strawman D(t) vs A-Gap peaks")
    _add_telemetry(p)
    p.set_defaults(fn=cmd_fig3)

    p = sub.add_parser("fig6", help="WCT vs VM count, one entity")
    _add_common(p)
    _approach_arg(p)
    p.add_argument("--vms", type=int, nargs="+", default=[1, 4, 8])
    p.add_argument("--volume-mb", type=float, default=8.0)
    p.set_defaults(fn=cmd_fig6)

    p = sub.add_parser("fig7", help="entity fairness, 1 VM vs n VMs")
    _add_common(p)
    _approach_arg(p)
    p.add_argument("--vms", type=int, default=4)
    p.add_argument("--volume-mb", type=float, default=8.0)
    p.set_defaults(fn=cmd_fig7)

    p = sub.add_parser("fig8", help="throughput vs flow count")
    _add_common(p)
    p.add_argument("--flows", type=int, default=16)
    p.set_defaults(fn=cmd_fig8)

    p = sub.add_parser("fig9", help="UDP/TCP timeline")
    _add_common(p)
    _approach_arg(p, default="aq")
    p.set_defaults(fn=cmd_fig9, duration_ms=280.0)

    p = sub.add_parser("fig10", help="fairness + WCT across CC pairs")
    _add_common(p)
    _approach_arg(p)
    p.add_argument("--cc-a", default="cubic")
    p.add_argument("--cc-b", default="dctcp")
    p.add_argument("--volume-mb", type=float, default=6.0)
    p.set_defaults(fn=cmd_fig10)

    p = sub.add_parser("table2", help="CC-pair throughput, PQ vs AQ")
    _add_common(p)
    p.set_defaults(fn=cmd_table2)

    p = sub.add_parser("table3", help="VM bi-directional profile")
    _approach_arg(p)
    p.add_argument("--link-gbps", type=float, default=2.5)
    p.add_argument("--profile-gbps", type=float, default=0.5)
    p.add_argument("--duration-ms", type=float, default=150.0)
    p.add_argument("--seed", type=int, default=1)
    _add_telemetry(p)
    p.set_defaults(fn=cmd_table3)

    p = sub.add_parser("table4", help="CC behaviour preservation")
    p.add_argument("--ccs", nargs="+", default=["cubic", "newreno", "dctcp"])
    p.add_argument("--seed", type=int, default=1)
    _add_telemetry(p)
    p.set_defaults(fn=cmd_table4)

    p = sub.add_parser("fig11", help="switch resource usage (model)")
    _add_telemetry(p)
    p.set_defaults(fn=cmd_fig11)

    p = sub.add_parser("fig12", help="memory vs number of AQs")
    p.add_argument("--counts", type=int, nargs="+",
                   default=[100_000, 1_000_000, 5_000_000])
    _add_telemetry(p)
    p.set_defaults(fn=cmd_fig12)

    p = sub.add_parser("share", help="custom entity-sharing experiment")
    _add_common(p)
    _approach_arg(p, default="aq")
    p.add_argument("--ccs", nargs="+", default=["cubic", "udp"],
                   help="one entity per CC name (udp allowed)")
    p.add_argument("--flows", type=int, default=4)
    p.add_argument("--fluid", action="store_true",
                   help="hybrid fluid/packet fast path (UDP entities only): "
                        "advance stable backlogged intervals in closed form")
    p.set_defaults(fn=cmd_share)

    p = sub.add_parser(
        "fault-restart",
        help="guarantee degradation + re-convergence after a switch restart",
        description="Run the fault-recovery experiment: a switch restart "
                    "wipes the deployed AQs' register state mid-run; the "
                    "controller redeploys with bounded retry/backoff and "
                    "the per-entity throughput is measured before/during/"
                    "after the fault window. See docs/FAULTS.md.",
    )
    _add_common(p)
    p.add_argument("--restart-at-ms", type=float, default=50.0,
                   help="when the bottleneck switch restarts (default 50)")
    p.add_argument("--tolerance", type=float, default=0.05,
                   help="allowed post-recovery shortfall vs the granted "
                        "rate (default 0.05)")
    p.set_defaults(fn=cmd_fault_restart, duration_ms=120.0)

    p = sub.add_parser(
        "share-fabric",
        help="shard one fat-tree fabric across lockstep workers",
        description="Run the share-fabric scenario partitioned into "
                    "--shards conservative-sync workers. Results digests "
                    "are identical at any shard count; see "
                    "docs/SCALING.md.",
    )
    p.add_argument("--shards", type=int, default=1,
                   help="number of partitions/workers (default 1)")
    p.add_argument("--duration-ms", type=float, default=2.0,
                   help="simulated duration (default 2ms)")
    p.add_argument("--pods", type=int, default=4)
    p.add_argument("--tors-per-pod", type=int, default=2)
    p.add_argument("--hosts-per-tor", type=int, default=2)
    p.add_argument("--num-cores", type=int, default=2)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--intra-gbps", type=float, default=2.0,
                   help="per-flow rate of intra-ToR flows (default 2)")
    p.add_argument("--cross-gbps", type=float, default=3.0,
                   help="per-flow rate of cross-pod flows (default 3)")
    p.add_argument("--traffic", choices=("udp", "mixed"), default="udp",
                   help="'udp' = the static CBR matrix; 'mixed' = TCP + "
                        "AQ tenants with Poisson/web-search arrivals and "
                        "a UDP aggressor (per-tenant FCT summaries land "
                        "in the report and run ledger)")
    p.add_argument("--churn", action="store_true",
                   help="mixed traffic only: the last tenant leaves at "
                        "40%% of the run and rejoins at 70%% (AQ grants "
                        "withdrawn and rebalanced mid-run)")
    p.add_argument("--load", type=float, default=0.25,
                   help="mixed traffic only: offered TCP load as a "
                        "fraction of each tenant's host capacity "
                        "(default 0.25)")
    p.add_argument("--tenants", type=int, default=3,
                   help="mixed traffic only: tenant count; hosts round-"
                        "robin across tenants (default 3)")
    p.add_argument("--cc", default="dctcp",
                   help="mixed traffic only: congestion control for the "
                        "TCP flows (default dctcp)")
    p.add_argument("--udp-gbps", type=float, default=4.0,
                   help="mixed traffic only: the tenant-0 aggressor's "
                        "per-host CBR rate (default 4)")
    p.add_argument("--inline", action="store_true",
                   help="drive every partition in this process (no "
                        "worker spawns; same digest)")
    p.add_argument("--audit", action="store_true", dest="shard_audit",
                   help="attach a conservation auditor per partition; "
                        "exit 1 on any violation")
    p.add_argument("--faults", metavar="PLAN.JSON", default=None,
                   dest="shard_faults",
                   help="fault plan, filtered per partition by target "
                        "owner (cut links belong to the sending side)")
    p.add_argument("--run-dir", metavar="DIR", default=None,
                   help="run-ledger directory (default: "
                        "runs/share-fabric-<timestamp>); writes "
                        "manifest.json, health.jsonl, merged metrics, and "
                        "auto-stitched dumps")
    p.add_argument("--no-run-dir", action="store_true",
                   help="skip the run ledger entirely (pre-ledger "
                        "behaviour: no directory, heartbeats and time "
                        "windows off unless asked for)")
    p.add_argument("--no-timewin", action="store_true",
                   help="disable the default-on time-window recorder")
    p.add_argument("--timewin-budget", type=int, metavar="BYTES", default=None,
                   help="fixed per-port memory budget for the recorder; "
                        "ring geometry is solved from it (see "
                        "docs/OBSERVABILITY.md)")
    p.add_argument("--flights", action="store_true",
                   help="record per-shard flight segments and stitch them "
                        "end-to-end into the run ledger")
    p.add_argument("--timewin-dir", metavar="DIR", default=None,
                   help="record per-partition time windows to "
                        "DIR/shard<i>.windows.jsonl (default: "
                        "<run-dir>/windows)")
    p.add_argument("--timewin-window-ms", type=float, default=None,
                   help="window quantum in ms (default: recorder default)")
    p.add_argument("--timewin-merged", metavar="MERGED.JSONL", default=None,
                   help="also stitch the per-shard dumps into one "
                        "fabric-wide store")
    p.add_argument("--out", metavar="REPORT.JSON", default=None,
                   help="write the full JSON report")
    p.set_defaults(fn=cmd_share_fabric)

    p = sub.add_parser(
        "fabric-status",
        help="health view of a share-fabric run ledger",
        description="Render a share-fabric run directory's manifest "
                    "status and the latest heartbeat frame per shard "
                    "(sim-time watermark, events/sec, backlog, memory "
                    "high-water, barrier waits). Works on live and "
                    "completed runs.",
    )
    p.add_argument("run_dir", help="run directory (or its manifest.json)")
    p.add_argument("--follow", action="store_true",
                   help="keep re-rendering until the run completes")
    p.add_argument("--interval", type=float, default=1.0,
                   help="seconds between --follow renders (default 1)")
    p.set_defaults(fn=cmd_fabric_status)

    p = sub.add_parser(
        "run-all",
        help="run registered experiment jobs across worker processes",
        description="Fan the registered experiment jobs (the benchmark "
                    "suite's grids plus the engine hot-path benches) out "
                    "over isolated worker processes. Results are "
                    "deterministic at any parallelism; see "
                    "docs/PERFORMANCE.md.",
    )
    p.add_argument("--jobs", type=int, default=1,
                   help="number of worker processes (default 1)")
    p.add_argument("--filter", action="append", dest="filters", metavar="SUBSTR",
                   help="run only jobs whose name contains SUBSTR "
                        "(repeatable; any match selects)")
    p.add_argument("--out", metavar="RESULTS.JSONL", default=None,
                   help="write one JSON result line per job")
    p.add_argument("--baseline", metavar="BASELINE", default=None,
                   help="previous results JSONL (or {'jobs': {name: secs}} "
                        "JSON); exit 1 on wall-clock regressions")
    p.add_argument("--bench-out", metavar="BENCH_ENGINE.JSON",
                   default="BENCH_engine.json",
                   help="where to write engine bench measurements when "
                        "engine/* jobs ran (default BENCH_engine.json)")
    p.add_argument("--timeout", type=float, default=None,
                   help="override every job's timeout (seconds)")
    p.add_argument("--profile", action="store_true", dest="worker_profile",
                   help="activate a per-worker sim profiler and keep its "
                        "snapshot in each job's result")
    p.add_argument("--audit", action="store_true", dest="audit_jobs",
                   help="attach a conservation-law auditor in every worker; "
                        "each job's verdict lands in the results JSONL and "
                        "any violation fails the sweep")
    p.add_argument("--flight-record-dir", metavar="DIR", default=None,
                   help="record each job's INT flights to "
                        "DIR/<job>.flights.jsonl")
    p.add_argument("--timewin-dir", metavar="DIR", default=None,
                   help="attach the fixed-memory time-window recorder in "
                        "every worker and dump each job's windows to "
                        "DIR/<job>.windows.jsonl")
    p.add_argument("--list", action="store_true",
                   help="list matching jobs without running them")
    p.set_defaults(fn=cmd_run_all)

    p = sub.add_parser("telemetry", help="telemetry post-processing")
    tsub = p.add_subparsers(dest="telemetry_command", required=True)
    ps = tsub.add_parser("summarize",
                         help="summarize a recorded JSONL trace + metrics")
    ps.add_argument("trace", help="JSONL trace written by --telemetry, or "
                                  "a share-fabric run directory")
    ps.add_argument("--metrics", default=None,
                    help="metrics snapshot path (default: derived from trace)")
    ps.add_argument("--max-rows", type=int, default=40)
    ps.set_defaults(fn=cmd_telemetry_summarize)
    pf = tsub.add_parser("flights",
                         help="reconstruct paths/latency/drop attribution "
                              "from a flight-record JSONL")
    pf.add_argument("flights", help="JSONL written by --flight-record, "
                                    "run-all --flight-record-dir, or a "
                                    "share-fabric run directory")
    pf.add_argument("--flow", type=int, default=None,
                    help="restrict to one flow id")
    pf.add_argument("--max-rows", type=int, default=40)
    pf.add_argument("--max-drops", type=int, default=10,
                    help="attribution lines to print (default 10)")
    pf.set_defaults(fn=cmd_telemetry_flights)
    pw = tsub.add_parser("windows",
                         help="query a time-window dump: who built each "
                              "queue, top contributors, tenant shares")
    pw.add_argument("windows", help="JSONL written by --timewin, run-all "
                                    "--timewin-dir, or a share-fabric run "
                                    "directory")
    pw.add_argument("--port", default=None,
                    help="attribute one port (multi-queue sub-ports merge "
                         "under their parent name)")
    pw.add_argument("--t0-ms", type=float, default=None,
                    help="query start (default: oldest retained window)")
    pw.add_argument("--t1-ms", type=float, default=None,
                    help="query end (default: newest retained window)")
    pw.add_argument("--top", type=int, default=10,
                    help="contributors to list (default 10)")
    pw.add_argument("--validate", metavar="FLIGHTS.JSONL", default=None,
                    help="cross-validate attribution against a flight "
                         "record of the same run; exit 1 on mismatch")
    pw.add_argument("--max-rows", type=int, default=40)
    pw.set_defaults(fn=cmd_telemetry_windows)
    pst = tsub.add_parser("stitch",
                          help="stitch per-shard window dumps into one "
                               "fabric-wide store")
    pst.add_argument("dumps", nargs="+",
                     help="per-shard JSONL dumps (share-fabric "
                          "--timewin-dir) and/or run directories")
    pst.add_argument("--out", required=True, metavar="MERGED.JSONL",
                     help="where to write the merged store")
    pst.add_argument("--max-rows", type=int, default=40)
    pst.set_defaults(fn=cmd_telemetry_stitch)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    faults_path = getattr(args, "faults", None)
    plan_scope: "contextlib.AbstractContextManager" = contextlib.nullcontext()
    if faults_path is not None:
        from .errors import FaultPlanError
        from .faults import FaultPlan, activate_fault_plan

        try:
            plan = FaultPlan.from_file(faults_path)
        except FaultPlanError as exc:
            parser.error(f"invalid fault plan {faults_path!r}: {exc}")
        plan_scope = activate_fault_plan(plan)

    trace_path = getattr(args, "telemetry", None)
    metrics_summary = getattr(args, "metrics_summary", False)
    profile = getattr(args, "profile", False)
    flight_path = getattr(args, "flight_record", None)
    audit = getattr(args, "audit", False)
    flight_max = getattr(args, "flight_max", None)
    timewin_path = getattr(args, "timewin", None)
    timewin_ms = getattr(args, "timewin_ms", None)
    if (
        trace_path is None and not metrics_summary and not profile
        and flight_path is None and not audit and timewin_path is None
    ):
        with plan_scope:
            return args.fn(args)

    try:
        session = telemetry_session(
            jsonl_path=trace_path, profile=profile,
            flight_path=flight_path, audit=audit, flight_max=flight_max,
            timewin_path=timewin_path,
            timewin_window_s=timewin_ms * 1e-3 if timewin_ms is not None else None,
        )
        tele = session.__enter__()
    except OSError as exc:
        parser.error(f"cannot open telemetry output {trace_path!r}: {exc}")
    try:
        with plan_scope:
            status = args.fn(args)
    finally:
        session.__exit__(None, None, None)
    assert tele is not None
    if trace_path is not None:
        snapshot = write_metrics_snapshot(tele, metrics_path_for(trace_path))
        print(f"telemetry: {tele.trace.events_published} events -> {trace_path}")
        print(f"metrics snapshot -> {metrics_path_for(trace_path)}")
    else:
        snapshot = tele.metrics.snapshot()
    if metrics_summary:
        print(render_metrics_summary(snapshot))
    if profile and tele.profiler is not None:
        print(tele.profiler.render())
    if flight_path is not None and tele.flightrec is not None:
        print(f"flight records: {tele.flightrec.flights_completed} flights "
              f"-> {flight_path}")
    if timewin_path is not None and tele.timewin is not None:
        stats = tele.timewin.stats()
        print(f"time windows: {stats['retained_windows']} windows retained "
              f"across {stats['ports']} ports "
              f"({stats['records']} records, {stats['evicted_windows']} "
              f"evicted) -> {timewin_path}")
    if audit and tele.auditor is not None:
        violations = tele.auditor.finish()
        print(f"audit: {tele.auditor.events_seen:,} events checked, "
              f"{len(violations)} violation(s)")
        if violations:
            for violation in violations[:10]:
                print(f"  {violation.invariant} @ t={violation.time:.6f}s "
                      f"{violation.subject}: {violation.message}",
                      file=sys.stderr)
            return max(status, 1)
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
