"""The job registry behind ``repro run-all``.

Every paper experiment the benchmark suite runs serially is registered
here as independent :class:`~repro.harness.runner.JobSpec`\\ s at the same
scales as ``benchmarks/`` (the scale of record documented in
``EXPERIMENTS.md``), so the whole evaluation fans out across cores.

Each ``job_*`` function is a spawn-importable wrapper around a scenario:
JSON-safe kwargs in, JSON-safe dict out. Results are deterministic for a
given spec — except wall-clock measurements, which wrappers place under
the ``"timing"`` key that :func:`~repro.harness.runner.results_digest`
excludes, so ``--jobs 1`` and ``--jobs 8`` sweeps hash identically.

Job names are paths (``fig6/aq/4vms``) so ``--filter fig6`` or
``--filter /aq/`` select natural slices.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..units import gbps
from .common import EntitySpec
from .runner import JobSpec

_HERE = __name__  # jobs resolve their targets from this module


def _spec(
    name: str, func: str, timeout_s: float = 600.0, daemon: bool = True, **kwargs
) -> JobSpec:
    tags = (name.split("/", 1)[0],)
    return JobSpec(
        name=name,
        target=f"{_HERE}:{func}",
        kwargs=kwargs,
        tags=tags,
        timeout_s=timeout_s,
        daemon=daemon,
    )


def _share_dict(result) -> dict:
    """JSON view of a ShareResult (meters/env are dropped)."""
    return {
        "approach": result.approach,
        "rates_bps": dict(result.rates_bps),
        "utilization": result.utilization,
    }


def _wct_dict(result) -> dict:
    return {
        "approach": result.approach,
        "wct_s": dict(result.wct),
        "completed": dict(result.completed),
        "total_wct_s": result.total_wct,
    }


# -- job targets (spawn-importable, JSON in / JSON out) ------------------------


def job_cc_pair(
    cc_a: str,
    flows_a: int,
    cc_b: str,
    flows_b: int,
    approach: str,
    bottleneck_bps: float,
    duration: float,
    warmup: float,
) -> dict:
    from .scenarios import run_cc_pair

    result = run_cc_pair(
        cc_a, flows_a, cc_b, flows_b, approach,
        bottleneck_bps=bottleneck_bps, duration=duration, warmup=warmup,
    )
    out = _share_dict(result)
    out["ratio"] = result.ratio("A", "B")
    return out


def job_single_entity_wct(
    num_vms: int, approach: str, volume_bytes: int, bottleneck_bps: float
) -> dict:
    from .scenarios import run_single_entity_wct

    wct = run_single_entity_wct(
        num_vms, approach, volume_bytes,
        bottleneck_bps=bottleneck_bps, max_sim_time=10.0,
    )
    return {"approach": approach, "num_vms": num_vms, "wct_s": wct}


def job_two_entity_fairness(
    num_vms_b: int, approach: str, volume_bytes: int, bottleneck_bps: float
) -> dict:
    from .scenarios import run_two_entity_fairness

    result = run_two_entity_fairness(
        num_vms_b, approach, volume_bytes,
        bottleneck_bps=bottleneck_bps, max_sim_time=10.0,
    )
    out = _wct_dict(result)
    out["fairness"] = result.fairness()
    return out


def job_flow_count(
    flows_b: int, weight_b: float, approach: str,
    bottleneck_bps: float, duration: float, warmup: float,
) -> dict:
    from .scenarios import run_longlived_share

    entities = [
        EntitySpec(name="A", cc="cubic", num_flows=1, weight=1.0),
        EntitySpec(name="B", cc="cubic", num_flows=flows_b, weight=weight_b),
    ]
    result = run_longlived_share(
        entities, approach,
        bottleneck_bps=bottleneck_bps, duration=duration, warmup=warmup,
    )
    out = _share_dict(result)
    out["ratio"] = result.ratio("A", "B")
    return out


def job_udp_tcp_timeline(approach: str, bottleneck_bps: float, phase: float) -> dict:
    from .scenarios import run_udp_tcp_timeline

    result = run_udp_tcp_timeline(approach, bottleneck_bps=bottleneck_bps, phase=phase)
    return {
        "approach": approach,
        "rates_in_window": {
            window: dict(rates) for window, rates in result.rates_in_window.items()
        },
    }


def job_cc_pair_wct(
    cc_a: str, cc_b: str, approach: str, volume_bytes: int, bottleneck_bps: float
) -> dict:
    from .scenarios import run_cc_pair_wct

    result = run_cc_pair_wct(
        cc_a, cc_b, approach, volume_bytes,
        num_vms=4, bottleneck_bps=bottleneck_bps, max_sim_time=10.0,
    )
    out = _wct_dict(result)
    out["fairness"] = result.fairness()
    return out


def job_vm_profile(
    approach: str, link_rate_bps: float, profile_rate_bps: float, duration: float
) -> dict:
    from .scenarios import run_vm_profile

    result = run_vm_profile(
        approach,
        link_rate_bps=link_rate_bps,
        profile_rate_bps=profile_rate_bps,
        duration=duration,
    )
    return {
        "approach": result.approach,
        "outbound_range_bps": list(result.outbound_range_bps),
        "inbound_range_bps": list(result.inbound_range_bps),
        "outbound_mean_bps": result.outbound_mean_bps,
        "inbound_mean_bps": result.inbound_mean_bps,
    }


def job_cc_preservation(
    cc: str, use_aq: bool, allocated_bps: float, capacity_bps: float
) -> dict:
    from .scenarios import run_cc_preservation

    result = run_cc_preservation(
        cc, use_aq=use_aq, allocated_bps=allocated_bps, capacity_bps=capacity_bps
    )
    return {
        "label": result.label,
        "throughput_bps": result.throughput_bps,
        "delay_p95_s": result.delay_p95,
    }


def job_fault_restart(
    approach: str, bottleneck_bps: float, duration: float, restart_at: float
) -> dict:
    from .scenarios import run_switch_restart

    result = run_switch_restart(
        approach=approach, bottleneck_bps=bottleneck_bps,
        duration=duration, warmup=duration / 6, restart_at=restart_at,
    )
    return {
        "approach": result.approach,
        "fault_at_s": result.fault_at,
        "share_bps": dict(result.share_bps),
        "rates_before_bps": dict(result.rates_before_bps),
        "rates_during_bps": dict(result.rates_during_bps),
        "rates_after_bps": dict(result.rates_after_bps),
        "reconvergence_s": dict(result.reconvergence_s),
        "degraded_windows": list(result.degraded_windows),
        "restart_stats": dict(result.restart_stats),
        "recovered": result.recovered(),
    }


def job_link_blackout(
    down_at: float, up_at: float, approach: str,
    bottleneck_bps: float, duration: float, warmup: float,
) -> dict:
    from ..faults import activate_fault_plan, link_blackout_plan
    from .scenarios import run_longlived_share

    entities = [
        EntitySpec(name="A", cc="cubic", num_flows=4),
        EntitySpec(name="B", cc="cubic", num_flows=4),
    ]
    plan = link_blackout_plan("s-left->s-right", down_at, up_at)
    with activate_fault_plan(plan):
        result = run_longlived_share(
            entities, approach,
            bottleneck_bps=bottleneck_bps, duration=duration, warmup=warmup,
        )
    out = _share_dict(result)
    out["blackout_s"] = up_at - down_at
    return out


def job_timewin_validate(
    scenario: str,
    bottleneck_bps: float,
    duration: float,
    window_ms: float = 1.0,
) -> dict:
    """Run one small scenario under BOTH recorders and cross-validate.

    The fixed-memory time windows and the per-packet flight recorder
    observe the same run; :func:`~repro.obs.timewin.crosscheck_with_flights`
    then requires the bounded-memory attribution to agree with the
    FlightIndex ground truth per (port, window, flow). The returned
    verdict is deterministic, so these jobs fold into the sweep digest.
    """
    from ..obs.telemetry import Telemetry
    from ..obs.timewin import FlightCollector, crosscheck_with_flights
    from .scenarios import run_cc_pair, run_longlived_share

    tele = Telemetry(enabled=True)
    recorder = tele.enable_time_windows(window_s=window_ms * 1e-3)
    collector = FlightCollector()
    tele.enable_flight_recording().attach(collector)
    with tele.activate():
        if scenario == "cc-pair":
            run_cc_pair(
                "cubic", 2, "dctcp", 2, "aq",
                bottleneck_bps=bottleneck_bps,
                duration=duration, warmup=duration / 3,
            )
        elif scenario == "udp-tcp":
            entities = [
                EntitySpec(name="T", cc="cubic", num_flows=2),
                EntitySpec(name="U", cc="udp", num_flows=1),
            ]
            run_longlived_share(
                entities, "pq",
                bottleneck_bps=bottleneck_bps,
                duration=duration, warmup=duration / 3,
            )
        elif scenario == "weighted":
            entities = [
                EntitySpec(name="A", cc="cubic", num_flows=1, weight=1.0),
                EntitySpec(name="B", cc="cubic", num_flows=4, weight=2.0),
            ]
            run_longlived_share(
                entities, "aq",
                bottleneck_bps=bottleneck_bps,
                duration=duration, warmup=duration / 3,
            )
        else:
            raise ValueError(f"unknown timewin scenario {scenario!r}")
    tele.close()
    verdict = crosscheck_with_flights(recorder, collector.flights)
    verdict["scenario"] = scenario
    verdict["flights"] = len(collector.flights)
    verdict["recorder"] = recorder.stats()
    # Bound the payload: the first mismatches are enough to diagnose.
    verdict["mismatches"] = verdict["mismatches"][:5]
    if not verdict["ok"]:
        raise AssertionError(
            f"timewin attribution diverged from flight ground truth: "
            f"{verdict['mismatches']}"
        )
    return verdict


def job_fluid_equiv(
    scenario: str,
    tolerance: float,
    bottleneck_bps: float,
    duration: float,
) -> dict:
    """Run one scenario in packet AND fluid mode; require both audit-clean
    and per-entity delivered bytes within ``tolerance`` of each other.

    The scenarios are policy-pinned: each entity's goodput is determined
    by an explicit mechanism (AQ limit drops, PRL shaper rate, or an
    undersubscribed bottleneck) rather than by enqueue races. Overloaded
    equal-rate CBR through a deterministic drop-tail queue is
    *phase-determined* in packet mode — one flow systematically wins the
    race — which is an artifact the fluid closed form intentionally does
    not reproduce (totals still match; see docs/PERFORMANCE.md).
    ``aq-limit``'s looser tolerance covers exactly that: packet mode
    splits the trunk buffer asymmetrically during the initial A-Gap
    fill, worth about one bottleneck buffer of bytes per entity.
    """
    from ..obs.telemetry import Telemetry
    from .scenarios import run_fluid_share

    if scenario == "udp-basic":
        approach = "pq"
        entities = [
            EntitySpec(name="A", cc="udp", udp_rate_bps=0.45 * bottleneck_bps),
            EntitySpec(name="B", cc="udp", udp_rate_bps=0.40 * bottleneck_bps),
        ]
    elif scenario == "aq-limit":
        approach = "aq"
        entities = [
            EntitySpec(name="A", cc="udp"),
            EntitySpec(name="B", cc="udp"),
        ]
    elif scenario == "prl-shaper":
        approach = "prl"
        entities = [
            EntitySpec(name="A", cc="udp"),
            EntitySpec(name="B", cc="udp"),
        ]
    elif scenario == "staggered":
        approach = "aq"
        entities = [
            EntitySpec(name="A", cc="udp"),
            EntitySpec(
                name="B", cc="udp",
                start_time=duration / 4, stop_time=3 * duration / 4,
            ),
        ]
    else:
        raise ValueError(f"unknown fluid-equiv scenario {scenario!r}")

    out: dict = {
        "scenario": scenario, "approach": approach, "tolerance": tolerance,
    }
    delivered: Dict[str, Dict[str, int]] = {}
    for mode in ("packet", "fluid"):
        tele = Telemetry(enabled=True)
        auditor = tele.enable_audit()
        with tele.activate():
            result = run_fluid_share(
                entities, approach, bottleneck_bps=bottleneck_bps,
                duration=duration, fluid=(mode == "fluid"),
            )
        tele.close()
        report = auditor.report()
        out[f"{mode}_violations"] = report["violation_count"]
        if report["violation_count"]:
            raise AssertionError(
                f"{scenario}/{mode}: conservation audit failed: "
                f"{report['violations'][:3]}"
            )
        delivered[mode] = result.delivered_total
        if mode == "fluid":
            out["fluid_epochs"] = result.fluid.get("epochs", 0)
            out["fluid_exits"] = result.fluid.get("exits", {})
    if out["fluid_epochs"] <= 0:
        raise AssertionError(
            f"{scenario}: fluid fast path never engaged "
            f"(exits={out['fluid_exits']})"
        )
    out["delivered"] = delivered
    worst = 0.0
    for name in delivered["packet"]:
        pk = delivered["packet"][name]
        fl = delivered["fluid"][name]
        rel = abs(pk - fl) / max(pk, fl, 1)
        worst = max(worst, rel)
        if rel > tolerance:
            raise AssertionError(
                f"{scenario}/{name}: packet={pk} fluid={fl} "
                f"rel_err={rel:.4f} exceeds tolerance {tolerance}"
            )
    out["worst_rel_err"] = round(worst, 6)
    return out


def job_shard_equiv(
    shards: int,
    duration: float,
    fault_blackout: Optional[Sequence[object]] = None,
    **config_kwargs,
) -> dict:
    """Assert ``--shards 1`` and ``--shards k`` produce bit-identical
    results digests, audit-clean, for one ``share-fabric`` scenario.

    Runs both shard counts through the in-process lockstep driver (a
    daemonic sweep worker may not spawn grandchildren; spawn-mode
    equivalence is covered by ``engine/shard_speedup`` and the test
    suite — all three drivers share one digest by construction).
    ``fault_blackout`` = ``(link_name, down_at, up_at)`` additionally
    runs the whole comparison under a cut-link blackout plan.
    """
    from .fabric import run_share_fabric

    plan_dict = None
    if fault_blackout is not None:
        from ..faults.plan import link_blackout_plan

        link, down_at, up_at = fault_blackout
        plan_dict = link_blackout_plan(str(link), down_at, up_at).to_dict()

    runs = {}
    for k in (1, shards):
        runs[k] = run_share_fabric(
            k, duration, inline=True, audit=True,
            fault_plan=plan_dict, **config_kwargs,
        )
        if runs[k]["audit"]["violation_count"]:
            raise AssertionError(
                f"shards={k}: conservation audit failed: "
                f"{runs[k]['audit']['per_partition']}"
            )
    if runs[1]["digest"] != runs[shards]["digest"]:
        raise AssertionError(
            f"digest mismatch: shards=1 {runs[1]['digest']} != "
            f"shards={shards} {runs[shards]['digest']}"
        )
    return {
        "shards": shards,
        "digest": runs[shards]["digest"],
        "events": runs[shards]["results"]["events"],
        "epochs": runs[shards]["epochs"],
        "boundary": runs[shards]["boundary"],
        "delivered_bytes_total": sum(
            runs[shards]["results"]["delivered_bytes"].values()
        ),
        "blackout": fault_blackout is not None,
        "timing": {
            "serial_wall_s": runs[1]["wall_s"],
            "sharded_wall_s": runs[shards]["wall_s"],
        },
    }


def job_fabric_obs_neutral(
    shards: int, duration: float, **config_kwargs
) -> dict:
    """Assert the fabric observability plane is digest-neutral AND
    journey-faithful for one ``share-fabric`` scenario.

    Three inline runs: plane fully off at ``shards``, the full plane
    (run ledger + heartbeats + default-on time windows + flight
    recording) at ``shards``, and the full plane serial at 1 shard. All
    three results digests must match, both audits must be clean, and the
    stitched end-to-end flights of the sharded run must equal the serial
    run's flights under :func:`repro.obs.flightrec.journey_key` — the
    cross-cut stitching reproduces exactly what one process would have
    recorded.
    """
    import tempfile

    from ..obs.flightrec import journey_key, read_flights_jsonl
    from .fabric import run_share_fabric

    base = run_share_fabric(
        shards, duration, inline=True, audit=True, **config_kwargs
    )
    with tempfile.TemporaryDirectory() as tmp:
        import os

        full = run_share_fabric(
            shards, duration, inline=True, audit=True,
            run_dir=os.path.join(tmp, "sharded"),
            flight_dir=os.path.join(tmp, "sharded", "flights"),
            **config_kwargs,
        )
        serial = run_share_fabric(
            1, duration, inline=True, audit=True,
            run_dir=os.path.join(tmp, "serial"),
            flight_dir=os.path.join(tmp, "serial", "flights"),
            **config_kwargs,
        )
        journeys = {}
        for name, run in (("sharded", full), ("serial", serial)):
            journeys[name] = sorted(
                journey_key(f)
                for f in read_flights_jsonl(run["flights_stitched_path"])
            )
    for name, run in (("base", base), ("full", full), ("serial", serial)):
        if run["audit"]["violation_count"]:
            raise AssertionError(
                f"{name}: conservation audit failed: "
                f"{run['audit']['per_partition']}"
            )
    digests = {run["digest"] for run in (base, full, serial)}
    if len(digests) != 1:
        raise AssertionError(
            f"observability plane changed the digest: {sorted(digests)}"
        )
    if journeys["sharded"] != journeys["serial"]:
        missing = set(journeys["serial"]) - set(journeys["sharded"])
        extra = set(journeys["sharded"]) - set(journeys["serial"])
        raise AssertionError(
            f"stitched flights diverge from the serial run: "
            f"{len(missing)} missing, {len(extra)} extra "
            f"(e.g. {sorted(missing | extra)[:2]})"
        )
    return {
        "shards": shards,
        "digest": full["digest"],
        "events": full["results"]["events"],
        "epochs": full["epochs"],
        "heartbeat_frames": full["heartbeat_frames"],
        "timewin_ports": full["timewin_ports"],
        "flights_stitched": full["flights_stitched"],
        "flights_serial": serial["flights_stitched"],
        "timing": {
            "base_wall_s": base["wall_s"],
            "full_wall_s": full["wall_s"],
            "serial_wall_s": serial["wall_s"],
        },
    }


def job_fabric_mixed_equiv(
    shard_counts: Sequence[int] = (1, 2),
    duration: float = 2e-3,
    churn: bool = False,
    **config_kwargs,
) -> dict:
    """Assert mixed TCP+AQ fabric traffic digests identically across
    every shard count in ``shard_counts``, audit-clean.

    This is the determinism contract for the dynamic workload: TCP data
    and ACK packets, AQ-limited tenants, Poisson/web-search arrivals,
    and (with ``churn``) mid-run AQ withdraw/rebalance all cross shard
    cuts through the boundary machinery without perturbing the results
    digest. Also asserts the run actually completed TCP flows, so the
    per-tenant FCT summary is non-trivial.
    """
    from .fabric import run_share_fabric

    runs = {}
    for k in shard_counts:
        runs[k] = run_share_fabric(
            k, duration, inline=True, audit=True,
            traffic="mixed", churn=churn, **config_kwargs,
        )
        if runs[k]["audit"]["violation_count"]:
            raise AssertionError(
                f"shards={k}: conservation audit failed: "
                f"{runs[k]['audit']['per_partition']}"
            )
    digests = {k: run["digest"] for k, run in runs.items()}
    if len(set(digests.values())) != 1:
        raise AssertionError(f"digest mismatch across shard counts: {digests}")
    ref = runs[max(shard_counts)]
    fct = ref.get("fct")
    if not fct or not fct["overall"]["completed"]:
        raise AssertionError("mixed run completed no TCP flows")
    return {
        "shard_counts": list(shard_counts),
        "churn": churn,
        "digest": ref["digest"],
        "events": ref["results"]["events"],
        "tcp_flows": fct["overall"]["flows"],
        "tcp_completed": fct["overall"]["completed"],
        "slowdown_p50": fct["overall"]["slowdown"]["p50"],
        "slowdown_p99": fct["overall"]["slowdown"]["p99"],
        "jain_goodput": fct["fairness"]["jain_goodput"],
        "timing": {
            f"wall_s_shards{k}": runs[k]["wall_s"] for k in shard_counts
        },
    }


def job_engine_bench(bench: str, **scale) -> dict:
    """One engine hot-path micro-benchmark; wall-clock fields go under
    ``"timing"`` so the sweep digest stays parallelism-independent."""
    from .hotpath import ENGINE_BENCHES

    raw = ENGINE_BENCHES[bench](**scale)
    out: dict = {"bench": bench, "timing": {}}
    for key, value in raw.items():
        if "wall" in key or "per_sec" in key or key.endswith("_ratio"):
            out["timing"][key] = value
        else:
            out[key] = value
    return out


# -- the registry --------------------------------------------------------------

#: Benchmark-suite scales (keep in sync with benchmarks/bench_*.py).
_BOTTLENECK = gbps(2)
_FIG1_PAIRS = [
    ("cubic", "newreno"), ("cubic", "dctcp"), ("newreno", "dctcp"),
    ("cubic", "swift"), ("dctcp", "swift"), ("newreno", "swift"),
]
_VM_COUNTS = (1, 2, 4, 8)
_APPROACHES = ("pq", "aq", "prl", "drl")
_FIG8_FLOWS = (1, 4, 16, 64)
_FIG10_PAIRS = [("cubic", "dctcp"), ("newreno", "dctcp"), ("cubic", "swift")]
_TABLE2_ROWS = [
    ("cubic", 5, "cubic", 5), ("cubic", 5, "dctcp", 5),
    ("newreno", 5, "dctcp", 5), ("illinois", 5, "dctcp", 5),
    ("cubic", 5, "swift", 5), ("dctcp", 5, "swift", 5),
    ("dctcp", 10, "newreno", 5), ("dctcp", 10, "swift", 5),
]
_TABLE4_CCS = ("cubic", "newreno", "dctcp")


def default_jobs() -> List[JobSpec]:
    """Every registered experiment job, in report order."""
    specs: List[JobSpec] = []

    for cc_a, cc_b in _FIG1_PAIRS:
        specs.append(_spec(
            f"fig1/pq/10{cc_a}+10{cc_b}", "job_cc_pair",
            cc_a=cc_a, flows_a=10, cc_b=cc_b, flows_b=10, approach="pq",
            bottleneck_bps=_BOTTLENECK, duration=60e-3, warmup=25e-3,
        ))

    for approach in _APPROACHES:
        for num_vms in _VM_COUNTS:
            specs.append(_spec(
                f"fig6/{approach}/{num_vms}vms", "job_single_entity_wct",
                num_vms=num_vms, approach=approach,
                volume_bytes=8_000_000, bottleneck_bps=_BOTTLENECK,
            ))

    for approach in _APPROACHES:
        for num_vms in _VM_COUNTS:
            specs.append(_spec(
                f"fig7/{approach}/{num_vms}vms", "job_two_entity_fairness",
                num_vms_b=num_vms, approach=approach,
                volume_bytes=8_000_000, bottleneck_bps=_BOTTLENECK,
            ))

    for flows_b in _FIG8_FLOWS:
        for approach in ("pq", "aq"):
            specs.append(_spec(
                f"fig8/{approach}/{flows_b}flows", "job_flow_count",
                flows_b=flows_b, weight_b=1.0, approach=approach,
                bottleneck_bps=_BOTTLENECK, duration=80e-3, warmup=30e-3,
            ))
    specs.append(_spec(
        "fig8/aq-1to2/16flows", "job_flow_count",
        flows_b=16, weight_b=2.0, approach="aq",
        bottleneck_bps=_BOTTLENECK, duration=80e-3, warmup=30e-3,
    ))

    for approach in ("pq", "aq"):
        specs.append(_spec(
            f"fig9/{approach}/timeline", "job_udp_tcp_timeline",
            approach=approach, bottleneck_bps=_BOTTLENECK, phase=40e-3,
        ))

    for cc_a, cc_b in _FIG10_PAIRS:
        for approach in _APPROACHES:
            specs.append(_spec(
                f"fig10/{approach}/{cc_a}+{cc_b}", "job_cc_pair_wct",
                cc_a=cc_a, cc_b=cc_b, approach=approach,
                volume_bytes=6_000_000, bottleneck_bps=_BOTTLENECK,
            ))

    for cc_a, n_a, cc_b, n_b in _TABLE2_ROWS:
        for approach in ("pq", "aq"):
            specs.append(_spec(
                f"table2/{approach}/{n_a}{cc_a}+{n_b}{cc_b}", "job_cc_pair",
                cc_a=cc_a, flows_a=n_a, cc_b=cc_b, flows_b=n_b,
                approach=approach, bottleneck_bps=_BOTTLENECK,
                duration=70e-3, warmup=25e-3,
            ))

    for approach in ("pq", "prl", "drl", "aq"):
        specs.append(_spec(
            f"table3/{approach}/profile", "job_vm_profile",
            approach=approach, link_rate_bps=gbps(2.5),
            profile_rate_bps=gbps(0.5), duration=0.15,
        ))

    for cc in _TABLE4_CCS:
        for use_aq in (False, True):
            specs.append(_spec(
                f"table4/{'aq' if use_aq else 'pq'}/{cc}", "job_cc_preservation",
                cc=cc, use_aq=use_aq,
                allocated_bps=gbps(2.5), capacity_bps=gbps(10),
            ))

    for approach in ("pq", "aq"):
        specs.append(_spec(
            f"faults/restart/{approach}", "job_fault_restart",
            approach=approach, bottleneck_bps=_BOTTLENECK,
            duration=120e-3, restart_at=50e-3,
        ))
    specs.append(_spec(
        "faults/restart/aq-late", "job_fault_restart",
        approach="aq", bottleneck_bps=_BOTTLENECK,
        duration=150e-3, restart_at=90e-3,
    ))
    for blackout_ms in (5, 15):
        specs.append(_spec(
            f"faults/blackout/{blackout_ms}ms", "job_link_blackout",
            down_at=30e-3, up_at=(30 + blackout_ms) * 1e-3, approach="aq",
            bottleneck_bps=_BOTTLENECK, duration=90e-3, warmup=20e-3,
        ))

    for scenario in ("cc-pair", "udp-tcp", "weighted"):
        specs.append(_spec(
            f"timewin/validate/{scenario}", "job_timewin_validate",
            scenario=scenario, bottleneck_bps=gbps(1), duration=40e-3,
        ))

    # Hybrid fluid/packet equivalence: tight tolerances where the packet
    # mode is itself deterministic per entity; aq-limit is looser because
    # packet mode splits the trunk buffer by enqueue phase (see
    # job_fluid_equiv's docstring).
    for scenario, tolerance in (
        ("udp-basic", 0.01), ("aq-limit", 0.08),
        ("prl-shaper", 0.01), ("staggered", 0.02),
    ):
        specs.append(_spec(
            f"fluid/equiv/{scenario}", "job_fluid_equiv",
            scenario=scenario, tolerance=tolerance,
            bottleneck_bps=_BOTTLENECK, duration=20e-3,
        ))

    # Sharded-fabric equivalence: shards=1 vs shards=k must hash
    # identically under the conservation auditor (docs/SCALING.md).
    specs.append(_spec(
        "shard/equiv/local-2", "job_shard_equiv",
        shards=2, duration=2e-3, pods=2, cross_gbps=0.0,
    ))
    specs.append(_spec(
        "shard/equiv/cross-4", "job_shard_equiv",
        shards=4, duration=2e-3,
    ))
    specs.append(_spec(
        "shard/equiv/blackout-2", "job_shard_equiv",
        shards=2, duration=2e-3,
        fault_blackout=["agg0->core1", 0.4e-3, 1.2e-3],
    ))
    # Observability plane: digest-neutral and journey-faithful
    # (docs/OBSERVABILITY.md "Fabric run ledger").
    specs.append(_spec(
        "shard/obs/neutral-2", "job_fabric_obs_neutral",
        shards=2, duration=2e-3, pods=2,
    ))
    # Mixed TCP+AQ traffic across shard cuts (docs/SCALING.md
    # "Traffic model"): determinism must survive dynamic flows and churn.
    specs.append(_spec(
        "fabric/mixed/equiv-2", "job_fabric_mixed_equiv",
        shard_counts=[1, 2], duration=2e-3,
    ))
    specs.append(_spec(
        "fabric/mixed/churn-4", "job_fabric_mixed_equiv",
        shard_counts=[1, 2, 4], duration=2e-3, churn=True,
    ))

    for bench in (
        "timer_churn", "fire_chain", "idle_link", "backlogged_link",
        "timewin_overhead", "fluid_speedup", "fabric_obs_overhead",
        "fabric_mixed",
    ):
        specs.append(_spec(f"engine/{bench}", "job_engine_bench", bench=bench))
    # Spawns its own shard workers, so its sweep worker must not be
    # daemonic (daemonic processes cannot have children).
    specs.append(_spec(
        "engine/shard_speedup", "job_engine_bench",
        bench="shard_speedup", daemon=False,
    ))

    return specs


def filter_jobs(
    specs: Sequence[JobSpec], patterns: Optional[Sequence[str]]
) -> List[JobSpec]:
    """Keep jobs whose name contains *any* of ``patterns`` (all when empty)."""
    if not patterns:
        return list(specs)
    return [
        spec for spec in specs
        if any(pattern in spec.name for pattern in patterns)
    ]


def engine_results(results) -> Dict[str, dict]:
    """Extract ``engine/*`` bench measurements (timing folded back in) from
    a sweep's results, keyed by bench name — the BENCH_engine.json payload."""
    benches: Dict[str, dict] = {}
    for result in results:
        if not result.ok or not result.name.startswith("engine/"):
            continue
        data = dict(result.result or {})
        data.update(data.pop("timing", {}))
        data.pop("bench", None)
        benches[result.name.split("/", 1)[1]] = data
    return benches
