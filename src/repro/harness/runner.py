"""Parallel experiment runner: fan scenario jobs out over worker processes.

The paper's evaluation (and this repo's benchmark suite) is a sweep of
independent configurations — embarrassingly parallel, yet the pytest
suite runs them strictly serially. This module runs *jobs* (a named,
JSON-kwargs call of an importable function) in isolated worker processes:

* **spawn-safe** — workers are fresh interpreters (``multiprocessing``
  spawn context), so no simulator state, RNG, or telemetry leaks between
  jobs or from the parent;
* **deterministic** — each worker seeds ``random``/NumPy from a stable
  per-job seed before calling the target, and every scenario builds its
  own :class:`~repro.sim.engine.Simulator`; a job's result dict is
  identical whether the sweep ran with ``--jobs 1`` or ``--jobs 8``;
* **supervised** — per-job wall-clock timeout (the job is killed and
  reported, never hangs the sweep) and one automatic retry when a worker
  *crashes* (non-zero exit without reporting a result);
* **observable** — with ``profile=True`` each worker activates its own
  :class:`~repro.obs.Telemetry` profiler and ships the profiler snapshot
  back in its report; with ``audit=True`` each worker attaches a
  :class:`~repro.obs.RunAuditor` and ships its conservation-law verdict;
  with ``flight_dir=...`` each worker records INT flights to
  ``<flight_dir>/<job>.flights.jsonl`` for ``repro telemetry flights``;
* **aggregated** — results stream back over pipes and are written as one
  JSONL line per job (``write_results_jsonl``), with a stable digest over
  the deterministic fields so two sweeps can be compared byte-for-byte.

Use via ``repro run-all`` (see ``docs/PERFORMANCE.md``) or directly::

    from repro.harness.jobs import default_jobs
    from repro.harness.runner import run_jobs

    results = run_jobs([j for j in default_jobs() if "fig6" in j.name], jobs=4)
"""

from __future__ import annotations

import contextlib
import hashlib
import importlib
import json
import multiprocessing
import os
import sys
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..errors import ConfigurationError

#: Job statuses, in report order.
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"


@dataclass(frozen=True)
class JobSpec:
    """One unit of parallel work: call ``target(**kwargs)`` in a worker.

    ``target`` is a ``"module.path:function"`` string (not a callable) so
    the spec pickles trivially into a spawn-context worker. ``kwargs``
    must be JSON-safe; the function must return a JSON-safe dict.
    """

    name: str
    target: str
    kwargs: Mapping[str, object] = field(default_factory=dict)
    tags: Sequence[str] = ()
    timeout_s: float = 300.0
    #: Workers are daemonic by default (the sweep can never leak a child
    #: past the parent). A job that itself spawns processes — e.g. the
    #: ``engine/shard_speedup`` bench launching shard workers — must opt
    #: out, because daemonic processes may not have children.
    daemon: bool = True

    def worker_seed(self) -> int:
        """Stable per-job seed (independent of Python's hash randomization)."""
        digest = hashlib.sha256(self.name.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")


@dataclass
class JobResult:
    """Outcome of one job, aggregation-ready.

    ``result`` carries the target's return dict and is the *deterministic*
    payload — :func:`results_digest` hashes only ``name``/``status``/
    ``result`` so wall-clock jitter never breaks a comparison.
    """

    name: str
    status: str
    attempts: int
    wall_s: float
    result: Optional[dict] = None
    error: Optional[str] = None
    profile: Optional[dict] = None
    #: Conservation-audit verdict (``audit=True`` sweeps). Like ``profile``
    #: it rides *outside* ``result`` so enabling the auditor cannot change
    #: :func:`results_digest` — auditing a run must not perturb it.
    audit: Optional[dict] = None
    #: Time-window recorder stats (``timewin_dir`` sweeps); outside
    #: ``result`` for the same digest-neutrality reason.
    timewin: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


def resolve_target(target: str) -> Callable[..., dict]:
    """Import ``"module:function"`` and return the callable."""
    module_name, _, func_name = target.partition(":")
    if not module_name or not func_name:
        raise ConfigurationError(
            f"job target must be 'module:function', got {target!r}"
        )
    module = importlib.import_module(module_name)
    try:
        return getattr(module, func_name)
    except AttributeError as exc:
        raise ConfigurationError(
            f"job target {target!r}: no such function in {module_name}"
        ) from exc


def _worker_main(payload: dict, conn) -> None:
    """Worker-process entry point: run one job and send its report back."""
    import random

    report: dict = {"name": payload["name"]}
    try:
        seed = payload["worker_seed"]
        random.seed(seed)
        try:  # NumPy is a hard dependency, but stay import-error-proof.
            import numpy

            numpy.random.seed(seed % 2**32)
        except Exception:
            pass
        fn = resolve_target(payload["target"])
        telemetry = None
        if (
            payload.get("profile") or payload.get("audit")
            or payload.get("flight_path") or payload.get("timewin_path")
        ):
            from ..obs.telemetry import Telemetry

            telemetry = Telemetry(enabled=True, profile=bool(payload.get("profile")))
            if payload.get("audit"):
                telemetry.enable_audit()
            if payload.get("flight_path"):
                telemetry.enable_flight_recording(payload["flight_path"])
            if payload.get("timewin_path"):
                telemetry.enable_time_windows()
        t0 = time.perf_counter()
        if telemetry is not None:
            with telemetry.activate():
                result = fn(**payload["kwargs"])
        else:
            result = fn(**payload["kwargs"])
        report["wall_s"] = time.perf_counter() - t0
        report["status"] = STATUS_OK
        report["result"] = result
        if telemetry is not None:
            telemetry.close()
            if telemetry.timewin is not None and payload.get("timewin_path"):
                # Window dump + stats ride outside ``result`` (like profile/
                # audit) so recording cannot perturb the results digest.
                telemetry.timewin.dump_jsonl(payload["timewin_path"])
                report["timewin"] = telemetry.timewin.stats()
            if telemetry.profiler is not None:
                report["profile"] = telemetry.profiler.snapshot()
            if telemetry.auditor is not None:
                verdict = telemetry.auditor.report()
                # Ship a bounded verdict: the flow ledgers and deep violation
                # windows stay in the worker; 20 violations diagnose a run.
                report["audit"] = {
                    "events_seen": verdict["events_seen"],
                    "violation_count": verdict["violation_count"],
                    "violations": verdict["violations"][:20],
                }
    except BaseException:
        report["status"] = STATUS_FAILED
        report["error"] = traceback.format_exc(limit=20)
    try:
        conn.send(report)
    finally:
        conn.close()


@contextlib.contextmanager
def _spawn_safe_main():
    """Neutralize a fake ``__main__.__file__`` during worker launches.

    Spawn-context children re-execute the parent's ``__main__`` by path;
    when the parent is a stdin script (``python - <<EOF``) or a REPL, that
    path is ``<stdin>`` and every worker would die on FileNotFoundError
    before reaching the job. Dropping the attribute (it is restored after
    the sweep) makes children skip the main-module replay, which the
    runner never relies on — job targets are resolved by module path.
    """
    main = sys.modules.get("__main__")
    path = getattr(main, "__file__", None)
    if main is None or path is None or os.path.exists(path):
        yield
        return
    try:
        del main.__file__
        yield
    finally:
        main.__file__ = path


#: Public alias: the shard coordinator (:mod:`repro.sim.shard`) launches
#: its own spawn-context workers and needs the same stdin-script guard.
spawn_safe_main = _spawn_safe_main


class _Running:
    __slots__ = ("spec", "attempt", "proc", "conn", "started")

    def __init__(self, spec: JobSpec, attempt: int, proc, conn) -> None:
        self.spec = spec
        self.attempt = attempt
        self.proc = proc
        self.conn = conn
        self.started = time.monotonic()


def flight_file_for(flight_dir: str, job_name: str) -> str:
    """The per-job flight-record path inside an ``audit``/``flight_dir`` sweep."""
    return os.path.join(flight_dir, job_name.replace("/", "_") + ".flights.jsonl")


def window_file_for(timewin_dir: str, job_name: str) -> str:
    """The per-job time-window dump path inside a ``timewin_dir`` sweep."""
    return os.path.join(timewin_dir, job_name.replace("/", "_") + ".windows.jsonl")


def run_jobs(
    specs: Sequence[JobSpec],
    jobs: int = 1,
    profile: bool = False,
    audit: bool = False,
    flight_dir: Optional[str] = None,
    timewin_dir: Optional[str] = None,
    on_result: Optional[Callable[[JobResult], None]] = None,
    poll_interval: float = 0.05,
) -> List[JobResult]:
    """Run ``specs`` across ``jobs`` worker processes; returns results in
    spec order regardless of completion order.

    ``audit=True`` attaches a conservation-law auditor in each worker and
    ships its verdict back as :attr:`JobResult.audit`; ``flight_dir``
    streams each job's completed INT flights to
    ``<flight_dir>/<job>.flights.jsonl``; ``timewin_dir`` attaches the
    fixed-memory time-window recorder and dumps each job's retained
    windows to ``<timewin_dir>/<job>.windows.jsonl``. ``on_result`` (if
    given) is called with each :class:`JobResult` as it lands — the CLI
    uses it for live progress lines.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ConfigurationError("job names must be unique within a sweep")
    if flight_dir is not None:
        os.makedirs(flight_dir, exist_ok=True)
    if timewin_dir is not None:
        os.makedirs(timewin_dir, exist_ok=True)

    ctx = multiprocessing.get_context("spawn")
    queue: List[tuple] = [(spec, 1) for spec in reversed(specs)]
    running: Dict[str, _Running] = {}
    results: Dict[str, JobResult] = {}

    def launch(spec: JobSpec, attempt: int) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        payload = {
            "name": spec.name,
            "target": spec.target,
            "kwargs": dict(spec.kwargs),
            "worker_seed": spec.worker_seed(),
            "profile": profile,
            "audit": audit,
            "flight_path": (
                flight_file_for(flight_dir, spec.name)
                if flight_dir is not None
                else None
            ),
            "timewin_path": (
                window_file_for(timewin_dir, spec.name)
                if timewin_dir is not None
                else None
            ),
        }
        proc = ctx.Process(
            target=_worker_main, args=(payload, child_conn), daemon=spec.daemon
        )
        proc.start()
        child_conn.close()
        running[spec.name] = _Running(spec, attempt, proc, parent_conn)

    def settle(entry: _Running, report: Optional[dict], timed_out: bool) -> None:
        """Record one attempt's outcome (or requeue a first crash)."""
        spec = entry.spec
        if report is not None and report.get("status") == STATUS_OK:
            outcome = JobResult(
                name=spec.name,
                status=STATUS_OK,
                attempts=entry.attempt,
                wall_s=float(report.get("wall_s", 0.0)),
                result=report.get("result"),
                profile=report.get("profile"),
                audit=report.get("audit"),
                timewin=report.get("timewin"),
            )
        elif timed_out:
            outcome = JobResult(
                name=spec.name,
                status=STATUS_TIMEOUT,
                attempts=entry.attempt,
                wall_s=time.monotonic() - entry.started,
                error=f"timed out after {spec.timeout_s:.1f}s",
            )
        else:
            # Worker raised (report carries the traceback) or died without
            # reporting (crash). Crashes get one retry; a clean exception
            # is deterministic and is not retried.
            crashed = report is None
            if crashed and entry.attempt == 1:
                queue.append((spec, 2))
                return
            error = (
                report.get("error")
                if report is not None
                else f"worker crashed (exit code {entry.proc.exitcode})"
            )
            outcome = JobResult(
                name=spec.name,
                status=STATUS_FAILED,
                attempts=entry.attempt,
                wall_s=time.monotonic() - entry.started,
                error=error,
            )
        results[spec.name] = outcome
        if on_result is not None:
            on_result(outcome)

    main_guard = _spawn_safe_main()
    main_guard.__enter__()
    try:
        while queue or running:
            while queue and len(running) < jobs:
                spec, attempt = queue.pop()
                launch(spec, attempt)
            progressed = False
            for name in list(running):
                entry = running[name]
                report = None
                has_report = False
                if entry.conn.poll(0):
                    try:
                        report = entry.conn.recv()
                        has_report = True
                    except EOFError:
                        has_report = False
                if has_report:
                    entry.proc.join()
                    entry.conn.close()
                    del running[name]
                    settle(entry, report, timed_out=False)
                    progressed = True
                elif not entry.proc.is_alive():
                    # Died without a report: crash path.
                    entry.conn.close()
                    del running[name]
                    settle(entry, None, timed_out=False)
                    progressed = True
                elif time.monotonic() - entry.started > entry.spec.timeout_s:
                    entry.proc.terminate()
                    entry.proc.join(timeout=5.0)
                    if entry.proc.is_alive():  # pragma: no cover - last resort
                        entry.proc.kill()
                        entry.proc.join(timeout=5.0)
                    entry.conn.close()
                    del running[name]
                    settle(entry, None, timed_out=True)
                    progressed = True
            if not progressed and running:
                # Block until any worker's pipe has data (or poll interval).
                multiprocessing.connection.wait(
                    [entry.conn for entry in running.values()],
                    timeout=poll_interval,
                )
    finally:
        main_guard.__exit__(None, None, None)
        for entry in running.values():  # pragma: no cover - interrupt cleanup
            entry.proc.terminate()

    return [results[name] for name in names]


# -- aggregation ---------------------------------------------------------------


def result_line(result: JobResult) -> dict:
    """The JSONL record for one job (deterministic fields first)."""
    line: dict = {
        "name": result.name,
        "status": result.status,
        "result": result.result,
        "attempts": result.attempts,
        "wall_s": result.wall_s,
    }
    if result.error is not None:
        line["error"] = result.error
    if result.profile is not None:
        line["profile"] = result.profile
    if result.audit is not None:
        line["audit"] = result.audit
    if result.timewin is not None:
        line["timewin"] = result.timewin
    return line


def write_results_jsonl(results: Sequence[JobResult], path: str) -> None:
    """One JSON object per line, in sweep order."""
    with open(path, "w", encoding="utf-8") as fh:
        for result in results:
            fh.write(json.dumps(result_line(result), sort_keys=True))
            fh.write("\n")


def read_results_jsonl(path: str) -> List[JobResult]:
    """Inverse of :func:`write_results_jsonl`."""
    results = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            results.append(
                JobResult(
                    name=record["name"],
                    status=record["status"],
                    attempts=record.get("attempts", 1),
                    wall_s=record.get("wall_s", 0.0),
                    result=record.get("result"),
                    error=record.get("error"),
                    profile=record.get("profile"),
                    audit=record.get("audit"),
                    timewin=record.get("timewin"),
                )
            )
    return results


def deterministic_result(result: Optional[dict]) -> Optional[dict]:
    """A job result with its (conventional) wall-clock fields removed:
    job wrappers put timing measurements under the ``"timing"`` key so
    determinism checks can ignore them."""
    if not isinstance(result, dict):
        return result
    return {key: value for key, value in result.items() if key != "timing"}


def results_digest(results: Sequence[JobResult]) -> str:
    """SHA-256 over the deterministic payload (name, status, result minus
    ``"timing"``) of every job, in name order. Two sweeps of the same job
    set at any parallelism produce the same digest; any numeric divergence
    changes it."""
    hasher = hashlib.sha256()
    for result in sorted(results, key=lambda r: r.name):
        hasher.update(
            json.dumps(
                {
                    "name": result.name,
                    "status": result.status,
                    "result": deterministic_result(result.result),
                },
                sort_keys=True,
            ).encode("utf-8")
        )
        hasher.update(b"\n")
    return hasher.hexdigest()


# -- baseline comparison -------------------------------------------------------


def load_baseline(path: str) -> Dict[str, float]:
    """Read per-job wall-clock seconds from a previous sweep.

    Accepts either a results JSONL written by :func:`write_results_jsonl`
    or a JSON document with a ``{"jobs": {name: wall_s}}`` mapping.
    """
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    try:
        document = json.loads(text)
    except ValueError:
        document = None
    if isinstance(document, dict) and "name" not in document:
        # A single JSON document (a {"jobs": {...}} mapping, or the mapping
        # itself) rather than a results JSONL line.
        jobs = document.get("jobs", document)
        return {str(name): float(wall) for name, wall in jobs.items()}
    baseline = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        baseline[record["name"]] = float(record.get("wall_s", 0.0))
    return baseline


@dataclass(frozen=True)
class BaselineDelta:
    """Wall-clock change of one job vs a recorded baseline."""

    name: str
    wall_s: float
    baseline_s: float

    @property
    def ratio(self) -> float:
        return self.wall_s / self.baseline_s if self.baseline_s > 0 else float("inf")


def compare_to_baseline(
    results: Sequence[JobResult], baseline: Mapping[str, float]
) -> List[BaselineDelta]:
    """Per-job deltas for every job present in both sweeps."""
    return [
        BaselineDelta(name=r.name, wall_s=r.wall_s, baseline_s=baseline[r.name])
        for r in results
        if r.ok and r.name in baseline
    ]
