"""Experiment scenarios: one function per paper experiment family.

Each function builds a topology, wires one sharing approach
(:mod:`repro.harness.common`), runs the workload, and returns plain result
dataclasses. The benchmarks in ``benchmarks/`` call these at documented
scales and print the paper's rows/series; tests call them at tiny scales.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.controller import AqController, AqRequest
from ..faults import (
    FaultPlan,
    activate_fault_plan,
    get_active_fault_plan,
    switch_restart_plan,
)
from ..core.feedback import drop_policy, ecn_policy
from ..errors import ConfigurationError
from ..ratelimit.elasticswitch import ElasticSwitch, VmProfile
from ..ratelimit.token_bucket import TokenBucketShaper
from ..stats.fairness import entity_fairness
from ..stats.meters import CompletionTracker, ThroughputMeter, percentile
from ..topology.base import QueueConfig
from ..topology.dumbbell import Dumbbell, DumbbellConfig
from ..topology.star import Star, StarConfig
from ..transport.tcp import TcpConnection
from ..transport.udp import UdpFlow
from ..units import gbps
from ..workloads.generator import EntityWorkload, FlowSpec
from .common import (
    AQ,
    DRL,
    PQ,
    PRL,
    EntitySpec,
    SharingEnv,
    ecn_threshold_bytes,
    install_sharing,
    pq_queue_ecn_threshold,
    queue_limit_bytes,
)

# ---------------------------------------------------------------------------
# Long-lived sharing experiments (Fig 1, Fig 8, Fig 9, Table 2)
# ---------------------------------------------------------------------------


@dataclass
class ShareResult:
    """Per-entity steady-state throughput of a long-lived sharing run."""

    approach: str
    bottleneck_bps: float
    duration: float
    warmup: float
    rates_bps: Dict[str, float]
    meters: Dict[str, ThroughputMeter]
    env: SharingEnv

    @property
    def utilization(self) -> float:
        return sum(self.rates_bps.values()) / self.bottleneck_bps

    def ratio(self, a: str, b: str) -> float:
        hi = max(self.rates_bps[a], self.rates_bps[b])
        if hi == 0:
            return 1.0
        return min(self.rates_bps[a], self.rates_bps[b]) / hi


def _build_dumbbell_for(
    entities: Sequence[EntitySpec],
    approach: str,
    bottleneck_bps: float,
    seed: int,
    collect_delays: bool = False,
) -> Tuple[Dumbbell, Dict[str, List[str]], Dict[str, List[str]]]:
    total_vms = sum(spec.num_vms for spec in entities)
    queue_config = QueueConfig(
        limit_bytes=queue_limit_bytes(),
        ecn_threshold_bytes=pq_queue_ecn_threshold(approach, entities, bottleneck_bps),
        collect_delays=collect_delays,
    )
    dumbbell = Dumbbell(
        DumbbellConfig(
            num_left=total_vms,
            num_right=total_vms,
            bottleneck_rate_bps=bottleneck_bps,
            queue_config=queue_config,
            seed=seed,
        )
    )
    src_hosts: Dict[str, List[str]] = {}
    dst_hosts: Dict[str, List[str]] = {}
    index = 0
    for spec in entities:
        src_hosts[spec.name] = dumbbell.left_hosts[index : index + spec.num_vms]
        dst_hosts[spec.name] = dumbbell.right_hosts[index : index + spec.num_vms]
        index += spec.num_vms
    return dumbbell, src_hosts, dst_hosts


def run_longlived_share(
    entities: Sequence[EntitySpec],
    approach: str,
    bottleneck_bps: float = gbps(10),
    duration: float = 60e-3,
    warmup: float = 20e-3,
    seed: int = 1,
    meter_interval: Optional[float] = None,
    aq_limit_bytes: Optional[float] = None,
    enable_reallocation: bool = False,
    reallocation_interval: float = 10e-3,
) -> ShareResult:
    """Entities with long-lived flows share a dumbbell bottleneck.

    This is the engine behind Figure 1 (CC pairs under PQ), Table 2 (CC
    pairs under PQ vs AQ), Figure 8 (flow-count battles), and Figure 9
    (UDP vs TCP timelines, with ``enable_reallocation`` and staggered
    ``start_time``/``stop_time`` in the specs). Example::

        result = run_longlived_share(
            [EntitySpec("tcp", cc="cubic", num_flows=4),
             EntitySpec("udp", cc="udp")],
            approach="aq", bottleneck_bps=gbps(10),
        )
        result.rates_bps   # {"tcp": ~5e9, "udp": ~5e9}
    """
    if warmup >= duration:
        raise ConfigurationError("warmup must be shorter than duration")
    dumbbell, src_hosts, dst_hosts = _build_dumbbell_for(
        entities, approach, bottleneck_bps, seed
    )
    network = dumbbell.network
    env = install_sharing(
        network,
        Dumbbell.LEFT_SWITCH,
        bottleneck_bps,
        entities,
        approach,
        src_hosts,
        dst_hosts,
        aq_limit_bytes=aq_limit_bytes,
        enable_reallocation=enable_reallocation,
        reallocation_interval=reallocation_interval,
    )

    interval = meter_interval if meter_interval is not None else duration / 60.0
    meters: Dict[str, ThroughputMeter] = {}
    for spec in entities:
        meter = ThroughputMeter(network.sim, interval, name=spec.name)
        meters[spec.name] = meter
        srcs = src_hosts[spec.name]
        dsts = dst_hosts[spec.name]
        ingress_id = env.aq_ingress_id(spec.name)
        if spec.is_udp:
            rate = spec.udp_rate_bps or bottleneck_bps
            for i in range(spec.num_flows):
                flow = UdpFlow(
                    network,
                    srcs[i % len(srcs)],
                    dsts[i % len(dsts)],
                    rate / spec.num_flows,
                    start_time=spec.start_time,
                    stop_time=spec.stop_time,
                    aq_ingress_id=ingress_id,
                    on_deliver=meter.add,
                )
                del flow
        else:
            for i in range(spec.num_flows):
                conn = TcpConnection(
                    network,
                    srcs[i % len(srcs)],
                    dsts[i % len(dsts)],
                    env.make_cc(spec.name),
                    size_bytes=None,
                    start_time=spec.start_time,
                    aq_ingress_id=ingress_id,
                    on_deliver=meter.add,
                )
                if spec.stop_time is not None:
                    network.sim.schedule_at(spec.stop_time, conn.sender.stop)

    network.run(until=duration)
    for meter in meters.values():
        meter.stop()

    rates = {
        spec.name: meters[spec.name].mean_rate(
            after=max(warmup, spec.start_time + (warmup - 0.0)),
            before=spec.stop_time if spec.stop_time is not None else duration,
        )
        for spec in entities
    }
    return ShareResult(
        approach=approach,
        bottleneck_bps=bottleneck_bps,
        duration=duration,
        warmup=warmup,
        rates_bps=rates,
        meters=meters,
        env=env,
    )


def run_cc_pair(
    cc_a: str,
    flows_a: int,
    cc_b: str,
    flows_b: int,
    approach: str,
    bottleneck_bps: float = gbps(10),
    duration: float = 60e-3,
    warmup: float = 20e-3,
    seed: int = 1,
) -> ShareResult:
    """Two equal-weight entities with different CCs (Fig 1 / Table 2 rows)."""
    entities = [
        EntitySpec(name="A", cc=cc_a, num_flows=flows_a),
        EntitySpec(name="B", cc=cc_b, num_flows=flows_b),
    ]
    return run_longlived_share(
        entities, approach, bottleneck_bps, duration, warmup, seed
    )


# ---------------------------------------------------------------------------
# Workload-completion-time experiments (Fig 6, Fig 7, Fig 10)
# ---------------------------------------------------------------------------


@dataclass
class WctResult:
    """Workload completion times of one run."""

    approach: str
    wct: Dict[str, float]  # entity -> completion time (inf if unfinished)
    completed: Dict[str, bool]
    total_wct: float

    def fairness(self, a: str = "A", b: str = "B") -> float:
        return entity_fairness(self.wct[a], self.wct[b])


class _VmQueueRunner:
    """Executes one VM's flow queue: FIFO, one at a time, each flow
    starting at the later of its arrival time and the previous flow's
    completion (an M/G/1-style work queue per VM)."""

    def __init__(
        self,
        network,
        cc_factory,
        flows: List[FlowSpec],
        tracker: Optional[CompletionTracker] = None,
        ingress_id: int = 0,
        egress_id_for: Optional[Dict[str, int]] = None,
        on_deliver=None,
    ) -> None:
        self.network = network
        self.cc_factory = cc_factory
        self.flows = list(flows)
        self.tracker = tracker
        self.ingress_id = ingress_id
        self.egress_id_for = egress_id_for or {}
        self.on_deliver = on_deliver
        self._index = 0
        if self.flows:
            network.sim.schedule_at(self.flows[0].start_time, self._start_next)

    def _start_next(self) -> None:
        if self._index >= len(self.flows):
            return
        flow = self.flows[self._index]
        self._index += 1
        TcpConnection(
            self.network,
            flow.src,
            flow.dst,
            self.cc_factory(),
            size_bytes=flow.size_bytes,
            start_time=max(flow.start_time, self.network.sim.now),
            aq_ingress_id=self.ingress_id,
            aq_egress_id=self.egress_id_for.get(flow.dst, 0),
            on_complete=self._on_complete,
            on_deliver=self.on_deliver,
        )

    def _on_complete(self, conn, now: float) -> None:
        if self.tracker is not None:
            self.tracker.on_complete(conn, now)
        self._start_next()


def run_wct(
    entities: Sequence[EntitySpec],
    approach: str,
    volume_bytes: Dict[str, int],
    bottleneck_bps: float = gbps(10),
    max_sim_time: float = 5.0,
    seed: int = 1,
    aq_limit_bytes: Optional[float] = None,
    arrival_window: Optional[float] = None,
) -> WctResult:
    """Entities run fixed-volume web-search workloads; measure completion.

    Flows arrive over ``arrival_window`` (defaulting to the time the
    entity's fair share needs to drain its volume, so offered load tracks
    the allocation) on random VMs; each VM runs its queue FIFO, one flow
    at a time. The entity's "workload completion time" is when its last
    flow finishes (paper Sections 5.2-5.3).
    """
    dumbbell, src_hosts, dst_hosts = _build_dumbbell_for(
        entities, approach, bottleneck_bps, seed
    )
    network = dumbbell.network
    env = install_sharing(
        network,
        Dumbbell.LEFT_SWITCH,
        bottleneck_bps,
        entities,
        approach,
        src_hosts,
        dst_hosts,
        aq_limit_bytes=aq_limit_bytes,
    )

    trackers: Dict[str, CompletionTracker] = {}
    for spec in entities:
        workload = EntityWorkload(
            name=spec.name,
            sources=src_hosts[spec.name],
            destinations=dst_hosts[spec.name],
        )
        rng = network.rng.stream(f"workload:{spec.name}")
        window = arrival_window
        if window is None:
            # Offered load slightly above the entity's fair share, so the
            # entity stays backlogged and its completion time reflects the
            # bandwidth it actually received (not its workload draw).
            window = 0.85 * volume_bytes[spec.name] * 8.0 / env.share_bps[spec.name]
        queues = workload.vm_job_queues(
            rng,
            volume_bytes[spec.name],
            arrival_window=window,
            start_time=spec.start_time,
        )
        total_flows = sum(len(q) for q in queues.values())
        tracker = CompletionTracker(expected=total_flows)
        trackers[spec.name] = tracker
        ingress_id = env.aq_ingress_id(spec.name)
        for flows in queues.values():
            if flows:
                _VmQueueRunner(
                    network,
                    lambda name=spec.name: env.make_cc(name),
                    flows,
                    tracker=tracker,
                    ingress_id=ingress_id,
                )

    chunk = max_sim_time / 200.0
    while network.sim.now < max_sim_time:
        if all(tracker.all_done for tracker in trackers.values()):
            break
        network.run(until=min(network.sim.now + chunk, max_sim_time))

    wct: Dict[str, float] = {}
    completed: Dict[str, bool] = {}
    for name, tracker in trackers.items():
        completed[name] = tracker.all_done
        wct[name] = (
            tracker.workload_completion_time() if tracker.all_done else float("inf")
        )
    return WctResult(
        approach=approach,
        wct=wct,
        completed=completed,
        total_wct=max(wct.values()),
    )


def run_single_entity_wct(
    num_vms: int,
    approach: str,
    volume_bytes: int,
    bottleneck_bps: float = gbps(10),
    max_sim_time: float = 5.0,
    seed: int = 1,
    cc: str = "cubic",
) -> float:
    """Figure 6: one entity, ``num_vms`` VMs, normalized elsewhere."""
    spec = EntitySpec(name="A", cc=cc, num_vms=num_vms)
    result = run_wct(
        [spec],
        approach,
        {"A": volume_bytes},
        bottleneck_bps=bottleneck_bps,
        max_sim_time=max_sim_time,
        seed=seed,
    )
    return result.wct["A"]


def run_two_entity_fairness(
    num_vms_b: int,
    approach: str,
    volume_bytes: int,
    bottleneck_bps: float = gbps(10),
    max_sim_time: float = 5.0,
    seed: int = 1,
    cc: str = "cubic",
) -> WctResult:
    """Figure 7: entity A (1 VM) vs entity B (``num_vms_b`` VMs), equal
    weights, equal workload volumes."""
    entities = [
        EntitySpec(name="A", cc=cc, num_vms=1),
        EntitySpec(name="B", cc=cc, num_vms=num_vms_b),
    ]
    return run_wct(
        entities,
        approach,
        {"A": volume_bytes, "B": volume_bytes},
        bottleneck_bps=bottleneck_bps,
        max_sim_time=max_sim_time,
        seed=seed,
    )


def run_cc_pair_wct(
    cc_a: str,
    cc_b: str,
    approach: str,
    volume_bytes: int,
    num_vms: int = 4,
    bottleneck_bps: float = gbps(10),
    max_sim_time: float = 5.0,
    seed: int = 1,
) -> WctResult:
    """Figure 10: two 4-VM entities with different CCs, equal volumes."""
    entities = [
        EntitySpec(name="A", cc=cc_a, num_vms=num_vms),
        EntitySpec(name="B", cc=cc_b, num_vms=num_vms),
    ]
    return run_wct(
        entities,
        approach,
        {"A": volume_bytes, "B": volume_bytes},
        bottleneck_bps=bottleneck_bps,
        max_sim_time=max_sim_time,
        seed=seed,
    )


# ---------------------------------------------------------------------------
# VM bi-directional profile experiment (Table 3)
# ---------------------------------------------------------------------------


@dataclass
class VmProfileResult:
    """Rate ranges of the profiled VM (Table 3's row format)."""

    approach: str
    outbound_range_bps: Tuple[float, float]
    inbound_range_bps: Tuple[float, float]
    outbound_mean_bps: float
    inbound_mean_bps: float


def run_vm_profile(
    approach: str,
    link_rate_bps: float = gbps(25),
    profile_rate_bps: float = gbps(5),
    duration: float = 0.2,
    warmup_fraction: float = 0.3,
    demand_factor: float = 1.5,
    seed: int = 1,
    cc: str = "cubic",
) -> VmProfileResult:
    """Table 3: star of 4 VMs; VM A has a 5 Gbps in / 5 Gbps out profile.

    VM A sends web-search traffic to B, C, D, and B, C, D all send to A —
    each pair runs an M/G/1-style job queue offering ``demand_factor`` x
    the profile rate, so A's inbound (and outbound) demand is ~3 x
    ``demand_factor`` x its profile: far more than the profile allows.
    """
    star = Star(
        StarConfig(
            num_hosts=4,
            link_rate_bps=link_rate_bps,
            queue_config=QueueConfig(limit_bytes=queue_limit_bytes()),
            seed=seed,
        )
    )
    network = star.network
    vm_a, vm_b, vm_c, vm_d = star.hosts
    others = [vm_b, vm_c, vm_d]
    sim = network.sim

    out_grants: Dict[str, int] = {}
    in_grants: Dict[str, int] = {}
    if approach == AQ:
        controller = AqController(network)
        for vm in star.hosts:
            controller.register_resource(f"up:{vm}", link_rate_bps)
            controller.register_resource(f"down:{vm}", link_rate_bps)
            out_grant = controller.request(
                AqRequest(
                    entity=f"{vm}:out",
                    switch=Star.SWITCH,
                    position="ingress",
                    absolute_rate_bps=profile_rate_bps,
                    share_group=f"up:{vm}",
                    policy=drop_policy(),
                    limit_bytes=queue_limit_bytes(),
                )
            )
            in_grant = controller.request(
                AqRequest(
                    entity=f"{vm}:in",
                    switch=Star.SWITCH,
                    position="egress",
                    absolute_rate_bps=profile_rate_bps,
                    share_group=f"down:{vm}",
                    policy=drop_policy(),
                    limit_bytes=queue_limit_bytes(),
                )
            )
            out_grants[vm] = out_grant.aq_id
            in_grants[vm] = in_grant.aq_id
    elif approach == PRL:
        for vm in star.hosts:
            host = network.hosts[vm]
            host.install_shaper(
                TokenBucketShaper(sim, profile_rate_bps, host.forward_to_nic)
            )
    elif approach == DRL:
        es = ElasticSwitch(network, link_capacity_bps=link_rate_bps)
        for vm in star.hosts:
            es.add_vm(VmProfile(vm, profile_rate_bps, profile_rate_bps))
        es.start()
    elif approach != PQ:
        raise ConfigurationError(f"unknown approach {approach!r}")

    meter_interval = duration / 40.0
    out_meter = ThroughputMeter(sim, meter_interval, name="A:out")
    in_meter = ThroughputMeter(sim, meter_interval, name="A:in")

    from ..cc.registry import make_cc

    def launch(src: str, dst: str, stream: str, meter) -> None:
        """One VM pair's web-search job queue: flows arrive over the whole
        experiment at ``demand_factor`` x the profile rate and execute
        FIFO, so demand is bursty (exercising DRL's adjustment lag) but
        sustained well above the profile."""
        workload = EntityWorkload(name=stream, sources=[src], destinations=[dst])
        rng = network.rng.stream(stream)
        volume = int(demand_factor * profile_rate_bps * duration / 8)
        queues = workload.vm_job_queues(rng, volume, arrival_window=duration)
        _VmQueueRunner(
            network,
            lambda: make_cc(cc),
            queues[src],
            ingress_id=out_grants.get(src, 0),
            egress_id_for={dst: in_grants.get(dst, 0)},
            on_deliver=meter.add,
        )

    # VM A -> B, C, D (outbound demand ~3x its profile)...
    for peer in others:
        launch(vm_a, peer, f"out:{peer}", out_meter)
    # ...and B, C, D -> A (inbound demand ~3x A's profile).
    for peer in others:
        launch(peer, vm_a, f"in:{peer}", in_meter)

    network.run(until=duration)
    out_meter.stop()
    in_meter.stop()

    after = duration * warmup_fraction
    return VmProfileResult(
        approach=approach,
        outbound_range_bps=out_meter.rate_range(after=after),
        inbound_range_bps=in_meter.rate_range(after=after),
        outbound_mean_bps=out_meter.mean_rate(after=after),
        inbound_mean_bps=in_meter.mean_rate(after=after),
    )


# ---------------------------------------------------------------------------
# CC-behaviour preservation (Table 4)
# ---------------------------------------------------------------------------


@dataclass
class PreservationResult:
    """Throughput + 95th-percentile queuing delay of one configuration."""

    label: str
    throughput_bps: float
    delay_p95: float


def run_cc_preservation(
    cc: str,
    use_aq: bool,
    allocated_bps: float = gbps(2.5),
    capacity_bps: float = gbps(10),
    num_flows: int = 5,
    duration: float = 80e-3,
    warmup: float = 30e-3,
    seed: int = 1,
) -> PreservationResult:
    """Table 4: an entity allocated R inside a C-capacity fabric under AQ
    should behave like the same entity on a dedicated R-capacity fabric
    under PQ — same throughput, same (virtual) queuing-delay distribution.
    """
    bottleneck = allocated_bps if not use_aq else capacity_bps
    queue_config = QueueConfig(
        limit_bytes=queue_limit_bytes(),
        ecn_threshold_bytes=(
            ecn_threshold_bytes(allocated_bps)
            if (cc.lower() == "dctcp" and not use_aq)
            else None
        ),
        collect_delays=not use_aq,
    )
    dumbbell = Dumbbell(
        DumbbellConfig(
            num_left=1,
            num_right=1,
            bottleneck_rate_bps=bottleneck,
            queue_config=queue_config,
            seed=seed,
        )
    )
    network = dumbbell.network
    aq_id = 0
    aq_obj = None
    if use_aq:
        controller = AqController(network)
        controller.register_resource("bottleneck", capacity_bps)
        policy = drop_policy()
        if cc.lower() == "dctcp":
            policy = ecn_policy(ecn_threshold_bytes(allocated_bps))
        elif cc.lower() == "swift":
            from ..core.feedback import delay_policy

            policy = delay_policy()
        grant = controller.request(
            AqRequest(
                entity="E",
                switch=Dumbbell.LEFT_SWITCH,
                position="ingress",
                absolute_rate_bps=allocated_bps,
                share_group="bottleneck",
                policy=policy,
                limit_bytes=queue_limit_bytes(),
                record_delays=True,
            )
        )
        aq_id = grant.aq_id
        aq_obj = grant.aq

    meter = ThroughputMeter(network.sim, duration / 50.0, name="E")
    from ..cc.registry import make_cc
    from .common import swift_target_delay

    for _ in range(num_flows):
        if cc.lower() == "swift":
            flow_cc = make_cc(
                "swift",
                target_delay=swift_target_delay(allocated_bps),
                use_virtual_delay=use_aq,
            )
        else:
            flow_cc = make_cc(cc)
        TcpConnection(
            network,
            "h-l0",
            "h-r0",
            flow_cc,
            size_bytes=None,
            aq_ingress_id=aq_id,
            on_deliver=meter.add,
        )

    network.run(until=duration)
    meter.stop()

    throughput = meter.mean_rate(after=warmup)
    if use_aq:
        assert aq_obj is not None
        samples = aq_obj.stats.delay_samples
    else:
        samples = dumbbell.bottleneck_port.queue.stats.queuing_delays
    # Skip the slow-start transient: only keep the steady-state tail.
    steady = samples[len(samples) // 3 :] if samples else [0.0]
    delay_p95 = percentile(steady, 95.0)
    label = f"{cc}/{'AQ' if use_aq else 'PQ'}"
    return PreservationResult(label=label, throughput_bps=throughput, delay_p95=delay_p95)


# ---------------------------------------------------------------------------
# Fig 9: staggered UDP/TCP entities under weighted AQ reallocation
# ---------------------------------------------------------------------------


@dataclass
class TimelineResult:
    """Per-entity throughput time series."""

    approach: str
    series: Dict[str, List[Tuple[float, float]]]
    rates_in_window: Dict[str, Dict[str, float]]


def run_udp_tcp_timeline(
    approach: str,
    bottleneck_bps: float = gbps(10),
    phase: float = 40e-3,
    seed: int = 1,
    reallocation_interval: float = 5e-3,
) -> TimelineResult:
    """Figure 9: four TCP entities join staggered, then a UDP blaster joins
    and leaves. Under PQ the UDP entity starves everyone; under weighted AQ
    each of the n active entities holds ~1/n of the bottleneck.

    Timeline (in units of ``phase``): TCP entities T1..T4 start at 0, 1x,
    2x, 3x; UDP starts at 4x and stops at 6x; run ends at 7x.
    """
    entities = [
        EntitySpec(name="T1", cc="cubic", num_flows=1, start_time=0.0),
        EntitySpec(name="T2", cc="cubic", num_flows=1, start_time=phase),
        EntitySpec(name="T3", cc="cubic", num_flows=1, start_time=2 * phase),
        EntitySpec(name="T4", cc="cubic", num_flows=1, start_time=3 * phase),
        EntitySpec(
            name="U",
            cc="udp",
            num_flows=1,
            start_time=4 * phase,
            stop_time=6 * phase,
        ),
    ]
    duration = 7 * phase
    result = run_longlived_share(
        entities,
        approach,
        bottleneck_bps=bottleneck_bps,
        duration=duration,
        warmup=phase / 2,
        seed=seed,
        meter_interval=phase / 10.0,
        enable_reallocation=(approach == AQ),
        reallocation_interval=reallocation_interval,
    )
    # Mean rate of each entity during each phase's second half (settled).
    windows = {}
    for k in range(7):
        lo = k * phase + 0.5 * phase
        hi = (k + 1) * phase
        windows[f"phase{k}"] = {
            name: meter.mean_rate(after=lo, before=hi)
            for name, meter in result.meters.items()
        }
    series = {name: list(meter.samples) for name, meter in result.meters.items()}
    return TimelineResult(
        approach=approach, series=series, rates_in_window=windows
    )


# ---------------------------------------------------------------------------
# Small-flow protection (the Section 1/2 motivation, measured as FCT)
# ---------------------------------------------------------------------------


@dataclass
class FctResult:
    """Victim entity's FCT statistics under contention."""

    approach: str
    p50_slowdown: float
    p99_slowdown: float
    mean_slowdown: float
    completed_flows: int


def run_small_flow_protection(
    approach: str,
    bottleneck_bps: float = gbps(2),
    victim_load_fraction: float = 0.2,
    duration: float = 0.1,
    seed: int = 1,
    cc: str = "cubic",
) -> FctResult:
    """One latency-sensitive entity sends small web-search flows at a
    light load while an aggressive UDP entity blasts at line rate.

    Under PQ the victim's flows queue behind the blaster (the paper's
    "throughput can vary by an order of magnitude" motivation); with
    weighted AQs the victim's small flows see only its own traffic. The
    FCT slowdown is measured against the victim's allocated share.
    """
    entities = [
        EntitySpec(name="victim", cc=cc, weight=1.0),
        EntitySpec(name="blaster", cc="udp", weight=1.0),
    ]
    dumbbell, src_hosts, dst_hosts = _build_dumbbell_for(
        entities, approach, bottleneck_bps, seed
    )
    network = dumbbell.network
    env = install_sharing(
        network,
        Dumbbell.LEFT_SWITCH,
        bottleneck_bps,
        entities,
        approach,
        src_hosts,
        dst_hosts,
    )

    from ..stats.fct import FctCollector
    from ..workloads.websearch import websearch_distribution

    share = env.share_bps["victim"]
    collector = FctCollector(
        reference_rate_bps=share, base_rtt=dumbbell.base_rtt()
    )
    rng = network.rng.stream("victim-flows")
    distribution = websearch_distribution()
    victim_src = src_hosts["victim"][0]
    victim_dst = dst_hosts["victim"][0]
    ingress_id = env.aq_ingress_id("victim")

    # Open-loop Poisson small-flow arrivals at a light load.
    mean_bytes = distribution.mean_bytes(samples=2000)
    arrival_rate = victim_load_fraction * share / (mean_bytes * 8.0)
    t = 0.0
    while True:
        t += rng.expovariate(arrival_rate)
        if t >= duration * 0.8:  # leave time for the tail to finish
            break
        size = distribution.sample_bytes(rng)
        TcpConnection(
            network,
            victim_src,
            victim_dst,
            env.make_cc("victim"),
            size_bytes=size,
            start_time=t,
            aq_ingress_id=ingress_id,
            on_complete=collector.on_complete_hook(size),
        )

    # The blaster: UDP at the bottleneck line rate.
    UdpFlow(
        network,
        src_hosts["blaster"][0],
        dst_hosts["blaster"][0],
        rate_bps=bottleneck_bps,
        aq_ingress_id=env.aq_ingress_id("blaster"),
    )

    network.run(until=duration)
    slowdowns = collector.slowdowns()
    if not slowdowns:
        raise ConfigurationError("no victim flows completed; extend duration")
    return FctResult(
        approach=approach,
        p50_slowdown=percentile(slowdowns, 50.0),
        p99_slowdown=percentile(slowdowns, 99.0),
        mean_slowdown=sum(slowdowns) / len(slowdowns),
        completed_flows=len(slowdowns),
    )


# ---------------------------------------------------------------------------
# Ablations (Section 6)
# ---------------------------------------------------------------------------


@dataclass
class LimitAblationResult:
    limit_bytes: float
    rate_bps: float
    drop_fraction: float


def run_limit_ablation(
    limits_bytes: Sequence[float],
    cc: str = "cubic",
    allocated_bps: float = gbps(2.5),
    capacity_bps: float = gbps(10),
    duration: float = 60e-3,
    warmup: float = 20e-3,
    seed: int = 1,
) -> List[LimitAblationResult]:
    """Section 6 "AQ limit configurations": sweep the AQ limit and observe
    achieved rate vs drops — small limits cause excess drops that keep the
    entity below its allocation."""
    results = []
    for limit in limits_bytes:
        spec = EntitySpec(name="E", cc=cc, num_flows=4)
        dumbbell, src_hosts, dst_hosts = _build_dumbbell_for(
            [spec], AQ, capacity_bps, seed
        )
        network = dumbbell.network
        controller = AqController(network)
        controller.register_resource("bottleneck", capacity_bps)
        grant = controller.request(
            AqRequest(
                entity="E",
                switch=Dumbbell.LEFT_SWITCH,
                position="ingress",
                absolute_rate_bps=allocated_bps,
                share_group="bottleneck",
                policy=drop_policy(),
                limit_bytes=limit,
            )
        )
        meter = ThroughputMeter(network.sim, duration / 40.0)
        from ..cc.registry import make_cc

        for i in range(spec.num_flows):
            TcpConnection(
                network,
                src_hosts["E"][0],
                dst_hosts["E"][0],
                make_cc(cc),
                aq_ingress_id=grant.aq_id,
                on_deliver=meter.add,
            )
        network.run(until=duration)
        meter.stop()
        stats = grant.aq.stats
        drop_fraction = (
            stats.dropped_packets / stats.arrived_packets
            if stats.arrived_packets
            else 0.0
        )
        results.append(
            LimitAblationResult(
                limit_bytes=limit,
                rate_bps=meter.mean_rate(after=warmup),
                drop_fraction=drop_fraction,
            )
        )
    return results


# ---------------------------------------------------------------------------
# Fault injection: guarantee degradation + re-convergence (docs/FAULTS.md)
# ---------------------------------------------------------------------------


@dataclass
class FaultRecoveryResult:
    """Guarantee degradation and re-convergence around a fault window.

    The run is split into three measurement windows: *before* the first
    fault (post-warmup steady state), *during* (the fault plus the settle
    interval while transports and the redeployed AQs re-converge), and
    *after* (post-recovery steady state). ``reconvergence_s`` is, per
    entity, the delay from the first fault until the throughput series
    stays within tolerance of the granted share; ``-1.0`` means the
    entity never re-converged within the run.
    """

    approach: str
    bottleneck_bps: float
    duration: float
    fault_at: float
    share_bps: Dict[str, float]
    rates_before_bps: Dict[str, float]
    rates_during_bps: Dict[str, float]
    rates_after_bps: Dict[str, float]
    reconvergence_s: Dict[str, float]
    degraded_windows: List[dict] = field(default_factory=list)
    restart_stats: Dict[str, dict] = field(default_factory=dict)
    faults_applied: List[dict] = field(default_factory=list)
    meters: Dict[str, ThroughputMeter] = field(default_factory=dict)
    env: Optional[SharingEnv] = None

    def recovered(self, tolerance: float = 0.05) -> bool:
        """Did every entity's post-fault rate return to within
        ``tolerance`` of its granted (or pre-fault, if lower) rate?"""
        for name, share in self.share_bps.items():
            target = min(share, self.rates_before_bps.get(name, share))
            if self.rates_after_bps.get(name, 0.0) < (1.0 - tolerance) * target:
                return False
        return True

    @property
    def max_reconvergence_s(self) -> float:
        times = [t for t in self.reconvergence_s.values() if t >= 0]
        if len(times) < len(self.reconvergence_s):
            return -1.0  # someone never came back
        return max(times) if times else 0.0


def _reconvergence_time(
    meter: ThroughputMeter,
    fault_at: float,
    target_bps: float,
    settle_windows: int = 3,
) -> float:
    """First post-fault instant after which ``settle_windows`` consecutive
    meter windows all meet ``target_bps`` (−1.0 if that never happens)."""
    samples = [(t, bps) for t, bps in meter.samples if t > fault_at]
    if not samples:
        return -1.0
    run = 0
    for i, (t, bps) in enumerate(samples):
        if bps >= target_bps:
            run += 1
            if run == settle_windows:
                return samples[i - settle_windows + 1][0] - fault_at
        else:
            run = 0
    return -1.0


def run_switch_restart(
    entities: Optional[Sequence[EntitySpec]] = None,
    approach: str = AQ,
    bottleneck_bps: float = gbps(2),
    duration: float = 120e-3,
    warmup: float = 20e-3,
    restart_at: float = 50e-3,
    seed: int = 1,
    meter_interval: Optional[float] = None,
    plan: Optional[FaultPlan] = None,
    tolerance: float = 0.05,
    settle: Optional[float] = None,
) -> FaultRecoveryResult:
    """The new fault experiment: guarantee degradation and re-convergence
    after a switch restart wipes every deployed AQ's register state.

    By default the bottleneck switch restarts at ``restart_at``, draining
    its queues and losing the per-AQ A-Gap registers; the controller's
    recovery path redeploys them with bounded retry/backoff and accounts
    the gap as :class:`~repro.core.controller.DegradedWindow`\\ s. A custom
    ``plan`` (or an ambient one activated by the CLI's ``--faults``)
    replaces the default single-restart schedule. Example::

        result = run_switch_restart(duration=120e-3, restart_at=50e-3)
        result.rates_after_bps        # back within 5% of the grant
        result.max_reconvergence_s    # how long recovery took
        result.degraded_windows       # the unenforced intervals
    """
    if not 0 < warmup < restart_at < duration:
        raise ConfigurationError(
            "need 0 < warmup < restart_at < duration, got "
            f"warmup={warmup} restart_at={restart_at} duration={duration}"
        )
    if entities is None:
        entities = [
            EntitySpec(name="A", cc="cubic", num_flows=4, weight=1.0),
            EntitySpec(name="B", cc="cubic", num_flows=4, weight=1.0),
        ]

    ambient = get_active_fault_plan()
    if ambient is not None:
        plan = ambient  # the CLI's --faults wins; don't stack another plan
        plan_scope = contextlib.nullcontext()
    else:
        if plan is None:
            plan = switch_restart_plan(Dumbbell.LEFT_SWITCH, restart_at, seed=seed)
        plan_scope = activate_fault_plan(plan)
    fault_at = min((e.time for e in plan.events), default=restart_at)

    with plan_scope:
        dumbbell, src_hosts, dst_hosts = _build_dumbbell_for(
            entities, approach, bottleneck_bps, seed
        )
    network = dumbbell.network
    env = install_sharing(
        network,
        Dumbbell.LEFT_SWITCH,
        bottleneck_bps,
        entities,
        approach,
        src_hosts,
        dst_hosts,
    )

    interval = meter_interval if meter_interval is not None else duration / 60.0
    meters: Dict[str, ThroughputMeter] = {}
    for spec in entities:
        meter = ThroughputMeter(network.sim, interval, name=spec.name)
        meters[spec.name] = meter
        srcs = src_hosts[spec.name]
        dsts = dst_hosts[spec.name]
        ingress_id = env.aq_ingress_id(spec.name)
        for i in range(spec.num_flows):
            TcpConnection(
                network,
                srcs[i % len(srcs)],
                dsts[i % len(dsts)],
                env.make_cc(spec.name),
                size_bytes=None,
                start_time=spec.start_time,
                aq_ingress_id=ingress_id,
                on_deliver=meter.add,
            )

    network.run(until=duration)
    for meter in meters.values():
        meter.stop()

    # The degraded window itself is short (one redeploy backoff step);
    # transports need longer to refill the pipe, so give them half the
    # remaining run (or the caller's ``settle``) before measuring the
    # post-recovery steady state.
    settle_s = settle if settle is not None else (duration - fault_at) / 2.0
    post_start = min(fault_at + settle_s, duration)

    rates_before = {
        spec.name: meters[spec.name].mean_rate(after=warmup, before=fault_at)
        for spec in entities
    }
    rates_during = {
        spec.name: meters[spec.name].mean_rate(after=fault_at, before=post_start)
        for spec in entities
    }
    rates_after = {
        spec.name: meters[spec.name].mean_rate(after=post_start, before=duration)
        for spec in entities
    }
    reconvergence = {
        spec.name: _reconvergence_time(
            meters[spec.name],
            fault_at,
            (1.0 - tolerance)
            * min(env.share_bps[spec.name], rates_before[spec.name] or
                  env.share_bps[spec.name]),
        )
        for spec in entities
    }

    degraded = (
        [w.to_dict() for w in env.controller.degraded_windows]
        if env.controller is not None
        else []
    )
    restart_stats = {
        name: {
            "restarts": sw.stats.restarts,
            "drained_packets": sw.stats.restart_drained_packets,
            "drained_bytes": sw.stats.restart_drained_bytes,
        }
        for name, sw in network.switches.items()
        if sw.stats.restarts
    }
    applied = (
        [e.to_dict() for e in network.fault_injector.applied]
        if network.fault_injector is not None
        else []
    )

    return FaultRecoveryResult(
        approach=approach,
        bottleneck_bps=bottleneck_bps,
        duration=duration,
        fault_at=fault_at,
        share_bps=dict(env.share_bps),
        rates_before_bps=rates_before,
        rates_during_bps=rates_during,
        rates_after_bps=rates_after,
        reconvergence_s=reconvergence,
        degraded_windows=degraded,
        restart_stats=restart_stats,
        faults_applied=applied,
        meters=meters,
        env=env,
    )


# ---------------------------------------------------------------------------
# Hybrid fluid/packet simulation (docs/PERFORMANCE.md "Fluid fast path")
# ---------------------------------------------------------------------------


@dataclass
class FluidShareResult:
    """Per-flow delivered bytes of one UDP sharing run, in either engine.

    The same scenario runs under the per-packet engine (``mode="packet"``)
    or the hybrid fluid engine (``mode="fluid"``); the equivalence jobs
    compare the two field by field.
    """

    approach: str
    mode: str
    bottleneck_bps: float
    duration: float
    delivered_bytes: Dict[str, Dict[int, int]]  # entity -> flow_id -> bytes
    delivered_total: Dict[str, int]             # entity -> bytes
    fluid: dict                                 # FluidEngine.stats() ({} for packet)
    env: SharingEnv


def run_fluid_share(
    entities: Sequence[EntitySpec],
    approach: str,
    bottleneck_bps: float = gbps(2),
    duration: float = 50e-3,
    seed: int = 1,
    fluid: bool = False,
    aq_limit_bytes: Optional[float] = None,
    min_epoch: float = 1e-6,
    retry_interval: float = 250e-6,
) -> FluidShareResult:
    """UDP entities share a dumbbell bottleneck, optionally fluid-simulated.

    This is the harness for the hybrid fluid/packet fast path
    (:mod:`repro.sim.fluid`): every entity must be UDP (constant-rate
    senders are what the closed form models), and no periodic meters are
    attached — per-flow delivered bytes are read off the sinks, so the
    calendar stays empty and fluid epochs can span the whole run. With
    ``fluid=False`` the identical network runs per-packet, giving the
    equivalence baseline.
    """
    if any(not spec.is_udp for spec in entities):
        raise ConfigurationError(
            "run_fluid_share is UDP-only; the fluid closed form does not "
            "model CC feedback loops"
        )
    dumbbell, src_hosts, dst_hosts = _build_dumbbell_for(
        entities, approach, bottleneck_bps, seed
    )
    network = dumbbell.network
    env = install_sharing(
        network,
        Dumbbell.LEFT_SWITCH,
        bottleneck_bps,
        entities,
        approach,
        src_hosts,
        dst_hosts,
        aq_limit_bytes=aq_limit_bytes,
    )

    flows: Dict[str, List[UdpFlow]] = {}
    all_flows: List[UdpFlow] = []
    for spec in entities:
        srcs = src_hosts[spec.name]
        dsts = dst_hosts[spec.name]
        ingress_id = env.aq_ingress_id(spec.name)
        rate = spec.udp_rate_bps or bottleneck_bps
        entity_flows = []
        for i in range(spec.num_flows):
            flow = UdpFlow(
                network,
                srcs[i % len(srcs)],
                dsts[i % len(dsts)],
                rate / spec.num_flows,
                start_time=spec.start_time,
                stop_time=spec.stop_time,
                aq_ingress_id=ingress_id,
            )
            entity_flows.append(flow)
            all_flows.append(flow)
        flows[spec.name] = entity_flows

    fluid_stats: dict = {}
    if fluid:
        from ..sim.fluid import FluidEngine

        engine = FluidEngine(
            network, all_flows, min_epoch=min_epoch,
            retry_interval=retry_interval,
        )
        engine.run(until=duration)
        fluid_stats = engine.stats()
    else:
        network.run(until=duration)

    delivered = {
        name: {f.flow_id: f.sink.delivered_bytes for f in entity_flows}
        for name, entity_flows in flows.items()
    }
    return FluidShareResult(
        approach=approach,
        mode="fluid" if fluid else "packet",
        bottleneck_bps=bottleneck_bps,
        duration=duration,
        delivered_bytes=delivered,
        delivered_total={
            name: sum(per_flow.values()) for name, per_flow in delivered.items()
        },
        fluid=fluid_stats,
        env=env,
    )
