"""Shared experiment plumbing: entity specs and per-approach wiring.

Every evaluation scenario compares the same four approaches (Section 5.1):

* ``pq``  — plain physical queues (the baseline the paper criticizes),
* ``aq``  — Augmented Queues deployed at the bottleneck switch,
* ``prl`` — pre-determined rate limiters at end hosts (HTB-style),
* ``drl`` — dynamic rate limiters at end hosts (ElasticSwitch-style).

:func:`install_sharing` applies one approach to a built dumbbell/star
network for a set of entities and returns a :class:`SharingEnv` the
scenario uses to construct correctly-tagged flows.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

from ..cc.base import CongestionControl
from ..cc.registry import make_cc
from ..core.controller import AqController, AqGrant, AqRequest
from ..core.feedback import delay_policy, drop_policy, ecn_policy
from ..errors import ConfigurationError
from ..obs.telemetry import Telemetry
from ..ratelimit.dynamic import DynamicVmAllocator
from ..ratelimit.token_bucket import TokenBucketShaper
from ..units import MTU_BYTES, gbps, us

PQ = "pq"
AQ = "aq"
PRL = "prl"
DRL = "drl"
APPROACHES = (PQ, AQ, PRL, DRL)

#: The DCTCP marking threshold the paper's era uses at 10 Gbps: 65 packets.
ECN_THRESHOLD_PACKETS_AT_10G = 65
#: Physical queue depth used across experiments (packets).
QUEUE_LIMIT_PACKETS = 200
#: Swift's delay target, floored at 25 packet serialization times so the
#: algorithm has headroom at low allocated rates.
SWIFT_TARGET_FLOOR_PACKETS = 25


@dataclass
class EntitySpec:
    """One entity of an experiment (application / CC aggregate / VM group)."""

    name: str
    cc: str = "cubic"  # a registered CC name, or "udp"
    weight: float = 1.0
    num_vms: int = 1
    num_flows: int = 1
    udp_rate_bps: Optional[float] = None  # defaults to the bottleneck rate
    start_time: float = 0.0
    stop_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigurationError(f"entity {self.name}: weight must be positive")
        if self.num_vms < 1 or self.num_flows < 1:
            raise ConfigurationError(
                f"entity {self.name}: num_vms and num_flows must be >= 1"
            )

    @property
    def is_udp(self) -> bool:
        return self.cc.lower() == "udp"


@contextlib.contextmanager
def telemetry_session(
    jsonl_path: Optional[str] = None,
    profile: bool = False,
    ring_capacity: Optional[int] = None,
    summary: bool = False,
    flight_path: Optional[str] = None,
    audit: bool = False,
    flight_max: Optional[int] = None,
    timewin: bool = False,
    timewin_path: Optional[str] = None,
    timewin_window_s: Optional[float] = None,
) -> Iterator[Optional[Telemetry]]:
    """Ambiently instrument every simulator built inside the ``with`` body.

    Yields the active :class:`Telemetry` (or ``None`` when every option is
    off, so callers can wrap unconditionally::

        with telemetry_session(jsonl_path=args.telemetry) as tele:
            run_cc_pair(...)

    ``flight_path`` installs the INT flight recorder (streaming completed
    flights to that JSONL file; ``flight_max`` bounds it to a most-recent
    ring); ``audit`` attaches a conservation-law
    :class:`~repro.obs.RunAuditor` — read its verdict off
    ``tele.auditor``; ``timewin``/``timewin_path`` install the
    fixed-memory time-window recorder (dumping retained windows to
    ``timewin_path`` on exit), with ``timewin_window_s`` overriding the
    1 ms window. Sinks are flushed/closed on exit.
    """
    want_timewin = timewin or timewin_path is not None
    if (
        jsonl_path is None and not profile and ring_capacity is None
        and not summary and flight_path is None and not audit
        and not want_timewin
    ):
        yield None
        return
    tele = Telemetry(enabled=True, profile=profile)
    if jsonl_path is not None:
        tele.add_jsonl(jsonl_path)
    if ring_capacity is not None:
        tele.add_ring(ring_capacity)
    if summary:
        tele.add_summary()
    if flight_path is not None:
        tele.enable_flight_recording(flight_path, max_flights=flight_max)
    if audit:
        tele.enable_audit()
    if want_timewin:
        tele.enable_time_windows(window_s=timewin_window_s)
    try:
        with tele.activate():
            yield tele
    finally:
        tele.close()
        if timewin_path is not None and tele.timewin is not None:
            tele.timewin.dump_jsonl(timewin_path)


def telemetry_from_env() -> "contextlib.AbstractContextManager[Optional[Telemetry]]":
    """:func:`telemetry_session` configured from the environment — the hook
    benchmarks use so ``REPRO_TELEMETRY=out.jsonl pytest benchmarks/...``
    instruments a run without touching benchmark code. Recognized:
    ``REPRO_TELEMETRY`` (JSONL path), ``REPRO_PROFILE`` (any non-empty
    value attaches the profiler). Example::

        REPRO_PROFILE=1 python -m pytest benchmarks/bench_fig09_udp_tcp.py \\
            --benchmark-only   # hotspots print via the attached profiler
    """
    return telemetry_session(
        jsonl_path=os.environ.get("REPRO_TELEMETRY") or None,
        profile=bool(os.environ.get("REPRO_PROFILE")),
    )


def ecn_threshold_bytes(rate_bps: float) -> int:
    """Marking threshold proportional to the (line or allocated) rate,
    preserving the ~queueing-delay target of 65 packets at 10 Gbps."""
    scaled = ECN_THRESHOLD_PACKETS_AT_10G * MTU_BYTES * rate_bps / gbps(10)
    return max(int(scaled), 8 * MTU_BYTES)


def swift_target_delay(rate_bps: float) -> float:
    """Swift's target fabric delay, floored for low rates."""
    return max(us(50), SWIFT_TARGET_FLOOR_PACKETS * MTU_BYTES * 8.0 / rate_bps)


def queue_limit_bytes() -> int:
    return QUEUE_LIMIT_PACKETS * MTU_BYTES


class SharingEnv:
    """The result of wiring one approach onto a network for some entities."""

    def __init__(
        self,
        approach: str,
        entities: Sequence[EntitySpec],
        bottleneck_bps: float,
    ) -> None:
        self.approach = approach
        self.entities = {spec.name: spec for spec in entities}
        self.bottleneck_bps = bottleneck_bps
        total_weight = sum(spec.weight for spec in entities)
        #: The weighted fair share each entity is entitled to.
        self.share_bps: Dict[str, float] = {
            spec.name: bottleneck_bps * spec.weight / total_weight
            for spec in entities
        }
        self.controller: Optional[AqController] = None
        self.grants: Dict[str, AqGrant] = {}
        self.allocators: List[DynamicVmAllocator] = []
        self.shapers: List[TokenBucketShaper] = []

    # -- what flows need to know -------------------------------------------------

    def aq_ingress_id(self, entity: str) -> int:
        grant = self.grants.get(entity)
        return grant.aq_id if grant is not None else 0

    def make_cc(self, entity: str) -> CongestionControl:
        """A fresh, correctly-configured CC instance for one flow."""
        spec = self.entities[entity]
        if spec.is_udp:
            raise ConfigurationError(f"entity {entity} is UDP; it has no CC")
        name = spec.cc.lower()
        if name in ("swift", "timely"):
            rate = (
                self.share_bps[entity] if self.approach == AQ else self.bottleneck_bps
            )
            target = swift_target_delay(rate)
            if name == "swift":
                return make_cc(
                    "swift",
                    target_delay=target,
                    use_virtual_delay=(self.approach == AQ),
                )
            return make_cc(
                "timely",
                t_low=target,
                t_high=10 * target,
                use_virtual_delay=(self.approach == AQ),
            )
        return make_cc(name)


def pq_queue_ecn_threshold(
    approach: str, entities: Sequence[EntitySpec], bottleneck_bps: float
) -> Optional[int]:
    """Physical-queue ECN threshold for topology construction.

    Under AQ the physical queue must *not* mark (the AQ generates each
    entity's ECN feedback from its own A-Gap); under the other approaches
    the queue marks whenever any entity runs an ECN-based CC.
    """
    if approach == AQ:
        return None
    if any(not spec.is_udp and spec.cc.lower() == "dctcp" for spec in entities):
        return ecn_threshold_bytes(bottleneck_bps)
    return None


def install_sharing(
    network,
    bottleneck_switch: str,
    bottleneck_bps: float,
    entities: Sequence[EntitySpec],
    approach: str,
    src_hosts: Dict[str, List[str]],
    dst_hosts: Dict[str, List[str]],
    aq_limit_bytes: Optional[float] = None,
    enable_reallocation: bool = False,
    reallocation_interval: float = 10e-3,
) -> SharingEnv:
    """Apply one approach to a built network.

    ``src_hosts``/``dst_hosts`` map each entity to the hosts it sends from
    and to; PRL/DRL install per-host shapers, AQ installs weighted AQs at
    the bottleneck switch's ingress pipeline.
    """
    if approach not in APPROACHES:
        raise ConfigurationError(
            f"approach must be one of {APPROACHES}, got {approach!r}"
        )
    env = SharingEnv(approach, entities, bottleneck_bps)
    if approach == PQ:
        return env

    if approach == AQ:
        controller = AqController(network)
        controller.register_resource("bottleneck", bottleneck_bps)
        env.controller = controller
        limit = aq_limit_bytes if aq_limit_bytes is not None else queue_limit_bytes()
        for spec in entities:
            policy = drop_policy()
            if not spec.is_udp:
                cc_name = spec.cc.lower()
                if cc_name == "dctcp":
                    policy = ecn_policy(
                        ecn_threshold_bytes(env.share_bps[spec.name])
                    )
                elif cc_name == "swift":
                    policy = delay_policy()
            grant = controller.request(
                AqRequest(
                    entity=spec.name,
                    switch=bottleneck_switch,
                    position="ingress",
                    weight=spec.weight,
                    share_group="bottleneck",
                    policy=policy,
                    limit_bytes=limit,
                )
            )
            env.grants[spec.name] = grant
        if enable_reallocation:
            controller.enable_weighted_reallocation(
                "bottleneck", interval=reallocation_interval
            )
        return env

    if approach == PRL:
        for spec in entities:
            hosts = src_hosts[spec.name]
            per_vm = env.share_bps[spec.name] / len(hosts)
            for host_name in hosts:
                host = network.hosts[host_name]
                shaper = TokenBucketShaper(
                    network.sim, per_vm, host.forward_to_nic
                )
                host.install_shaper(shaper)
                env.shapers.append(shaper)
        return env

    # DRL: per-VM limiters re-partitioned across each entity's VMs by
    # measured demand every 15 ms (the ElasticSwitch-style adjustment lag).
    env.allocators = []
    for spec in entities:
        env.allocators.append(
            DynamicVmAllocator(
                network, env.share_bps[spec.name], list(src_hosts[spec.name])
            )
        )
    return env
