"""Plain-text table/series rendering for benchmark output.

Benchmarks print the same rows and series the paper's tables and figures
report; these helpers keep the formatting consistent and legible in a
terminal (and in ``bench_output.txt``).
"""

from __future__ import annotations

from typing import List, Sequence

from ..units import format_rate


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Monospace table with column widths fitted to content."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    def line(cells: Sequence[str]) -> str:
        return " | ".join(str(c).ljust(widths[i]) for i, c in enumerate(cells))
    sep = "-+-".join("-" * w for w in widths)
    out: List[str] = [line(headers), sep]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def rate_range_str(range_bps) -> str:
    """Format a (low, high) rate range like Table 3: '4.9Gbps ~ 5.2Gbps'."""
    low, high = range_bps
    return f"{format_rate(low)} ~ {format_rate(high)}"


def banner(title: str) -> str:
    bar = "=" * max(len(title), 8)
    return f"\n{bar}\n{title}\n{bar}"


def print_experiment(title: str, body: str) -> None:
    """Print one experiment block (used by every benchmark)."""
    print(banner(title))
    print(body)
