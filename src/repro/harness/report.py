"""Plain-text table/series rendering for benchmark output.

Benchmarks print the same rows and series the paper's tables and figures
report; these helpers keep the formatting consistent and legible in a
terminal (and in ``bench_output.txt``). The telemetry helpers at the
bottom render/write machine-readable metrics snapshots next to the text
tables.
"""

from __future__ import annotations

import json
from typing import List, Optional, Sequence

from ..units import format_rate


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Monospace table with column widths fitted to content."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    def line(cells: Sequence[str]) -> str:
        return " | ".join(str(c).ljust(widths[i]) for i, c in enumerate(cells))
    sep = "-+-".join("-" * w for w in widths)
    out: List[str] = [line(headers), sep]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def rate_range_str(range_bps) -> str:
    """Format a (low, high) rate range like Table 3: '4.9Gbps ~ 5.2Gbps'."""
    low, high = range_bps
    return f"{format_rate(low)} ~ {format_rate(high)}"


def banner(title: str) -> str:
    bar = "=" * max(len(title), 8)
    return f"\n{bar}\n{title}\n{bar}"


def print_experiment(title: str, body: str) -> None:
    """Print one experiment block (used by every benchmark)."""
    print(banner(title))
    print(body)


# -- telemetry output ----------------------------------------------------------


def write_metrics_snapshot(telemetry, path: str) -> dict:
    """Dump the registry (collectors included) as JSON; returns the dict."""
    snapshot = telemetry.metrics.snapshot()
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return snapshot


def render_metrics_summary(snapshot: dict, max_rows: Optional[int] = 40) -> str:
    """Human-readable table of a metrics snapshot's counters and gauges."""
    rows: List[List[str]] = []
    for kind in ("counters", "gauges"):
        for entry in snapshot.get(kind, []):
            labels = ",".join(f"{k}={v}" for k, v in sorted(entry["labels"].items()))
            value = entry["value"]
            text = f"{value:g}" if isinstance(value, float) else str(value)
            rows.append([entry["name"], labels, text])
    rows.sort(key=lambda r: (r[0], r[1]))
    total = len(rows)
    if max_rows is not None and total > max_rows:
        rows = rows[:max_rows]
    table = render_table(["metric", "labels", "value"], rows)
    if max_rows is not None and total > max_rows:
        table += f"\n... ({total - max_rows} more series)"
    histograms = snapshot.get("histograms", [])
    if histograms:
        hrows = []
        for entry in histograms:
            labels = ",".join(f"{k}={v}" for k, v in sorted(entry["labels"].items()))
            s = entry["value"]
            if s.get("count"):
                stat = (
                    f"n={s['count']} mean={s['mean']:.3g} "
                    f"p50={s['p50']:.3g} p99={s['p99']:.3g}"
                )
            else:
                stat = "n=0"
            hrows.append([entry["name"], labels, stat])
        table += "\n" + render_table(["histogram", "labels", "summary"], hrows)
    return table
