"""The ``share-fabric`` scenario: one fat-tree, shared by many flows,
shardable across workers.

This module is the glue between three layers:

* :mod:`repro.topology.fattree` — builds one partition of the fabric
  (or all of it) against a :class:`~repro.sim.shard.ShardRuntime`
  boundary context;
* :mod:`repro.sim.shard` — lockstep drivers (in-process and spawn);
* the CLI / job families — which only deal in the JSON-safe dicts
  produced here.

The traffic matrix is enumerated **globally and deterministically**
(:func:`fabric_flows`): every partition iterates the same list in the
same order and instantiates only the endpoints it owns. Flow ids come
from the enumeration index — never from a per-partition allocator — so
ids, ECMP core choices (``flow_id % num_cores``), and RNG stream names
are all independent of the shard count. That property is what makes
``--shards 1`` and ``--shards k`` digest-identical (the ``shard/equiv/*``
jobs assert it).

Two flow kinds per the ISSUE's edge cases:

* *intra-ToR* — ``h{p}-{i}-{j} -> h{p}-{i}-{j+1}``: never crosses a cut;
* *cross-pod* — ``h{p}-{i}-0 -> h{p+1}-{i}-0``: crosses **two** cuts
  (agg->core, then core->agg), exercising re-export of imported packets.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..faults.plan import FaultPlan
from ..sim.shard import ShardRuntime, run_lockstep, run_sharded
from ..topology.fattree import FatTree, FatTreeConfig, FatTreePlan, build_fattree
from ..transport.udp import UdpSender, UdpSink
from ..units import MTU_BYTES, gbps

#: The worker target handed to :func:`repro.sim.shard.run_sharded`.
BUILDER_TARGET = "repro.harness.fabric:build_fabric_partition"


def fabric_config(
    pods: int = 4,
    tors_per_pod: int = 2,
    hosts_per_tor: int = 2,
    num_cores: int = 2,
    seed: int = 1,
) -> FatTreeConfig:
    """The scenario's topology knobs (a JSON-safe subset of
    :class:`FatTreeConfig`; line rates stay at their defaults)."""
    return FatTreeConfig(
        pods=pods,
        tors_per_pod=tors_per_pod,
        hosts_per_tor=hosts_per_tor,
        num_cores=num_cores,
        seed=seed,
    )


def fabric_flows(
    config: FatTreeConfig,
    intra_gbps: float = 2.0,
    cross_gbps: float = 3.0,
    packet_size: int = MTU_BYTES,
) -> List[dict]:
    """The global traffic matrix, in canonical order with canonical ids.

    Intra-ToR flows first (every host to the next host under its ToR,
    wrapping), then cross-pod flows (the ``j == 0`` host of every ToR to
    its counterpart in the next pod, wrapping). Ids are ``1..N`` in this
    order.
    """
    flows: List[dict] = []

    def add(src: str, dst: str, rate: float) -> None:
        flows.append({
            "flow_id": len(flows) + 1,
            "src": src,
            "dst": dst,
            "rate_bps": rate,
            "packet_size": packet_size,
        })

    if config.hosts_per_tor > 1 and intra_gbps > 0:
        for p in range(config.pods):
            for i in range(config.tors_per_pod):
                for j in range(config.hosts_per_tor):
                    add(
                        config.host_name(p, i, j),
                        config.host_name(p, i, (j + 1) % config.hosts_per_tor),
                        gbps(intra_gbps),
                    )
    if config.pods > 1 and cross_gbps > 0:
        for p in range(config.pods):
            for i in range(config.tors_per_pod):
                add(
                    config.host_name(p, i, 0),
                    config.host_name((p + 1) % config.pods, i, 0),
                    gbps(cross_gbps),
                )
    return flows


def build_fabric_partition(
    partition: int,
    shards: int,
    pods: int = 4,
    tors_per_pod: int = 2,
    hosts_per_tor: int = 2,
    num_cores: int = 2,
    seed: int = 1,
    intra_gbps: float = 2.0,
    cross_gbps: float = 3.0,
    packet_size: int = MTU_BYTES,
) -> Tuple[ShardRuntime, Callable[[], dict]]:
    """Build one partition of the scenario. Worker-target signature:
    every argument is JSON-safe, and the return is ``(runtime,
    finalize)`` where ``finalize()`` yields this partition's slice of the
    results (all slices are disjoint; see :func:`merge_results`).

    Ambient context (telemetry, fault plan) must be activated by the
    caller *around* this call — the runner worker and
    :func:`run_share_fabric` both do.
    """
    config = fabric_config(pods, tors_per_pod, hosts_per_tor, num_cores, seed)
    plan = FatTreePlan(config, shards)
    runtime = ShardRuntime(partition, plan)
    tree = build_fattree(config, boundary=runtime)
    net = tree.network
    runtime.attach_network(net)

    sinks: Dict[int, UdpSink] = {}
    senders: Dict[int, UdpSender] = {}
    for flow in fabric_flows(config, intra_gbps, cross_gbps, packet_size):
        # Sink before sender, mirroring UdpFlow construction order.
        if tree.owns(flow["dst"]):
            sinks[flow["flow_id"]] = UdpSink(
                net.hosts[flow["dst"]], flow["flow_id"]
            )
        if tree.owns(flow["src"]):
            senders[flow["flow_id"]] = UdpSender(
                net.sim,
                net.hosts[flow["src"]],
                flow["dst"],
                flow["flow_id"],
                flow["rate_bps"],
                packet_size=flow["packet_size"],
            )

    def finalize() -> dict:
        return {
            "delivered_bytes": {
                str(fid): sink.delivered_bytes for fid, sink in sinks.items()
            },
            "delivered_packets": {
                str(fid): sink.delivered_packets for fid, sink in sinks.items()
            },
            "sent_bytes": {
                str(fid): s.bytes_sent for fid, s in senders.items()
            },
            "switches": {
                name: [
                    sw.stats.forwarded_packets,
                    sw.stats.ingress_dropped_packets,
                    sw.stats.queue_dropped_packets,
                ]
                for name, sw in net.switches.items()
            },
            "cut_links": {
                cut.name: net.links[cut.name].stats.delivered_packets
                for cut in plan.cut_links()
                if cut.src_partition == partition
            },
            "events": net.sim.events_processed,
        }

    return runtime, finalize


def merge_results(slices: List[dict]) -> dict:
    """Union the disjoint per-partition result slices into the fabric-
    wide result. Event counts add; every other key must be disjoint."""
    merged: dict = {
        "delivered_bytes": {},
        "delivered_packets": {},
        "sent_bytes": {},
        "switches": {},
        "cut_links": {},
        "events": 0,
    }
    for part in slices:
        for key in ("delivered_bytes", "delivered_packets", "sent_bytes",
                    "switches", "cut_links"):
            overlap = merged[key].keys() & part[key].keys()
            if overlap:
                raise ConfigurationError(
                    f"partition result slices overlap on {key}: {sorted(overlap)}"
                )
            merged[key].update(part[key])
        merged["events"] += part["events"]
    for key in ("delivered_bytes", "delivered_packets", "sent_bytes",
                "switches", "cut_links"):
        merged[key] = dict(sorted(merged[key].items()))
    return merged


def fabric_digest(merged: dict) -> str:
    """Canonical hash of a merged result — the equivalence currency of
    the ``shard/equiv/*`` jobs: identical across shard counts."""
    blob = json.dumps(merged, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def filter_fault_plan(
    plan_dict: dict, plan: FatTreePlan, partition: int
) -> dict:
    """Restrict a fault plan to the events whose target lives in
    ``partition`` (targets with no node, e.g. controller partitions, go
    to partition 0). Filtering preserves order, and the union over all
    partitions is exactly the original plan — so per-partition injectors
    reproduce the single-process schedule."""
    full = FaultPlan.from_dict(plan_dict)
    kept = [
        event
        for event in full.events
        if (plan.owner_of_target(event.target) if event.target is not None else 0)
        == partition
    ]
    return FaultPlan(seed=full.seed, events=kept).to_dict()


def partition_plan_summary(plan: FatTreePlan) -> dict:
    """JSON-safe description of a partition plan for the run manifest."""
    return {
        "shards": plan.shards,
        "lookahead": plan.lookahead,
        "cut_links": [
            {
                "link_id": cut.link_id,
                "src": cut.src,
                "dst": cut.dst,
                "src_partition": cut.src_partition,
                "dst_partition": cut.dst_partition,
            }
            for cut in plan.cut_links()
        ],
    }


def run_share_fabric(
    shards: int,
    duration: float,
    inline: bool = False,
    audit: bool = False,
    timewin_dir: Optional[str] = None,
    timewin_params: Optional[dict] = None,
    fault_plan: Optional[dict] = None,
    run_dir: Optional[str] = None,
    timewin: Optional[bool] = None,
    timewin_budget: Optional[int] = None,
    flight_dir: Optional[str] = None,
    heartbeat: Optional[bool] = None,
    on_heartbeat: Optional[Callable[[dict], None]] = None,
    **config_kwargs,
) -> dict:
    """Run the scenario at ``shards`` partitions and return the merged,
    digestable report.

    ``inline=True`` drives every partition in this process via
    :func:`~repro.sim.shard.run_lockstep` — required inside daemonic
    harness workers (which may not spawn children) and used by the
    equivalence tests; ``inline=False`` spawns one worker process per
    partition via :func:`~repro.sim.shard.run_sharded`. Both produce
    identical digests by construction.

    The observability plane hangs off ``run_dir``: when set, the run
    writes a ledgered directory (:class:`repro.obs.runledger.RunLedger`)
    with a ``fabric-run/1`` manifest, a live ``health.jsonl`` heartbeat
    timeline, the merged ``metrics.json``, and auto-stitched window (and
    flight) dumps. Time windows are then **on by default** (ROADMAP item
    3) under ``timewin_budget`` bytes per port; pass ``timewin=False``
    to opt out. Every layer is digest-neutral: the report's ``digest``
    is identical with the plane fully on or fully off, at any shard
    count (the ``shard/obs/*`` jobs assert this).
    """
    import os

    from ..obs.runledger import RunLedger

    ledger = RunLedger(run_dir) if run_dir is not None else None

    if timewin is None:
        timewin = timewin_dir is not None or ledger is not None
    if timewin and timewin_dir is None:
        if ledger is None:
            raise ConfigurationError(
                "timewin=True needs a timewin_dir or run_dir to dump into"
            )
        timewin_dir = ledger.path("windows")
    if not timewin:
        timewin_dir = None
    params = dict(timewin_params or {})
    if timewin_budget is not None:
        from ..obs.timewin import params_for_budget

        solved = params_for_budget(timewin_budget, window_s=params.get("window_s"))
        solved.update(params)  # explicit params override the solver
        params = solved
    timewin_params = params or None
    if heartbeat is None:
        heartbeat = ledger is not None

    health_sink = ledger.health_writer() if ledger and heartbeat else None
    frames: List[dict] = []

    def handle_frame(frame: dict) -> None:
        frames.append(frame)
        if health_sink is not None:
            health_sink(frame)
        if on_heartbeat is not None:
            on_heartbeat(frame)

    config = fabric_config(**{
        k: config_kwargs[k]
        for k in ("pods", "tors_per_pod", "hosts_per_tor", "num_cores", "seed")
        if k in config_kwargs
    })
    plan = FatTreePlan(config, shards)
    fault_slices: Optional[List[Optional[dict]]] = None
    if fault_plan is not None:
        fault_slices = [
            filter_fault_plan(fault_plan, plan, i) for i in range(shards)
        ]

    report: dict = {
        "scenario": "share-fabric",
        "shards": shards,
        "duration": duration,
        "lookahead": plan.lookahead,
        "mode": "inline" if inline else "spawn",
    }
    manifest: dict = {}
    if ledger is not None:
        manifest = {
            "scenario": "share-fabric",
            "created_unix": time.time(),
            "shards": shards,
            "duration": duration,
            "mode": report["mode"],
            "config": dict(config_kwargs),
            "partition_plan": partition_plan_summary(plan),
            "observability": {
                "audit": audit,
                "heartbeat": heartbeat,
                "timewin": timewin_dir is not None,
                "timewin_params": timewin_params,
                "timewin_budget_bytes": timewin_budget,
                "flights": flight_dir is not None,
            },
        }
        ledger.begin(manifest)
        report["run_dir"] = ledger.run_dir

    t0 = time.perf_counter()
    try:
        if inline:
            import contextlib

            from ..faults.injector import activate_fault_plan
            from ..obs.telemetry import Telemetry
            from ..sim.shard import HeartbeatTracker

            if flight_dir is not None:
                os.makedirs(flight_dir, exist_ok=True)
            runtimes: List[ShardRuntime] = []
            finalizers: List[Callable[[], dict]] = []
            teles: List[Optional[Telemetry]] = []
            for i in range(shards):
                telemetry = None
                if audit or timewin_dir is not None or flight_dir is not None:
                    telemetry = Telemetry(enabled=True)
                    if audit:
                        telemetry.enable_audit()
                    if timewin_dir is not None:
                        telemetry.enable_time_windows(**(timewin_params or {}))
                    if flight_dir is not None:
                        telemetry.enable_flight_recording(
                            os.path.join(flight_dir, f"shard{i}.flights.jsonl")
                        )
                with contextlib.ExitStack() as stack:
                    if telemetry is not None:
                        stack.enter_context(telemetry.activate())
                    if fault_slices is not None:
                        stack.enter_context(
                            activate_fault_plan(FaultPlan.from_dict(fault_slices[i]))
                        )
                    runtime, finalize = build_fabric_partition(
                        partition=i, shards=shards, **config_kwargs
                    )
                runtimes.append(runtime)
                finalizers.append(finalize)
                teles.append(telemetry)
            on_epoch = None
            if heartbeat:
                trackers = [HeartbeatTracker(i) for i in range(shards)]

                def on_epoch(epoch: int, barrier: float) -> None:
                    for i, rt in enumerate(runtimes):
                        handle_frame(trackers[i].frame(rt, epoch, barrier))

            epochs = run_lockstep(runtimes, duration, on_epoch=on_epoch)
            slices = [finalize() for finalize in finalizers]
            workers = []
            for i, telemetry in enumerate(teles):
                worker: dict = {"partition": i, "status": "ok", "result": slices[i]}
                worker["exported_packets"] = runtimes[i].exported_packets
                worker["imported_packets"] = runtimes[i].imported_packets
                worker["events"] = runtimes[i].sim.events_processed
                if telemetry is not None:
                    telemetry.close()
                    if telemetry.timewin is not None and timewin_dir is not None:
                        path = os.path.join(
                            timewin_dir, f"shard{i}.windows.jsonl"
                        )
                        os.makedirs(timewin_dir, exist_ok=True)
                        telemetry.timewin.dump_jsonl(path)
                        worker["timewin_path"] = path
                        worker["timewin"] = telemetry.timewin.stats()
                    if telemetry.flightrec is not None and flight_dir is not None:
                        index = telemetry.flightrec.index
                        worker["flight_path"] = os.path.join(
                            flight_dir, f"shard{i}.flights.jsonl"
                        )
                        worker["flights"] = {
                            "total": index.total,
                            "delivered": index.delivered,
                            "dropped": index.dropped,
                            "unfinished": index.unfinished,
                            "exported": index.exported,
                        }
                    if telemetry.auditor is not None:
                        verdict = telemetry.auditor.report()
                        worker["audit"] = {
                            "events_seen": verdict["events_seen"],
                            "violation_count": verdict["violation_count"],
                            "violations": verdict["violations"][:20],
                        }
                    worker["metrics"] = telemetry.metrics.snapshot()
                workers.append(worker)
            report["epochs"] = epochs
        else:
            run = run_sharded(
                BUILDER_TARGET,
                config_kwargs,
                shards,
                duration,
                plan.lookahead,
                audit=audit,
                timewin_dir=timewin_dir,
                timewin_params=timewin_params,
                fault_plans=fault_slices,
                heartbeat=heartbeat,
                flight_dir=flight_dir,
                on_heartbeat=handle_frame,
            )
            workers = run.workers
            for i, worker in enumerate(workers):
                if timewin_dir is not None:
                    worker.setdefault(
                        "timewin_path",
                        os.path.join(timewin_dir, f"shard{i}.windows.jsonl"),
                    )
            report["epochs"] = run.epochs
            slices = run.results()
    except BaseException:
        if ledger is not None:
            ledger.finalize(manifest, status="failed")
        raise

    report["wall_s"] = time.perf_counter() - t0
    merged = merge_results(slices)
    report["results"] = merged
    report["digest"] = fabric_digest(merged)
    report["boundary"] = {
        "exported": sum(w.get("exported_packets", 0) for w in workers),
        "imported": sum(w.get("imported_packets", 0) for w in workers),
    }
    if audit:
        report["audit"] = {
            "violation_count": sum(
                w.get("audit", {}).get("violation_count", 0) for w in workers
            ),
            "events_seen": sum(
                w.get("audit", {}).get("events_seen", 0) for w in workers
            ),
            "per_partition": [w.get("audit") for w in workers],
        }
    if timewin_dir is not None:
        report["timewin_paths"] = [
            w.get("timewin_path") for w in workers if w.get("timewin_path")
        ]
    if flight_dir is not None:
        report["flight_paths"] = [
            w.get("flight_path") for w in workers if w.get("flight_path")
        ]
    if heartbeat:
        report["heartbeat_frames"] = len(frames)

    if ledger is not None:
        from ..obs.metrics import merge_metrics_snapshots
        from ..obs.timewin import stitch_window_dumps

        artifacts: dict = {"report": "report.json"}
        if health_sink is not None:
            ledger.close_health()
            artifacts["health"] = "health.jsonl"
        snapshots = [w["metrics"] for w in workers if w.get("metrics")]
        merged_metrics = merge_metrics_snapshots(snapshots)
        ledger.write_json("metrics.json", merged_metrics)
        artifacts["metrics"] = "metrics.json"
        if report.get("timewin_paths"):
            stitched = stitch_window_dumps(
                report["timewin_paths"],
                out_path=ledger.path("windows.stitched.jsonl"),
            )
            artifacts["windows"] = [
                ledger.relpath(p) for p in report["timewin_paths"]
            ]
            artifacts["windows_stitched"] = "windows.stitched.jsonl"
            report["timewin_merged_path"] = ledger.path("windows.stitched.jsonl")
            report["timewin_ports"] = len(stitched.ports())
        if report.get("flight_paths"):
            from ..obs.flightrec import stitch_flight_dumps

            stitched_flights = stitch_flight_dumps(
                report["flight_paths"],
                out_path=ledger.path("flights.stitched.jsonl"),
            )
            artifacts["flights"] = [
                ledger.relpath(p) for p in report["flight_paths"]
            ]
            artifacts["flights_stitched"] = "flights.stitched.jsonl"
            report["flights_stitched_path"] = ledger.path("flights.stitched.jsonl")
            report["flights_stitched"] = len(stitched_flights)
        ledger.write_json("report.json", report)
        manifest["artifacts"] = artifacts
        manifest["digests"] = {"fabric_digest": report["digest"]}
        manifest["epochs"] = report["epochs"]
        manifest["wall_s"] = report["wall_s"]
        manifest["boundary"] = report["boundary"]
        manifest["lookahead"] = report["lookahead"]
        if audit:
            manifest["audit"] = {
                "violation_count": report["audit"]["violation_count"],
                "events_seen": report["audit"]["events_seen"],
            }
        manifest["workers"] = [
            {
                key: worker.get(key)
                for key in (
                    "partition", "status", "wall_s", "events",
                    "exported_packets", "imported_packets", "audit",
                    "timewin", "flights",
                )
                if worker.get(key) is not None
            }
            for worker in workers
        ]
        manifest["heartbeat_frames"] = len(frames)
        report["manifest_path"] = ledger.finalize(manifest)
    return report
