"""The ``share-fabric`` scenario: one fat-tree, shared by many flows,
shardable across workers.

This module is the glue between three layers:

* :mod:`repro.topology.fattree` — builds one partition of the fabric
  (or all of it) against a :class:`~repro.sim.shard.ShardRuntime`
  boundary context;
* :mod:`repro.sim.shard` — lockstep drivers (in-process and spawn);
* the CLI / job families — which only deal in the JSON-safe dicts
  produced here.

The traffic matrix is enumerated **globally and deterministically**
(:func:`fabric_flows`): every partition iterates the same list in the
same order and instantiates only the endpoints it owns. Flow ids come
from the enumeration index — never from a per-partition allocator — so
ids, ECMP core choices (``flow_id % num_cores``), and RNG stream names
are all independent of the shard count. That property is what makes
``--shards 1`` and ``--shards k`` digest-identical (the ``shard/equiv/*``
jobs assert it).

Two flow kinds per the ISSUE's edge cases:

* *intra-ToR* — ``h{p}-{i}-{j} -> h{p}-{i}-{j+1}``: never crosses a cut;
* *cross-pod* — ``h{p}-{i}-0 -> h{p+1}-{i}-0``: crosses **two** cuts
  (agg->core, then core->agg), exercising re-export of imported packets.
"""

from __future__ import annotations

import hashlib
import json
import random
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..faults.plan import FaultPlan
from ..sim.shard import ShardRuntime, run_lockstep, run_sharded
from ..topology.fattree import FatTree, FatTreeConfig, FatTreePlan, build_fattree
from ..transport.udp import UdpSender, UdpSink
from ..units import MTU_BYTES, gbps

#: The worker target handed to :func:`repro.sim.shard.run_sharded`.
BUILDER_TARGET = "repro.harness.fabric:build_fabric_partition"


def fabric_config(
    pods: int = 4,
    tors_per_pod: int = 2,
    hosts_per_tor: int = 2,
    num_cores: int = 2,
    seed: int = 1,
) -> FatTreeConfig:
    """The scenario's topology knobs (a JSON-safe subset of
    :class:`FatTreeConfig`; line rates stay at their defaults)."""
    return FatTreeConfig(
        pods=pods,
        tors_per_pod=tors_per_pod,
        hosts_per_tor=hosts_per_tor,
        num_cores=num_cores,
        seed=seed,
    )


def fabric_flows(
    config: FatTreeConfig,
    intra_gbps: float = 2.0,
    cross_gbps: float = 3.0,
    packet_size: int = MTU_BYTES,
) -> List[dict]:
    """The global traffic matrix, in canonical order with canonical ids.

    Intra-ToR flows first (every host to the next host under its ToR,
    wrapping), then cross-pod flows (the ``j == 0`` host of every ToR to
    its counterpart in the next pod, wrapping). Ids are ``1..N`` in this
    order.
    """
    flows: List[dict] = []

    def add(src: str, dst: str, rate: float) -> None:
        flows.append({
            "flow_id": len(flows) + 1,
            "src": src,
            "dst": dst,
            "rate_bps": rate,
            "packet_size": packet_size,
        })

    if config.hosts_per_tor > 1 and intra_gbps > 0:
        for p in range(config.pods):
            for i in range(config.tors_per_pod):
                for j in range(config.hosts_per_tor):
                    add(
                        config.host_name(p, i, j),
                        config.host_name(p, i, (j + 1) % config.hosts_per_tor),
                        gbps(intra_gbps),
                    )
    if config.pods > 1 and cross_gbps > 0:
        for p in range(config.pods):
            for i in range(config.tors_per_pod):
                add(
                    config.host_name(p, i, 0),
                    config.host_name((p + 1) % config.pods, i, 0),
                    gbps(cross_gbps),
                )
    return flows


#: Cached web-search mean flow size (the distribution estimates it by a
#: fixed-seed Monte Carlo run, so every partition computes the same value;
#: caching just avoids re-sampling per partition build).
_WEBSEARCH_MEAN: Optional[float] = None

#: ECN marking threshold for per-tenant AQ slices (A-Gap bytes).
MIXED_ECN_THRESHOLD_BYTES = 20 * MTU_BYTES
#: A-Gap limit for per-tenant AQ slices (the virtual buffer).
MIXED_AQ_LIMIT_BYTES = 100 * MTU_BYTES


def _tenant_rng(seed: int, tenant: int) -> random.Random:
    """Named-stream RNG for one tenant's arrival process: derived from the
    scenario seed by hashing, never from construction order, so the flow
    list is identical at any shard count."""
    digest = hashlib.sha256(f"{seed}/mixed/tenant{tenant}".encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def fabric_mixed_spec(
    config: FatTreeConfig,
    arrival_s: float,
    load: float = 0.25,
    churn: bool = False,
    num_tenants: int = 3,
    udp_gbps: float = 4.0,
    aq_share: float = 0.5,
    packet_size: int = MTU_BYTES,
) -> dict:
    """The mixed-traffic scenario spec: tenants, AQ slices, TCP arrivals,
    the UDP aggressor, and the churn schedule — all enumerated globally
    and deterministically (the same determinism contract as
    :func:`fabric_flows`, extended to flow *lifecycle*).

    * Hosts round-robin across ``num_tenants`` tenants by global host
      index, so every tenant owns hosts in several pods (cross-pod TCP
      with ACKs crossing the shard cuts in both directions).
    * Each (ToR, tenant-with-a-host-under-it) pair gets one ingress AQ
      slice deployed on the ToR; data packets are tagged with their
      source ToR's slice id, ACKs stay untagged. Slice rates split
      ``aq_share`` of the ToR uplink evenly among the tenants present.
    * Tenant 0 doubles as the aggressor: a cross-pod CBR UDP flow per
      tenant-0 host at ``udp_gbps``, AQ-tagged like its TCP traffic.
    * Every tenant gets open-loop Poisson/web-search TCP arrivals at
      ``load`` of its aggregate host capacity over ``[0, arrival_s)``.
    * ``churn=True`` makes the last tenant leave at ``0.4 * arrival_s``
      (arrivals stop, AQ grants withdrawn, survivors' slices rebalanced
      up) and rejoin at ``0.7 * arrival_s`` (grants redeployed, rates
      rebalanced back down).

    Flow ids: UDP flows first (``1..U`` in host order), then TCP flows in
    canonical ``(start_time, tenant, src, dst, size)`` order — never from
    a per-partition allocator.
    """
    global _WEBSEARCH_MEAN
    from ..workloads.generator import EntityWorkload

    if num_tenants < 1:
        raise ConfigurationError(f"num_tenants must be >= 1, got {num_tenants}")
    if not 0 < load:
        raise ConfigurationError(f"load must be positive, got {load}")
    if arrival_s <= 0:
        raise ConfigurationError(f"arrival_s must be positive, got {arrival_s}")

    hosts = config.host_names()
    tenant_hosts: Dict[int, List[str]] = {t: [] for t in range(num_tenants)}
    tor_of: Dict[str, int] = {}
    index = 0
    for p in range(config.pods):
        for i in range(config.tors_per_pod):
            tor_index = p * config.tors_per_pod + i
            for j in range(config.hosts_per_tor):
                host = config.host_name(p, i, j)
                tenant_hosts[index % num_tenants].append(host)
                tor_of[host] = tor_index
                index += 1
    for t, members in tenant_hosts.items():
        if len(members) < 2:
            raise ConfigurationError(
                f"tenant {t} has {len(members)} host(s); the mixed workload "
                f"needs >= 2 per tenant (shrink num_tenants or grow the fabric)"
            )

    # AQ slices: one per (ToR, tenant present under it), ids from the
    # global (tor_index, tenant) enumeration so they are topology-pure.
    tenant_of_host = {
        h: t for t, members in tenant_hosts.items() for h in members
    }
    tor_tenants: Dict[int, List[int]] = {}
    for host, tor_index in tor_of.items():
        members = tor_tenants.setdefault(tor_index, [])
        tenant = tenant_of_host[host]
        if tenant not in members:
            members.append(tenant)
    aq_slices: List[dict] = []
    slice_id: Dict[Tuple[int, int], int] = {}
    for tor_index in sorted(tor_tenants):
        present = sorted(tor_tenants[tor_index])
        base_rate = aq_share * config.pod_rate_bps / len(present)
        for tenant in present:
            aq_id = tor_index * num_tenants + tenant + 1
            slice_id[(tor_index, tenant)] = aq_id
            aq_slices.append({
                "aq_id": aq_id,
                "tor_index": tor_index,
                "tenant": tenant,
                "rate_bps": base_rate,
                "limit_bytes": MIXED_AQ_LIMIT_BYTES,
            })

    def ingress_id(host: str) -> int:
        return slice_id[(tor_of[host], tenant_of_host[host])]

    # Tenant 0's aggressor matrix: one cross-pod CBR stream per host.
    udp_flows: List[dict] = []
    if udp_gbps > 0:
        for src in tenant_hosts[0]:
            head = src[1:].split("-")
            p, i, j = int(head[0]), int(head[1]), int(head[2])
            if config.pods > 1:
                dst = config.host_name((p + 1) % config.pods, i, j)
            else:
                dst = config.host_name(p, i, (j + 1) % config.hosts_per_tor)
            if dst == src:
                continue
            udp_flows.append({
                "flow_id": len(udp_flows) + 1,
                "src": src,
                "dst": dst,
                "rate_bps": gbps(udp_gbps),
                "packet_size": packet_size,
                "tenant": 0,
                "aq_ingress_id": ingress_id(src),
            })

    # Churn schedule: the last tenant leaves and rejoins mid-run.
    leaver = num_tenants - 1 if churn and num_tenants >= 2 else None
    leave_t = 0.4 * arrival_s
    rejoin_t = 0.7 * arrival_s
    churn_events: List[dict] = []
    if leaver is not None:
        leaver_ids = sorted(
            aq_id for (tor_index, tenant), aq_id in slice_id.items()
            if tenant == leaver
        )
        down_rates: Dict[str, float] = {}
        up_rates: Dict[str, float] = {}
        for tor_index, present in sorted(tor_tenants.items()):
            if leaver not in present:
                continue
            survivors = [t for t in sorted(present) if t != leaver]
            if not survivors:
                continue
            for tenant in survivors:
                aq_id = slice_id[(tor_index, tenant)]
                down_rates[str(aq_id)] = (
                    aq_share * config.pod_rate_bps / len(survivors)
                )
                up_rates[str(aq_id)] = aq_share * config.pod_rate_bps / len(present)
            up_rates[str(slice_id[(tor_index, leaver)])] = (
                aq_share * config.pod_rate_bps / len(present)
            )
        churn_events = [
            {"time": leave_t, "withdraw": leaver_ids, "deploy": [],
             "rates": down_rates},
            {"time": rejoin_t, "withdraw": [], "deploy": leaver_ids,
             "rates": up_rates},
        ]

    # Open-loop TCP arrivals per tenant (web-search sizes).
    if _WEBSEARCH_MEAN is None:
        from ..workloads.websearch import websearch_distribution

        _WEBSEARCH_MEAN = websearch_distribution().mean_bytes()
    arrivals: List[Tuple[float, int, str, str, int]] = []
    for tenant in range(num_tenants):
        members = tenant_hosts[tenant]
        workload = EntityWorkload(
            name=f"tenant{tenant}", sources=members, destinations=members,
        )
        rng = _tenant_rng(config.seed, tenant)
        flows = workload.poisson_open_loop(
            rng, load * config.host_rate_bps * len(members), arrival_s,
            mean_bytes=_WEBSEARCH_MEAN,
        )
        for flow in flows:
            if tenant == leaver and leave_t <= flow.start_time < rejoin_t:
                continue  # the tenant is gone: no arrivals in the gap
            arrivals.append(
                (flow.start_time, tenant, flow.src, flow.dst, flow.size_bytes)
            )
    arrivals.sort()
    tcp_flows = [
        {
            "flow_id": len(udp_flows) + n + 1,
            "src": src,
            "dst": dst,
            "size_bytes": size,
            "start_time": start,
            "tenant": tenant,
            "aq_ingress_id": ingress_id(src),
        }
        for n, (start, tenant, src, dst, size) in enumerate(arrivals)
    ]

    return {
        "num_tenants": num_tenants,
        "tenant_hosts": {str(t): list(m) for t, m in tenant_hosts.items()},
        "aq_slices": aq_slices,
        "udp_flows": udp_flows,
        "tcp_flows": tcp_flows,
        "churn": churn_events,
    }


def build_fabric_partition(
    partition: int,
    shards: int,
    pods: int = 4,
    tors_per_pod: int = 2,
    hosts_per_tor: int = 2,
    num_cores: int = 2,
    seed: int = 1,
    intra_gbps: float = 2.0,
    cross_gbps: float = 3.0,
    packet_size: int = MTU_BYTES,
    traffic: str = "udp",
    arrival_s: float = 2e-3,
    load: float = 0.25,
    churn: bool = False,
    num_tenants: int = 3,
    udp_gbps: float = 4.0,
    aq_share: float = 0.5,
    cc: str = "dctcp",
    fail_at_s: float = -1.0,
    fail_partition: int = 0,
    fail_hard: bool = False,
) -> Tuple[ShardRuntime, Callable[[], dict]]:
    """Build one partition of the scenario. Worker-target signature:
    every argument is JSON-safe, and the return is ``(runtime,
    finalize)`` where ``finalize()`` yields this partition's slice of the
    results (all slices are disjoint; see :func:`merge_results`).

    ``traffic="udp"`` is the static CBR matrix of :func:`fabric_flows`;
    ``traffic="mixed"`` instantiates the :func:`fabric_mixed_spec`
    scenario — TCP + AQ tenants with Poisson arrivals and optional churn.
    ``fail_at_s >= 0`` arms a crash drill on ``fail_partition``: at that
    sim time the partition raises (or hard-exits with ``fail_hard``),
    exercising the run-ledger failure path.

    Ambient context (telemetry, fault plan) must be activated by the
    caller *around* this call — the runner worker and
    :func:`run_share_fabric` both do.
    """
    if traffic not in ("udp", "mixed"):
        raise ConfigurationError(
            f"traffic must be 'udp' or 'mixed', got {traffic!r}"
        )
    config = fabric_config(pods, tors_per_pod, hosts_per_tor, num_cores, seed)
    plan = FatTreePlan(config, shards)
    runtime = ShardRuntime(partition, plan)
    tree = build_fattree(config, boundary=runtime)
    net = tree.network
    runtime.attach_network(net)

    if fail_at_s >= 0 and partition == fail_partition:
        def _crash_drill() -> None:
            if fail_hard:  # pragma: no cover - exercised via spawn workers
                import os

                os._exit(3)
            raise RuntimeError(
                f"injected partition failure (partition {partition} "
                f"at t={fail_at_s})"
            )

        net.sim.schedule_at(fail_at_s, _crash_drill)

    sinks: Dict[int, UdpSink] = {}
    senders: Dict[int, UdpSender] = {}

    def build_udp_matrix() -> None:
        for flow in fabric_flows(config, intra_gbps, cross_gbps, packet_size):
            # Sink before sender, mirroring UdpFlow construction order.
            if tree.owns(flow["dst"]):
                sinks[flow["flow_id"]] = UdpSink(
                    net.hosts[flow["dst"]], flow["flow_id"]
                )
            if tree.owns(flow["src"]):
                senders[flow["flow_id"]] = UdpSender(
                    net.sim,
                    net.hosts[flow["src"]],
                    flow["dst"],
                    flow["flow_id"],
                    flow["rate_bps"],
                    packet_size=flow["packet_size"],
                )

    tcp_senders: Dict[int, object] = {}
    tcp_receivers: Dict[int, object] = {}
    tcp_meta: Dict[int, dict] = {}
    aq_by_id: Dict[int, object] = {}

    def build_mixed() -> None:
        from ..cc.registry import make_cc
        from ..core.feedback import policy_for_cc
        from ..core.pipeline import INGRESS, AqPipeline
        from ..transport.tcp import TcpReceiver, TcpSender

        spec = fabric_mixed_spec(
            config, arrival_s, load=load, churn=churn,
            num_tenants=num_tenants, udp_gbps=udp_gbps, aq_share=aq_share,
            packet_size=packet_size,
        )
        policy = policy_for_cc(cc, ecn_threshold_bytes=MIXED_ECN_THRESHOLD_BYTES)

        # AQ slices on owned ToRs, in global slice order. Pipelines are
        # created lazily per ToR the first time a slice lands on it.
        from ..core.aq import AugmentedQueue

        pipelines: Dict[str, AqPipeline] = {}
        pipeline_of: Dict[int, AqPipeline] = {}
        for entry in spec["aq_slices"]:
            tor_index = entry["tor_index"]
            tor = config.tor_name(
                tor_index // config.tors_per_pod,
                tor_index % config.tors_per_pod,
            )
            if not tree.owns(tor):
                continue
            pipeline = pipelines.get(tor)
            if pipeline is None:
                pipeline = pipelines[tor] = AqPipeline(net.switches[tor])
            aq = AugmentedQueue(
                entry["aq_id"],
                entry["rate_bps"],
                entry["limit_bytes"],
                policy=policy,
                entity=f"tenant{entry['tenant']}",
                telemetry=net.telemetry,
            )
            aq_by_id[entry["aq_id"]] = aq
            pipeline_of[entry["aq_id"]] = pipeline
            pipeline.deploy(aq, INGRESS)

        # Churn: withdraw/redeploy grants and rebalance survivor rates at
        # identical sim times on every partition (disjoint AQ state, so
        # same-time ordering across partitions cannot matter).
        for event in spec["churn"]:
            when = event["time"]
            for aq_id in event["withdraw"]:
                aq = aq_by_id.get(aq_id)
                if aq is None:
                    continue

                def _withdraw(aq_id=aq_id):
                    pipeline_of[aq_id].withdraw(aq_id, INGRESS)

                net.sim.schedule_at(when, _withdraw)
            for aq_id in event["deploy"]:
                aq = aq_by_id.get(aq_id)
                if aq is None:
                    continue

                def _deploy(aq=aq, aq_id=aq_id):
                    pipeline_of[aq_id].deploy(aq, INGRESS)

                net.sim.schedule_at(when, _deploy)
            for aq_id_str in sorted(event["rates"], key=int):
                aq = aq_by_id.get(int(aq_id_str))
                if aq is None:
                    continue

                def _rebalance(aq=aq, rate=event["rates"][aq_id_str]):
                    aq.set_rate(net.sim.now, rate)

                net.sim.schedule_at(when, _rebalance)

        # The aggressor's CBR flows (AQ-tagged UDP).
        for flow in spec["udp_flows"]:
            if tree.owns(flow["dst"]):
                sinks[flow["flow_id"]] = UdpSink(
                    net.hosts[flow["dst"]], flow["flow_id"]
                )
            if tree.owns(flow["src"]):
                senders[flow["flow_id"]] = UdpSender(
                    net.sim,
                    net.hosts[flow["src"]],
                    flow["dst"],
                    flow["flow_id"],
                    flow["rate_bps"],
                    packet_size=flow["packet_size"],
                    aq_ingress_id=flow["aq_ingress_id"],
                )

        # TCP flows, receiver before sender (the receiver must be
        # registered on its host before the first data packet arrives;
        # the sender's first event is its own start_time).
        for flow in spec["tcp_flows"]:
            fid = flow["flow_id"]
            if tree.owns(flow["dst"]):
                tcp_receivers[fid] = TcpReceiver(
                    net.sim, net.hosts[flow["dst"]], flow["src"], fid,
                )
            if tree.owns(flow["src"]):
                tcp_senders[fid] = TcpSender(
                    net.sim,
                    net.hosts[flow["src"]],
                    flow["dst"],
                    fid,
                    make_cc(cc),
                    size_bytes=flow["size_bytes"],
                    start_time=flow["start_time"],
                    aq_ingress_id=flow["aq_ingress_id"],
                )
                tcp_meta[fid] = flow

    if traffic == "udp":
        build_udp_matrix()
    else:
        build_mixed()

    def finalize() -> dict:
        result = {
            "delivered_bytes": {
                str(fid): sink.delivered_bytes for fid, sink in sinks.items()
            },
            "delivered_packets": {
                str(fid): sink.delivered_packets for fid, sink in sinks.items()
            },
            "sent_bytes": {
                str(fid): s.bytes_sent for fid, s in senders.items()
            },
            "switches": {
                name: [
                    sw.stats.forwarded_packets,
                    sw.stats.ingress_dropped_packets,
                    sw.stats.queue_dropped_packets,
                ]
                for name, sw in net.switches.items()
            },
            "cut_links": {
                cut.name: net.links[cut.name].stats.delivered_packets
                for cut in plan.cut_links()
                if cut.src_partition == partition
            },
            "events": net.sim.events_processed,
        }
        if traffic == "mixed":
            result["tcp"] = {
                str(fid): [
                    tcp_meta[fid]["tenant"],
                    tcp_meta[fid]["size_bytes"],
                    1 if sender.completed else 0,
                    sender.stats.completion_time,
                    sender.stats.retransmissions,
                    sender.stats.timeouts,
                    sender.stats.fast_retransmits,
                    sender.stats.segments_sent,
                    sender.stats.bytes_sent,
                ]
                for fid, sender in tcp_senders.items()
            }
            result["tcp_recv"] = {
                str(fid): [
                    receiver.delivered_bytes,
                    receiver.acks_sent,
                    1 if receiver.fin_received else 0,
                ]
                for fid, receiver in tcp_receivers.items()
            }
            result["aq"] = {
                str(aq_id): [
                    aq.stats.arrived_packets,
                    aq.stats.arrived_bytes,
                    aq.stats.dropped_packets,
                    aq.stats.marked_packets,
                ]
                for aq_id, aq in aq_by_id.items()
            }
        return result

    return runtime, finalize


#: Scalar result keys that add across partitions; everything else is a
#: dict whose keys must be disjoint between partitions.
_MERGE_SUM_KEYS = ("events",)


def merge_results(slices: List[dict]) -> dict:
    """Union the disjoint per-partition result slices into the fabric-
    wide result. The merge is data-driven: scalar counters in
    :data:`_MERGE_SUM_KEYS` add, every other key is a dict union whose
    per-partition key sets must be disjoint (each endpoint/switch/AQ is
    owned by exactly one partition)."""
    merged: dict = {"events": 0}
    for part in slices:
        for key, value in part.items():
            if key in _MERGE_SUM_KEYS:
                merged[key] = merged.get(key, 0) + value
                continue
            bucket = merged.setdefault(key, {})
            overlap = bucket.keys() & value.keys()
            if overlap:
                raise ConfigurationError(
                    f"partition result slices overlap on {key}: "
                    f"{sorted(overlap)[:5]}"
                )
            bucket.update(value)
    return {
        key: dict(sorted(value.items())) if isinstance(value, dict) else value
        for key, value in sorted(merged.items())
    }


def fabric_fct_summary(merged: dict, config: FatTreeConfig) -> Optional[dict]:
    """Fabric-wide per-tenant FCT/slowdown and fairness summary.

    Built from the merged ``tcp`` result slice (so it covers every
    partition), using one :class:`~repro.stats.fct.FctCollector` per
    tenant with the host line rate as the reference and the cross-pod
    round trip as the base RTT. Flows still running at end of run carry
    no completion record; they are counted but excluded from slowdowns.
    Returns ``None`` for runs without TCP traffic.
    """
    tcp = merged.get("tcp")
    if not tcp:
        return None
    from ..stats.fct import FctCollector

    base_rtt = 2 * (
        2 * config.host_prop_delay
        + 2 * config.pod_prop_delay
        + 2 * config.core_prop_delay
    )

    def collector() -> FctCollector:
        return FctCollector(config.host_rate_bps, base_rtt=base_rtt)

    def flat_summary(coll: FctCollector) -> Optional[dict]:
        values = coll.slowdowns(finite_only=True)
        if not values:
            return None
        from ..stats.meters import percentile

        return {
            "p50": percentile(values, 50.0),
            "p95": percentile(values, 95.0),
            "p99": percentile(values, 99.0),
            "mean": sum(values) / len(values),
            "n": float(len(values)),
        }

    recv = merged.get("tcp_recv") or {}
    overall = collector()
    per_tenant: Dict[int, FctCollector] = {}
    totals: Dict[int, dict] = {}
    for fid in sorted(tcp, key=int):
        tenant, size, completed, fct, retrans, timeouts, fastrtx = tcp[fid][:7]
        bucket = totals.setdefault(tenant, {
            "flows": 0, "completed": 0, "retransmissions": 0,
            "timeouts": 0, "fast_retransmits": 0, "goodput_bytes": 0,
        })
        bucket["flows"] += 1
        bucket["retransmissions"] += retrans
        bucket["timeouts"] += timeouts
        bucket["fast_retransmits"] += fastrtx
        row = recv.get(fid)
        if row:
            bucket["goodput_bytes"] += row[0]
        if completed and fct > 0:
            bucket["completed"] += 1
            per_tenant.setdefault(tenant, collector()).record(size, fct)
            overall.record(size, fct)

    tenants: Dict[str, dict] = {}
    for tenant in sorted(totals):
        entry = dict(totals[tenant])
        coll = per_tenant.get(tenant)
        if coll is not None:
            entry["slowdown"] = flat_summary(coll)
            entry["slowdown_bins"] = coll.summary()
        tenants[str(tenant)] = entry
    goodputs = [totals[t]["goodput_bytes"] for t in sorted(totals)]
    fairness = None
    if any(goodputs):
        fairness = (sum(goodputs) ** 2) / (
            len(goodputs) * sum(g ** 2 for g in goodputs)
        )
    summary: dict = {
        "tenants": tenants,
        "overall": {
            "flows": sum(t["flows"] for t in totals.values()),
            "completed": len(overall),
            "slowdown": flat_summary(overall),
            "slowdown_bins": overall.summary(),
        },
        "fairness": {
            "jain_goodput": fairness,
            "goodput_bytes": {str(t): totals[t]["goodput_bytes"]
                              for t in sorted(totals)},
        },
    }
    return summary


def fabric_digest(merged: dict) -> str:
    """Canonical hash of a merged result — the equivalence currency of
    the ``shard/equiv/*`` jobs: identical across shard counts."""
    blob = json.dumps(merged, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def filter_fault_plan(
    plan_dict: dict, plan: FatTreePlan, partition: int
) -> dict:
    """Restrict a fault plan to the events whose target lives in
    ``partition`` (targets with no node, e.g. controller partitions, go
    to partition 0). Filtering preserves order, and the union over all
    partitions is exactly the original plan — so per-partition injectors
    reproduce the single-process schedule."""
    full = FaultPlan.from_dict(plan_dict)
    kept = [
        event
        for event in full.events
        if (plan.owner_of_target(event.target) if event.target is not None else 0)
        == partition
    ]
    return FaultPlan(seed=full.seed, events=kept).to_dict()


def partition_plan_summary(plan: FatTreePlan) -> dict:
    """JSON-safe description of a partition plan for the run manifest."""
    return {
        "shards": plan.shards,
        "lookahead": plan.lookahead,
        "cut_links": [
            {
                "link_id": cut.link_id,
                "src": cut.src,
                "dst": cut.dst,
                "src_partition": cut.src_partition,
                "dst_partition": cut.dst_partition,
            }
            for cut in plan.cut_links()
        ],
    }


def run_share_fabric(
    shards: int,
    duration: float,
    inline: bool = False,
    audit: bool = False,
    timewin_dir: Optional[str] = None,
    timewin_params: Optional[dict] = None,
    fault_plan: Optional[dict] = None,
    run_dir: Optional[str] = None,
    timewin: Optional[bool] = None,
    timewin_budget: Optional[int] = None,
    flight_dir: Optional[str] = None,
    heartbeat: Optional[bool] = None,
    on_heartbeat: Optional[Callable[[dict], None]] = None,
    **config_kwargs,
) -> dict:
    """Run the scenario at ``shards`` partitions and return the merged,
    digestable report.

    ``inline=True`` drives every partition in this process via
    :func:`~repro.sim.shard.run_lockstep` — required inside daemonic
    harness workers (which may not spawn children) and used by the
    equivalence tests; ``inline=False`` spawns one worker process per
    partition via :func:`~repro.sim.shard.run_sharded`. Both produce
    identical digests by construction.

    The observability plane hangs off ``run_dir``: when set, the run
    writes a ledgered directory (:class:`repro.obs.runledger.RunLedger`)
    with a ``fabric-run/1`` manifest, a live ``health.jsonl`` heartbeat
    timeline, the merged ``metrics.json``, and auto-stitched window (and
    flight) dumps. Time windows are then **on by default** (ROADMAP item
    3) under ``timewin_budget`` bytes per port; pass ``timewin=False``
    to opt out. Every layer is digest-neutral: the report's ``digest``
    is identical with the plane fully on or fully off, at any shard
    count (the ``shard/obs/*`` jobs assert this).
    """
    import os

    from ..obs.runledger import RunLedger

    ledger = RunLedger(run_dir) if run_dir is not None else None

    if timewin is None:
        timewin = timewin_dir is not None or ledger is not None
    if timewin and timewin_dir is None:
        if ledger is None:
            raise ConfigurationError(
                "timewin=True needs a timewin_dir or run_dir to dump into"
            )
        timewin_dir = ledger.path("windows")
    if not timewin:
        timewin_dir = None
    params = dict(timewin_params or {})
    if timewin_budget is not None:
        from ..obs.timewin import params_for_budget

        solved = params_for_budget(timewin_budget, window_s=params.get("window_s"))
        solved.update(params)  # explicit params override the solver
        params = solved
    timewin_params = params or None
    if heartbeat is None:
        heartbeat = ledger is not None

    health_sink = ledger.health_writer() if ledger and heartbeat else None
    frames: List[dict] = []

    def handle_frame(frame: dict) -> None:
        frames.append(frame)
        if health_sink is not None:
            health_sink(frame)
        if on_heartbeat is not None:
            on_heartbeat(frame)

    if config_kwargs.get("traffic") == "mixed" and not config_kwargs.get("arrival_s"):
        # Arrivals span the whole run unless the caller pins the window.
        config_kwargs = dict(config_kwargs, arrival_s=duration)
    config = fabric_config(**{
        k: config_kwargs[k]
        for k in ("pods", "tors_per_pod", "hosts_per_tor", "num_cores", "seed")
        if k in config_kwargs
    })
    plan = FatTreePlan(config, shards)
    fault_slices: Optional[List[Optional[dict]]] = None
    if fault_plan is not None:
        fault_slices = [
            filter_fault_plan(fault_plan, plan, i) for i in range(shards)
        ]

    report: dict = {
        "scenario": "share-fabric",
        "shards": shards,
        "duration": duration,
        "lookahead": plan.lookahead,
        "mode": "inline" if inline else "spawn",
    }
    manifest: dict = {}
    if ledger is not None:
        manifest = {
            "scenario": "share-fabric",
            "created_unix": time.time(),
            "shards": shards,
            "duration": duration,
            "mode": report["mode"],
            "config": dict(config_kwargs),
            "partition_plan": partition_plan_summary(plan),
            "observability": {
                "audit": audit,
                "heartbeat": heartbeat,
                "timewin": timewin_dir is not None,
                "timewin_params": timewin_params,
                "timewin_budget_bytes": timewin_budget,
                "flights": flight_dir is not None,
            },
        }
        ledger.begin(manifest)
        report["run_dir"] = ledger.run_dir

    t0 = time.perf_counter()
    try:
        if inline:
            import contextlib

            from ..faults.injector import activate_fault_plan
            from ..obs.telemetry import Telemetry
            from ..sim.shard import HeartbeatTracker

            if flight_dir is not None:
                os.makedirs(flight_dir, exist_ok=True)
            runtimes: List[ShardRuntime] = []
            finalizers: List[Callable[[], dict]] = []
            teles: List[Optional[Telemetry]] = []
            for i in range(shards):
                telemetry = None
                if audit or timewin_dir is not None or flight_dir is not None:
                    telemetry = Telemetry(enabled=True)
                    if audit:
                        telemetry.enable_audit()
                    if timewin_dir is not None:
                        telemetry.enable_time_windows(**(timewin_params or {}))
                    if flight_dir is not None:
                        telemetry.enable_flight_recording(
                            os.path.join(flight_dir, f"shard{i}.flights.jsonl")
                        )
                with contextlib.ExitStack() as stack:
                    if telemetry is not None:
                        stack.enter_context(telemetry.activate())
                    if fault_slices is not None:
                        stack.enter_context(
                            activate_fault_plan(FaultPlan.from_dict(fault_slices[i]))
                        )
                    runtime, finalize = build_fabric_partition(
                        partition=i, shards=shards, **config_kwargs
                    )
                runtimes.append(runtime)
                finalizers.append(finalize)
                teles.append(telemetry)
            on_epoch = None
            if heartbeat:
                trackers = [HeartbeatTracker(i) for i in range(shards)]

                def on_epoch(epoch: int, barrier: float) -> None:
                    for i, rt in enumerate(runtimes):
                        handle_frame(trackers[i].frame(rt, epoch, barrier))

            epochs = run_lockstep(runtimes, duration, on_epoch=on_epoch)
            slices = [finalize() for finalize in finalizers]
            workers = []
            for i, telemetry in enumerate(teles):
                worker: dict = {"partition": i, "status": "ok", "result": slices[i]}
                worker["exported_packets"] = runtimes[i].exported_packets
                worker["imported_packets"] = runtimes[i].imported_packets
                worker["events"] = runtimes[i].sim.events_processed
                if telemetry is not None:
                    telemetry.close()
                    if telemetry.timewin is not None and timewin_dir is not None:
                        path = os.path.join(
                            timewin_dir, f"shard{i}.windows.jsonl"
                        )
                        os.makedirs(timewin_dir, exist_ok=True)
                        telemetry.timewin.dump_jsonl(path)
                        worker["timewin_path"] = path
                        worker["timewin"] = telemetry.timewin.stats()
                    if telemetry.flightrec is not None and flight_dir is not None:
                        index = telemetry.flightrec.index
                        worker["flight_path"] = os.path.join(
                            flight_dir, f"shard{i}.flights.jsonl"
                        )
                        worker["flights"] = {
                            "total": index.total,
                            "delivered": index.delivered,
                            "dropped": index.dropped,
                            "unfinished": index.unfinished,
                            "exported": index.exported,
                        }
                    if telemetry.auditor is not None:
                        verdict = telemetry.auditor.report()
                        worker["audit"] = {
                            "events_seen": verdict["events_seen"],
                            "violation_count": verdict["violation_count"],
                            "violations": verdict["violations"][:20],
                        }
                    worker["metrics"] = telemetry.metrics.snapshot()
                workers.append(worker)
            report["epochs"] = epochs
        else:
            run = run_sharded(
                BUILDER_TARGET,
                config_kwargs,
                shards,
                duration,
                plan.lookahead,
                audit=audit,
                timewin_dir=timewin_dir,
                timewin_params=timewin_params,
                fault_plans=fault_slices,
                heartbeat=heartbeat,
                flight_dir=flight_dir,
                on_heartbeat=handle_frame,
            )
            workers = run.workers
            for i, worker in enumerate(workers):
                if timewin_dir is not None:
                    worker.setdefault(
                        "timewin_path",
                        os.path.join(timewin_dir, f"shard{i}.windows.jsonl"),
                    )
            report["epochs"] = run.epochs
            slices = run.results()
    except BaseException as exc:
        if ledger is not None:
            # Index the failure before flipping the manifest to "failed":
            # the traceback (and, for spawn runs, each worker's partial
            # report incl. its own traceback) must be readable from the
            # ledger — a crashed run must never leave status "running".
            import traceback as _traceback

            manifest["error"] = {
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": "".join(_traceback.format_exception(
                    type(exc), exc, exc.__traceback__, limit=30
                )),
            }
            worker_reports = getattr(exc, "worker_reports", None)
            if worker_reports:
                manifest["workers"] = [
                    {
                        key: worker.get(key)
                        for key in ("partition", "status", "error", "wall_s")
                        if worker.get(key) is not None
                    }
                    for worker in worker_reports
                ]
            if health_sink is not None:
                ledger.close_health()
            ledger.finalize(manifest, status="failed")
        raise

    report["wall_s"] = time.perf_counter() - t0
    merged = merge_results(slices)
    report["results"] = merged
    report["digest"] = fabric_digest(merged)
    fct = fabric_fct_summary(merged, config)
    if fct is not None:
        report["fct"] = fct
    report["boundary"] = {
        "exported": sum(w.get("exported_packets", 0) for w in workers),
        "imported": sum(w.get("imported_packets", 0) for w in workers),
    }
    if audit:
        report["audit"] = {
            "violation_count": sum(
                w.get("audit", {}).get("violation_count", 0) for w in workers
            ),
            "events_seen": sum(
                w.get("audit", {}).get("events_seen", 0) for w in workers
            ),
            "per_partition": [w.get("audit") for w in workers],
        }
    if timewin_dir is not None:
        report["timewin_paths"] = [
            w.get("timewin_path") for w in workers if w.get("timewin_path")
        ]
    if flight_dir is not None:
        report["flight_paths"] = [
            w.get("flight_path") for w in workers if w.get("flight_path")
        ]
    if heartbeat:
        report["heartbeat_frames"] = len(frames)

    if ledger is not None:
        from ..obs.metrics import merge_metrics_snapshots
        from ..obs.timewin import stitch_window_dumps

        artifacts: dict = {"report": "report.json"}
        if health_sink is not None:
            ledger.close_health()
            artifacts["health"] = "health.jsonl"
        snapshots = [w["metrics"] for w in workers if w.get("metrics")]
        merged_metrics = merge_metrics_snapshots(snapshots)
        if fct is not None:
            merged_metrics["fct"] = fct
        ledger.write_json("metrics.json", merged_metrics)
        artifacts["metrics"] = "metrics.json"
        if report.get("timewin_paths"):
            stitched = stitch_window_dumps(
                report["timewin_paths"],
                out_path=ledger.path("windows.stitched.jsonl"),
            )
            artifacts["windows"] = [
                ledger.relpath(p) for p in report["timewin_paths"]
            ]
            artifacts["windows_stitched"] = "windows.stitched.jsonl"
            report["timewin_merged_path"] = ledger.path("windows.stitched.jsonl")
            report["timewin_ports"] = len(stitched.ports())
        if report.get("flight_paths"):
            from ..obs.flightrec import stitch_flight_dumps

            stitched_flights = stitch_flight_dumps(
                report["flight_paths"],
                out_path=ledger.path("flights.stitched.jsonl"),
            )
            artifacts["flights"] = [
                ledger.relpath(p) for p in report["flight_paths"]
            ]
            artifacts["flights_stitched"] = "flights.stitched.jsonl"
            report["flights_stitched_path"] = ledger.path("flights.stitched.jsonl")
            report["flights_stitched"] = len(stitched_flights)
        ledger.write_json("report.json", report)
        manifest["artifacts"] = artifacts
        manifest["digests"] = {"fabric_digest": report["digest"]}
        manifest["epochs"] = report["epochs"]
        manifest["wall_s"] = report["wall_s"]
        manifest["boundary"] = report["boundary"]
        manifest["lookahead"] = report["lookahead"]
        if audit:
            manifest["audit"] = {
                "violation_count": report["audit"]["violation_count"],
                "events_seen": report["audit"]["events_seen"],
            }
        manifest["workers"] = [
            {
                key: worker.get(key)
                for key in (
                    "partition", "status", "wall_s", "events",
                    "exported_packets", "imported_packets", "audit",
                    "timewin", "flights",
                )
                if worker.get(key) is not None
            }
            for worker in workers
        ]
        manifest["heartbeat_frames"] = len(frames)
        report["manifest_path"] = ledger.finalize(manifest)
    return report
