"""Tiny job targets used by tests and CI smoke runs.

Kept in the package (not under ``tests/``) so spawn-context workers can
import them by module path regardless of the parent's ``sys.path``.
"""

from __future__ import annotations

import os
import time


def job_echo(value: float = 1.0) -> dict:
    """Trivial success."""
    return {"value": value}


def job_sleep(seconds: float) -> dict:
    """Busy job for timeout tests."""
    time.sleep(seconds)
    return {"slept": seconds}


def job_fail(message: str = "boom") -> dict:
    """Deterministic in-job exception (must NOT be retried)."""
    raise ValueError(message)


def job_crash_once(sentinel: str) -> dict:
    """Hard-crash (no exception, no report) on the first attempt; the
    second attempt finds the sentinel file and succeeds — exercises the
    runner's retry-once-on-crash path."""
    if not os.path.exists(sentinel):
        with open(sentinel, "w", encoding="utf-8") as fh:
            fh.write("crashed\n")
        os._exit(13)
    return {"recovered": True}


def job_crash_always() -> dict:
    """Hard-crash on every attempt (exhausts the single retry)."""
    os._exit(13)


def job_tiny_scenario(seed: int = 1) -> dict:
    """A real (but small) packet-level scenario for determinism tests."""
    from ..units import gbps
    from .scenarios import run_cc_pair

    result = run_cc_pair(
        "cubic", 2, "dctcp", 2, "aq",
        bottleneck_bps=gbps(1), duration=30e-3, warmup=10e-3, seed=seed,
    )
    return {"rates_bps": dict(result.rates_bps), "ratio": result.ratio("A", "B")}
