"""Engine hot-path micro-benchmarks.

Each function exercises one of the simulator's fast-path mechanisms in
isolation and returns a JSON-safe dict of measurements, so the same code
backs three consumers:

* ``benchmarks/bench_engine_hotpath.py`` (pytest-benchmark, asserts the
  mechanisms actually engage and writes ``BENCH_engine.json``),
* the parallel runner's ``engine/*`` jobs (``repro run-all --filter engine``),
* ad-hoc profiling from a REPL.

The measurements and what they gate are documented in
``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import platform
import sys
import time
from typing import Dict

from ..net.link import Link, Transmitter
from ..net.packet import make_udp
from ..queues.fifo import PhysicalFifoQueue
from ..sim.engine import Simulator
from ..units import transmission_time


def _noop() -> None:
    return None


def bench_timer_churn(
    n_events: int = 200_000, cancel_fraction: float = 0.9
) -> Dict[str, float]:
    """Schedule/cancel churn: the TCP-retransmission-timer pattern.

    ``cancel_fraction`` of the calendar is cancelled before the run, the
    way RTO timers are cancelled when their ACK arrives. Gates the >50%
    tombstone compaction: without it the run loop pops (and re-sifts) every
    tombstone; with it the calendar is rebuilt in O(n) once and the run
    touches only live events.
    """
    sim = Simulator()
    events = [sim.schedule(1e-6 * (i + 1), _noop) for i in range(n_events)]
    n_cancel = int(n_events * cancel_fraction)
    t0 = time.perf_counter()
    for event in events[:n_cancel]:
        event.cancel()
    cancel_wall = time.perf_counter() - t0
    calendar_after_cancel = sim.calendar_size()
    t0 = time.perf_counter()
    processed = sim.run()
    run_wall = time.perf_counter() - t0
    return {
        "n_events": float(n_events),
        "cancel_fraction": cancel_fraction,
        "cancel_wall_s": cancel_wall,
        "run_wall_s": run_wall,
        "events_processed": float(processed),
        "events_per_sec": processed / run_wall if run_wall > 0 else 0.0,
        "compactions": float(sim.compactions),
        "calendar_after_cancel": float(calendar_after_cancel),
    }


def bench_fire_chain(n_events: int = 200_000) -> Dict[str, float]:
    """Fire-and-forget event throughput: the packet-delivery pattern.

    A single self-rescheduling ``schedule_fire`` chain; after warm-up every
    event is served from the simulator's free list, so steady state
    allocates no Event objects. This is the upper bound on raw event
    throughput (empty callbacks, depth-1 heap).
    """
    sim = Simulator()
    remaining = [n_events]

    def chain() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.schedule_fire(1e-6, chain)

    sim.schedule_fire(1e-6, chain)
    t0 = time.perf_counter()
    processed = sim.run()
    wall = time.perf_counter() - t0
    return {
        "n_events": float(n_events),
        "wall_s": wall,
        "events_processed": float(processed),
        "events_per_sec": processed / wall if wall > 0 else 0.0,
        "free_list_size": float(len(sim._free)),
    }


def _make_transmitter(sim: Simulator, rate_bps: float = 10e9):
    delivered = []
    link = Link(sim, rate_bps, prop_delay=1e-6, handler=delivered.append)
    queue = PhysicalFifoQueue(limit_bytes=64 * 1500 * 100)
    return Transmitter(sim, queue, link), delivered


def bench_idle_link(n_packets: int = 50_000, size: int = 1500) -> Dict[str, float]:
    """Back-to-back packets over an *idle* (uncontended) link.

    Each delivery immediately offers the next packet, so the line is idle
    at every offer and the transmitter takes the combined
    serialize+propagate fast path: one simulator event per packet instead
    of two (finish, then deliver).
    """
    sim = Simulator()
    tx, _ = _make_transmitter(sim)
    sent = [0]

    def pump(_packet=None) -> None:
        if sent[0] < n_packets:
            sent[0] += 1
            tx.offer(make_udp("a", "b", 1, size))

    tx.link._handler = pump
    pump()
    t0 = time.perf_counter()
    processed = sim.run()
    wall = time.perf_counter() - t0
    return {
        "n_packets": float(n_packets),
        "wall_s": wall,
        "events_processed": float(processed),
        "events_per_packet": processed / n_packets,
        "packets_per_sec": n_packets / wall if wall > 0 else 0.0,
        "sim_time_s": sim.now,
    }


def bench_backlogged_link(n_packets: int = 20_000, size: int = 1500) -> Dict[str, float]:
    """Draining a standing backlog: the bottleneck-queue pattern.

    Packets are enqueued faster than the line drains them, so the
    transmitter stays on the classic two-event path; this is the contrast
    case for :func:`bench_idle_link` and the floor the fast path must not
    regress.
    """
    sim = Simulator()
    tx, delivered = _make_transmitter(sim)
    tx.queue.limit_bytes = (n_packets + 1) * size
    tx_time = transmission_time(size, tx.link.rate_bps)
    # Feed two packets per serialization slot for the first half so the
    # queue stays backlogged, then let it drain.
    for i in range(n_packets):
        sim.schedule_fire(
            i * tx_time / 2,
            lambda: tx.offer(make_udp("a", "b", 1, size)),
        )
    t0 = time.perf_counter()
    processed = sim.run()
    wall = time.perf_counter() - t0
    return {
        "n_packets": float(n_packets),
        "delivered": float(len(delivered)),
        "wall_s": wall,
        "events_processed": float(processed),
        "events_per_packet": processed / n_packets,
        "packets_per_sec": n_packets / wall if wall > 0 else 0.0,
    }


def bench_timewin_overhead(
    n_packets: int = 50_000, size: int = 1500, n_flows: int = 32
) -> Dict[str, float]:
    """Marginal cost of the time-window recorder on the enqueue path.

    Runs the idle-link pump three ways — telemetry off, telemetry enabled
    without the recorder, and telemetry enabled with it — over ``n_flows``
    rotating flows. ``overhead_ratio`` compares the last two, isolating the
    recorder's own cost from the trace-emission cost every enabled run
    already pays. ``target_ratio`` records the <5% always-on budget the
    abstraction is designed for (PrintQueue's hardware claim); the pure
    Python reference recorder measures the *algorithmic* cost per record,
    which this worst-case bench (every event is an enqueue) overstates
    relative to end-to-end runs. ``retained_windows`` must stay at the
    configured ring size no matter how many windows the run spanned — the
    fixed-memory claim this bench gates.
    """
    from ..obs.telemetry import Telemetry

    def drive(telemetry) -> float:
        sim = Simulator()
        delivered = []
        link = Link(sim, 10e9, prop_delay=1e-6, handler=delivered.append)
        queue = PhysicalFifoQueue(
            limit_bytes=64 * 1500 * 100, name="bench.p0", telemetry=telemetry
        )
        tx = Transmitter(sim, queue, link)
        sent = [0]

        def pump(_packet=None) -> None:
            if sent[0] < n_packets:
                flow = sent[0] % n_flows
                sent[0] += 1
                tx.offer(make_udp("a", "b", flow, size))

        link._handler = pump
        pump()
        t0 = time.perf_counter()
        sim.run()
        return time.perf_counter() - t0

    off_wall = drive(None)
    tele_wall = drive(Telemetry(enabled=True))
    tele = Telemetry()
    recorder = tele.enable_time_windows()
    timewin_wall = drive(tele)
    stats = recorder.stats()
    return {
        "n_packets": float(n_packets),
        "n_flows": float(n_flows),
        "off_wall_s": off_wall,
        "telemetry_wall_s": tele_wall,
        "timewin_wall_s": timewin_wall,
        "overhead_ratio": timewin_wall / tele_wall if tele_wall > 0 else 0.0,
        "telemetry_ratio": tele_wall / off_wall if off_wall > 0 else 0.0,
        "target_ratio": 1.05,
        "timewin_packets_per_sec": (
            n_packets / timewin_wall if timewin_wall > 0 else 0.0
        ),
        "records": float(stats["records"]),
        "windows_spanned": float(stats["flips"] + 1),
        "retained_windows": float(stats["retained_windows"]),
        "evicted_windows": float(stats["evicted_windows"]),
        "ring_size": float(stats["num_windows"]),
    }


def bench_fluid_speedup(duration: float = 50e-3) -> Dict[str, float]:
    """Hybrid fluid/packet speedup on a stable backlogged share.

    Two UDP entities blast an AQ-limited dumbbell at line rate — the
    steady state the analytic fast path is built for: contending flow
    sets stable, every bottleneck backlogged. Packet mode serializes
    ~every byte as a discrete event; fluid mode advances the same run in
    a handful of closed-form epochs. ``speedup_ratio`` is the wall-clock
    ratio (``target_speedup`` is the >=10x gate in BENCH_engine.json),
    ``fluid_epochs`` proves the fast path actually engaged rather than
    falling back to packet mode.
    """
    from .common import EntitySpec
    from .scenarios import run_fluid_share

    entities = [
        EntitySpec(name="A", cc="udp"),
        EntitySpec(name="B", cc="udp"),
    ]
    t0 = time.perf_counter()
    packet = run_fluid_share(entities, "aq", duration=duration, fluid=False)
    packet_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    fluid = run_fluid_share(entities, "aq", duration=duration, fluid=True)
    fluid_wall = time.perf_counter() - t0
    delivered_pk = sum(packet.delivered_total.values())
    delivered_fl = sum(fluid.delivered_total.values())
    return {
        "duration_s": duration,
        "packet_wall_s": packet_wall,
        "fluid_wall_s": fluid_wall,
        "speedup_ratio": packet_wall / fluid_wall if fluid_wall > 0 else 0.0,
        "target_speedup": 10.0,
        "fluid_epochs": float(fluid.fluid.get("epochs", 0)),
        "fluid_engagements": float(fluid.fluid.get("engagements", 0)),
        "packet_delivered_bytes": float(delivered_pk),
        "fluid_delivered_bytes": float(delivered_fl),
        "delivered_rel_err": (
            abs(delivered_pk - delivered_fl) / max(delivered_pk, delivered_fl, 1)
        ),
    }


def bench_shard_speedup(
    shards: int = 4, duration: float = 4e-3, pods: int = 4,
    tors_per_pod: int = 4, hosts_per_tor: int = 2,
) -> Dict[str, float]:
    """Conservative-sync sharding speedup on a ToR-heavy fat-tree.

    Runs the ``share-fabric`` scenario twice through the *same* spawn
    coordinator — one worker, then ``shards`` workers — so process
    startup and pipe plumbing cost both sides equally and the ratio
    isolates the parallelism. Both runs must produce the same results
    digest (the determinism contract is re-checked on every bench run,
    not just in the test suite).

    ``speedup_ratio`` is honest about the host: ``cpus`` is recorded next
    to it and ``target_speedup`` (the >=2.5x gate at 4 shards) is only
    meaningful when the host has at least ``shards`` cores — a 1-CPU
    container time-slices the workers and measures coordination overhead
    instead, so consumers gate on ``cpus >= shards`` (see
    ``benchmarks/bench_shard.py`` and docs/SCALING.md).
    """
    import os

    from .fabric import run_share_fabric

    scale = {
        "pods": pods, "tors_per_pod": tors_per_pod,
        "hosts_per_tor": hosts_per_tor,
    }
    t0 = time.perf_counter()
    serial = run_share_fabric(1, duration, inline=False, **scale)
    serial_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    sharded = run_share_fabric(shards, duration, inline=False, **scale)
    sharded_wall = time.perf_counter() - t0
    if serial["digest"] != sharded["digest"]:
        raise AssertionError(
            f"shard determinism broke: 1-shard digest {serial['digest']} != "
            f"{shards}-shard digest {sharded['digest']}"
        )
    return {
        "shards": float(shards),
        "duration_s": duration,
        "events": float(serial["results"]["events"]),
        "epochs": float(serial["epochs"]),
        "serial_wall_s": serial_wall,
        "sharded_wall_s": sharded_wall,
        "speedup_ratio": serial_wall / sharded_wall if sharded_wall > 0 else 0.0,
        "target_speedup": 2.5,
        "cpus": float(os.cpu_count() or 1),
        "digest_match": 1.0,
        "boundary_exported": float(sharded["boundary"]["exported"]),
    }


def bench_fabric_obs_overhead(
    shards: int = 2, duration: float = 2e-3, pods: int = 2,
) -> Dict[str, float]:
    """End-to-end cost of the fabric observability plane.

    Runs ``share-fabric`` three ways through the same inline lockstep
    driver — plane fully off, heartbeats only, and heartbeats plus the
    default-on time-window recorder with a run ledger — and compares
    wall clocks. ``overhead_ratio`` (full plane vs off) gates the <=5%
    always-on budget recorded as ``target_ratio``; short runs are noisy,
    so consumers treat the ratio as a trend line and hard-gate only the
    structural facts: all three digests must match (the plane is
    digest-neutral by construction) and heartbeat frames must cover
    every (shard, epoch) pair.
    """
    import os
    import tempfile

    from .fabric import run_share_fabric

    scale = {"pods": pods}
    t0 = time.perf_counter()
    base = run_share_fabric(shards, duration, inline=True, **scale)
    base_wall = time.perf_counter() - t0

    hb_frames = []
    t0 = time.perf_counter()
    hb = run_share_fabric(
        shards, duration, inline=True, heartbeat=True,
        on_heartbeat=hb_frames.append, **scale,
    )
    hb_wall = time.perf_counter() - t0

    with tempfile.TemporaryDirectory() as tmp:
        t0 = time.perf_counter()
        full = run_share_fabric(
            shards, duration, inline=True,
            run_dir=os.path.join(tmp, "run"), **scale,
        )
        full_wall = time.perf_counter() - t0

    digests = {base["digest"], hb["digest"], full["digest"]}
    if len(digests) != 1:
        raise AssertionError(
            f"observability plane changed the digest: {sorted(digests)}"
        )
    expected_frames = shards * full["epochs"]
    if full["heartbeat_frames"] != expected_frames:
        raise AssertionError(
            f"heartbeat coverage hole: {full['heartbeat_frames']} frames "
            f"!= {shards} shards x {full['epochs']} epochs"
        )
    return {
        "shards": float(shards),
        "duration_s": duration,
        "events": float(base["results"]["events"]),
        "epochs": float(full["epochs"]),
        "base_wall_s": base_wall,
        "hb_wall_s": hb_wall,
        "full_wall_s": full_wall,
        "overhead_ratio": full_wall / base_wall if base_wall > 0 else 0.0,
        "heartbeat_ratio": hb_wall / base_wall if base_wall > 0 else 0.0,
        "target_ratio": 1.05,
        "heartbeat_frames": float(full["heartbeat_frames"]),
        "timewin_ports": float(full.get("timewin_ports", 0)),
        "digest_match": 1.0,
    }


def bench_fabric_mixed(
    shards: int = 2, duration: float = 2e-3, churn: bool = True,
) -> Dict[str, float]:
    """Throughput of the mixed TCP+AQ fabric workload, serial vs sharded.

    Runs the dynamic mixed traffic model (TCP tenants behind AQ slices,
    a UDP aggressor, Poisson/web-search arrivals, AQ churn) once at 1
    shard and once at ``shards``, both through the inline lockstep
    driver, and hard-gates the structural fact: the digests must match.
    Wall clocks track how much the dynamic workload costs relative to
    the static CBR matrix benches.
    """
    from .fabric import run_share_fabric

    kwargs = {"traffic": "mixed", "churn": churn}
    t0 = time.perf_counter()
    serial = run_share_fabric(1, duration, inline=True, **kwargs)
    serial_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    sharded = run_share_fabric(shards, duration, inline=True, **kwargs)
    sharded_wall = time.perf_counter() - t0

    if serial["digest"] != sharded["digest"]:
        raise AssertionError(
            f"mixed digest mismatch: shards=1 {serial['digest']} != "
            f"shards={shards} {sharded['digest']}"
        )
    events = float(sharded["results"]["events"])
    fct = sharded.get("fct") or {}
    overall = fct.get("overall") or {}
    return {
        "shards": float(shards),
        "duration_s": duration,
        "events": events,
        "epochs": float(sharded["epochs"]),
        "serial_wall_s": serial_wall,
        "sharded_wall_s": sharded_wall,
        "events_per_sec_serial": events / serial_wall if serial_wall else 0.0,
        "events_per_sec_sharded": (
            events / sharded_wall if sharded_wall else 0.0
        ),
        "tcp_flows": float(overall.get("flows", 0)),
        "tcp_completed": float(overall.get("completed", 0)),
        "boundary_exported": float(sharded["boundary"]["exported"]),
        "digest_match": 1.0,
    }


#: name -> zero-arg default-scale runner, the set recorded in BENCH_engine.json.
ENGINE_BENCHES = {
    "timer_churn": bench_timer_churn,
    "fire_chain": bench_fire_chain,
    "idle_link": bench_idle_link,
    "backlogged_link": bench_backlogged_link,
    "timewin_overhead": bench_timewin_overhead,
    "fluid_speedup": bench_fluid_speedup,
    "shard_speedup": bench_shard_speedup,
    "fabric_obs_overhead": bench_fabric_obs_overhead,
    "fabric_mixed": bench_fabric_mixed,
}


def host_fingerprint() -> Dict[str, object]:
    """Host facts recorded next to measurements so baselines are comparable."""
    import os

    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpus": os.cpu_count() or 1,
    }


def engine_bench_payload(results: Dict[str, Dict[str, float]]) -> Dict[str, object]:
    """The BENCH_engine.json document for a set of named bench results."""
    return {
        "schema": "bench-engine/1",
        "host": host_fingerprint(),
        "benches": dict(sorted(results.items())),
    }
