"""Output-queued switch with programmable ingress/egress pipelines.

The model mirrors the paper's deployment surface (Section 4.2):

* **ingress pipeline hooks** run when a packet arrives at the switch,
  before it is placed in the output port's physical FIFO queue — this is
  where ingress-position AQs match on ``aq_ingress_id``;
* **egress pipeline hooks** run at dequeue time on the output port's
  transmitter (see :class:`~repro.net.link.Transmitter`) — this is where
  egress-position AQs match on ``aq_egress_id``.

Forwarding is static next-hop routing installed by the topology builder.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import ConfigurationError, RoutingError
from ..queues.base import QueueDiscipline
from .link import Link, PipelineHook, Transmitter
from .packet import Packet


class SwitchPort:
    """One output port: a physical queue plus the line's transmitter."""

    def __init__(self, sim, name: str, queue: QueueDiscipline, link: Link) -> None:
        self.name = name
        self.queue = queue
        self.link = link
        self.transmitter = Transmitter(sim, queue, link, name=name)
        #: Packets the queue discipline refused at enqueue (egress drops).
        self.queue_dropped_packets = 0

    def add_egress_hook(self, hook: PipelineHook) -> None:
        self.transmitter.add_egress_hook(hook)


class SwitchStats:
    """Aggregate forwarding counters."""

    __slots__ = (
        "received_packets",
        "forwarded_packets",
        "ingress_dropped_packets",
        "queue_dropped_packets",
        "restarts",
        "restart_drained_packets",
        "restart_drained_bytes",
    )

    def __init__(self) -> None:
        self.received_packets = 0
        self.forwarded_packets = 0
        self.ingress_dropped_packets = 0
        self.queue_dropped_packets = 0
        self.restarts = 0
        self.restart_drained_packets = 0
        self.restart_drained_bytes = 0


class Switch:
    """A store-and-forward switch with per-port FIFO queues."""

    def __init__(self, sim, name: str) -> None:
        self.sim = sim
        self.name = name
        self.ports: Dict[str, SwitchPort] = {}
        self._routes: Dict[str, SwitchPort] = {}
        self.ingress_hooks: List[PipelineHook] = []
        self.stats = SwitchStats()
        #: Observers called for every packet accepted for forwarding.
        self.taps: List[Callable[[Packet], None]] = []
        tele = sim.telemetry
        if tele is not None and tele.enabled:
            tele.metrics.add_collector(self._collect_metrics)
            self._flight = tele.flightrec
            self._timewin = tele.timewin
        else:
            self._flight = None
            self._timewin = None

    def _collect_metrics(self, registry) -> None:
        stats = self.stats
        registry.counter("switch_received_packets", switch=self.name).set(
            stats.received_packets
        )
        registry.counter("switch_forwarded_packets", switch=self.name).set(
            stats.forwarded_packets
        )
        registry.counter("switch_ingress_dropped_packets", switch=self.name).set(
            stats.ingress_dropped_packets
        )
        registry.counter("switch_queue_dropped_packets", switch=self.name).set(
            stats.queue_dropped_packets
        )
        for port in self.ports.values():
            registry.counter("port_queue_dropped_packets", port=port.name).set(
                port.queue_dropped_packets
            )
            registry.gauge("port_backlog_bytes", port=port.name).set(
                port.queue.bytes_queued
            )

    # -- wiring ------------------------------------------------------------------

    def add_port(self, port_name: str, queue: QueueDiscipline, link: Link) -> SwitchPort:
        if port_name in self.ports:
            raise ConfigurationError(f"switch {self.name} already has port {port_name}")
        port = SwitchPort(self.sim, f"{self.name}.{port_name}", queue, link)
        self.ports[port_name] = port
        if self._timewin is not None:
            # Pre-register under the port's wire name so idle ports answer
            # window queries as empty rather than unknown. Queues built
            # with their own name register themselves too; an unnamed
            # queue's traffic still lands under that name only if the
            # queue was constructed with it, which the topology builders
            # guarantee.
            self._timewin.register_port(port.name)
            queue_name = getattr(queue, "name", "")
            if queue_name:
                self._timewin.register_port(queue_name)
        return port

    def add_route(self, dst: str, port_name: str) -> None:
        port = self.ports.get(port_name)
        if port is None:
            raise ConfigurationError(
                f"switch {self.name} has no port {port_name} for route to {dst}"
            )
        self._routes[dst] = port

    def route_for(self, dst: str, packet: Optional[Packet] = None) -> SwitchPort:
        """Next-hop lookup. The packet is passed so multi-path variants
        (ECMP in :mod:`repro.topology.leafspine`) can hash on flow fields;
        the base implementation ignores it."""
        port = self._routes.get(dst)
        if port is None:
            raise RoutingError(f"switch {self.name} has no route to {dst}")
        return port

    def add_ingress_hook(self, hook: PipelineHook) -> None:
        self.ingress_hooks.append(hook)

    def add_tap(self, tap: Callable[[Packet], None]) -> None:
        self.taps.append(tap)

    # -- fault injection ---------------------------------------------------------

    def restart(self) -> dict:
        """Power-cycle the switch: every port queue's backlog is lost.

        Buffered packets are drained as drops attributed to
        ``"switch_restart"`` (so the conservation auditor charges them to
        the fault window, not to a ledger error). The per-AQ register
        state lives in the controller-owned pipeline hooks; wiping and
        redeploying it is the fault injector's job, since the switch has
        no handle on the control plane.
        """
        now = self.sim.now
        drained_packets = 0
        drained_bytes = 0
        for port in self.ports.values():
            for packet in port.queue.drain(now, "switch_restart"):
                drained_packets += 1
                drained_bytes += packet.size
        stats = self.stats
        stats.restarts += 1
        stats.restart_drained_packets += drained_packets
        stats.restart_drained_bytes += drained_bytes
        return {
            "drained_packets": drained_packets,
            "drained_bytes": drained_bytes,
        }

    # -- data path ------------------------------------------------------------------

    def receive(self, packet: Packet) -> None:
        """Link-delivery handler: ingress pipeline, route, enqueue."""
        self.stats.received_packets += 1
        now = self.sim.now
        for hook in self.ingress_hooks:
            if not hook(packet, now):
                # Ingress discard (an ingress-position AQ limit-drop). The
                # hook recorded *why*; the switch knows *where*, so it seals
                # the flight with its own name as the drop site.
                self.stats.ingress_dropped_packets += 1
                fr = self._flight
                if fr is not None and packet.flight is not None:
                    fr.complete(packet, now, "dropped", node=self.name)
                return
        port = self.route_for(packet.dst, packet)
        for tap in self.taps:
            tap(packet)
        self.stats.forwarded_packets += 1
        if not port.transmitter.offer(packet):
            # The queue discipline refused the packet: an egress drop. The
            # queue's own stats (and trace events) record the details; the
            # switch keeps the aggregate so drops are visible per device.
            port.queue_dropped_packets += 1
            self.stats.queue_dropped_packets += 1
